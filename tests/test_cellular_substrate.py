"""Conformance suite for the grid-tensor cellular substrate.

Mirrors the layers of ``tests/test_substrate.py`` for the fine-grained
engine: neighbourhood-gather correctness (the offset index tables that
replace per-cell coordinate arithmetic), closure of the grid kernels for
the permutation/repetition crossovers, exact object-vs-grid equality at
the rate extremes under a shared seed (the per-cell RNG draw order is
preserved by construction), and search-quality parity on a ta-style flow
shop.  The hybrid island-of-cellular engine is exercised on the same
grid tensors, including the shared ``(n_islands, cells, n_genes)``
binding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import GAConfig, MaxGenerations, Population, Problem, SolverSpec
from repro.core.substrate import ArrayPopulationView, ArrayState, GridState
from repro.encodings import (FlowShopPermutationEncoding,
                             OperationBasedEncoding,
                             RandomKeysFlowShopEncoding)
from repro.instances import flow_shop, get_instance, job_shop
from repro.operators import (ArithmeticCrossover, JobBasedCrossover,
                             OrderCrossover, PMXCrossover,
                             register_batch_mutation)
from repro.parallel.fine_grained import (NEIGHBORHOODS, CellularGA,
                                         grid_neighbor_table)
from repro.parallel.hybrid import IslandOfCellularGA


# -- neighbourhood gather tables -------------------------------------------------

class TestNeighborTable:
    @settings(max_examples=60, deadline=None)
    @given(rows=st.integers(1, 7), cols=st.integers(1, 7),
           name=st.sampled_from(sorted(NEIGHBORHOODS)))
    def test_table_matches_toroidal_arithmetic(self, rows, cols, name):
        offsets = NEIGHBORHOODS[name]
        table = grid_neighbor_table(rows, cols, offsets)
        assert table.shape == (rows * cols, len(offsets))
        for r in range(rows):
            for c in range(cols):
                expect = [((r + dr) % rows) * cols + (c + dc) % cols
                          for dr, dc in offsets]
                assert table[r * cols + c].tolist() == expect

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(2, 6), cols=st.integers(2, 6),
           name=st.sampled_from(sorted(NEIGHBORHOODS)))
    def test_table_agrees_with_engine_neighbors(self, rows, cols, name):
        problem = Problem(FlowShopPermutationEncoding(
            flow_shop(5, 3, seed=1)))
        ga = CellularGA(problem, rows=rows, cols=cols, neighborhood=name)
        table = grid_neighbor_table(rows, cols, ga.offsets)
        for r in range(rows):
            for c in range(cols):
                flat = [rr * cols + cc for rr, cc in ga.neighbors(r, c)]
                assert table[r * cols + c].tolist() == flat

    def test_table_values_are_valid_flat_indices(self):
        table = grid_neighbor_table(4, 5, NEIGHBORHOODS["C13"])
        assert table.min() >= 0 and table.max() < 20


# -- GridState -------------------------------------------------------------------

class TestGridState:
    def test_tensor_and_grid_are_live_views(self):
        tensor = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        objs = np.arange(6, dtype=float).reshape(2, 3)
        state = GridState(tensor, objs)
        assert isinstance(state, ArrayState)
        assert state.matrix.shape == (6, 4)
        assert state.objective_grid.shape == (2, 3)
        state.matrix[5] = -1
        assert np.array_equal(state.tensor[1, 2], [-1, -1, -1, -1])
        state.objectives[0] = 99.0
        assert state.objective_grid[0, 0] == 99.0

    def test_from_matrix_round_trip(self):
        matrix = np.arange(12).reshape(6, 2)
        objs = np.arange(6, dtype=float)
        state = GridState.from_matrix(matrix, objs, 2, 3)
        assert state.rows == 2 and state.cols == 3
        assert np.array_equal(state.matrix, matrix)
        # cell (r, c) is flat row r*cols + c, row-major
        assert np.array_equal(state.tensor[1, 2], matrix[5])

    def test_copy_is_independent(self):
        state = GridState(np.zeros((2, 2, 3)), np.zeros((2, 2)))
        dup = state.copy()
        assert isinstance(dup, GridState)
        dup.matrix[0] = 7
        assert state.matrix[0].sum() == 0

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError, match="rows, cols"):
            GridState(np.zeros((4, 3)), np.zeros(4))
        with pytest.raises(ValueError, match="rows, cols"):
            GridState(np.zeros((2, 3, 4)), np.zeros((3, 2)))

    def test_population_view_over_grid(self, ft06_problem):
        ga = CellularGA(ft06_problem, rows=3, cols=3,
                        config=GAConfig(substrate="array"),
                        termination=MaxGenerations(2), seed=4)
        ga.run()
        view = ga.population
        assert isinstance(view, ArrayPopulationView)
        assert len(view) == 9
        snapshot = Population(ind.copy() for ind in view)
        assert view.best().objective == snapshot.best().objective
        assert view.stats().as_dict() == \
            pytest.approx(snapshot.stats().as_dict())


# -- closure of the grid kernels -------------------------------------------------

class TestGridClosure:
    @pytest.mark.parametrize("crossover", [PMXCrossover(), OrderCrossover()],
                             ids=["pmx", "ox"])
    @pytest.mark.parametrize("neighborhood", sorted(NEIGHBORHOODS))
    def test_permutation_grid_steps_stay_permutations(self, crossover,
                                                      neighborhood):
        problem = Problem(FlowShopPermutationEncoding(
            flow_shop(9, 4, seed=3)))
        ga = CellularGA(problem, rows=4, cols=4, neighborhood=neighborhood,
                        config=GAConfig(substrate="array", crossover_rate=0.9,
                                        mutation_rate=0.4,
                                        crossover=crossover),
                        termination=MaxGenerations(4), seed=6)
        ga.run()
        base = np.arange(9)
        for row in ga.grid_state.matrix:
            assert np.array_equal(np.sort(row), base)

    @pytest.mark.parametrize("crossover",
                             [OrderCrossover(), JobBasedCrossover()],
                             ids=["ox", "jox"])
    def test_repetition_grid_steps_preserve_multisets(self, crossover):
        instance = job_shop(4, 3, seed=8)
        problem = Problem(OperationBasedEncoding(instance))
        ga = CellularGA(problem, rows=3, cols=4,
                        config=GAConfig(substrate="array", crossover_rate=0.9,
                                        mutation_rate=0.5,
                                        crossover=crossover),
                        termination=MaxGenerations(4), seed=2)
        ga.run()
        base = np.sort(np.repeat(np.arange(4), 3))
        for row in ga.grid_state.matrix:
            assert np.array_equal(np.sort(row), base)


# -- rate-extreme object-vs-grid bit-equality ------------------------------------

def run_cell_pair(problem, seed=11, gens=4, rows=3, cols=4,
                  neighborhood="L5", replacement="if_better", **cfg_kwargs):
    """Run object and grid cellular engines with identical configs + seed."""
    out = {}
    for substrate in ("object", "array"):
        ga = CellularGA(problem, rows=rows, cols=cols,
                        neighborhood=neighborhood, replacement=replacement,
                        config=GAConfig(substrate=substrate, **cfg_kwargs),
                        termination=MaxGenerations(gens), seed=seed)
        ga.run()
        out[substrate] = ga
    return out["object"], out["array"]


def object_grid_arrays(ga):
    """Row-major (matrix, objectives) of an object-substrate grid."""
    flat = [ind for row in ga.grid for ind in row]
    return (np.stack([np.asarray(ind.genome) for ind in flat]),
            np.array([ind.objective for ind in flat]))


def assert_grids_equal(obj_ga, arr_ga):
    matrix, objectives = object_grid_arrays(obj_ga)
    assert np.array_equal(arr_ga.grid_state.matrix, matrix)
    assert np.array_equal(arr_ga.grid_state.objectives, objectives)
    assert obj_ga.state.evaluations == arr_ga.state.evaluations


class TestRateExtremeEquivalence:
    @pytest.mark.parametrize("neighborhood", sorted(NEIGHBORHOODS))
    def test_rate_zero_is_exact(self, ft06_problem, neighborhood):
        obj_ga, arr_ga = run_cell_pair(
            ft06_problem, neighborhood=neighborhood,
            crossover_rate=0.0, mutation_rate=0.0)
        assert_grids_equal(obj_ga, arr_ga)

    @pytest.mark.parametrize("neighborhood", sorted(NEIGHBORHOODS))
    def test_crossover_rate_one_exact_with_drawless_operator(
            self, neighborhood):
        # fixed-weight arithmetic crossover draws nothing, so the per-cell
        # RNG stream (mate pair + two gates) stays aligned while every
        # cell actually crosses -- this pins the neighbourhood gather and
        # the local-tournament mate choice bit-for-bit
        problem = Problem(RandomKeysFlowShopEncoding(flow_shop(8, 4, seed=2)))
        obj_ga, arr_ga = run_cell_pair(
            problem, gens=5, rows=4, cols=4, neighborhood=neighborhood,
            crossover_rate=1.0, mutation_rate=0.0,
            crossover=ArithmeticCrossover(0.3))
        assert_grids_equal(obj_ga, arr_ga)

    def test_mutation_rate_one_exact_with_drawless_operator(self,
                                                            ft06_problem):
        class CellReverseMutation:
            def __call__(self, genome, rng):
                return np.asarray(genome)[::-1].copy()

        @register_batch_mutation(CellReverseMutation)
        def _batch_cell_reverse(op, X, rng):
            return X[:, ::-1].copy()

        obj_ga, arr_ga = run_cell_pair(
            ft06_problem, crossover_rate=0.0, mutation_rate=1.0,
            mutation=CellReverseMutation())
        assert_grids_equal(obj_ga, arr_ga)

    def test_replacement_always_exact(self):
        problem = Problem(RandomKeysFlowShopEncoding(flow_shop(6, 3, seed=5)))
        obj_ga, arr_ga = run_cell_pair(
            problem, replacement="always", crossover_rate=1.0,
            mutation_rate=0.0, crossover=ArithmeticCrossover(0.5))
        assert_grids_equal(obj_ga, arr_ga)

    def test_initial_grids_bit_equal(self, ft06_problem):
        # row-major random_matrix draws == the object path's nested
        # comprehension, so generation 0 matches before any evolution
        for substrate in ("object", "array"):
            ga = CellularGA(ft06_problem, rows=3, cols=3,
                            config=GAConfig(substrate=substrate), seed=13)
            ga.initialize()
            if substrate == "object":
                matrix, objs = object_grid_arrays(ga)
            else:
                assert np.array_equal(ga.grid_state.matrix, matrix)
                assert np.array_equal(ga.grid_state.objectives, objs)


# -- quality parity + engines ----------------------------------------------------

class TestQualityAndEngines:
    def test_ta_style_flowshop_parity(self):
        """Grid search quality tracks the object substrate on ta-fs-20x5."""
        bests = {"object": [], "array": []}
        for substrate in bests:
            for seed in (1, 2, 3):
                report = repro.solve(SolverSpec(
                    instance="ta-fs-20x5-shaped", engine="cellular",
                    substrate=substrate, ga={"population_size": 36},
                    termination={"max_generations": 30}, seed=seed))
                bests[substrate].append(report.best_objective)
        mean_obj = np.mean(bests["object"])
        mean_arr = np.mean(bests["array"])
        assert mean_arr <= 1.1 * mean_obj
        assert mean_obj <= 1.1 * mean_arr

    def test_grid_improves_over_random(self, ft06_problem):
        ga = CellularGA(ft06_problem, rows=5, cols=5,
                        config=GAConfig(substrate="array"),
                        termination=MaxGenerations(20), seed=1)
        ga.initialize()
        initial = ga.population.best().objective
        assert ga.run().best_objective <= initial

    def test_hybrid_tensor_binding_and_migration(self, ft06_problem):
        ga = IslandOfCellularGA(ft06_problem, n_islands=3, rows=3, cols=3,
                                config=GAConfig(substrate="array"),
                                termination=MaxGenerations(12), seed=5)
        result = ga.run()
        assert result.extra["substrate"] == "array"
        assert result.extra["tensor_mode"] is True
        assert ga._tensor.shape == (3, 9, 36)
        for isl in ga.islands:
            assert isl.grid_state.matrix.base is ga._tensor
        assert result.best_objective <= 70

    def test_hybrid_solve_reproducible(self):
        spec = SolverSpec(instance="ft06", engine="hybrid",
                          substrate="array", ga={"population_size": 18},
                          engine_params={"islands": 2,
                                         "migration_interval": 2},
                          termination={"max_generations": 6}, seed=3)
        a, b = repro.solve(spec), repro.solve(spec)
        assert a.best_objective == b.best_objective
        assert a.evaluations == b.evaluations

    def test_custom_selection_without_batch_twin_is_fine(self, ft06_problem):
        # the grid path never calls config.selection (mate choice is the
        # neighbourhood tournament), so a selection operator without a
        # batch twin must not block the cellular array substrate
        class NoTwinSelection:
            def __call__(self, population, k, rng):
                return [population[int(i)]
                        for i in rng.integers(0, len(population), size=k)]

        ga = CellularGA(ft06_problem, rows=3, cols=3,
                        config=GAConfig(substrate="array",
                                        selection=NoTwinSelection()),
                        termination=MaxGenerations(2), seed=1)
        assert ga.run().best_objective > 0

    def test_composite_genomes_still_gated(self):
        fjsp = repro.SolverSpec(instance="fjsp-8x5-shaped",
                                engine="cellular", substrate="array",
                                termination={"max_generations": 2})
        with pytest.raises(repro.SpecError, match="composite"):
            repro.solve(fjsp)

    def test_cli_cellular_array_substrate(self, capsys):
        from repro.cli import main
        code = main(["solve", "ft06", "--engine", "cellular", "--substrate",
                     "array", "--generations", "3", "--population", "16"])
        assert code == 0
        assert "engine=cellular" in capsys.readouterr().out
