"""Tests for the evaluation executors (the master-slave seam)."""

import numpy as np
import pytest

from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import get_instance
from repro.parallel import (ChunkedEvaluator, ProcessPoolEvaluator,
                            SerialEvaluator)


@pytest.fixture(scope="module")
def problem():
    return Problem(OperationBasedEncoding(get_instance("ft06")))


@pytest.fixture(scope="module")
def genomes(problem):
    rng = np.random.default_rng(3)
    return [problem.random_genome(rng) for _ in range(17)]


class TestSerialEvaluator:
    def test_matches_problem(self, problem, genomes):
        ev = SerialEvaluator(problem)
        assert np.array_equal(ev(genomes), problem.evaluate_many(genomes))

    def test_stats_accumulate(self, problem, genomes):
        ev = SerialEvaluator(problem)
        ev(genomes)
        ev(genomes[:5])
        assert ev.stats.calls == 2
        assert ev.stats.genomes == 22
        assert ev.stats.wall_time > 0


class TestProcessPoolEvaluator:
    def test_order_preserved(self, problem, genomes):
        expected = problem.evaluate_many(genomes)
        with ProcessPoolEvaluator(problem, n_workers=3) as ev:
            out = ev(genomes)
        assert np.array_equal(out, expected)

    def test_chunks_per_worker(self, problem, genomes):
        expected = problem.evaluate_many(genomes)
        with ProcessPoolEvaluator(problem, n_workers=2,
                                  chunks_per_worker=4) as ev:
            out = ev(genomes)
        assert np.array_equal(out, expected)

    def test_empty_input(self, problem):
        with ProcessPoolEvaluator(problem, n_workers=2) as ev:
            out = ev([])
        assert out.size == 0

    def test_single_genome(self, problem, genomes):
        with ProcessPoolEvaluator(problem, n_workers=4) as ev:
            out = ev(genomes[:1])
        assert out.shape == (1,)

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            ProcessPoolEvaluator(problem, n_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolEvaluator(problem, n_workers=1, chunks_per_worker=0)

    def test_stats_track_payload(self, problem, genomes):
        with ProcessPoolEvaluator(problem, n_workers=2) as ev:
            ev(genomes)
            assert ev.stats.bytes_shipped > 0
            assert ev.stats.genomes == len(genomes)


class TestChunkedEvaluator:
    def test_batches_concatenate_in_order(self, problem, genomes):
        inner = SerialEvaluator(problem)
        ev = ChunkedEvaluator(inner, batch_size=4)
        out = ev(genomes)
        assert np.array_equal(out, problem.evaluate_many(genomes))
        # 17 genomes / batch 4 -> 5 inner calls
        assert inner.stats.calls == 5

    def test_empty(self, problem):
        ev = ChunkedEvaluator(SerialEvaluator(problem), batch_size=4)
        assert ev([]).size == 0

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            ChunkedEvaluator(SerialEvaluator(problem), batch_size=0)

    def test_close_propagates(self, problem):
        ev = ChunkedEvaluator(SerialEvaluator(problem), batch_size=2)
        ev.close()  # SerialEvaluator.close is a no-op; must not raise
