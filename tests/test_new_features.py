"""Tests for the extension features added beyond the first green build:
GT three-parent crossover, critical-path descent, asynchronous cellular
updates, partial replacement (generation gap), speed scaling."""

import numpy as np
import pytest

from repro.core import GAConfig, MaxGenerations, SimpleGA
from repro.encodings import OperationBasedEncoding, Problem
from repro.extensions import (PowerModel, SpeedScaling, apply_speed_scaling,
                              critical_path_descent, make_local_search)
from repro.instances import flow_shop, get_instance, job_shop
from repro.operators import GTThreeParentCrossover, is_repetition_of
from repro.parallel import CellularGA
from repro.scheduling import flowshop_makespan


class TestGTThreeParentCrossover:
    @pytest.fixture
    def xover(self, ft06):
        return GTThreeParentCrossover(ft06)

    def _random_seq(self, rng, n=6, g=6):
        seq = np.repeat(np.arange(n), g)
        rng.shuffle(seq)
        return seq

    def test_children_are_valid_multisets(self, xover, rng):
        a, b = self._random_seq(rng), self._random_seq(rng)
        ca, cb = xover(a, b, rng)
        counts = np.full(6, 6)
        assert is_repetition_of(ca, counts)
        assert is_repetition_of(cb, counts)

    def test_children_decode_to_active_schedules(self, xover, ft06, rng):
        """G&T construction means children are feasible active schedules;
        on average they beat their random semi-active parents."""
        from repro.scheduling import operation_sequence_makespan
        enc = OperationBasedEncoding(ft06)
        parent_ms, child_ms = [], []
        for _ in range(8):
            a, b = self._random_seq(rng), self._random_seq(rng)
            ca, cb = xover(a, b, rng)
            parent_ms += [operation_sequence_makespan(ft06, a),
                          operation_sequence_makespan(ft06, b)]
            child_ms += [operation_sequence_makespan(ft06, ca),
                         operation_sequence_makespan(ft06, cb)]
        assert np.mean(child_ms) <= np.mean(parent_ms)

    def test_explicit_three_parents(self, xover, rng):
        parents = [self._random_seq(rng) for _ in range(3)]
        child = xover.recombine(parents, rng)
        assert is_repetition_of(child, np.full(6, 6))

    def test_works_inside_engine(self, ft06, rng):
        problem = Problem(OperationBasedEncoding(ft06))
        cfg = GAConfig(population_size=12,
                       crossover=GTThreeParentCrossover(ft06))
        result = SimpleGA(problem, cfg, MaxGenerations(5), seed=1).run()
        problem.decode(result.best.genome).audit(ft06)

    def test_mix_preserves_multiset(self, xover, rng):
        a, b = self._random_seq(rng), self._random_seq(rng)
        mixed = xover._mix(a, b, rng)
        assert is_repetition_of(mixed, np.full(6, 6))


class TestCriticalPathDescent:
    def test_never_worse(self, ft06, rng):
        problem = Problem(OperationBasedEncoding(ft06))
        for _ in range(5):
            g = problem.random_genome(rng)
            out = critical_path_descent(g, problem, rng, attempts=8)
            assert problem.evaluate(out) <= problem.evaluate(g)

    def test_preserves_multiset(self, ft06, rng):
        problem = Problem(OperationBasedEncoding(ft06))
        g = problem.random_genome(rng)
        out = critical_path_descent(g, problem, rng, attempts=8)
        assert is_repetition_of(out, np.full(6, 6))

    def test_often_strictly_improves(self, rng):
        inst = job_shop(8, 5, seed=66)
        problem = Problem(OperationBasedEncoding(inst))
        improved = 0
        for _ in range(10):
            g = problem.random_genome(rng)
            out = critical_path_descent(g, problem, rng, attempts=15)
            if problem.evaluate(out) < problem.evaluate(g):
                improved += 1
        assert improved >= 5

    def test_falls_back_for_non_jssp(self, rng):
        from repro.encodings import FlowShopPermutationEncoding
        inst = flow_shop(6, 3, seed=1)
        problem = Problem(FlowShopPermutationEncoding(inst))
        g = problem.random_genome(rng)
        out = critical_path_descent(g, problem, rng)
        assert problem.evaluate(out) <= problem.evaluate(g)

    def test_factory_exposes_it(self):
        assert make_local_search("critical_path") is not None


class TestAsynchronousCellular:
    def test_async_mode_runs_and_differs(self, ft06_problem):
        sync = CellularGA(ft06_problem, rows=4, cols=4,
                          termination=MaxGenerations(6), seed=5,
                          update="synchronous").run()
        async_ = CellularGA(ft06_problem, rows=4, cols=4,
                            termination=MaxGenerations(6), seed=5,
                            update="asynchronous").run()
        assert async_.extra["update"] == "asynchronous"
        # both modes evaluate one offspring per cell per generation
        assert async_.evaluations == sync.evaluations

    def test_async_cells_monotone_with_if_better(self, ft06_problem):
        ga = CellularGA(ft06_problem, rows=3, cols=3,
                        termination=MaxGenerations(4), seed=6,
                        update="asynchronous")
        ga.initialize()
        before = ga.population.best().objective
        for _ in range(4):
            ga.step()
        assert ga.population.best().objective <= before

    def test_invalid_update_mode(self, ft06_problem):
        with pytest.raises(ValueError):
            CellularGA(ft06_problem, update="diagonal")


class TestGenerationGap:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(generation_gap=0.0)
        with pytest.raises(ValueError):
            GAConfig(generation_gap=1.5)

    def test_partial_replacement_keeps_survivors(self, ft06_problem):
        """With gap 0.25, at least 75% of genomes survive a generation."""
        cfg = GAConfig(population_size=20, generation_gap=0.25, n_elites=2)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(1), seed=3)
        ga.initialize()
        before = {ind.genome_key() for ind in ga.population}
        ga.step()
        after = {ind.genome_key() for ind in ga.population}
        assert len(before & after) >= 15

    def test_fewer_evaluations_per_generation(self, ft06_problem):
        full = SimpleGA(ft06_problem,
                        GAConfig(population_size=20, generation_gap=1.0),
                        MaxGenerations(4), seed=3).run()
        partial = SimpleGA(ft06_problem,
                           GAConfig(population_size=20, generation_gap=0.5),
                           MaxGenerations(4), seed=3).run()
        assert partial.evaluations < full.evaluations

    def test_still_improves(self, ft06_problem):
        result = SimpleGA(ft06_problem,
                          GAConfig(population_size=24, generation_gap=0.5),
                          MaxGenerations(25), seed=4).run()
        curve = result.history.best_curve()
        assert curve[-1] <= curve[0]


class TestSpeedScaling:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedScaling(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            SpeedScaling(np.array([1.0]), alpha=0.5)

    def test_faster_machines_shorten_makespan(self, rng):
        inst = flow_shop(6, 3, seed=70)
        scaled = apply_speed_scaling(inst, SpeedScaling(np.array([2.0] * 3)))
        perm = rng.permutation(6)
        assert flowshop_makespan(scaled, perm) == pytest.approx(
            flowshop_makespan(inst, perm) / 2.0)

    def test_power_grows_with_alpha(self):
        base = PowerModel.uniform(3, processing=10.0)
        mild = SpeedScaling(np.array([2.0] * 3), alpha=2.0).scale_power(base)
        steep = SpeedScaling(np.array([2.0] * 3), alpha=3.0).scale_power(base)
        assert np.all(steep.processing_power > mild.processing_power)
        assert np.allclose(mild.processing_power, 40.0)

    def test_energy_makespan_tradeoff(self, rng):
        """Doubling speeds: makespan halves, busy energy rises (alpha>1)."""
        from repro.extensions import energy_consumption
        from repro.scheduling import flowshop_schedule
        inst = flow_shop(6, 3, seed=70)
        base_power = PowerModel.uniform(3, processing=10.0, idle=0.0)
        scaling = SpeedScaling(np.array([2.0] * 3), alpha=2.0)
        perm = rng.permutation(6)
        e_slow = energy_consumption(flowshop_schedule(inst, perm), base_power)
        fast = apply_speed_scaling(inst, scaling)
        e_fast = energy_consumption(flowshop_schedule(fast, perm),
                                    scaling.scale_power(base_power))
        assert e_fast > e_slow  # alpha=2: halved time x quadrupled power

    def test_shape_mismatch_rejected(self):
        inst = flow_shop(4, 3, seed=71)
        with pytest.raises(ValueError):
            apply_speed_scaling(inst, SpeedScaling(np.array([1.0, 2.0])))

    def test_jobshop_rejected(self):
        inst = job_shop(3, 3, seed=72)
        with pytest.raises(TypeError):
            apply_speed_scaling(inst, SpeedScaling(np.ones(3)))
