"""Tests for repro.solve(): the engine x substrate conformance sweep,
bit-identity, reports."""

import json

import numpy as np
import pytest

import repro
from repro import (GAConfig, IslandGA, MasterSlaveGA, MaxGenerations,
                   Problem, SimpleGA, SolverSpec, solve)
from repro.api import available_engines, available_substrates, engine_entry
from repro.api.engines import grid_shape_for
from repro.api.registry import SpecError
from repro.core.backend import get_backend
from repro.encodings import OperationBasedEncoding
from repro.exact import ortools_available
from repro.instances import get_instance
from repro.parallel import default_island_population


def _spec(engine, **kwargs):
    kwargs.setdefault("ga", {"population_size": 24})
    kwargs.setdefault("termination", {"max_generations": 4})
    kwargs.setdefault("seed", 11)
    return SolverSpec(instance="ft06", engine=engine, **kwargs)


#: Small per-engine parameters keeping the sweep fast; every registered
#: engine must have an entry here (the sweep asserts it), so a new engine
#: cannot land without joining the conformance matrix.
SWEEP_PARAMS = {
    "simple": {},
    "master-slave": {"backend": "serial"},
    "island": {"islands": 3},
    "cellular": {"rows": 4, "cols": 4},
    "hybrid": {"islands": 2, "rows": 3, "cols": 3, "migration_interval": 2},
    "two-level": {"islands": 2, "migration_interval": 2,
                  "broadcast_interval": 4},
    "exact": {},
    "cpsat": {},
    "neh": {},
    "johnson": {},
    "spt": {},
    "edd": {},
}


class TestEngineSubstrateSweep:
    """The whole engine x substrate matrix through one parameterised test.

    Replaces the ad-hoc per-engine smoke tests: every registered engine
    must solve end-to-end on *both* substrates, produce an auditable
    schedule, and hand back a resolved spec that round-trips through
    JSON and reproduces the run exactly.
    """

    @pytest.mark.parametrize("backend", ["numpy", "instrumented"])
    @pytest.mark.parametrize("substrate", available_substrates())
    @pytest.mark.parametrize("engine", available_engines())
    def test_engine_substrate_conformance(self, engine, substrate, backend):
        assert engine in SWEEP_PARAMS, (
            f"new engine {engine!r}: add it to the conformance sweep")
        if engine == "cpsat" and not ortools_available():
            pytest.skip("optional ortools dependency not installed")
        if backend == "instrumented":
            get_backend("instrumented").reset_transfers()
        report = solve(_spec(engine, engine_params=SWEEP_PARAMS[engine],
                             substrate=substrate, backend=backend))
        assert report.engine == engine
        if backend == "instrumented":
            # the run is bit-identical to the numpy backend (the
            # instrumented namespace forwards to NumPy) and never crossed
            # an explicit host<->device seam mid-run
            baseline = solve(_spec(engine,
                                   engine_params=SWEEP_PARAMS[engine],
                                   substrate=substrate))
            assert report.best_objective == baseline.best_objective
            assert report.evaluations == baseline.evaluations
            assert report.to_dict()["best_genome"] == \
                baseline.to_dict()["best_genome"]
            transfers = get_backend("instrumented").transfers
            assert transfers["to_device"] == 0
            assert transfers["to_host"] == 0
        assert report.best_objective > 0
        assert report.evaluations > 0
        assert report.generations > 0
        assert report.termination_reason
        assert set(report.timings) == {"resolve", "run", "total"}
        assert report.extra.get("substrate", "object") == substrate
        # the best schedule decodes and passes the feasibility oracle
        schedule = report.schedule()
        schedule.audit(report.problem.instance)
        assert schedule.makespan == report.best_objective or \
            report.spec.objective != "makespan"
        # resolved spec round-trips through JSON and reproduces the run
        resolved = report.spec
        assert resolved.substrate == substrate
        again_spec = SolverSpec.from_json(resolved.to_json())
        assert again_spec == resolved
        assert solve(again_spec).best_objective == report.best_objective

    def test_registry_tags_match_engine_acceptance(self):
        """`array_substrate` tags must agree with what engines accept.

        Regression for the PR that removed the cellular engine's
        object-substrate-only ValueError: an engine tagged for the array
        substrate must actually run on it, and an untagged engine must be
        refused by spec validation -- the tag and the behaviour can never
        drift apart.
        """
        for engine in available_engines():
            spec = _spec(engine, engine_params=SWEEP_PARAMS.get(engine, {}),
                         substrate="array",
                         termination={"max_generations": 2})
            if engine_entry(engine).tags.get("array_substrate"):
                # validation must pass; the actual array run is already
                # exercised by test_engine_substrate_conformance above
                spec.validate()
            else:
                with pytest.raises(SpecError, match="object substrate"):
                    spec.validate()

    def test_all_shipped_engines_are_array_tagged(self):
        assert [e for e in available_engines()
                if not engine_entry(e).tags.get("array_substrate")] == []


class TestSolveSmoke:
    def test_solve_accepts_plain_dict(self):
        report = solve({"instance": "ft06",
                        "termination": {"max_generations": 2},
                        "ga": {"population_size": 8}})
        assert report.engine == "simple"

    def test_report_to_dict_is_json_serializable(self):
        report = solve(_spec("island"))
        payload = json.dumps(report.to_dict())
        back = json.loads(payload)
        assert back["best_objective"] == report.best_objective
        assert back["spec"]["engine"] == "island"
        # a report's spec alone reproduces the run
        again = solve(back["spec"])
        assert again.best_objective == report.best_objective

    def test_composite_genome_report_serializes(self):
        report = solve(SolverSpec(instance="fjsp-8x5-shaped",
                                  ga={"population_size": 10},
                                  termination={"max_generations": 2}))
        payload = json.loads(json.dumps(report.to_dict()))
        assert isinstance(payload["best_genome"], list)

    def test_history_attached(self):
        report = solve(_spec("simple"))
        assert report.history is not None
        assert report.history.final_best() == report.best_objective


class TestBitIdentity:
    """solve(spec) must equal direct engine construction, same seed."""

    def test_simple_engine_matches_direct_simple_ga(self):
        pop, gens, seed = 30, 6, 123
        direct = SimpleGA(
            Problem(OperationBasedEncoding(get_instance("ft06"))),
            GAConfig(population_size=pop),
            MaxGenerations(gens), seed=seed).run()
        report = solve(SolverSpec(instance="ft06",
                                  ga={"population_size": pop},
                                  termination={"max_generations": gens},
                                  seed=seed))
        assert report.best_objective == direct.best_objective
        assert report.evaluations == direct.evaluations
        assert report.generations == direct.generations
        np.testing.assert_array_equal(report.best_genome,
                                      direct.best.genome)

    def test_island_engine_matches_direct_island_ga(self):
        pop, gens, seed, n_isl = 32, 6, 9, 4
        direct = IslandGA(
            Problem(OperationBasedEncoding(get_instance("ft06"))),
            n_islands=n_isl,
            config=GAConfig(population_size=default_island_population(
                pop, n_isl)),
            termination=MaxGenerations(gens), seed=seed).run()
        report = solve(SolverSpec(instance="ft06", engine="island",
                                  ga={"population_size": pop},
                                  termination={"max_generations": gens},
                                  engine_params={"islands": n_isl},
                                  seed=seed))
        assert report.best_objective == direct.best_objective
        assert report.evaluations == direct.evaluations

    def test_master_slave_serial_backend_matches_simple(self):
        spec = _spec("simple")
        serial = solve(spec)
        ms = solve(spec.replace(engine="master-slave",
                                engine_params={"backend": "serial"}))
        assert ms.best_objective == serial.best_objective
        assert ms.evaluations == serial.evaluations

    def test_same_spec_same_result(self):
        spec = _spec("two-level", termination={"max_generations": 8})
        a, b = solve(spec), solve(spec)
        assert a.best_objective == b.best_objective
        assert a.evaluations == b.evaluations


class TestObjectivesAndInstances:
    def test_objective_by_name_changes_criterion(self):
        base = SolverSpec(instance="ta-fs-20x5-shaped",
                          ga={"population_size": 16},
                          termination={"max_generations": 3}, seed=5)
        makespan = solve(base)
        flow = solve(base.replace(objective="total-flow-time"))
        assert flow.spec.objective == "total-flow-time"
        # flow time sums over jobs, so it dominates the makespan scale
        assert flow.best_objective > makespan.best_objective

    def test_weighted_combination_objective(self):
        report = solve(SolverSpec(
            instance="ft06", objective="weighted",
            objective_params={"parts": [[0.7, "makespan"],
                                        [0.3, "total-flow-time"]]},
            ga={"population_size": 12},
            termination={"max_generations": 2}))
        assert len(report.objective_vector) == 2

    def test_due_tau_enables_tardiness_family(self):
        spec = SolverSpec(instance="ft06", objective="maximum-tardiness",
                          instance_params={"due_tau": 0.6},
                          ga={"population_size": 12},
                          termination={"max_generations": 3}, seed=2)
        report = solve(spec)
        # tau < 1 makes most jobs late: tardiness must be positive/finite
        assert 0 < report.best_objective < float("inf")

    def test_weights_instance_param(self):
        spec = SolverSpec(instance="ft06",
                          objective="total-weighted-completion",
                          instance_params={"weights": [2, 9]},
                          ga={"population_size": 12},
                          termination={"max_generations": 2}, seed=2)
        assert solve(spec).best_objective > 0

    def test_encoding_params_flow_through(self):
        report = solve(SolverSpec(
            instance="ft06", encoding="operation-based",
            encoding_params={"mode": "active"},
            ga={"population_size": 12},
            termination={"max_generations": 2}))
        assert report.spec.encoding_params == {"mode": "active"}

    def test_bad_encoding_param_value_is_spec_error(self):
        with pytest.raises(SpecError, match="encoding_params"):
            solve(SolverSpec(instance="ft06",
                             encoding="operation-based",
                             encoding_params={"mode": "sideways"},
                             termination={"max_generations": 1}))


class TestEngineHelpers:
    def test_default_island_population(self):
        assert default_island_population(60, 4) == 15
        assert default_island_population(8, 4) == 4   # floor kicks in
        assert default_island_population(3, 2) == 4
        with pytest.raises(ValueError):
            default_island_population(60, 0)

    def test_grid_shape_for(self):
        assert grid_shape_for(64, None, None) == (8, 8)
        assert grid_shape_for(60, None, None) == (7, 7)
        assert grid_shape_for(2, None, None) == (2, 2)   # floor
        assert grid_shape_for(100, 4, None) == (4, 4)    # mirror missing
        assert grid_shape_for(100, None, 5) == (5, 5)
        assert grid_shape_for(100, 3, 9) == (3, 9)
        with pytest.raises(SpecError):
            grid_shape_for(10, 0, 5)

    def test_termination_disjunction(self):
        # target fires long before the generation cap
        report = solve(SolverSpec(
            instance="ft06",
            ga={"population_size": 40},
            termination={"max_generations": 500, "target": 70.0},
            seed=4))
        assert report.best_objective <= 70.0
        assert report.generations < 500

    def test_package_level_exports(self):
        assert repro.solve is solve
        assert repro.SolverSpec is SolverSpec
        assert callable(repro.available_engines)
        # MasterSlaveGA still importable for programmatic use
        assert MasterSlaveGA is not None
