"""Tests for Individual and Population containers."""

import numpy as np
import pytest

from repro.core.individual import Individual
from repro.core.population import Population, hamming_distance


def _pop(objs):
    members = []
    for i, o in enumerate(objs):
        members.append(Individual(np.array([i]), objective=float(o)))
    return Population(members)


class TestIndividual:
    def test_unevaluated_initially(self):
        ind = Individual(np.arange(4))
        assert not ind.evaluated
        assert ind.objective is None and ind.fitness is None

    def test_invalidate_clears_cache(self):
        ind = Individual(np.arange(4), objective=3.0, fitness=1.0,
                         objectives=(3.0, 1.0))
        ind.invalidate()
        assert not ind.evaluated
        assert ind.objectives is None

    def test_copy_is_deep_for_array_genome(self):
        ind = Individual(np.arange(4), objective=1.0)
        clone = ind.copy()
        clone.genome[0] = 99
        assert ind.genome[0] == 0
        assert clone.objective == 1.0

    def test_copy_is_deep_for_tuple_genome(self):
        ind = Individual((np.arange(3), np.arange(5)))
        clone = ind.copy()
        clone.genome[0][0] = 42
        assert ind.genome[0][0] == 0

    def test_genome_key_hashable_and_stable(self):
        a = Individual(np.array([1, 2, 3]))
        b = Individual(np.array([1, 2, 3]))
        assert a.genome_key() == b.genome_key()
        assert hash(a.genome_key()) == hash(b.genome_key())

    def test_genome_key_tuple_genome(self):
        a = Individual((np.array([1]), np.array([2, 3])))
        assert a.genome_key() == ((1,), (2, 3))

    def test_with_genome_fresh(self):
        ind = Individual(np.arange(2), objective=5.0)
        child = ind.with_genome(np.arange(3))
        assert child.objective is None


class TestHammingDistance:
    def test_identical_is_zero(self):
        a = Individual(np.array([1, 2, 3]))
        assert hamming_distance(a, a) == 0

    def test_counts_differences(self):
        a = Individual(np.array([1, 2, 3]))
        b = Individual(np.array([1, 0, 0]))
        assert hamming_distance(a, b) == 2

    def test_unequal_lengths_count_missing(self):
        a = Individual(np.array([1, 2]))
        b = Individual(np.array([1, 2, 3, 4]))
        assert hamming_distance(a, b) == 2

    def test_tuple_genomes_concatenate(self):
        a = Individual((np.array([1]), np.array([2, 3])))
        b = Individual((np.array([1]), np.array([9, 3])))
        assert hamming_distance(a, b) == 1


class TestPopulation:
    def test_best_worst(self):
        pop = _pop([5, 1, 9, 3])
        assert pop.best().objective == 1
        assert pop.worst().objective == 9

    def test_best_raises_on_unevaluated(self):
        pop = Population([Individual(np.array([0]))])
        with pytest.raises(ValueError):
            pop.best()

    def test_sorted_ascending(self):
        pop = _pop([5, 1, 9, 3]).sorted()
        assert [i.objective for i in pop] == [1, 3, 5, 9]

    def test_top_k(self):
        pop = _pop([5, 1, 9, 3])
        assert [i.objective for i in pop.top(2)] == [1, 3]

    def test_objectives_vector_with_nan(self):
        pop = Population([Individual(np.array([0]), objective=2.0),
                          Individual(np.array([1]))])
        obj = pop.objectives()
        assert obj[0] == 2.0 and np.isnan(obj[1])

    def test_stats(self):
        stats = _pop([2, 4, 6, 8]).stats()
        assert stats.best == 2 and stats.worst == 8
        assert stats.mean == 5.0
        assert stats.size == 4
        assert stats.unique_fraction == 1.0

    def test_stats_unique_fraction_detects_duplicates(self):
        a = Individual(np.array([7]), objective=1.0)
        b = Individual(np.array([7]), objective=2.0)
        assert Population([a, b]).stats().unique_fraction == 0.5

    def test_copy_independent(self):
        pop = _pop([1, 2])
        clone = pop.copy()
        clone[0].genome[0] = 77
        assert pop[0].genome[0] != 77

    def test_slicing_returns_population(self):
        pop = _pop([1, 2, 3])
        assert isinstance(pop[:2], Population)
        assert len(pop[:2]) == 2

    def test_elitist_merge_keeps_elites_and_size(self):
        pop = _pop([1, 2, 3, 4])
        offspring = [Individual(np.array([9]), objective=10.0)
                     for _ in range(4)]
        merged = pop.elitist_merge(offspring, n_elites=2)
        assert len(merged) == 4
        objs = sorted(i.objective for i in merged)
        assert objs[:2] == [1, 2]  # elites survive

    def test_elitist_merge_zero_elites_is_generational(self):
        pop = _pop([1, 2, 3, 4])
        offspring = [Individual(np.array([9]), objective=float(o))
                     for o in (7, 8, 9, 10)]
        merged = pop.elitist_merge(offspring, n_elites=0)
        assert sorted(i.objective for i in merged) == [7, 8, 9, 10]

    def test_elitist_merge_backfills_on_offspring_shortage(self):
        pop = _pop([1, 2, 3, 4])
        merged = pop.elitist_merge([Individual(np.array([9]),
                                               objective=0.5)], n_elites=1)
        assert len(merged) == 4

    def test_stagnation_fraction_uniform_population(self):
        a = Individual(np.array([1, 2, 3]), objective=1.0)
        pop = Population([a.copy() for _ in range(4)])
        assert pop.stagnation_fraction(threshold=1) == 1.0

    def test_stagnation_fraction_diverse_population(self):
        pop = Population([Individual(np.array([i, i + 1, i + 2]),
                                     objective=1.0) for i in range(4)])
        assert pop.stagnation_fraction(threshold=1) == 0.0

    def test_mean_pairwise_hamming_zero_for_clones(self):
        a = Individual(np.array([1, 2, 3]))
        pop = Population([a.copy(), a.copy(), a.copy()])
        assert pop.mean_pairwise_hamming() == 0.0
