"""Tests for the simulated cluster and the closed-form performance models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (DeviceModel, GATrace, beowulf, cpu_core,
                            gpu_device, gpu_resident, lan_star,
                            master_slave_speedup, master_slave_time,
                            multicore, optimal_slave_count,
                            breakeven_eval_cost, island_speedup,
                            simulate_cellular, simulate_island,
                            simulate_master_slave, simulate_serial,
                            solutions_explored_in, transputer)


def trace(**kw):
    base = dict(generations=100, evals_per_generation=200, eval_cost=1e-3,
                variation_cost=5e-3, genome_bytes=256)
    base.update(kw)
    return GATrace(**base)


class TestDeviceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModel("x", lanes=0)
        with pytest.raises(ValueError):
            DeviceModel("x", lanes=1, eval_speed=0.0)
        with pytest.raises(ValueError):
            DeviceModel("x", lanes=1, dispatch_latency=-1)

    def test_presets_constructible(self):
        for dev in (cpu_core(), multicore(4), lan_star(6), beowulf(5),
                    transputer(16), gpu_device(448), gpu_resident(960)):
            assert dev.lanes >= 1


class TestTraceValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            GATrace(generations=-1, evals_per_generation=1, eval_cost=1)
        with pytest.raises(ValueError):
            GATrace(generations=1, evals_per_generation=1, eval_cost=-1)


class TestSimulators:
    def test_serial_time_formula(self):
        t = trace(generations=10, evals_per_generation=100, eval_cost=0.01,
                  variation_cost=0.0)
        assert simulate_serial(t) == pytest.approx(10.0)

    def test_single_lane_device_close_to_serial(self):
        """One worker with no overheads must equal the serial time."""
        dev = DeviceModel("one", lanes=1)
        t = trace()
        assert simulate_master_slave(t, dev) == pytest.approx(
            simulate_serial(t))

    def test_more_lanes_never_slower(self):
        t = trace()
        times = [simulate_master_slave(t, multicore(k))
                 for k in (1, 2, 4, 8, 16)]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_overhead_hurts_cheap_evaluations(self):
        """The survey's caveat: communication offsets slave gains when the
        evaluation is cheap."""
        cheap = trace(eval_cost=1e-6)
        t_serial = simulate_serial(cheap)
        t_lan = simulate_master_slave(cheap, lan_star(16))
        assert t_lan > t_serial

    def test_gpu_beats_lan_for_large_populations(self):
        t = trace(evals_per_generation=1000, eval_cost=1e-4)
        assert simulate_master_slave(t, gpu_device(448)) < \
            simulate_master_slave(t, lan_star(4))

    def test_island_faster_with_more_lanes(self):
        t = trace(n_islands=8, migration_interval=5, migrants_per_event=8)
        t1 = simulate_island(t, multicore(1))
        t8 = simulate_island(t, multicore(8))
        assert t8 < t1

    def test_island_requires_islands(self):
        t = trace(n_islands=1)
        assert simulate_island(t, multicore(2)) > 0

    def test_resident_gpu_dominates_hosted_gpu(self):
        t = trace(evals_per_generation=512, eval_cost=2e-4, n_islands=8)
        hosted = simulate_island(t, gpu_device(960))
        resident = simulate_island(t, gpu_resident(960))
        assert resident < hosted

    def test_cellular_scales_with_nodes(self):
        t = trace(evals_per_generation=256, eval_cost=2e-3)
        t4 = simulate_cellular(t, transputer(4))
        t16 = simulate_cellular(t, transputer(16))
        assert t16 < t4

    def test_solutions_explored_monotone_in_budget(self):
        t = trace()
        dev = gpu_device(448)
        n1 = solutions_explored_in(10, t, dev)
        n2 = solutions_explored_in(20, t, dev)
        assert n2 >= 2 * n1 * 0.99

    def test_solutions_explored_unknown_model(self):
        with pytest.raises(ValueError):
            solutions_explored_in(1.0, trace(), cpu_core(), model="x")


class TestPerfModel:
    def test_time_formula(self):
        # T = n*Tf/P + P*Tc
        assert master_slave_time(100, 0.01, 0.001, 10) == pytest.approx(
            100 * 0.01 / 10 + 10 * 0.001)

    def test_speedup_one_slave_below_one(self):
        # with a single slave the comm overhead makes speedup < 1
        assert master_slave_speedup(100, 0.01, 0.001, 1) < 1.0

    def test_optimum_matches_sqrt_formula(self):
        n, tf, tc = 500, 0.02, 0.0005
        p_star = optimal_slave_count(n, tf, tc)
        assert p_star == pytest.approx(math.sqrt(n * tf / tc))

    @given(st.integers(min_value=10, max_value=2000),
           st.floats(min_value=1e-5, max_value=1.0),
           st.floats(min_value=1e-6, max_value=0.1))
    @settings(max_examples=40, deadline=None)
    def test_optimum_is_a_minimum(self, n, tf, tc):
        """T(P*) <= T(P* / 2) and T(2 P*) -- the analytic optimum wins."""
        p_star = optimal_slave_count(n, tf, tc)
        t_star = master_slave_time(n, tf, tc, max(1, round(p_star)))
        for p in (max(1, round(p_star / 2)), max(1, round(p_star * 2))):
            assert t_star <= master_slave_time(n, tf, tc, p) * 1.5

    def test_breakeven_threshold(self):
        n, tc, p = 100, 1e-3, 8
        tf = breakeven_eval_cost(n, tc, p)
        assert master_slave_speedup(n, tf * 2, tc, p) > 1.0
        assert master_slave_speedup(n, tf * 0.5, tc, p) < 1.0

    def test_breakeven_single_slave_infinite(self):
        assert breakeven_eval_cost(100, 1e-3, 1) == math.inf

    def test_island_speedup_grows_with_islands(self):
        s2 = island_speedup(160, 2, 1e-3, 1e-2, 5, 2, 1e-3)
        s8 = island_speedup(160, 8, 1e-3, 1e-2, 5, 2, 1e-3)
        assert s8 > s2 > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            master_slave_time(10, 1, 1, 0)
        with pytest.raises(ValueError):
            island_speedup(10, 0, 1, 1, 1, 1, 1)
