"""Tests for shop instance data models (Section II, Table I defaults)."""

import numpy as np
import pytest

from repro.scheduling import (FlexibleFlowShopInstance,
                              FlexibleJobShopInstance, FlowShopInstance,
                              JobShopInstance, OpenShopInstance)


class TestFlowShopInstance:
    def test_dimensions(self):
        inst = FlowShopInstance(processing=np.ones((4, 3)))
        assert inst.n_jobs == 4 and inst.n_machines == 3
        assert inst.total_operations == 12

    def test_default_job_fields(self):
        inst = FlowShopInstance(processing=np.ones((3, 2)))
        assert np.array_equal(inst.release, np.zeros(3))
        assert np.all(np.isinf(inst.due))
        assert np.array_equal(inst.weights, np.ones(3))

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            FlowShopInstance(processing=np.array([[1.0, -2.0]]))

    def test_rejects_wrong_release_shape(self):
        with pytest.raises(ValueError):
            FlowShopInstance(processing=np.ones((3, 2)),
                             release=np.zeros(5))

    def test_lower_bound_sane(self):
        inst = FlowShopInstance(processing=np.array([[2.0, 3.0],
                                                     [4.0, 1.0]]))
        lb = inst.makespan_lower_bound()
        # no schedule can beat max machine load or max job length
        assert lb >= 6.0

    def test_requires_processing(self):
        with pytest.raises(ValueError):
            FlowShopInstance()


class TestJobShopInstance:
    def test_machine_count_from_routing(self):
        inst = JobShopInstance(routing=np.array([[0, 2], [1, 0]]),
                               processing=np.ones((2, 2)))
        assert inst.n_machines == 3
        assert inst.n_stages == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            JobShopInstance(routing=np.zeros((2, 2), dtype=int),
                            processing=np.ones((2, 3)))

    def test_negative_machine_rejected(self):
        with pytest.raises(ValueError):
            JobShopInstance(routing=np.array([[-1, 0]]),
                            processing=np.ones((1, 2)))

    def test_machine_loads(self):
        inst = JobShopInstance(routing=np.array([[0, 1], [0, 1]]),
                               processing=np.array([[2.0, 3.0],
                                                    [4.0, 5.0]]))
        assert np.array_equal(inst.machine_loads(), [6.0, 8.0])

    def test_lower_bound(self):
        inst = JobShopInstance(routing=np.array([[0, 1], [1, 0]]),
                               processing=np.array([[5.0, 5.0],
                                                    [1.0, 1.0]]))
        assert inst.makespan_lower_bound() == 10.0

    def test_blocking_flag_carried(self):
        inst = JobShopInstance(routing=np.array([[0]]),
                               processing=np.ones((1, 1)), blocking=True)
        assert inst.blocking


class TestOpenShopInstance:
    def test_lower_bound_is_max_of_rows_and_cols(self):
        p = np.array([[1.0, 2.0], [3.0, 4.0]])
        inst = OpenShopInstance(processing=p)
        assert inst.makespan_lower_bound() == max(p.sum(0).max(),
                                                  p.sum(1).max())


class TestFlexibleFlowShopInstance:
    def _inst(self, **kw):
        return FlexibleFlowShopInstance(processing=np.ones((3, 2)) * 4,
                                        machines_per_stage=(2, 1), **kw)

    def test_total_machines(self):
        assert self._inst().n_machines == 3

    def test_is_flexible(self):
        assert self._inst().is_flexible()
        uni = FlexibleFlowShopInstance(processing=np.ones((2, 2)),
                                       machines_per_stage=(1, 1))
        assert not uni.is_flexible()

    def test_duration_identical_machines(self):
        assert self._inst().duration(0, 0, 1) == 4.0

    def test_duration_with_speeds(self):
        inst = FlexibleFlowShopInstance(processing=np.ones((2, 1)) * 6,
                                        machines_per_stage=(2,),
                                        machine_speeds=[(1.0, 2.0)])
        assert inst.duration(0, 0, 0) == 6.0
        assert inst.duration(0, 0, 1) == 3.0

    def test_unrelated_machines_override(self):
        ppm = [np.array([[1.0, 9.0], [2.0, 8.0], [3.0, 7.0]]),
               np.array([[5.0], [6.0], [7.0]])]
        inst = self._inst(processing_per_machine=ppm)
        assert inst.duration(0, 0, 1) == 9.0
        assert inst.duration(2, 1, 0) == 7.0

    def test_rejects_bad_stage_counts(self):
        with pytest.raises(ValueError):
            FlexibleFlowShopInstance(processing=np.ones((2, 2)),
                                     machines_per_stage=(2,))
        with pytest.raises(ValueError):
            FlexibleFlowShopInstance(processing=np.ones((2, 2)),
                                     machines_per_stage=(0, 1))


class TestFlexibleJobShopInstance:
    def _inst(self, **kw):
        ops = [
            [{0: 3.0, 1: 4.0}, {1: 2.0}],
            [{0: 5.0}, {0: 1.0, 1: 1.5}],
        ]
        return FlexibleJobShopInstance(operations=ops, **kw)

    def test_dimensions(self):
        inst = self._inst()
        assert inst.n_jobs == 2 and inst.n_machines == 2
        assert inst.total_operations == 4
        assert inst.stages_of(0) == 2

    def test_eligible_machines_sorted(self):
        assert self._inst().eligible_machines(0, 0) == [0, 1]

    def test_duration_lookup_and_error(self):
        inst = self._inst()
        assert inst.duration(0, 0, 1) == 4.0
        with pytest.raises(ValueError):
            inst.duration(0, 1, 0)  # machine 0 not eligible for (0,1)

    def test_setup_time_defaults_to_zero(self):
        assert self._inst().setup_time(0, None, 1) == 0.0

    def test_setup_time_lookup(self):
        setup = [np.arange(6, dtype=float).reshape(3, 2),
                 np.zeros((3, 2))]
        inst = self._inst(setup=setup)
        assert inst.setup_time(0, None, 1) == 1.0   # row 0 = from idle
        assert inst.setup_time(0, 0, 1) == 3.0      # after job 0

    def test_setup_shape_validated(self):
        with pytest.raises(ValueError):
            self._inst(setup=[np.zeros((2, 2)), np.zeros((2, 2))])

    def test_time_lag_validated(self):
        with pytest.raises(ValueError):
            self._inst(time_lag=[[1.0, 2.0], [0.0]])
        inst = self._inst(time_lag=[[2.0], [0.5]])
        assert inst.lag(0, 0) == 2.0

    def test_operation_without_machines_rejected(self):
        with pytest.raises(ValueError):
            FlexibleJobShopInstance(operations=[[{}]])
