"""Hypothesis property test: ``Schedule.audit`` vs the exact oracle.

The feasibility oracle must be exactly as strict as the scheduling
model: every oracle-optimal schedule passes, and *any* single
corruption -- an operation pulled onto its machine predecessor, a
job's stage windows exchanged, a duration quietly shortened -- is
rejected with :class:`FeasibilityError`.  Optimal schedules are the
adversarial place to probe: they are maximally tight, so a lax audit
that merely "looks at the makespan" would still wave the mutants
through.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SolverSpec, solve
from repro.instances import KNOWN_OPTIMA
from repro.scheduling.schedule import FeasibilityError, Schedule

CERTIFIED = tuple(sorted(KNOWN_OPTIMA))

_cache = {}


def oracle_schedule(name):
    """(schedule, instance) decoded from the exact engine's certificate."""
    if name not in _cache:
        encoding = "openshop-pairs" if name.startswith("tiny-os") else None
        report = solve(SolverSpec(instance=name, engine="exact",
                                  encoding=encoding,
                                  termination={"max_generations": 1}))
        _cache[name] = (report.schedule(), report.problem.instance)
    return _cache[name]


def rebuilt(schedule, operations):
    return Schedule(operations, schedule.n_jobs, schedule.n_machines)


@pytest.mark.parametrize("name", CERTIFIED)
def test_oracle_optimal_schedules_pass_audit(name):
    schedule, instance = oracle_schedule(name)
    schedule.audit(instance)
    assert schedule.makespan == KNOWN_OPTIMA[name]
    # audit is also pure: a rebuilt copy of the same operations passes too
    rebuilt(schedule, schedule.operations).audit(instance)


@settings(max_examples=40, deadline=None)
@given(name=st.sampled_from(CERTIFIED), data=st.data())
def test_machine_overlap_mutation_is_rejected(name, data):
    """Pull an operation back onto its machine predecessor."""
    schedule, instance = oracle_schedule(name)
    busy = [seq for seq in schedule.machine_sequences() if len(seq) >= 2]
    seq = data.draw(st.sampled_from(busy))
    idx = data.draw(st.integers(0, len(seq) - 2))
    a, b = seq[idx], seq[idx + 1]
    shifted = dataclasses.replace(b, start=a.start,
                                  end=a.start + b.duration)
    ops = [shifted if op is b else op for op in schedule.operations]
    with pytest.raises(FeasibilityError):
        rebuilt(schedule, ops).audit(instance)


@settings(max_examples=40, deadline=None)
@given(name=st.sampled_from(CERTIFIED), data=st.data())
def test_broken_precedence_mutation_is_rejected(name, data):
    """Exchange the time windows of two consecutive operations of a job."""
    schedule, instance = oracle_schedule(name)
    jobs = [seq for seq in schedule.job_sequences() if len(seq) >= 2]
    seq = data.draw(st.sampled_from(jobs))
    by_start = sorted(seq, key=lambda op: op.start)
    idx = data.draw(st.integers(0, len(by_start) - 2))
    a, b = by_start[idx], by_start[idx + 1]
    swapped = {
        id(a): dataclasses.replace(a, start=b.start, end=b.end),
        id(b): dataclasses.replace(b, start=a.start, end=a.end),
    }
    ops = [swapped.get(id(op), op) for op in schedule.operations]
    with pytest.raises(FeasibilityError):
        rebuilt(schedule, ops).audit(instance)


@settings(max_examples=40, deadline=None)
@given(name=st.sampled_from(CERTIFIED), data=st.data())
def test_shortened_duration_mutation_is_rejected(name, data):
    """Quietly halving one processing time must not pass the audit.

    This is the mutation a makespan-only check would miss: the schedule
    stays conflict-free (everything only gets looser), but it no longer
    executes the instance it claims to.
    """
    schedule, instance = oracle_schedule(name)
    idx = data.draw(st.integers(0, len(schedule.operations) - 1))
    victim = schedule.operations[idx]
    shortened = dataclasses.replace(
        victim, end=victim.start + victim.duration / 2)
    ops = [shortened if op is victim else op for op in schedule.operations]
    with pytest.raises(FeasibilityError):
        rebuilt(schedule, ops).audit(instance)
