"""Tests for flexible-shop decoders and the disjunctive graph."""

import numpy as np
import pytest

from repro.instances import (flexible_flow_shop, flexible_job_shop, job_shop)
from repro.scheduling import (CyclicSelectionError, DisjunctiveGraph,
                              LotStreamingPlan, decode_fjsp,
                              decode_hybrid_flowshop, decode_lot_streaming,
                              decode_operation_sequence, fjsp_random_genome,
                              operation_sequence_makespan)


@pytest.fixture
def fjsp():
    return flexible_job_shop(4, 3, seed=21, stages=3, flexibility=2)


@pytest.fixture
def hfs():
    return flexible_flow_shop(5, (2, 1, 2), seed=22)


class TestFJSPDecode:
    def test_feasible(self, fjsp, rng):
        assign, seq = fjsp_random_genome(fjsp, rng)
        sched = decode_fjsp(fjsp, assign, seq, validate=True)
        sched.audit(fjsp)
        assert len(sched.operations) == fjsp.total_operations

    def test_validate_rejects_bad_genome(self, fjsp):
        with pytest.raises(ValueError):
            decode_fjsp(fjsp, np.zeros(3), np.zeros(3, dtype=np.int64),
                        validate=True)

    def test_assignment_changes_schedule(self, fjsp, rng):
        assign, seq = fjsp_random_genome(fjsp, rng)
        a2 = (assign + 1)
        m1 = decode_fjsp(fjsp, assign, seq).makespan
        m2 = decode_fjsp(fjsp, a2, seq).makespan
        # schedules decode fine either way; often different makespans
        assert m1 > 0 and m2 > 0

    def test_setups_extend_makespan(self, rng):
        no_setup = flexible_job_shop(4, 3, seed=5, stages=3, setups=False)
        with_setup = flexible_job_shop(4, 3, seed=5, stages=3, setups=True,
                                       setup_hi=30)
        assign, seq = fjsp_random_genome(no_setup, rng)
        m_plain = decode_fjsp(no_setup, assign, seq).makespan
        m_setup = decode_fjsp(with_setup, assign, seq).makespan
        assert m_setup > m_plain

    def test_detached_setup_no_slower_than_attached(self, rng):
        att = flexible_job_shop(4, 3, seed=6, stages=3, setups=True,
                                setup_attached=True)
        det = flexible_job_shop(4, 3, seed=6, stages=3, setups=True,
                                setup_attached=False)
        assign, seq = fjsp_random_genome(att, rng)
        m_att = decode_fjsp(att, assign, seq).makespan
        m_det = decode_fjsp(det, assign, seq).makespan
        assert m_det <= m_att + 1e-9

    def test_machine_release_dates_respected(self, rng):
        inst = flexible_job_shop(3, 2, seed=7, stages=2,
                                 machine_release_hi=40)
        assign, seq = fjsp_random_genome(inst, rng)
        sched = decode_fjsp(inst, assign, seq)
        for op in sched.operations:
            assert op.start >= inst.machine_release[op.machine] - 1e-9

    def test_time_lags_respected(self, rng):
        inst = flexible_job_shop(3, 2, seed=8, stages=2, time_lag_hi=25)
        assign, seq = fjsp_random_genome(inst, rng)
        sched = decode_fjsp(inst, assign, seq)
        for j, ops in enumerate(sched.job_sequences()):
            for a, b in zip(ops, ops[1:]):
                assert b.start >= a.end + inst.lag(j, a.stage) - 1e-9


class TestHybridFlowShop:
    def test_feasible_without_assignment(self, hfs, rng):
        sched = decode_hybrid_flowshop(hfs, rng.permutation(5))
        sched.audit(hfs)
        assert len(sched.operations) == hfs.total_operations

    def test_machines_stay_in_stage_blocks(self, hfs, rng):
        sched = decode_hybrid_flowshop(hfs, rng.permutation(5))
        base = np.concatenate([[0], np.cumsum(hfs.machines_per_stage)])
        for op in sched.operations:
            assert base[op.stage] <= op.machine < base[op.stage + 1]

    def test_assignment_chromosome_respected(self, hfs, rng):
        assign = np.zeros((5, 3), dtype=np.int64)  # always local machine 0
        sched = decode_hybrid_flowshop(hfs, rng.permutation(5), assign)
        base = np.concatenate([[0], np.cumsum(hfs.machines_per_stage)])
        for op in sched.operations:
            assert op.machine == base[op.stage]

    def test_more_parallel_machines_never_hurt(self, rng):
        narrow = flexible_flow_shop(6, (1, 1), seed=30)
        wide = flexible_flow_shop(6, (3, 3), seed=30)
        perm = rng.permutation(6)
        assert (decode_hybrid_flowshop(wide, perm).makespan
                <= decode_hybrid_flowshop(narrow, perm).makespan + 1e-9)

    def test_unrelated_machines_used(self, rng):
        inst = flexible_flow_shop(4, (2, 2), seed=31, unrelated=True)
        sched = decode_hybrid_flowshop(inst, rng.permutation(4))
        sched.audit(inst)


class TestLotStreaming:
    def test_plan_normalises(self):
        plan = LotStreamingPlan([np.array([2.0, 2.0])])
        assert np.allclose(plan.fractions[0], [0.5, 0.5])

    def test_plan_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LotStreamingPlan([np.array([1.0, 0.0])])

    def test_equal_plan(self):
        plan = LotStreamingPlan.equal(3, 4)
        assert len(plan.fractions) == 3
        assert np.allclose(plan.fractions[0], 0.25)

    def test_from_genome_shapes(self):
        plan = LotStreamingPlan.from_genome(np.ones(6), n_jobs=3, sublots=2)
        assert len(plan.fractions) == 3

    def test_lot_streaming_reduces_or_matches_makespan(self, hfs, rng):
        """Splitting lots can only help a permutation schedule."""
        perm = rng.permutation(5)
        single = decode_lot_streaming(hfs, perm, LotStreamingPlan.equal(5, 1))
        split = decode_lot_streaming(hfs, perm, LotStreamingPlan.equal(5, 3))
        assert split.makespan <= single.makespan + 1e-9

    def test_sublots_keep_stage_order(self, hfs, rng):
        perm = rng.permutation(5)
        sched = decode_lot_streaming(hfs, perm, LotStreamingPlan.equal(5, 2))
        # per (job, stage) there are exactly 2 operations (the sublots)
        from collections import Counter
        counts = Counter((op.job, op.stage) for op in sched.operations)
        assert set(counts.values()) == {2}

    def test_machine_capacity_respected(self, hfs, rng):
        sched = decode_lot_streaming(hfs, rng.permutation(5),
                                     LotStreamingPlan.equal(5, 2))
        for seq in sched.machine_sequences():
            for a, b in zip(seq, seq[1:]):
                assert b.start >= a.end - 1e-9


class TestDisjunctiveGraph:
    def _instance(self):
        return job_shop(4, 3, seed=77)

    def test_graph_makespan_matches_semi_active(self, rng):
        """Longest-path evaluation == greedy decode for the same sequence."""
        inst = self._instance()
        dg = DisjunctiveGraph(inst)
        for _ in range(8):
            seq = np.repeat(np.arange(4), 3)
            rng.shuffle(seq)
            assert dg.makespan_of_sequence(seq) == pytest.approx(
                operation_sequence_makespan(inst, seq))

    def test_schedule_of_sequence_feasible(self, rng):
        inst = self._instance()
        dg = DisjunctiveGraph(inst)
        seq = np.repeat(np.arange(4), 3)
        rng.shuffle(seq)
        dg.schedule_of_sequence(seq).audit(inst)

    def test_cycle_detection(self):
        inst = self._instance()
        dg = DisjunctiveGraph(inst)
        # force a cyclic selection: machine order contradicting job order
        j0_first = dg.op_id(0, 0)
        j0_second = dg.op_id(0, 1)
        m_first = dg.machine(j0_first)
        m_second = dg.machine(j0_second)
        selection = [[] for _ in range(inst.n_machines)]
        # put stage-1 op before stage-0 op on a shared resource chain:
        # (0,1) -> (1,...) -> ... -> (0,0) cannot close a cycle alone, so
        # directly order (0,1) before (0,0)'s machine predecessor via two
        # machines: simplest guaranteed cycle is (a before b) on one machine
        # and (b before a) through the job chain.
        selection[m_second] = [j0_second]
        selection[m_first] = [dg.op_id(1, 0), j0_first]
        # add arc j0_first -> op(1,0) on another machine to close the loop
        other = dg.op_id(1, 1)
        selection[dg.machine(other)] = [other]
        # build a definite cycle instead: a -> b on machine, b -> a via job
        two = DisjunctiveGraph(inst)
        sel = [[] for _ in range(inst.n_machines)]
        a, b = dg.op_id(0, 0), dg.op_id(0, 1)
        if dg.machine(a) == dg.machine(b):
            sel[dg.machine(a)] = [b, a]
            with pytest.raises(CyclicSelectionError):
                two.topological_order(sel)
        else:
            # machines differ: emulate with an explicit reversed pair via
            # networkx check on a hand-made selection known to be cyclic
            sel[dg.machine(b)] = [b]
            sel[dg.machine(a)] = [a]
            order = two.topological_order(sel)
            assert len(order) == inst.n_jobs * inst.n_stages + 2

    def test_critical_path_nonempty_and_connected(self, rng):
        inst = self._instance()
        dg = DisjunctiveGraph(inst)
        seq = np.repeat(np.arange(4), 3)
        rng.shuffle(seq)
        selection = dg.selection_from_sequence(seq)
        path = dg.critical_path(selection)
        assert path, "critical path must contain at least one operation"
        _, cmax = dg.longest_path_start_times(selection)
        # path durations sum to the makespan
        total = sum(dg.duration(op) for op in path)
        assert total == pytest.approx(cmax)
