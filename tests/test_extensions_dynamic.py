"""Tests for the predictive-reactive dynamic scheduler."""

import numpy as np
import pytest

from repro.core import GAConfig
from repro.extensions import (Event, EventStream, JobArrival,
                              MachineBreakdown, PredictiveReactiveScheduler)
from repro.instances import flow_shop


@pytest.fixture
def scheduler():
    return PredictiveReactiveScheduler(flow_shop(5, 3, seed=20),
                                       config=GAConfig(population_size=16),
                                       generations=8, seed=1)


class TestEventStream:
    def test_sorted_by_time(self):
        stream = EventStream([JobArrival(time=30, processing=(1, 2, 3)),
                              MachineBreakdown(time=10, machine=0,
                                               duration=5)])
        times = [e.time for e in stream]
        assert times == sorted(times)
        assert len(stream) == 2


class TestPredictiveReactive:
    def test_no_events_single_plan(self, scheduler):
        seq, cmax = scheduler.run(EventStream([]))
        assert len(seq) == 5
        assert cmax > 0
        assert scheduler.reschedules == []

    def test_job_arrival_grows_instance(self, scheduler):
        seq, cmax = scheduler.run(EventStream([
            JobArrival(time=40.0, processing=(5.0, 6.0, 7.0))]))
        assert len(seq) == 6  # new job enters the sequence
        assert len(scheduler.reschedules) == 1
        assert scheduler.reschedules[0].jobs_remaining == 6

    def test_arrival_respects_release_time(self, scheduler):
        scheduler.run(EventStream([
            JobArrival(time=40.0, processing=(5.0, 6.0, 7.0))]))
        # final instance carries the arrival as a release date
        # (re-run the optimiser path to observe the instance state)
        assert scheduler.reschedules[0].predicted_makespan >= 40.0

    def test_arrival_shape_validated(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.run(EventStream([JobArrival(time=1.0,
                                                  processing=(1.0,))]))

    def test_breakdown_delays_schedule(self):
        base = flow_shop(5, 3, seed=20)
        quiet = PredictiveReactiveScheduler(base,
                                            config=GAConfig(
                                                population_size=16),
                                            generations=8, seed=1)
        _, cmax_quiet = quiet.run(EventStream([]))
        stormy = PredictiveReactiveScheduler(flow_shop(5, 3, seed=20),
                                             config=GAConfig(
                                                 population_size=16),
                                             generations=8, seed=1)
        _, cmax_storm = stormy.run(EventStream([
            MachineBreakdown(time=10.0, machine=1, duration=200.0)]))
        assert cmax_storm > cmax_quiet

    def test_multiple_events_processed_in_order(self, scheduler):
        seq, _ = scheduler.run(EventStream([
            MachineBreakdown(time=20.0, machine=0, duration=10.0),
            JobArrival(time=50.0, processing=(2.0, 2.0, 2.0)),
            JobArrival(time=70.0, processing=(3.0, 3.0, 3.0)),
        ]))
        assert len(seq) == 7
        assert len(scheduler.reschedules) == 3
        times = [r.time for r in scheduler.reschedules]
        assert times == sorted(times)

    def test_unknown_event_type_rejected(self, scheduler):
        class Alien(Event):
            pass
        with pytest.raises(TypeError):
            scheduler.run(EventStream([Alien(time=1.0)]))
