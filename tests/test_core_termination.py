"""Tests for termination criteria."""

import pytest

from repro.core.termination import (AllOf, AnyOf, MaxEvaluations,
                                    MaxGenerations, ProvenGap, Stagnation,
                                    TargetObjective, TerminationState,
                                    TimeLimit)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_state():
    return TerminationState(clock=FakeClock())


class TestMaxGenerations:
    def test_fires_at_limit(self):
        crit = MaxGenerations(3)
        state = make_state()
        assert not crit.done(state)
        state.generation = 3
        assert crit.done(state)

    def test_zero_fires_immediately(self):
        assert MaxGenerations(0).done(make_state())

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MaxGenerations(-1)

    def test_reason_mentions_limit(self):
        assert "3" in MaxGenerations(3).reason()


class TestMaxEvaluations:
    def test_fires_at_budget(self):
        crit = MaxEvaluations(100)
        state = make_state()
        state.evaluations = 99
        assert not crit.done(state)
        state.evaluations = 100
        assert crit.done(state)


class TestTimeLimit:
    def test_uses_clock(self):
        state = make_state()
        crit = TimeLimit(10.0)
        assert not crit.done(state)
        state.clock.t = 10.5
        assert crit.done(state)

    def test_elapsed(self):
        state = make_state()
        state.clock.t = 2.5
        assert state.elapsed() == 2.5


class TestTargetObjective:
    def test_fires_when_reached(self):
        crit = TargetObjective(55.0)
        state = make_state()
        assert not crit.done(state)  # no best yet
        state.record_best(60.0)
        assert not crit.done(state)
        state.record_best(55.0)
        assert crit.done(state)

    def test_target_equal_to_optimum_terminates(self):
        """Regression: exactly hitting a proven optimum must stop the run.

        A strict ``<`` here would loop forever on a target set to the
        optimum (the common usage: ``target=KNOWN_OPTIMA[name]``).
        """
        crit = TargetObjective(55.0)
        state = make_state()
        state.record_best(55.0)  # equality, not improvement past it
        assert crit.done(state)

    def test_reason_reports_achieved_best(self):
        crit = TargetObjective(55.0)
        state = make_state()
        assert "55.0" in crit.reason()  # not yet fired: names the target
        state.record_best(54.0)
        assert crit.done(state)
        reason = crit.reason()
        assert "55.0" in reason and "54.0" in reason


class TestProvenGap:
    def test_fires_within_gap(self):
        crit = ProvenGap(100.0, gap=0.05)
        state = make_state()
        assert not crit.done(state)  # no best yet
        state.record_best(106.0)
        assert not crit.done(state)
        state.record_best(105.0)  # exactly lb * (1 + gap)
        assert crit.done(state)

    def test_zero_gap_demands_the_optimum(self):
        crit = ProvenGap(55.0)
        state = make_state()
        state.record_best(56.0)
        assert not crit.done(state)
        state.record_best(55.0)
        assert crit.done(state)

    def test_threshold(self):
        assert ProvenGap(200.0, gap=0.1).threshold == pytest.approx(220.0)

    def test_reason_before_and_after(self):
        crit = ProvenGap(100.0, gap=0.05)
        assert "not yet reached" in crit.reason()
        state = make_state()
        state.record_best(103.0)
        assert crit.done(state)
        reason = crit.reason()
        assert "103.0" in reason and "100.0" in reason

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ProvenGap(0.0)
        with pytest.raises(ValueError):
            ProvenGap(-5.0)
        with pytest.raises(ValueError):
            ProvenGap(float("inf"))
        with pytest.raises(ValueError):
            ProvenGap(float("nan"))
        with pytest.raises(ValueError):
            ProvenGap(100.0, gap=-0.1)


class TestStagnation:
    def test_fires_after_window(self):
        crit = Stagnation(5)
        state = make_state()
        state.record_best(10.0)
        state.generation = 4
        assert not crit.done(state)
        state.generation = 5
        assert crit.done(state)

    def test_improvement_resets(self):
        crit = Stagnation(5)
        state = make_state()
        state.record_best(10.0)
        state.generation = 4
        state.record_best(9.0)  # improvement at generation 4
        state.generation = 8
        assert not crit.done(state)

    def test_worse_value_does_not_reset(self):
        state = make_state()
        state.record_best(10.0)
        state.generation = 3
        state.record_best(11.0)
        assert state.best_generation == 0
        assert state.best_objective == 10.0


class TestComposition:
    def test_any_of(self):
        crit = MaxGenerations(100) | MaxEvaluations(10)
        state = make_state()
        state.evaluations = 10
        assert crit.done(state)
        assert "10" in crit.reason()

    def test_all_of(self):
        crit = MaxGenerations(2) & MaxEvaluations(10)
        state = make_state()
        state.generation = 5
        assert not crit.done(state)
        state.evaluations = 10
        assert crit.done(state)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()
        with pytest.raises(ValueError):
            AllOf()

    def test_any_of_with_proven_gap_reports_the_firing_criterion(self):
        crit = AnyOf(ProvenGap(100.0, gap=0.02), MaxGenerations(50))
        state = make_state()
        state.record_best(101.0)
        assert crit.done(state)
        assert "proven gap reached" in crit.reason()
        # the generation cap path reports its own reason instead
        crit2 = AnyOf(ProvenGap(100.0, gap=0.02), MaxGenerations(50))
        state2 = make_state()
        state2.record_best(150.0)
        state2.generation = 50
        assert crit2.done(state2)
        assert "max generations" in crit2.reason()

    def test_all_of_with_proven_gap(self):
        crit = ProvenGap(100.0, gap=0.05) & MaxGenerations(10)
        state = make_state()
        state.record_best(104.0)
        assert not crit.done(state)  # gap reached, budget not spent
        state.generation = 10
        assert crit.done(state)
        reason = crit.reason()
        assert "proven gap reached" in reason and "and" in reason
