"""Tests for termination criteria."""

import pytest

from repro.core.termination import (AllOf, AnyOf, MaxEvaluations,
                                    MaxGenerations, Stagnation,
                                    TargetObjective, TerminationState,
                                    TimeLimit)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_state():
    return TerminationState(clock=FakeClock())


class TestMaxGenerations:
    def test_fires_at_limit(self):
        crit = MaxGenerations(3)
        state = make_state()
        assert not crit.done(state)
        state.generation = 3
        assert crit.done(state)

    def test_zero_fires_immediately(self):
        assert MaxGenerations(0).done(make_state())

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MaxGenerations(-1)

    def test_reason_mentions_limit(self):
        assert "3" in MaxGenerations(3).reason()


class TestMaxEvaluations:
    def test_fires_at_budget(self):
        crit = MaxEvaluations(100)
        state = make_state()
        state.evaluations = 99
        assert not crit.done(state)
        state.evaluations = 100
        assert crit.done(state)


class TestTimeLimit:
    def test_uses_clock(self):
        state = make_state()
        crit = TimeLimit(10.0)
        assert not crit.done(state)
        state.clock.t = 10.5
        assert crit.done(state)

    def test_elapsed(self):
        state = make_state()
        state.clock.t = 2.5
        assert state.elapsed() == 2.5


class TestTargetObjective:
    def test_fires_when_reached(self):
        crit = TargetObjective(55.0)
        state = make_state()
        assert not crit.done(state)  # no best yet
        state.record_best(60.0)
        assert not crit.done(state)
        state.record_best(55.0)
        assert crit.done(state)


class TestStagnation:
    def test_fires_after_window(self):
        crit = Stagnation(5)
        state = make_state()
        state.record_best(10.0)
        state.generation = 4
        assert not crit.done(state)
        state.generation = 5
        assert crit.done(state)

    def test_improvement_resets(self):
        crit = Stagnation(5)
        state = make_state()
        state.record_best(10.0)
        state.generation = 4
        state.record_best(9.0)  # improvement at generation 4
        state.generation = 8
        assert not crit.done(state)

    def test_worse_value_does_not_reset(self):
        state = make_state()
        state.record_best(10.0)
        state.generation = 3
        state.record_best(11.0)
        assert state.best_generation == 0
        assert state.best_objective == 10.0


class TestComposition:
    def test_any_of(self):
        crit = MaxGenerations(100) | MaxEvaluations(10)
        state = make_state()
        state.evaluations = 10
        assert crit.done(state)
        assert "10" in crit.reason()

    def test_all_of(self):
        crit = MaxGenerations(2) & MaxEvaluations(10)
        state = make_state()
        state.generation = 5
        assert not crit.done(state)
        state.evaluations = 10
        assert crit.done(state)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()
        with pytest.raises(ValueError):
            AllOf()
