"""Batch-vs-scalar conformance + property suites for the extensions.

Every scenario extension (fuzzy, stochastic, energy, dynamic) now scores
populations through array kernels; these tests pin the bit-identity
contract against the original object paths and add hypothesis property
suites: TFN algebra closure, CRN determinism, energy non-negativity and
the dynamic scheduler's freeze invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAConfig
from repro.encodings import FlowShopPermutationEncoding, Problem
from repro.extensions import (EnergyAwareObjective, EnergyMakespanVector,
                              JobArrival, MachineBreakdown, PowerModel,
                              PredictiveReactiveScheduler, TFN,
                              agreement_index, batch_agreement_index,
                              energy_consumption, flowshop_energy_population,
                              flowshop_peak_power_population, peak_power,
                              power_profile)
from repro.extensions.dynamic import EventStream, demo_event_stream
from repro.extensions.fuzzy import (FuzzyFlowShopEncoding,
                                    FuzzyFlowShopInstance,
                                    fuzzy_agreement_population,
                                    fuzzy_completion_population)
from repro.extensions.stochastic import (StochasticJobShopEncoding,
                                         StochasticJobShopInstance)
from repro.instances import flow_shop, job_shop
from repro.scheduling.flowshop import flowshop_schedule
from repro.scheduling.schedule import Operation, Schedule


def tfns(max_width=50.0):
    """Strategy for valid (possibly degenerate) TFNs."""
    return st.tuples(
        st.floats(0.0, 100.0), st.floats(0.0, max_width),
        st.floats(0.0, max_width)).map(
            lambda t: TFN(t[0], t[0] + t[1], t[0] + t[1] + t[2]))


class TestTFNClosure:
    @given(tfns(), tfns())
    def test_addition_closed(self, x, y):
        s = x + y
        assert s.a <= s.b <= s.c

    @given(tfns(), tfns())
    def test_maximum_closed(self, x, y):
        s = x.maximum(y)
        assert s.a <= s.b <= s.c

    @given(tfns(), tfns())
    @settings(max_examples=200)
    def test_batch_agreement_matches_scalar(self, c, d):
        scalar = agreement_index(c, d)
        batch = batch_agreement_index(
            np.array([[c.a, c.b, c.c]]), np.array([[d.a, d.b, d.c]]))
        assert batch.shape == (1,)
        assert batch[0] == scalar
        assert 0.0 <= scalar <= 1.0


class TestFuzzyBatch:
    @pytest.fixture
    def instance(self):
        return FuzzyFlowShopInstance.from_crisp(flow_shop(7, 4, seed=11),
                                                spread=0.35, seed=12)

    def test_completion_tensor_matches_tfn_recurrence(self, instance):
        rng = np.random.default_rng(3)
        perms = np.vstack([rng.permutation(instance.n_jobs)
                           for _ in range(12)])
        tensor = fuzzy_completion_population(instance, perms)
        for p, perm in enumerate(perms):
            scalar = instance.completion_times(perm)
            for j, tfn in enumerate(scalar):
                assert tensor[p, j, 0] == tfn.a
                assert tensor[p, j, 1] == tfn.b
                assert tensor[p, j, 2] == tfn.c

    def test_agreement_objective_matches_scalar(self, instance):
        rng = np.random.default_rng(4)
        perms = np.vstack([rng.permutation(instance.n_jobs)
                           for _ in range(12)])
        batch = fuzzy_agreement_population(instance, perms)
        for p, perm in enumerate(perms):
            completion = instance.completion_times(perm)
            ais = np.array([agreement_index(completion[j], instance.due[j])
                            for j in range(instance.n_jobs)])
            assert batch[p] == 1.0 - (0.5 * ais.min() + 0.5 * ais.mean())

    def test_encoding_fast_equals_batch_row(self, instance):
        enc = FuzzyFlowShopEncoding(instance)
        rng = np.random.default_rng(5)
        keys = np.vstack([enc.random_genome(rng) for _ in range(8)])
        batch = enc.batch_makespan(keys)
        for i in range(8):
            assert enc.fast_makespan(keys[i]) == batch[i]

    def test_crisp_instance_cached(self, instance):
        assert instance.crisp_instance() is instance.crisp_instance()


class TestStochasticBatch:
    @given(st.integers(0, 2 ** 16), st.floats(0.05, 0.45))
    @settings(max_examples=20, deadline=None)
    def test_crn_batch_deterministic(self, seed, spread):
        base = job_shop(4, 3, seed=9)
        a = StochasticJobShopInstance(base, spread=spread, n_scenarios=4,
                                      seed=seed)
        b = StochasticJobShopInstance(base, spread=spread, n_scenarios=4,
                                      seed=seed)
        enc = StochasticJobShopEncoding(a)
        rng = np.random.default_rng(1)
        mat = np.vstack([enc.random_genome(rng) for _ in range(6)])
        assert np.array_equal(a.batch_expected_makespan(mat),
                              b.batch_expected_makespan(mat))

    def test_batch_matches_scalar_loop(self):
        instance = StochasticJobShopInstance(job_shop(5, 4, seed=13),
                                             spread=0.3, n_scenarios=6,
                                             seed=14)
        enc = StochasticJobShopEncoding(instance)
        rng = np.random.default_rng(2)
        mat = np.vstack([enc.random_genome(rng) for _ in range(10)])
        batch = instance.batch_expected_makespan(mat)
        scalar = np.array([instance.expected_makespan(g) for g in mat])
        assert np.array_equal(batch, scalar)

    def test_scenario_instances_cached(self):
        instance = StochasticJobShopInstance(job_shop(4, 3, seed=15),
                                             n_scenarios=3)
        assert instance.scenario_instance(1) is instance.scenario_instance(1)


class TestEnergyBatch:
    @pytest.fixture
    def case(self):
        instance = flow_shop(8, 4, seed=17)
        power = PowerModel.uniform(4, processing=8.0, idle=1.5)
        rng = np.random.default_rng(6)
        perms = np.vstack([rng.permutation(8) for _ in range(10)])
        return instance, power, perms

    def test_energy_matches_schedule_audit(self, case):
        instance, power, perms = case
        batch = flowshop_energy_population(instance, perms, power)
        scalar = np.array([
            energy_consumption(flowshop_schedule(instance, perm), power)
            for perm in perms])
        assert np.array_equal(batch, scalar)

    def test_peak_matches_schedule_audit(self, case):
        instance, power, perms = case
        batch = flowshop_peak_power_population(instance, perms, power)
        scalar = np.array([
            peak_power(flowshop_schedule(instance, perm), power)
            for perm in perms])
        assert np.array_equal(batch, scalar)

    @given(st.integers(2, 9), st.integers(1, 4), st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_energy_and_peak_non_negative(self, n, m, seed):
        instance = flow_shop(n, m, seed=seed % 1000 + 1)
        power = PowerModel.uniform(m, processing=7.0, idle=2.0)
        rng = np.random.default_rng(seed)
        perms = np.vstack([rng.permutation(n) for _ in range(4)])
        assert (flowshop_energy_population(instance, perms, power)
                >= 0.0).all()
        assert (flowshop_peak_power_population(instance, perms, power)
                >= 0.0).all()

    def test_objective_batch_evaluator_matches_scalar(self, case):
        instance, _, perms = case
        for objective in (EnergyAwareObjective(peak_cap=30.0, penalty=5.0),
                          EnergyMakespanVector(weights=(0.4, 0.6))):
            problem = Problem(FlowShopPermutationEncoding(instance),
                              objective)
            evaluator = problem.batch_evaluator()
            assert evaluator is not None
            batch = evaluator(perms)
            scalar = np.array([problem.evaluate(perm) for perm in perms])
            assert np.array_equal(batch, scalar)

    def test_exact_peak_catches_narrow_overlap(self):
        # a 0.05-wide overlap between the two machines at t=100.5: the
        # exact breakpoint evaluation must see both busy at once, while
        # the 512-point plotting grid (step ~0.196) steps over it
        ops = [Operation(job=0, stage=0, machine=0, start=0.0, end=100.55),
               Operation(job=1, stage=1, machine=1, start=100.5,
                         end=100.55)]
        sched = Schedule(ops, n_jobs=2, n_machines=2)
        power = PowerModel.uniform(2, processing=10.0, idle=0.0)
        assert peak_power(sched, power) == 20.0
        _, profile = power_profile(sched, power)
        assert profile.max() < 20.0


class TestDynamicInvariants:
    def _spy_scheduler(self, instance, **kwargs):
        scheduler = PredictiveReactiveScheduler(instance, **kwargs)
        calls = []
        original = scheduler._optimise

        def spy(inst, prefix):
            sequence, cmax = original(inst, prefix)
            calls.append((np.asarray(prefix), sequence))
            return sequence, cmax

        scheduler._optimise = spy
        return scheduler, calls

    def test_frozen_prefix_preserved_in_every_resolve(self):
        instance = flow_shop(10, 4, seed=23)
        scheduler, calls = self._spy_scheduler(
            instance, config=GAConfig(population_size=16), generations=5,
            seed=3)
        scheduler.run(demo_event_stream(instance, n_events=3, seed=3))
        assert len(calls) == 4
        for prefix, sequence in calls:
            assert np.array_equal(sequence[:len(prefix)], prefix)
            assert sorted(sequence.tolist()) == list(range(len(sequence)))

    def test_breakdown_only_bumps_affected_unfrozen_jobs(self):
        instance = flow_shop(6, 3, seed=29)
        instance.processing[4, 1] = 0.0  # job 4 never touches machine 1
        scheduler = PredictiveReactiveScheduler(
            instance, config=GAConfig(population_size=16), generations=5,
            seed=5)
        event = MachineBreakdown(time=10.0, machine=1, duration=50.0)
        frozen = np.array([2], dtype=np.int64)
        updated = scheduler._apply_event(instance, event, frozen)
        assert updated.release[4] == instance.release[4]  # zero processing
        assert updated.release[2] == instance.release[2]  # frozen
        for job in range(6):
            if job in (2, 4):
                continue
            assert updated.release[job] == max(instance.release[job], 60.0)

    def test_frozen_counts_recorded(self):
        instance = flow_shop(8, 3, seed=31)
        scheduler = PredictiveReactiveScheduler(
            instance, config=GAConfig(population_size=16), generations=5,
            seed=7)
        scheduler.run(demo_event_stream(instance, n_events=2, seed=7))
        assert all(0 <= r.frozen <= r.jobs_remaining
                   for r in scheduler.reschedules)

    def test_all_jobs_frozen_skips_ga(self):
        instance = flow_shop(5, 3, seed=37)
        scheduler = PredictiveReactiveScheduler(
            instance, config=GAConfig(population_size=16), generations=5,
            seed=9)
        # event far past the machine-0 busy span: everything has started
        late = float(instance.processing[:, 0].sum()) + 100.0
        seq, cmax = scheduler.run(EventStream([
            MachineBreakdown(time=late, machine=1, duration=10.0)]))
        assert len(seq) == 5
        assert scheduler.reschedules[0].frozen == 5
        assert cmax > 0

    def test_warm_start_beats_cold_on_mean_realised_makespan(self):
        instance = flow_shop(15, 5, seed=7)
        seeds = (0, 2, 4, 5, 7)
        warm_cmax, cold_cmax = [], []
        for seed in seeds:
            for warm, sink in ((True, warm_cmax), (False, cold_cmax)):
                scheduler = PredictiveReactiveScheduler(
                    instance, config=GAConfig(population_size=30),
                    generations=8, seed=seed, warm_start=warm)
                _, cmax = scheduler.run(
                    demo_event_stream(instance, n_events=4, seed=seed))
                sink.append(cmax)
        assert np.mean(warm_cmax) < np.mean(cold_cmax)

    def test_array_substrate_resolves_identically_shaped(self):
        instance = flow_shop(9, 4, seed=41)
        scheduler = PredictiveReactiveScheduler(
            instance, config=GAConfig(population_size=16,
                                      substrate="array"),
            generations=5, seed=11)
        seq, cmax = scheduler.run(EventStream([
            JobArrival(time=15.0, processing=(3.0, 4.0, 5.0, 6.0))]))
        assert len(seq) == 10
        assert sorted(seq.tolist()) == list(range(10))
        assert cmax > 0
