"""Tests for repro.core.rng: deterministic stream management."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import (RngStream, derive_rng, make_rng,
                            random_permutation, spawn_rngs, spawn_seeds)


class TestMakeRng:
    def test_int_seed_reproducible(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawning:
    def test_spawn_count(self):
        assert len(spawn_rngs(3, 5)) == 5
        assert len(spawn_seeds(3, 4)) == 4

    def test_children_reproducible(self):
        a = [g.random(3) for g in spawn_rngs(42, 3)]
        b = [g.random(3) for g in spawn_rngs(42, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_children_independent(self):
        children = spawn_rngs(42, 3)
        draws = [g.random(16) for g in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_derive_rng_changes_parent_state(self):
        parent = make_rng(5)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent)
        after = parent.bit_generator.state["state"]["state"]
        assert before != after

    def test_derive_rng_deterministic(self):
        a = derive_rng(make_rng(5)).random(4)
        b = derive_rng(make_rng(5)).random(4)
        assert np.array_equal(a, b)


class TestRngStream:
    def test_stream_reproducible(self):
        s1 = RngStream(9)
        s2 = RngStream(9)
        assert np.array_equal(s1.take().random(4), s2.take().random(4))

    def test_stream_distinct_members(self):
        s = RngStream(9)
        a, b = s.take(), s.take()
        assert not np.array_equal(a.random(16), b.random(16))

    def test_take_many(self):
        s = RngStream(1)
        gens = s.take_many(4)
        assert len(gens) == 4
        draws = [g.random(8).tolist() for g in gens]
        assert len({tuple(d) for d in draws}) == 4

    def test_iteration_protocol(self):
        s = RngStream(2)
        first = next(iter(s))
        assert isinstance(first, np.random.Generator)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_random_permutation_is_permutation(n):
    perm = random_permutation(np.random.default_rng(0), n)
    assert np.array_equal(np.sort(perm), np.arange(n))
    assert perm.dtype == np.int64
