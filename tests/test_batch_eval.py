"""Batch-evaluation engine: vectorised decoders vs the scalar references.

The batch decoders in ``repro.scheduling.batch`` promise *bit-identical*
objectives to the scalar decoders -- these tests enforce that promise on
randomised instances and chromosomes, plus the wiring: ``Problem``
discovery, ``SimpleGA`` batch preference, executor matrix shipping, and
the array-in/array-out fitness path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.core.fitness import (RankFitness, ReciprocalFitness,
                                apply_fitness, apply_fitness_array)
from repro.core.individual import Individual
from repro.core.rng import make_rng, spawn_rngs
from repro.encodings import (FlowShopPermutationEncoding,
                             OperationBasedEncoding,
                             RandomKeysFlowShopEncoding, stack_genomes)
from repro.instances import flow_shop, job_shop
from repro.parallel.executors import (ChunkedEvaluator, ProcessPoolEvaluator,
                                      SerialEvaluator)
from repro.scheduling import (batch_makespan_operation_sequence,
                              batch_makespan_permutation, flowshop_makespan,
                              operation_sequence_makespan, operation_stages)


def random_op_sequences(instance, pop, rng):
    base = np.repeat(np.arange(instance.n_jobs, dtype=np.int64),
                     instance.n_stages)
    return np.stack([rng.permutation(base) for _ in range(pop)])


# ---------------------------------------------------------------------------
# decoder equivalence (property-style over random instances + chromosomes)
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_jobshop_batch_matches_scalar_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(2, 9))
    m = int(inst_rng.integers(2, 7))
    instance = job_shop(n, m, seed=int(inst_rng.integers(1, 10**6)))
    seqs = random_op_sequences(instance, pop=int(chrom_rng.integers(1, 17)),
                               rng=chrom_rng)
    batch = batch_makespan_operation_sequence(instance, seqs, validate=True)
    scalar = np.array([operation_sequence_makespan(instance, s)
                       for s in seqs])
    assert np.array_equal(batch, scalar)  # bit-identical, not just close


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_flowshop_batch_matches_scalar_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(2, 13))
    m = int(inst_rng.integers(2, 9))
    instance = flow_shop(n, m, seed=int(inst_rng.integers(1, 10**6)))
    perms = np.stack([chrom_rng.permutation(n)
                      for _ in range(int(chrom_rng.integers(1, 17)))])
    batch = batch_makespan_permutation(instance, perms)
    scalar = np.array([flowshop_makespan(instance, p) for p in perms])
    assert np.array_equal(batch, scalar)


def test_jobshop_batch_with_release_times():
    rng = make_rng(5)
    instance = job_shop(6, 4, seed=9)
    instance.release = rng.integers(0, 50, size=6).astype(float)
    seqs = random_op_sequences(instance, 8, rng)
    batch = batch_makespan_operation_sequence(instance, seqs)
    scalar = np.array([operation_sequence_makespan(instance, s)
                       for s in seqs])
    assert np.array_equal(batch, scalar)


def test_operation_stages_counts_occurrences():
    instance = job_shop(3, 2, seed=1)
    seqs = np.array([[0, 1, 0, 2, 1, 2],
                     [2, 2, 1, 1, 0, 0]])
    stages = operation_stages(instance, seqs)
    assert stages.tolist() == [[0, 0, 1, 0, 1, 1],
                               [0, 1, 0, 1, 0, 1]]


def test_batch_jobshop_single_row_and_empty():
    instance = job_shop(4, 3, seed=2)
    rng = make_rng(0)
    seqs = random_op_sequences(instance, 1, rng)
    out = batch_makespan_operation_sequence(instance, seqs[0])  # 1-D input
    assert out.shape == (1,)
    assert out[0] == operation_sequence_makespan(instance, seqs[0])
    empty = batch_makespan_operation_sequence(
        instance, np.empty((0, 12), dtype=np.int64))
    assert empty.shape == (0,)


def test_batch_jobshop_validate_rejects_bad_multiset():
    instance = job_shop(3, 2, seed=3)
    bad = np.array([[0, 0, 0, 0, 1, 2],      # job 0 four times
                    [0, 0, 1, 1, 2, 2]])     # valid row
    with pytest.raises(ValueError, match="rows \\[0\\]"):
        batch_makespan_operation_sequence(instance, bad, validate=True)
    with pytest.raises(ValueError, match="columns"):
        batch_makespan_operation_sequence(instance, bad[:, :4])


def test_random_keys_batch_matches_scalar():
    instance = flow_shop(10, 4, seed=4)
    enc = RandomKeysFlowShopEncoding(instance)
    rng = make_rng(7)
    keys = np.stack([enc.random_genome(rng) for _ in range(12)])
    batch = enc.batch_makespan(keys)
    scalar = np.array([enc.fast_makespan(k) for k in keys])
    assert np.array_equal(batch, scalar)


# ---------------------------------------------------------------------------
# Problem discovery + genome stacking
# ---------------------------------------------------------------------------

def test_problem_batch_evaluator_discovery():
    js = job_shop(5, 3, seed=1)
    fs = flow_shop(5, 3, seed=1)
    assert Problem(OperationBasedEncoding(js)).batch_evaluator() is not None
    assert Problem(FlowShopPermutationEncoding(fs)).batch_evaluator() is not None
    # non-vectorisable decoding modes keep the scalar decoders authoritative
    assert Problem(
        OperationBasedEncoding(js, mode="active")).batch_evaluator() is None
    # artificial eval cost must run per genome (it models slow fitness)
    assert Problem(
        OperationBasedEncoding(js), eval_cost=1e-9).batch_evaluator() is None


def test_problem_evaluate_batch_matches_evaluate():
    instance = job_shop(6, 4, seed=11)
    problem = Problem(OperationBasedEncoding(instance))
    rng = make_rng(3)
    seqs = random_op_sequences(instance, 10, rng)
    batch = problem.evaluate_batch(seqs)
    scalar = np.array([problem.evaluate(s) for s in seqs])
    assert np.array_equal(batch, scalar)
    assert np.array_equal(problem.evaluate_many(list(seqs)), scalar)


def test_stack_genomes_shapes():
    a, b = np.arange(4), np.arange(4) + 1
    assert stack_genomes([a, b]).shape == (2, 4)
    matrix = np.zeros((3, 5))
    assert stack_genomes(matrix) is matrix
    assert stack_genomes([]) is None
    assert stack_genomes([a, np.arange(5)]) is None          # ragged
    assert stack_genomes([(a, b), (a, b)]) is None           # composite
    assert stack_genomes(np.zeros(4)) is None                # not a matrix


# ---------------------------------------------------------------------------
# executor equivalence
# ---------------------------------------------------------------------------

def test_serial_evaluator_matches_batch_path():
    instance = job_shop(6, 4, seed=21)
    problem = Problem(OperationBasedEncoding(instance))
    rng = make_rng(1)
    seqs = random_op_sequences(instance, 16, rng)
    ev = SerialEvaluator(problem)
    via_list = ev(list(seqs))
    via_matrix = ev.evaluate_batch(seqs)
    scalar = np.array([problem.evaluate(s) for s in seqs])
    assert np.array_equal(via_list, scalar)
    assert np.array_equal(via_matrix, scalar)
    assert ev.stats.batch_calls == 1 and ev.stats.calls == 2


def test_chunked_evaluator_batch_path():
    instance = flow_shop(8, 3, seed=2)
    problem = Problem(FlowShopPermutationEncoding(instance))
    rng = make_rng(2)
    perms = np.stack([rng.permutation(8) for _ in range(11)])
    ev = ChunkedEvaluator(SerialEvaluator(problem), batch_size=4)
    out = ev.evaluate_batch(perms)
    scalar = np.array([problem.evaluate(p) for p in perms])
    assert np.array_equal(out, scalar)


def test_process_pool_ships_matrices():
    instance = job_shop(5, 3, seed=31)
    problem = Problem(OperationBasedEncoding(instance))
    rng = make_rng(4)
    seqs = random_op_sequences(instance, 12, rng)
    scalar = np.array([problem.evaluate(s) for s in seqs])
    with ProcessPoolEvaluator(problem, n_workers=2) as ev:
        out_list = ev(list(seqs))       # stacks internally -> matrix path
        out_matrix = ev.evaluate_batch(seqs)
    assert np.array_equal(out_list, scalar)
    assert np.array_equal(out_matrix, scalar)
    assert ev.stats.batch_calls == 2
    assert ev.stats.bytes_shipped >= seqs.nbytes


# ---------------------------------------------------------------------------
# engine wiring: batch path on by default, bit-identical to scalar
# ---------------------------------------------------------------------------

def test_simple_ga_batch_path_bit_identical():
    instance = job_shop(6, 4, seed=41)
    problem = Problem(OperationBasedEncoding(instance))
    cfg = GAConfig(population_size=20)
    batch_ga = SimpleGA(problem, cfg, MaxGenerations(6), seed=99)
    assert batch_ga.uses_batch_path
    scalar_ga = SimpleGA(
        problem, cfg, MaxGenerations(6), seed=99,
        evaluator=lambda genomes: np.array(
            [problem.evaluate(g) for g in genomes]))
    assert not scalar_ga.uses_batch_path
    rb, rs = batch_ga.run(), scalar_ga.run()
    assert rb.best_objective == rs.best_objective
    assert rb.evaluations == rs.evaluations
    assert [r.best for r in rb.history.records] == \
        [r.best for r in rs.history.records]


# ---------------------------------------------------------------------------
# fitness: array path + vectorised rank ties
# ---------------------------------------------------------------------------

def test_apply_fitness_array_matches_boxed_path():
    obj = np.array([30.0, 10.0, 20.0, 10.0])
    pop = [Individual(np.arange(3), objective=v) for v in obj]
    apply_fitness(pop, ReciprocalFitness())
    arr = apply_fitness_array(obj, ReciprocalFitness())
    assert np.array_equal(arr, [ind.fitness for ind in pop])


def test_apply_fitness_array_rejects_bad_shapes():
    with pytest.raises(ValueError, match="1-D"):
        apply_fitness_array(np.zeros((2, 2)), ReciprocalFitness())
    with pytest.raises(ValueError, match="shape"):
        apply_fitness_array(np.arange(3.0), lambda o: o[:2])


def _rank_fitness_reference(obj):
    """The original O(n*u) per-unique-value loop, kept as the oracle."""
    obj = np.asarray(obj, dtype=float)
    n = obj.size
    order = np.argsort(obj, kind="stable")
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.arange(n, dtype=float)
    fitness = n - ranks
    for val in np.unique(obj):
        mask = obj == val
        if mask.sum() > 1:
            fitness[mask] = fitness[mask].mean()
    return fitness


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                max_size=40))
def test_rank_fitness_tie_averaging_identical(values):
    obj = np.asarray(values, dtype=float)
    assert np.array_equal(RankFitness()(obj), _rank_fitness_reference(obj))


def test_rank_fitness_nan_objectives_keep_own_rank():
    # NaN never compares equal, so NaNs are not a tie group: each keeps
    # the fitness of its own rank slot (the pre-vectorisation behaviour)
    obj = np.array([3.0, np.nan, 1.0, np.nan])
    assert np.array_equal(RankFitness()(obj), _rank_fitness_reference(obj))
    assert np.array_equal(RankFitness()(obj), np.array([3.0, 2.0, 4.0, 1.0]))


def test_rank_fitness_all_distinct_and_all_tied():
    assert np.array_equal(RankFitness()(np.array([3.0, 1.0, 2.0])),
                          np.array([1.0, 3.0, 2.0]))
    tied = RankFitness()(np.full(5, 7.0))
    assert np.array_equal(tied, np.full(5, 3.0))  # mean of 1..5
