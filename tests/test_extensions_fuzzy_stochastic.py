"""Tests for the fuzzy and stochastic scheduling extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions import (TFN, FuzzyFlowShopEncoding,
                              FuzzyFlowShopInstance,
                              StochasticJobShopEncoding,
                              StochasticJobShopInstance, agreement_index,
                              fuzzy_flowshop_makespan)
from repro.instances import flow_shop, job_shop

tfn_values = st.tuples(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
).map(lambda t: TFN(*sorted(t)))


class TestTFN:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            TFN(3.0, 2.0, 4.0)

    def test_addition_componentwise(self):
        s = TFN(1, 2, 3) + TFN(4, 5, 6)
        assert (s.a, s.b, s.c) == (5, 7, 9)

    def test_maximum_componentwise(self):
        m = TFN(1, 5, 6).maximum(TFN(2, 3, 9))
        assert (m.a, m.b, m.c) == (2, 5, 9)

    def test_defuzzify_centroid(self):
        assert TFN(0, 1, 2).defuzzify() == 1.0
        assert TFN(0, 0, 4).defuzzify() == 1.0

    @given(tfn_values, tfn_values)
    @settings(max_examples=40, deadline=None)
    def test_addition_valid_tfn(self, x, y):
        s = x + y
        assert s.a <= s.b <= s.c

    @given(tfn_values, tfn_values)
    @settings(max_examples=40, deadline=None)
    def test_possibility_necessity_bounds(self, c, d):
        pos = c.possibility_leq(d)
        nec = c.necessity_leq(d)
        assert 0.0 <= pos <= 1.0
        assert 0.0 <= nec <= 1.0
        # necessity is the pessimistic measure: never above possibility
        assert nec <= pos + 1e-9

    def test_possibility_clear_cases(self):
        early = TFN(1, 2, 3)
        late_due = TFN(10, 11, 12)
        assert early.possibility_leq(late_due) == 1.0
        assert late_due.possibility_leq(early) == 0.0

    def test_agreement_index_bounds_and_extremes(self):
        inside = TFN(4, 5, 6)
        window = TFN(0, 5, 10)
        assert agreement_index(inside, window) > 0.9
        assert agreement_index(TFN(100, 101, 102), window) == 0.0

    @given(tfn_values, tfn_values)
    @settings(max_examples=30, deadline=None)
    def test_agreement_index_in_unit_interval(self, c, d):
        ai = agreement_index(c, d)
        assert -1e-9 <= ai <= 1.0 + 1e-9


class TestFuzzyFlowShop:
    def _instance(self):
        return FuzzyFlowShopInstance.from_crisp(flow_shop(4, 3, seed=14))

    def test_from_crisp_preserves_modes(self):
        crisp = flow_shop(4, 3, seed=14)
        fuzzy = FuzzyFlowShopInstance.from_crisp(crisp)
        for j in range(4):
            for k in range(3):
                assert fuzzy.processing[j][k].b == crisp.processing[j, k]

    def test_fuzzy_makespan_brackets_crisp(self):
        """The crisp makespan lies inside the fuzzy makespan's support."""
        crisp = flow_shop(4, 3, seed=14)
        fuzzy = FuzzyFlowShopInstance.from_crisp(crisp)
        from repro.scheduling import flowshop_makespan
        perm = np.arange(4)
        fz = fuzzy_flowshop_makespan(fuzzy, perm)
        cr = flowshop_makespan(crisp, perm)
        assert fz.a <= cr <= fz.c
        assert fz.b == pytest.approx(cr)

    def test_completion_times_one_per_job(self):
        inst = self._instance()
        comp = inst.completion_times(np.arange(4))
        assert len(comp) == 4
        assert all(isinstance(t, TFN) for t in comp)

    def test_encoding_objective_in_unit_interval(self, rng):
        enc = FuzzyFlowShopEncoding(self._instance())
        for _ in range(5):
            obj = enc.fast_makespan(enc.random_genome(rng))
            assert 0.0 <= obj <= 1.0

    def test_encoding_decode_gives_schedule(self, rng):
        enc = FuzzyFlowShopEncoding(self._instance())
        sched = enc.decode(enc.random_genome(rng))
        assert sched.makespan > 0

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            FuzzyFlowShopInstance([[TFN(1, 1, 1)], []], [TFN(0, 1, 2)] * 2)


class TestStochasticJobShop:
    def _instance(self, **kw):
        return StochasticJobShopInstance(job_shop(4, 3, seed=15),
                                         n_scenarios=6, seed=3, **kw)

    def test_scenarios_deterministic(self):
        a = self._instance()
        b = self._instance()
        for sa, sb in zip(a.scenarios, b.scenarios):
            assert np.array_equal(sa, sb)

    def test_scenarios_differ_from_each_other(self):
        inst = self._instance()
        assert not np.array_equal(inst.scenarios[0], inst.scenarios[1])

    def test_uniform_spread_bounds(self):
        inst = self._instance(spread=0.2)
        for sc in inst.scenarios:
            ratio = sc / inst.base.processing
            assert np.all(ratio >= 0.8 - 1e-9)
            assert np.all(ratio <= 1.2 + 1e-9)

    def test_normal_distribution_positive(self):
        inst = StochasticJobShopInstance(job_shop(4, 3, seed=15),
                                         distribution="normal",
                                         n_scenarios=6, seed=3)
        for sc in inst.scenarios:
            assert np.all(sc > 0)

    def test_validation(self):
        base = job_shop(3, 2, seed=1)
        with pytest.raises(ValueError):
            StochasticJobShopInstance(base, distribution="cauchy")
        with pytest.raises(ValueError):
            StochasticJobShopInstance(base, spread=1.5)
        with pytest.raises(ValueError):
            StochasticJobShopInstance(base, n_scenarios=0)

    def test_expected_makespan_is_mean(self, rng):
        inst = self._instance()
        enc = StochasticJobShopEncoding(inst)
        g = enc.random_genome(rng)
        from repro.scheduling import operation_sequence_makespan
        manual = np.mean([
            operation_sequence_makespan(inst.scenario_instance(k), g)
            for k in range(inst.n_scenarios)])
        assert enc.fast_makespan(g) == pytest.approx(manual)
        assert inst.expected_makespan(g) == pytest.approx(manual)

    def test_crn_property(self, rng):
        """Common random numbers: comparing two sequences is noise-free --
        the scenario set is identical for both."""
        inst = self._instance()
        enc = StochasticJobShopEncoding(inst)
        g1, g2 = enc.random_genome(rng), enc.random_genome(rng)
        d1 = enc.fast_makespan(g1) - enc.fast_makespan(g2)
        d2 = enc.fast_makespan(g1) - enc.fast_makespan(g2)
        assert d1 == d2

    def test_decode_uses_mean_scenario(self, rng):
        inst = self._instance()
        enc = StochasticJobShopEncoding(inst)
        sched = enc.decode(enc.random_genome(rng))
        sched.audit(inst.base)
