"""Tests for the SimpleGA engine (Table II)."""

import numpy as np
import pytest

from repro.core import (GAConfig, HistoryRecorder, MaxEvaluations,
                        MaxGenerations, SimpleGA, Stagnation, TargetObjective)
from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import FT06_OPTIMUM, get_instance


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(n_elites=100, population_size=10)

    def test_resolved_fills_defaults(self, ft06_problem):
        cfg = GAConfig().resolved(ft06_problem)
        assert cfg.selection is not None
        assert cfg.crossover is not None
        assert cfg.mutation is not None
        assert cfg.fitness_transform is not None


class TestSimpleGARun:
    def test_deterministic_given_seed(self, ft06_problem):
        r1 = SimpleGA(ft06_problem, GAConfig(population_size=20),
                      MaxGenerations(8), seed=5).run()
        r2 = SimpleGA(ft06_problem, GAConfig(population_size=20),
                      MaxGenerations(8), seed=5).run()
        assert r1.best_objective == r2.best_objective
        assert np.array_equal(r1.best.genome, r2.best.genome)

    def test_different_seeds_explore_differently(self, ft06_problem):
        runs = {SimpleGA(ft06_problem, GAConfig(population_size=20),
                         MaxGenerations(5), seed=s).run().best_objective
                for s in range(5)}
        assert len(runs) > 1

    def test_improves_over_random(self, ft06_problem):
        ga = SimpleGA(ft06_problem, GAConfig(population_size=30),
                      MaxGenerations(30), seed=1)
        initial = ga.initialize().best().objective
        result = ga.run()
        assert result.best_objective <= initial

    def test_finds_ft06_optimum_eventually(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=60),
                          MaxGenerations(60), seed=42).run()
        assert result.best_objective <= FT06_OPTIMUM + 3

    def test_history_recorded_every_generation(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(7), seed=0).run()
        # one record for initialisation + one per generation
        assert len(result.history.records) == 8
        assert result.generations == 7

    def test_monotone_best_with_elitism(self, ft06_problem):
        result = SimpleGA(ft06_problem,
                          GAConfig(population_size=20, n_elites=2),
                          MaxGenerations(15), seed=3).run()
        curve = result.history.best_curve()
        assert np.all(np.diff(curve) <= 0)
        # raw per-generation best never worse than the elite carried over
        raw = np.array([r.best for r in result.history.records])
        assert np.all(np.diff(np.minimum.accumulate(raw)) <= 0)

    def test_evaluation_budget_respected(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxEvaluations(55), seed=0).run()
        # stops at the first generation boundary past the budget
        assert result.evaluations >= 55
        assert result.evaluations <= 55 + 10

    def test_target_objective_stops_early(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=40),
                          TargetObjective(80) | MaxGenerations(100),
                          seed=42).run()
        assert (result.best_objective <= 80
                or result.generations == 100)

    def test_stagnation_terminates(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          Stagnation(5) | MaxGenerations(500), seed=0).run()
        assert result.generations < 500

    def test_immigration_rate_adds_randoms(self, ft06_problem):
        cfg = GAConfig(population_size=20, immigration_rate=0.3)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(3), seed=2)
        ga.initialize()
        offspring = ga.make_offspring(ga.population, 20)
        assert len(offspring) == 20

    def test_custom_evaluator_seam(self, ft06_problem):
        calls = []

        def evaluator(genomes):
            calls.append(len(genomes))
            return ft06_problem.evaluate_many(genomes)

        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(2), seed=0,
                          evaluator=evaluator).run()
        assert sum(calls) == result.evaluations

    def test_result_fields(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(2), seed=0).run()
        assert result.termination_reason.startswith("max generations")
        assert result.elapsed >= 0
        assert len(result.population) == 10


class TestHistoryRecorder:
    def test_generations_to_reach(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=30),
                          MaxGenerations(20), seed=42).run()
        hist = result.history
        gen = hist.generations_to_reach(hist.final_best())
        assert gen is not None
        assert hist.generations_to_reach(0.0) is None

    def test_convergence_auc_decreases_with_progress(self, ft06_problem):
        long = SimpleGA(ft06_problem, GAConfig(population_size=30),
                        MaxGenerations(25), seed=42).run()
        auc = long.history.convergence_auc()
        assert 0 < auc <= 1.0

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            HistoryRecorder().final_best()
