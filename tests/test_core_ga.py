"""Tests for the SimpleGA engine (Table II)."""

import numpy as np
import pytest

from repro.core import (GAConfig, HistoryRecorder, MaxEvaluations,
                        MaxGenerations, SimpleGA, Stagnation, TargetObjective)
from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import FT06_OPTIMUM, get_instance


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(n_elites=100, population_size=10)

    def test_resolved_fills_defaults(self, ft06_problem):
        cfg = GAConfig().resolved(ft06_problem)
        assert cfg.selection is not None
        assert cfg.crossover is not None
        assert cfg.mutation is not None
        assert cfg.fitness_transform is not None


class TestSimpleGARun:
    def test_deterministic_given_seed(self, ft06_problem):
        r1 = SimpleGA(ft06_problem, GAConfig(population_size=20),
                      MaxGenerations(8), seed=5).run()
        r2 = SimpleGA(ft06_problem, GAConfig(population_size=20),
                      MaxGenerations(8), seed=5).run()
        assert r1.best_objective == r2.best_objective
        assert np.array_equal(r1.best.genome, r2.best.genome)

    def test_different_seeds_explore_differently(self, ft06_problem):
        runs = {SimpleGA(ft06_problem, GAConfig(population_size=20),
                         MaxGenerations(5), seed=s).run().best_objective
                for s in range(5)}
        assert len(runs) > 1

    def test_improves_over_random(self, ft06_problem):
        ga = SimpleGA(ft06_problem, GAConfig(population_size=30),
                      MaxGenerations(30), seed=1)
        initial = ga.initialize().best().objective
        result = ga.run()
        assert result.best_objective <= initial

    def test_finds_ft06_optimum_eventually(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=60),
                          MaxGenerations(60), seed=42).run()
        assert result.best_objective <= FT06_OPTIMUM + 3

    def test_history_recorded_every_generation(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(7), seed=0).run()
        # one record for initialisation + one per generation
        assert len(result.history.records) == 8
        assert result.generations == 7

    def test_monotone_best_with_elitism(self, ft06_problem):
        result = SimpleGA(ft06_problem,
                          GAConfig(population_size=20, n_elites=2),
                          MaxGenerations(15), seed=3).run()
        curve = result.history.best_curve()
        assert np.all(np.diff(curve) <= 0)
        # raw per-generation best never worse than the elite carried over
        raw = np.array([r.best for r in result.history.records])
        assert np.all(np.diff(np.minimum.accumulate(raw)) <= 0)

    def test_evaluation_budget_respected(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxEvaluations(55), seed=0).run()
        # stops at the first generation boundary past the budget
        assert result.evaluations >= 55
        assert result.evaluations <= 55 + 10

    def test_target_objective_stops_early(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=40),
                          TargetObjective(80) | MaxGenerations(100),
                          seed=42).run()
        assert (result.best_objective <= 80
                or result.generations == 100)

    def test_stagnation_terminates(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          Stagnation(5) | MaxGenerations(500), seed=0).run()
        assert result.generations < 500

    def test_immigration_rate_adds_randoms(self, ft06_problem):
        cfg = GAConfig(population_size=20, immigration_rate=0.3)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(3), seed=2)
        ga.initialize()
        offspring = ga.make_offspring(ga.population, 20)
        assert len(offspring) == 20


class TestPartialReplacementEdges:
    """generation_gap / immigration_rate / n_elites corner cases."""

    def test_odd_n_bred_truncates_last_pair_child(self, ft06_problem):
        # gap 0.5 of 10 breeds 5: three pairs produce 6 children, the
        # surplus sixth is truncated
        cfg = GAConfig(population_size=10, generation_gap=0.5)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(2), seed=1)
        ga.initialize()
        offspring = ga.make_offspring(ga.population, 5)
        assert len(offspring) == 5
        pop = ga.step()
        assert len(pop) == 10

    def test_immigration_rounds_down_to_zero(self, ft06_problem):
        # round(0.04 * 10) == 0: every offspring is bred, none random
        cfg = GAConfig(population_size=10, immigration_rate=0.04,
                       crossover_rate=0.0, mutation_rate=0.0)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(1), seed=3)
        ga.initialize()
        parent_keys = {ind.genome_key() for ind in ga.population}
        offspring = ga.make_offspring(ga.population, 10)
        assert len(offspring) == 10
        # with crossover/mutation off, every child clones a parent
        assert all(ind.genome_key() in parent_keys for ind in offspring)

    def test_immigration_one_replaces_all_offspring(self, ft06_problem):
        # rate 1.0 breeds nobody: the whole offspring set is immigrants
        cfg = GAConfig(population_size=10, immigration_rate=1.0)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(2), seed=4)
        ga.initialize()
        offspring = ga.make_offspring(ga.population, 10)
        assert len(offspring) == 10
        assert all(not ind.evaluated for ind in offspring)
        assert len(ga.step()) == 10  # engine runs to a full generation

    def test_partial_replacement_keeps_unbred_majority(self, ft06_problem):
        # gap 1/3 of 12 breeds 4; n_keep = max(n_elites, 12 - 4) = 8, so
        # at least 8 parents survive each generation regardless of elites
        cfg = GAConfig(population_size=12, generation_gap=1 / 3, n_elites=2)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(1), seed=5)
        ga.initialize()
        parent_keys = {ind.genome_key() for ind in ga.population}
        survivors = sum(ind.genome_key() in parent_keys for ind in ga.step())
        assert survivors >= 8

    def test_n_elites_dominates_small_keep(self, ft06_problem):
        # full generational gap: n_keep = max(5, 0) = 5 elites survive
        cfg = GAConfig(population_size=10, generation_gap=1.0, n_elites=5)
        ga = SimpleGA(ft06_problem, cfg, MaxGenerations(1), seed=6)
        ga.initialize()
        elite_keys = {ind.genome_key() for ind in ga.population.top(5)}
        next_keys = {ind.genome_key() for ind in ga.step()}
        assert elite_keys <= next_keys

    @pytest.mark.parametrize("substrate", ["object", "array"])
    def test_edge_configs_run_on_both_substrates(self, ft06_problem,
                                                 substrate):
        for cfg in (GAConfig(population_size=9, generation_gap=0.55,
                             immigration_rate=0.3, n_elites=4,
                             substrate=substrate),
                    GAConfig(population_size=8, immigration_rate=1.0,
                             substrate=substrate)):
            result = SimpleGA(ft06_problem, cfg, MaxGenerations(3),
                              seed=7).run()
            assert len(result.population) == cfg.population_size
            assert result.generations == 3

    def test_custom_evaluator_seam(self, ft06_problem):
        calls = []

        def evaluator(genomes):
            calls.append(len(genomes))
            return ft06_problem.evaluate_many(genomes)

        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(2), seed=0,
                          evaluator=evaluator).run()
        assert sum(calls) == result.evaluations

    def test_result_fields(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=10),
                          MaxGenerations(2), seed=0).run()
        assert result.termination_reason.startswith("max generations")
        assert result.elapsed >= 0
        assert len(result.population) == 10


class TestHistoryRecorder:
    def test_generations_to_reach(self, ft06_problem):
        result = SimpleGA(ft06_problem, GAConfig(population_size=30),
                          MaxGenerations(20), seed=42).run()
        hist = result.history
        gen = hist.generations_to_reach(hist.final_best())
        assert gen is not None
        assert hist.generations_to_reach(0.0) is None

    def test_convergence_auc_decreases_with_progress(self, ft06_problem):
        long = SimpleGA(ft06_problem, GAConfig(population_size=30),
                        MaxGenerations(25), seed=42).run()
        auc = long.history.convergence_auc()
        assert 0 < auc <= 1.0

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            HistoryRecorder().final_best()
