"""Tests for Schedule auditing, Gantt rendering and the objective family."""

import numpy as np
import pytest

from repro.scheduling import (FeasibilityError, FlowShopInstance,
                              JobShopInstance, Makespan, MaximumTardiness,
                              Operation, Schedule, TotalFlowTime,
                              TotalWeightedCompletion, TotalWeightedTardiness,
                              TotalWeightedUnitPenalty, WeightedCombination)


def two_job_schedule():
    """Hand-built feasible schedule on 2 machines."""
    ops = [Operation(0, 0, 0, 0.0, 2.0), Operation(0, 1, 1, 2.0, 5.0),
           Operation(1, 0, 0, 2.0, 6.0), Operation(1, 1, 1, 6.0, 7.0)]
    return Schedule(ops, n_jobs=2, n_machines=2)


def flow_instance(**kw):
    return FlowShopInstance(processing=np.array([[2.0, 3.0], [4.0, 1.0]]),
                            **kw)


class TestScheduleBasics:
    def test_makespan_and_completions(self):
        s = two_job_schedule()
        assert s.makespan == 7.0
        assert np.array_equal(s.completion_times, [5.0, 7.0])

    def test_empty_schedule(self):
        s = Schedule([], n_jobs=0, n_machines=2)
        assert s.makespan == 0.0
        assert s.gantt() == "(empty schedule)"

    def test_machine_sequences_sorted(self):
        s = two_job_schedule()
        seqs = s.machine_sequences()
        assert [op.job for op in seqs[0]] == [0, 1]

    def test_idle_time(self):
        # machine 1 idle from 5.0 to 6.0
        assert two_job_schedule().idle_time() == 1.0

    def test_gantt_contains_machine_rows(self):
        g = two_job_schedule().gantt()
        assert "M  0" in g and "M  1" in g and "Cmax" in g


class TestAudit:
    def test_accepts_valid(self):
        two_job_schedule().audit(flow_instance())

    def test_detects_machine_overlap(self):
        ops = [Operation(0, 0, 0, 0.0, 5.0), Operation(1, 0, 0, 3.0, 6.0)]
        s = Schedule(ops, 2, 1)
        with pytest.raises(FeasibilityError, match="overlap"):
            s.audit(FlowShopInstance(processing=np.array([[5.0], [3.0]])))

    def test_detects_job_overlap(self):
        ops = [Operation(0, 0, 0, 0.0, 5.0), Operation(0, 1, 1, 2.0, 4.0)]
        s = Schedule(ops, 1, 2)
        with pytest.raises(FeasibilityError):
            s.audit(FlowShopInstance(processing=np.array([[5.0, 2.0]])))

    def test_detects_release_violation(self):
        inst = flow_instance(release=np.array([1.0, 0.0]))
        with pytest.raises(FeasibilityError, match="release"):
            two_job_schedule().audit(inst)

    def test_detects_stage_disorder(self):
        ops = [Operation(0, 1, 0, 0.0, 1.0), Operation(0, 0, 1, 2.0, 3.0)]
        s = Schedule(ops, 1, 2)
        inst = FlowShopInstance(processing=np.array([[1.0, 1.0]]))
        with pytest.raises(FeasibilityError, match="out of order"):
            s.audit(inst)

    def test_jobshop_routing_checked(self):
        inst = JobShopInstance(routing=np.array([[1, 0]]),
                               processing=np.array([[2.0, 3.0]]))
        ops = [Operation(0, 0, 0, 0.0, 2.0),  # wrong machine (should be 1)
               Operation(0, 1, 1, 2.0, 5.0)]
        with pytest.raises(FeasibilityError, match="wrong machine"):
            Schedule(ops, 1, 2).audit(inst)

    def test_jobshop_duration_checked(self):
        inst = JobShopInstance(routing=np.array([[0, 1]]),
                               processing=np.array([[2.0, 3.0]]))
        ops = [Operation(0, 0, 0, 0.0, 9.0),  # wrong duration
               Operation(0, 1, 1, 9.0, 12.0)]
        with pytest.raises(FeasibilityError, match="duration"):
            Schedule(ops, 1, 2).audit(inst)

    def test_is_feasible_boolean(self):
        assert two_job_schedule().is_feasible(flow_instance())


class TestObjectives:
    def test_makespan(self):
        assert Makespan()(two_job_schedule(), flow_instance()) == 7.0

    def test_total_weighted_completion(self):
        inst = flow_instance(weights=np.array([2.0, 1.0]))
        # 2*5 + 1*7 = 17
        assert TotalWeightedCompletion()(two_job_schedule(), inst) == 17.0

    def test_weighted_tardiness(self):
        inst = flow_instance(due=np.array([4.0, 10.0]),
                             weights=np.array([3.0, 1.0]))
        # T = (1, 0) -> 3*1
        assert TotalWeightedTardiness()(two_job_schedule(), inst) == 3.0

    def test_unit_penalty(self):
        inst = flow_instance(due=np.array([4.0, 10.0]))
        assert TotalWeightedUnitPenalty()(two_job_schedule(), inst) == 1.0

    def test_max_tardiness(self):
        inst = flow_instance(due=np.array([1.0, 2.0]))
        assert MaximumTardiness()(two_job_schedule(), inst) == 5.0

    def test_max_tardiness_all_early_is_zero(self):
        inst = flow_instance(due=np.array([100.0, 100.0]))
        assert MaximumTardiness()(two_job_schedule(), inst) == 0.0

    def test_flow_time_subtracts_release(self):
        inst = flow_instance(release=np.array([0.0, 2.0]))
        sched = two_job_schedule()
        assert TotalFlowTime()(sched, inst) == (5.0 - 0.0) + (7.0 - 2.0)

    def test_weighted_combination_scalar_and_vector(self):
        inst = flow_instance(due=np.array([4.0, 10.0]))
        combo = WeightedCombination([(0.5, Makespan()),
                                     (0.5, TotalWeightedTardiness())])
        sched = two_job_schedule()
        assert combo(sched, inst) == pytest.approx(0.5 * 7.0 + 0.5 * 1.0)
        assert combo.vector(sched, inst) == (7.0, 1.0)

    def test_weighted_combination_requires_parts(self):
        with pytest.raises(ValueError):
            WeightedCombination([])
