"""Tests for the Eq. (1)/(2) fitness transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitness import (HeuristicOffsetFitness, NegationFitness,
                                RankFitness, ReciprocalFitness, apply_fitness)
from repro.core.individual import Individual

positive_objectives = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    min_size=2, max_size=30)


class TestHeuristicOffset:
    def test_equation_one_with_reference(self):
        fit = HeuristicOffsetFitness(reference=100.0)
        out = fit(np.array([40.0, 120.0]))
        assert out[0] == 60.0
        assert out[1] == 0.0  # clamped at zero per Eq. (1)

    def test_adaptive_reference_strictly_positive(self):
        fit = HeuristicOffsetFitness()
        out = fit(np.array([10.0, 20.0, 30.0]))
        assert (out > 0).all()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HeuristicOffsetFitness(reference=-1.0)
        with pytest.raises(ValueError):
            HeuristicOffsetFitness(margin=-0.1)

    @given(positive_objectives)
    @settings(max_examples=30, deadline=None)
    def test_order_reversal(self, objs):
        """Smaller objective (better) must map to larger-or-equal fitness.

        Tolerance covers the subtraction's floating-point cancellation on
        nearly identical objectives.
        """
        arr = np.asarray(objs)
        fit = HeuristicOffsetFitness()(arr)
        tol = 1e-9 * max(1.0, arr.max())
        for i in range(arr.size):
            for j in range(arr.size):
                if arr[i] < arr[j] - tol:
                    assert fit[i] >= fit[j] - tol


class TestReciprocal:
    def test_equation_two(self):
        out = ReciprocalFitness(epsilon=0.0)(np.array([2.0, 4.0]))
        assert np.allclose(out, [0.5, 0.25])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ReciprocalFitness()(np.array([-1.0]))

    @given(positive_objectives)
    @settings(max_examples=30, deadline=None)
    def test_strictly_decreasing(self, objs):
        arr = np.asarray(objs)
        fit = ReciprocalFitness()(arr)
        idx = np.argsort(arr)
        assert np.all(np.diff(fit[idx]) <= 1e-12)


class TestRank:
    def test_best_gets_n(self):
        out = RankFitness()(np.array([3.0, 1.0, 2.0]))
        assert out[1] == 3.0  # best
        assert out[0] == 1.0  # worst

    def test_ties_share_mean(self):
        out = RankFitness()(np.array([1.0, 1.0, 5.0]))
        assert out[0] == out[1]
        assert out[0] == pytest.approx(2.5)

    def test_scale_free(self):
        a = RankFitness()(np.array([1.0, 2.0, 3.0]))
        b = RankFitness()(np.array([10.0, 20.0, 30.0]))
        assert np.array_equal(a, b)


class TestNegation:
    def test_negates(self):
        out = NegationFitness()(np.array([2.0, -3.0]))
        assert np.array_equal(out, [-2.0, 3.0])


class TestApplyFitness:
    def test_fills_in_place(self):
        pop = [Individual(np.array([i]), objective=float(i + 1))
               for i in range(3)]
        apply_fitness(pop, ReciprocalFitness(epsilon=0.0))
        assert pop[0].fitness == pytest.approx(1.0)
        assert pop[2].fitness == pytest.approx(1 / 3)

    def test_raises_on_unevaluated(self):
        with pytest.raises(ValueError):
            apply_fitness([Individual(np.array([0]))], RankFitness())
