"""Tests for island topologies and migration policies."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.individual import Individual
from repro.core.population import Population
from repro.parallel import (BidirectionalRingTopology,
                            FullyConnectedTopology, HypercubeTopology,
                            MeshTopology, MigrationPolicy,
                            RandomEpochTopology, RingTopology, StarTopology,
                            TorusTopology, integrate_immigrants,
                            select_emigrants, topology_by_name)

ALL_NAMES = ["ring", "bidirectional_ring", "mesh", "torus", "full", "star",
             "random"]


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("n", [2, 4, 9])
def test_topology_valid_neighbors(name, n):
    topo = topology_by_name(name, n)
    for i in range(n):
        out = topo.neighbors_out(i, epoch=1)
        assert all(0 <= j < n for j in out)
        assert i not in out


@pytest.mark.parametrize("name", ALL_NAMES)
def test_topology_strongly_connected(name):
    """Every island's genes can eventually reach every other island."""
    topo = topology_by_name(name, 8)
    g = topo.graph(epoch=0)
    # random epoch topology re-rolls per epoch; union a few epochs
    if name == "random":
        for epoch in range(1, 6):
            g = nx.compose(g, topo.graph(epoch=epoch))
    assert nx.is_strongly_connected(g)


class TestSpecificTopologies:
    def test_ring_degree_one(self):
        topo = RingTopology(5)
        for i in range(5):
            assert topo.neighbors_out(i) == [(i + 1) % 5]

    def test_single_island_has_no_neighbors(self):
        for cls in (RingTopology, BidirectionalRingTopology,
                    FullyConnectedTopology, StarTopology, TorusTopology):
            assert cls(1).neighbors_out(0) == []

    def test_bidirectional_ring_degree_two(self):
        topo = BidirectionalRingTopology(6)
        assert sorted(topo.neighbors_out(0)) == [1, 5]

    def test_mesh_corner_degree(self):
        topo = MeshTopology(9, rows=3)
        assert len(topo.neighbors_out(0)) == 2   # corner
        assert len(topo.neighbors_out(4)) == 4   # centre

    def test_torus_wraps(self):
        topo = TorusTopology(9, rows=3)
        assert set(topo.neighbors_out(0)) == {1, 2, 3, 6}

    def test_hypercube_structure(self):
        topo = HypercubeTopology(8)
        for i in range(8):
            out = topo.neighbors_out(i)
            assert len(out) == 3  # "each of them had three neighbors" [27]
            for j in out:
                assert bin(i ^ j).count("1") == 1

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError):
            HypercubeTopology(6)

    def test_star_hub_and_spokes(self):
        topo = StarTopology(5)
        assert topo.neighbors_out(0) == [1, 2, 3, 4]
        assert topo.neighbors_out(3) == [0]

    def test_fully_connected(self):
        topo = FullyConnectedTopology(4)
        assert sorted(topo.neighbors_out(2)) == [0, 1, 3]

    def test_random_epoch_changes_and_is_deterministic(self):
        topo = RandomEpochTopology(6, out_degree=2, seed=1)
        e1 = [tuple(topo.neighbors_out(i, epoch=1)) for i in range(6)]
        e1_again = [tuple(topo.neighbors_out(i, epoch=1)) for i in range(6)]
        e2 = [tuple(topo.neighbors_out(i, epoch=2)) for i in range(6)]
        assert e1 == e1_again   # same epoch: same routes
        assert e1 != e2         # new epoch: new routes (w.h.p.)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            topology_by_name("banana", 4)


# ---------------------------------------------------------------------------
# migration
# ---------------------------------------------------------------------------

def _pop(objs):
    return Population([Individual(np.array([i]), objective=float(o))
                       for i, o in enumerate(objs)])


class TestMigrationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(interval=0)
        with pytest.raises(ValueError):
            MigrationPolicy(emigrant="bogus")
        with pytest.raises(ValueError):
            MigrationPolicy(replacement="bogus")

    def test_due_on_interval(self):
        pol = MigrationPolicy(interval=5)
        assert not pol.due(0)
        assert pol.due(5) and pol.due(10)
        assert not pol.due(7)

    def test_name(self):
        assert MigrationPolicy(emigrant="best",
                               replacement="worst").name == \
            "best-replace-worst"


class TestSelectEmigrants:
    def test_best_picks_best(self, rng):
        pol = MigrationPolicy(rate=2, emigrant="best")
        out = select_emigrants(_pop([5, 1, 9, 3]), pol, rng)
        assert sorted(i.objective for i in out) == [1, 3]

    def test_random_rate_respected(self, rng):
        pol = MigrationPolicy(rate=3, emigrant="random")
        out = select_emigrants(_pop([5, 1, 9, 3]), pol, rng)
        assert len(out) == 3

    def test_rate_zero_empty(self, rng):
        pol = MigrationPolicy(rate=0)
        assert select_emigrants(_pop([1, 2]), pol, rng) == []

    def test_emigrants_are_copies(self, rng):
        pop = _pop([1, 2])
        out = select_emigrants(pop, MigrationPolicy(rate=1), rng)
        out[0].genome[0] = 99
        assert pop[0].genome[0] != 99


class TestIntegrateImmigrants:
    def test_replace_worst(self, rng):
        pop = _pop([5, 1, 9, 3])
        imm = [Individual(np.array([77]), objective=0.5)]
        integrate_immigrants(pop, imm,
                             MigrationPolicy(replacement="worst"), rng)
        assert 9.0 not in [i.objective for i in pop]
        assert 0.5 in [i.objective for i in pop]

    def test_replace_worst_never_displaces_best(self, rng):
        pop = _pop([5, 1, 9, 3])
        imm = [Individual(np.array([77]), objective=100.0),
               Individual(np.array([78]), objective=101.0)]
        integrate_immigrants(pop, imm,
                             MigrationPolicy(replacement="worst"), rng)
        assert 1.0 in [i.objective for i in pop]

    def test_replace_random_keeps_size(self, rng):
        pop = _pop([5, 1, 9, 3])
        imm = [Individual(np.array([77]), objective=2.0)]
        integrate_immigrants(pop, imm,
                             MigrationPolicy(replacement="random"), rng)
        assert len(pop) == 4

    def test_excess_immigrants_truncated(self, rng):
        pop = _pop([5, 1])
        imm = [Individual(np.array([k]), objective=float(k))
               for k in range(10)]
        integrate_immigrants(pop, imm, MigrationPolicy(), rng)
        assert len(pop) == 2

    def test_no_immigrants_noop(self, rng):
        pop = _pop([5, 1])
        integrate_immigrants(pop, [], MigrationPolicy(), rng)
        assert [i.objective for i in pop] == [5, 1]
