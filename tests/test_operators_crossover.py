"""Crossover tests: the closure property (offspring stay in the encoding's
space) is the survey's "repair the illegal offspring" requirement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import (ArithmeticCrossover, CompositeCrossover,
                             CycleCrossover, JobBasedCrossover,
                             LinearOrderCrossover, MultiStepCrossoverFusion,
                             NPointCrossover, OrderCrossover,
                             ParameterizedUniformCrossover,
                             PathRelinkingCrossover, PMXCrossover,
                             PositionBasedCrossover, TimeHorizonCrossover,
                             UniformCrossover, default_crossover_for)
from repro.operators.repair import is_permutation, is_repetition_of

PERMUTATION_OPS = [NPointCrossover(1), NPointCrossover(2),
                   UniformCrossover(), PMXCrossover(), OrderCrossover(),
                   LinearOrderCrossover(), CycleCrossover(),
                   PositionBasedCrossover(), PathRelinkingCrossover(),
                   MultiStepCrossoverFusion(steps=5), TimeHorizonCrossover()]

MULTISET_OPS = [NPointCrossover(1), UniformCrossover(), OrderCrossover(),
                LinearOrderCrossover(), PositionBasedCrossover(),
                JobBasedCrossover(), PathRelinkingCrossover(),
                MultiStepCrossoverFusion(steps=5), TimeHorizonCrossover()]


def two_perms(rng, n):
    return rng.permutation(n).astype(np.int64), rng.permutation(n).astype(np.int64)


def two_repetitions(rng, n_jobs, repeats):
    base = np.repeat(np.arange(n_jobs, dtype=np.int64), repeats)
    a, b = base.copy(), base.copy()
    rng.shuffle(a)
    rng.shuffle(b)
    return a, b


@pytest.mark.parametrize("op", PERMUTATION_OPS,
                         ids=lambda o: type(o).__name__)
def test_permutation_closure(op, rng):
    """Every operator keeps permutation genomes valid permutations."""
    for n in (2, 5, 9):
        for _ in range(10):
            a, b = two_perms(rng, n)
            ca, cb = op(a, b, rng)
            assert is_permutation(ca), f"{type(op).__name__} broke child A"
            assert is_permutation(cb), f"{type(op).__name__} broke child B"


@pytest.mark.parametrize("op", MULTISET_OPS, ids=lambda o: type(o).__name__)
def test_repetition_closure(op, rng):
    """Multiset-safe operators preserve gene multiplicities exactly."""
    counts = np.array([3, 3, 3, 3])
    for _ in range(10):
        a, b = two_repetitions(rng, 4, 3)
        ca, cb = op(a, b, rng)
        assert is_repetition_of(ca, counts)
        assert is_repetition_of(cb, counts)


@pytest.mark.parametrize("op", PERMUTATION_OPS,
                         ids=lambda o: type(o).__name__)
def test_parents_unmodified(op, rng):
    a, b = two_perms(rng, 7)
    a0, b0 = a.copy(), b.copy()
    op(a, b, rng)
    assert np.array_equal(a, a0) and np.array_equal(b, b0)


@pytest.mark.parametrize("op", PERMUTATION_OPS,
                         ids=lambda o: type(o).__name__)
def test_tiny_genomes_survive(op, rng):
    a = np.array([0, 1], dtype=np.int64)
    b = np.array([1, 0], dtype=np.int64)
    ca, cb = op(a, b, rng)
    assert is_permutation(ca) and is_permutation(cb)


class TestSpecificSemantics:
    def test_cycle_crossover_preserves_positions(self, rng):
        """CX children take each position from one of the two parents."""
        a, b = two_perms(rng, 8)
        ca, cb = CycleCrossover()(a, b, rng)
        for i in range(8):
            assert ca[i] in (a[i], b[i])
            assert cb[i] in (a[i], b[i])

    def test_cx_identical_parents_fixed_point(self, rng):
        a = rng.permutation(6).astype(np.int64)
        ca, cb = CycleCrossover()(a, a.copy(), rng)
        assert np.array_equal(ca, a) and np.array_equal(cb, a)

    def test_pmx_segment_from_other_parent(self, rng):
        a = np.arange(8, dtype=np.int64)
        b = np.arange(8, dtype=np.int64)[::-1].copy()
        ca, _ = PMXCrossover()(a, b, rng)
        # at least one gene differs from parent A (segment swapped)
        assert not np.array_equal(ca, a)

    def test_thx_keeps_prefix(self, rng):
        a, b = two_repetitions(rng, 4, 2)
        ca, _ = TimeHorizonCrossover()(a, b, rng)
        # prefix of child A matches parent A up to some cut >= 1
        assert ca[0] == a[0]

    def test_msxf_moves_toward_second_parent(self, rng):
        a, b = two_perms(rng, 10)
        child, _ = MultiStepCrossoverFusion(steps=30)(a, b, rng)
        before = int(np.count_nonzero(a != b))
        after = int(np.count_nonzero(child != b))
        assert after <= before

    def test_path_relinking_intermediate(self, rng):
        a, b = two_perms(rng, 10)
        ca, _ = PathRelinkingCrossover()(a, b, rng)
        d_ab = int(np.count_nonzero(a != b))
        d_cb = int(np.count_nonzero(ca != b))
        assert d_cb <= d_ab

    def test_arithmetic_blend_bounds(self, rng):
        a = rng.random(6)
        b = rng.random(6)
        ca, cb = ArithmeticCrossover()(a, b, rng)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        assert np.all(ca >= lo - 1e-12) and np.all(ca <= hi + 1e-12)
        assert np.all(cb >= lo - 1e-12) and np.all(cb <= hi + 1e-12)

    def test_arithmetic_fixed_weight(self, rng):
        a, b = np.zeros(3), np.ones(3)
        ca, cb = ArithmeticCrossover(fixed_weight=0.25)(a, b, rng)
        assert np.allclose(ca, 0.75) and np.allclose(cb, 0.25)

    def test_parameterized_uniform_bias(self):
        rng = np.random.default_rng(0)
        a, b = np.zeros(1000), np.ones(1000)
        ca, _ = ParameterizedUniformCrossover(bias=0.8)(a, b, rng)
        # ~80% of genes should come from parent A (zeros)
        assert 0.7 < float(np.mean(ca == 0.0)) < 0.9

    def test_uniform_no_repair_on_floats(self, rng):
        a, b = rng.random(6), rng.random(6)
        ca, cb = UniformCrossover()(a, b, rng)
        for i in range(6):
            assert ca[i] in (a[i], b[i])

    def test_npoint_rejects_zero_points(self):
        with pytest.raises(ValueError):
            NPointCrossover(0)


class TestCompositeCrossover:
    def test_applies_per_part(self, rng):
        op = CompositeCrossover([ParameterizedUniformCrossover(),
                                 OrderCrossover()])
        a = (rng.random(4), rng.permutation(5).astype(np.int64))
        b = (rng.random(4), rng.permutation(5).astype(np.int64))
        ca, cb = op(a, b, rng)
        assert isinstance(ca, tuple) and len(ca) == 2
        assert is_permutation(ca[1]) and is_permutation(cb[1])

    def test_none_part_copied(self, rng):
        op = CompositeCrossover([None, OrderCrossover()])
        a = (np.array([1, 2]), rng.permutation(4).astype(np.int64))
        b = (np.array([3, 4]), rng.permutation(4).astype(np.int64))
        ca, _ = op(a, b, rng)
        assert np.array_equal(ca[0], a[0])
        assert ca[0] is not a[0]  # copied, not aliased

    def test_rejects_mismatched_genomes(self, rng):
        op = CompositeCrossover([None])
        with pytest.raises(ValueError):
            op(np.arange(3), np.arange(3), rng)


class TestDefaults:
    def test_default_for_each_kind(self):
        assert default_crossover_for("permutation") is not None
        assert default_crossover_for("repetition") is not None
        assert default_crossover_for("real") is not None
        comp = default_crossover_for("composite",
                                     ("assignment", "repetition"))
        assert isinstance(comp, CompositeCrossover)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            default_crossover_for("banana")
