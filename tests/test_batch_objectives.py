"""Batch completion-time engine: every Section-II objective, every class.

The batch objective layer promises that for each of the seven Section-II
criteria and each vectorised problem class (job shop, flow shop, flexible
job shop, open shop) the batch path -- ``batch_completion_*`` matrices
reduced by ``objective.batch`` -- is *bit-identical* to decoding each
chromosome into a :class:`Schedule` and applying the scalar objective.
These property-style tests enforce that promise on randomised instances,
due dates, weights and populations, plus the degenerate corners (empty
population, single job, zero durations, everything tardy) and the
dtype/shape contract of the empty-population early returns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.core.rng import make_rng, spawn_rngs
from repro.encodings import (FlexibleJobShopEncoding,
                             OpenShopPairSequenceEncoding,
                             OperationBasedEncoding)
from repro.encodings.base import CompletionObjectiveEvaluator
from repro.encodings.permutation import FlowShopPermutationEncoding
from repro.instances import flexible_job_shop, flow_shop, job_shop, open_shop
from repro.instances.generators import with_due_dates_twk, with_weights
from repro.parallel.executors import ProcessPoolEvaluator
from repro.scheduling import (FlowShopInstance, Makespan, MaximumTardiness,
                              TotalFlowTime, TotalWeightedCompletion,
                              TotalWeightedTardiness, TotalWeightedUnitPenalty,
                              WeightedCombination,
                              batch_completion_fjsp,
                              batch_completion_operation_sequence,
                              batch_completion_pair_sequence,
                              batch_completion_permutation,
                              batch_makespan_operation_sequence,
                              batch_makespan_permutation, batch_objective)


def all_objectives():
    return [Makespan(), TotalFlowTime(), TotalWeightedCompletion(),
            TotalWeightedTardiness(), TotalWeightedUnitPenalty(),
            MaximumTardiness(),
            WeightedCombination([(0.55, Makespan()),
                                 (0.25, TotalWeightedTardiness()),
                                 (0.2, TotalWeightedUnitPenalty())])]


def decorate(instance, rng):
    """Random due dates (some tight, some loose, some infinite) + weights."""
    n = instance.n_jobs
    tau = float(rng.uniform(0.3, 2.5))
    with_due_dates_twk(instance, tau=tau, seed=int(rng.integers(1, 10**6)))
    with_weights(instance, seed=int(rng.integers(1, 10**6)))
    inf_mask = rng.random(n) < 0.2
    instance.due = np.where(inf_mask, np.inf, instance.due)
    return instance


def assert_batch_matches_scalar(encoding, genomes, completion):
    """Every objective: batch reduction == per-genome scalar decode."""
    instance = encoding.instance
    schedules = [encoding.decode(g) for g in genomes]
    scalar_completion = np.stack([s.completion_times for s in schedules])
    assert completion.dtype == np.float64
    assert np.array_equal(completion, scalar_completion)
    for obj in all_objectives():
        batch_fn = batch_objective(obj)
        assert batch_fn is not None
        vec = batch_fn(completion, instance)
        scalar = np.array([obj(s, instance) for s in schedules])
        assert np.array_equal(vec, scalar), obj.name


# ---------------------------------------------------------------------------
# randomised equivalence per problem class
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_jobshop_all_objectives_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(1, 8))
    m = int(inst_rng.integers(1, 6))
    instance = decorate(job_shop(n, m, seed=int(inst_rng.integers(1, 10**6))),
                        inst_rng)
    enc = OperationBasedEncoding(instance)
    genomes = [enc.random_genome(chrom_rng)
               for _ in range(int(chrom_rng.integers(1, 13)))]
    completion = batch_completion_operation_sequence(
        instance, np.stack(genomes), validate=True)
    assert_batch_matches_scalar(enc, genomes, completion)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_flowshop_all_objectives_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(1, 11))
    m = int(inst_rng.integers(1, 7))
    instance = decorate(flow_shop(n, m, seed=int(inst_rng.integers(1, 10**6))),
                        inst_rng)
    instance.release = inst_rng.integers(0, 40, size=n).astype(float)
    enc = FlowShopPermutationEncoding(instance)
    genomes = [enc.random_genome(chrom_rng)
               for _ in range(int(chrom_rng.integers(1, 13)))]
    completion = batch_completion_permutation(instance, np.stack(genomes))
    assert_batch_matches_scalar(enc, genomes, completion)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_openshop_all_objectives_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(1, 8))
    m = int(inst_rng.integers(1, 6))
    instance = decorate(open_shop(n, m, seed=int(inst_rng.integers(1, 10**6))),
                        inst_rng)
    enc = OpenShopPairSequenceEncoding(instance)
    genomes = [enc.random_genome(chrom_rng)
               for _ in range(int(chrom_rng.integers(1, 13)))]
    completion = batch_completion_pair_sequence(
        instance, np.stack(genomes), validate=True)
    assert_batch_matches_scalar(enc, genomes, completion)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 2))
def test_fjsp_all_objectives_randomised(seed):
    inst_rng, chrom_rng = spawn_rngs(seed, 2)
    n = int(inst_rng.integers(1, 6))
    m = int(inst_rng.integers(2, 5))
    instance = decorate(flexible_job_shop(
        n, m, seed=int(inst_rng.integers(1, 10**6)),
        flexibility=int(inst_rng.integers(1, 4)),
        setups=bool(inst_rng.integers(0, 2)),
        setup_attached=bool(inst_rng.integers(0, 2)),
        machine_release_hi=int(inst_rng.integers(0, 15)),
        time_lag_hi=int(inst_rng.integers(0, 8))), inst_rng)
    enc = FlexibleJobShopEncoding(instance)
    genomes = [enc.random_genome(chrom_rng)
               for _ in range(int(chrom_rng.integers(1, 10)))]
    matrix = enc.stack_genomes(genomes)
    completion = enc.batch_completion(matrix)
    assert_batch_matches_scalar(enc, genomes, completion)


# ---------------------------------------------------------------------------
# degenerate corners
# ---------------------------------------------------------------------------

def test_single_job_single_machine():
    instance = decorate(job_shop(1, 1, seed=4), make_rng(0))
    enc = OperationBasedEncoding(instance)
    genomes = [np.zeros(1, dtype=np.int64)]
    completion = batch_completion_operation_sequence(instance,
                                                     np.stack(genomes))
    assert completion.shape == (1, 1)
    assert_batch_matches_scalar(enc, genomes, completion)


def test_zero_durations():
    instance = FlowShopInstance(processing=np.zeros((4, 3)),
                                due=np.array([0.0, 1.0, np.inf, -0.0]),
                                weights=np.array([2.0, 0.0, 1.0, 3.0]))
    enc = FlowShopPermutationEncoding(instance)
    rng = make_rng(1)
    genomes = [enc.random_genome(rng) for _ in range(5)]
    completion = batch_completion_permutation(instance, np.stack(genomes))
    assert np.array_equal(completion, np.zeros((5, 4)))
    assert_batch_matches_scalar(enc, genomes, completion)


def test_all_jobs_tardy():
    instance = job_shop(5, 3, seed=9)
    instance.due = np.full(5, -1.0)        # every completion is late
    instance.weights = np.arange(1.0, 6.0)
    enc = OperationBasedEncoding(instance)
    rng = make_rng(2)
    genomes = [enc.random_genome(rng) for _ in range(6)]
    completion = batch_completion_operation_sequence(instance,
                                                     np.stack(genomes))
    unit = TotalWeightedUnitPenalty().batch(completion, instance)
    assert np.array_equal(unit, np.full(6, instance.weights.sum()))
    assert_batch_matches_scalar(enc, genomes, completion)


def test_empty_population_shapes_and_dtypes():
    """Satellite: empty early-returns carry explicit float64 + shape."""
    js = job_shop(4, 3, seed=2)
    fs = flow_shop(4, 3, seed=2)
    osh = open_shop(4, 3, seed=2)
    fj = flexible_job_shop(3, 3, seed=2)
    n_ops = fj.total_operations
    cases = [
        (batch_makespan_operation_sequence(
            js, np.empty((0, 12), dtype=np.int64)), (0,)),
        (batch_makespan_permutation(
            fs, np.empty((0, 4), dtype=np.int64)), (0,)),
        (batch_completion_operation_sequence(
            js, np.empty((0, 12), dtype=np.int64)), (0, 4)),
        (batch_completion_permutation(
            fs, np.empty((0, 4), dtype=np.int64)), (0, 4)),
        (batch_completion_pair_sequence(
            osh, np.empty((0, 12), dtype=np.int64)), (0, 4)),
        (batch_completion_fjsp(
            fj, np.empty((0, n_ops), dtype=np.int64),
            np.empty((0, n_ops), dtype=np.int64)), (0, 3)),
    ]
    for out, shape in cases:
        assert out.shape == shape
        assert out.dtype == np.float64
    # objective reductions accept the empty matrices
    for obj in all_objectives():
        vec = batch_objective(obj)(np.zeros((0, 4)), js)
        assert vec.shape == (0,) and vec.dtype == np.float64


def test_fjsp_validate_rejects_bad_sequence():
    fj = flexible_job_shop(3, 3, seed=5)
    n_ops = fj.total_operations
    rng = make_rng(3)
    assignment = np.zeros((1, n_ops), dtype=np.int64)
    bad = np.zeros((1, n_ops), dtype=np.int64)   # job 0 repeated n_ops times
    with pytest.raises(ValueError, match="rows \\[0\\]"):
        batch_completion_fjsp(fj, assignment, bad, validate=True)


def test_pair_sequence_validate_rejects_duplicates():
    osh = open_shop(3, 2, seed=5)
    dup = np.zeros((1, 6), dtype=np.int64)       # op 0 six times
    with pytest.raises(ValueError, match="rows \\[0\\]"):
        batch_completion_pair_sequence(osh, dup, validate=True)


def test_pair_sequence_two_operation_instance_layouts():
    # n_jobs * n_machines == 2 makes the (L, 2) pair layout and a (pop, 2)
    # op-id matrix the same shape; content must disambiguate both ways
    from repro.scheduling.openshop import decode_pair_sequence
    osh21 = open_shop(2, 1, seed=6)
    pairs = np.array([[0, 0], [1, 0]])           # one individual, as pairs
    out = batch_completion_pair_sequence(osh21, pairs, validate=True)
    expected = decode_pair_sequence(osh21, pairs).completion_times
    assert out.shape == (1, 2)
    assert np.array_equal(out[0], expected)
    op_ids = np.array([[0, 1], [1, 0]])          # two op-id chromosomes
    out = batch_completion_pair_sequence(osh21, op_ids, validate=True)
    assert out.shape == (2, 2)
    for row, ids in zip(out, op_ids):
        ref = decode_pair_sequence(
            osh21, np.column_stack([ids // 1, ids % 1])).completion_times
        assert np.array_equal(row, ref)


# ---------------------------------------------------------------------------
# wiring: discovery, engines, executors
# ---------------------------------------------------------------------------

def test_batch_evaluator_discovery_non_makespan():
    js = decorate(job_shop(5, 3, seed=7), make_rng(4))
    fj = decorate(flexible_job_shop(4, 3, seed=7), make_rng(5))
    osh = decorate(open_shop(4, 3, seed=7), make_rng(6))
    for enc in (OperationBasedEncoding(js), FlexibleJobShopEncoding(fj),
                OpenShopPairSequenceEncoding(osh)):
        for obj in all_objectives():
            ev = Problem(enc, obj).batch_evaluator()
            assert ev is not None, (type(enc).__name__, obj.name)
    # makespan keeps the direct fast path where one exists
    assert not isinstance(Problem(OperationBasedEncoding(js)).batch_evaluator(),
                          CompletionObjectiveEvaluator)
    assert isinstance(
        Problem(OperationBasedEncoding(js),
                TotalFlowTime()).batch_evaluator(),
        CompletionObjectiveEvaluator)
    # non-batchable pieces keep the scalar path authoritative
    assert Problem(OperationBasedEncoding(js, mode="active"),
                   TotalFlowTime()).batch_evaluator() is None
    assert Problem(OperationBasedEncoding(js), TotalFlowTime(),
                   eval_cost=1e-9).batch_evaluator() is None

    class NoBatchObjective:
        name = "opaque"

        def __call__(self, schedule, instance):
            return 0.0

    assert Problem(OperationBasedEncoding(js),
                   NoBatchObjective()).batch_evaluator() is None
    combo = WeightedCombination([(1.0, Makespan()),
                                 (1.0, NoBatchObjective())])
    assert not combo.supports_batch
    assert Problem(OperationBasedEncoding(js), combo).batch_evaluator() is None


def test_simple_ga_batch_path_fjsp_weighted_tardiness():
    instance = decorate(flexible_job_shop(5, 4, seed=11, setups=True),
                        make_rng(7))
    problem = Problem(FlexibleJobShopEncoding(instance),
                      TotalWeightedTardiness())
    cfg = GAConfig(population_size=16)
    batch_ga = SimpleGA(problem, cfg, MaxGenerations(5), seed=77)
    assert batch_ga.uses_batch_path
    scalar_ga = SimpleGA(
        problem, cfg, MaxGenerations(5), seed=77,
        evaluator=lambda genomes: np.array(
            [problem.evaluate(g) for g in genomes]))
    assert not scalar_ga.uses_batch_path
    rb, rs = batch_ga.run(), scalar_ga.run()
    assert rb.best_objective == rs.best_objective
    assert [r.best for r in rb.history.records] == \
        [r.best for r in rs.history.records]


def test_process_pool_ships_fjsp_matrices():
    instance = decorate(flexible_job_shop(4, 3, seed=13), make_rng(8))
    problem = Problem(FlexibleJobShopEncoding(instance),
                      TotalWeightedTardiness())
    rng = make_rng(9)
    genomes = [problem.random_genome(rng) for _ in range(10)]
    scalar = np.array([problem.evaluate(g) for g in genomes])
    with ProcessPoolEvaluator(problem, n_workers=2) as ev:
        out = ev(genomes)
    assert np.array_equal(out, scalar)
    assert ev.stats.batch_calls == 1   # composite genomes shipped as matrix


def test_evaluate_batch_unstacks_composite_rows_without_batch_decoder():
    # eval_cost forces the per-genome path; stacked FJSP rows must be
    # split back into (assignment, sequence) tuples before evaluation
    instance = flexible_job_shop(4, 3, seed=17)
    problem = Problem(FlexibleJobShopEncoding(instance), eval_cost=1e-9)
    assert problem.batch_evaluator() is None
    rng = make_rng(10)
    genomes = [problem.random_genome(rng) for _ in range(4)]
    matrix = problem.stack_genomes(genomes)
    assert matrix is not None
    out = problem.evaluate_batch(matrix)
    scalar = np.array([problem.evaluate(g) for g in genomes])
    assert np.array_equal(out, scalar)


def test_fjsp_stack_rejects_malformed_genomes():
    enc = FlexibleJobShopEncoding(flexible_job_shop(3, 3, seed=19))
    n_ops = enc.instance.total_operations
    good = (np.zeros(n_ops, dtype=np.int64),
            np.repeat(np.arange(3, dtype=np.int64),
                      [enc.instance.stages_of(j) for j in range(3)]))
    assert enc.stack_genomes([good]) is not None
    assert enc.stack_genomes([]) is None
    assert enc.stack_genomes([np.zeros(n_ops, dtype=np.int64)]) is None
    assert enc.stack_genomes([(good[0], good[1][:-1])]) is None
    a, s = enc.unstack_row(enc.stack_genomes([good])[0])
    assert np.array_equal(a, good[0]) and np.array_equal(s, good[1])


def test_objective_vectors_batch_matches_scalar():
    instance = decorate(open_shop(5, 4, seed=23), make_rng(11))
    combo = WeightedCombination([(0.5, Makespan()),
                                 (0.5, MaximumTardiness())])
    problem = Problem(OpenShopPairSequenceEncoding(instance), combo)
    rng = make_rng(12)
    genomes = [problem.random_genome(rng) for _ in range(8)]
    batch = problem.objective_vectors(genomes)
    scalar = np.array([problem.objective_vector(g) for g in genomes])
    assert batch.shape == (8, 2)
    assert np.array_equal(batch, scalar)
    assert problem.objective_vectors([]).shape == (0, 2)
    # single-criterion objective: one column
    single = Problem(OpenShopPairSequenceEncoding(instance), Makespan())
    assert single.objective_vectors(genomes).shape == (8, 1)
    assert single.objective_vectors([]).shape == (0, 1)


def test_objective_vectors_multicriteria_without_batch_vector():
    # an objective exposing vector() but no batch_vector() must keep its
    # criteria count on both paths (per-genome fallback, never a 1-column
    # collapse through its scalar batch form)
    instance = decorate(job_shop(4, 3, seed=29), make_rng(13))

    class TwoCriteria:
        name = "two_criteria"
        n_criteria = 2

        def __call__(self, schedule, inst):
            return schedule.makespan

        def batch(self, completion, inst):
            return completion.max(axis=1)

        def vector(self, schedule, inst):
            return (schedule.makespan, float(schedule.completion_times.sum()))

    problem = Problem(OperationBasedEncoding(instance), TwoCriteria())
    rng = make_rng(14)
    genomes = [problem.random_genome(rng) for _ in range(3)]
    vectors = problem.objective_vectors(genomes)
    scalar = np.array([problem.objective_vector(g) for g in genomes])
    assert vectors.shape == (3, 2)
    assert np.array_equal(vectors, scalar)
    # empty input keeps the criteria count via n_criteria
    assert problem.objective_vectors([]).shape == (0, 2)
