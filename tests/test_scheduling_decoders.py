"""Tests for flow/job/open shop decoders against the feasibility oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import FT06_OPTIMUM, flow_shop, get_instance, job_shop, open_shop
from repro.scheduling import (DISPATCH_RULES, FeasibilityError, Schedule,
                              decode_blocking, decode_job_repetition_lpt_machine,
                              decode_job_repetition_lpt_task,
                              decode_operation_sequence, decode_pair_sequence,
                              flowshop_completion, flowshop_makespan,
                              flowshop_makespan_population, flowshop_schedule,
                              giffler_thompson, neh_heuristic,
                              operation_sequence_makespan,
                              priority_rule_schedule)


def random_op_sequence(instance, rng):
    seq = np.repeat(np.arange(instance.n_jobs), instance.n_stages)
    rng.shuffle(seq)
    return seq


class TestFlowShop:
    def test_single_job_single_machine(self):
        inst = flow_shop(1, 1, seed=1)
        assert flowshop_makespan(inst, np.array([0])) == inst.processing[0, 0]

    def test_completion_matrix_monotone(self, small_flowshop):
        c = flowshop_completion(small_flowshop, np.arange(6))
        assert np.all(np.diff(c, axis=0) > 0)   # later jobs finish later
        assert np.all(np.diff(c, axis=1) > 0)   # later machines finish later

    def test_known_two_by_two(self):
        from repro.scheduling import FlowShopInstance
        inst = FlowShopInstance(processing=np.array([[2.0, 3.0],
                                                     [4.0, 1.0]]))
        # order (0,1): C = 2,5 ; 6,7 -> makespan 7
        assert flowshop_makespan(inst, np.array([0, 1])) == 7.0
        # order (1,0): C = 4,5 ; 6,9 -> makespan 9
        assert flowshop_makespan(inst, np.array([1, 0])) == 9.0

    def test_release_times_respected(self):
        from repro.scheduling import FlowShopInstance
        inst = FlowShopInstance(processing=np.array([[1.0], [1.0]]),
                                release=np.array([0.0, 10.0]))
        sched = flowshop_schedule(inst, np.array([0, 1]))
        sched.audit(inst)
        assert sched.makespan == 11.0

    def test_batch_matches_scalar(self, small_flowshop, rng):
        perms = np.stack([rng.permutation(6) for _ in range(40)])
        batch = flowshop_makespan_population(small_flowshop, perms)
        scalar = [flowshop_makespan(small_flowshop, p) for p in perms]
        assert np.allclose(batch, scalar)

    def test_batch_rejects_bad_shape(self, small_flowshop):
        with pytest.raises(ValueError):
            flowshop_makespan_population(small_flowshop, np.arange(6))

    def test_schedule_feasible_and_consistent(self, small_flowshop, rng):
        perm = rng.permutation(6)
        sched = flowshop_schedule(small_flowshop, perm)
        sched.audit(small_flowshop)
        assert sched.makespan == flowshop_makespan(small_flowshop, perm)

    def test_neh_beats_random_on_average(self):
        inst = flow_shop(12, 5, seed=3)
        rng = np.random.default_rng(0)
        neh = flowshop_makespan(inst, neh_heuristic(inst))
        random_mean = np.mean([
            flowshop_makespan(inst, rng.permutation(12)) for _ in range(30)])
        assert neh < random_mean
        assert neh >= inst.makespan_lower_bound()

    @given(st.integers(min_value=0, max_value=2**31 - 2))
    @settings(max_examples=15, deadline=None)
    def test_makespan_at_least_lower_bound(self, seed_offset):
        inst = flow_shop(5, 3, seed=7)
        rng = np.random.default_rng(seed_offset)
        perm = rng.permutation(5)
        assert flowshop_makespan(inst, perm) >= inst.makespan_lower_bound() - 1e-9


class TestJobShopSemiActive:
    def test_ft06_feasible(self, ft06, rng):
        seq = random_op_sequence(ft06, rng)
        sched = decode_operation_sequence(ft06, seq, validate=True)
        sched.audit(ft06)
        assert sched.makespan >= FT06_OPTIMUM

    def test_fast_path_matches_schedule(self, ft06, rng):
        for _ in range(10):
            seq = random_op_sequence(ft06, rng)
            assert operation_sequence_makespan(ft06, seq) == \
                decode_operation_sequence(ft06, seq).makespan

    def test_validation_rejects_bad_multiset(self, ft06):
        bad = np.zeros(36, dtype=np.int64)
        with pytest.raises(ValueError):
            decode_operation_sequence(ft06, bad, validate=True)

    def test_release_respected(self, small_jobshop, rng):
        small_jobshop.release = np.array([50.0, 0.0, 0.0, 0.0, 0.0])
        seq = random_op_sequence(small_jobshop, rng)
        sched = decode_operation_sequence(small_jobshop, seq)
        sched.audit(small_jobshop)
        job0 = [op for op in sched.operations if op.job == 0]
        assert min(op.start for op in job0) >= 50.0


class TestGifflerThompson:
    def test_produces_feasible_schedule(self, ft06, rng):
        prio = rng.random(36)
        sched = giffler_thompson(ft06, prio)
        sched.audit(ft06)
        assert len(sched.operations) == 36

    def test_active_schedules_at_least_as_good_on_average(self, ft06, rng):
        """G&T active schedules dominate semi-active ones on average."""
        semis, actives = [], []
        for _ in range(12):
            seq = random_op_sequence(ft06, rng)
            semis.append(operation_sequence_makespan(ft06, seq))
            actives.append(giffler_thompson(ft06, rng.random(36)).makespan)
        assert np.mean(actives) <= np.mean(semis)

    def test_callable_priority(self, ft06):
        sched = giffler_thompson(ft06, lambda j, s: j * 10 + s)
        sched.audit(ft06)


class TestBlockingJobShop:
    def test_feasible_as_ordinary_schedule(self, small_jobshop, rng):
        seq = random_op_sequence(small_jobshop, rng)
        sched = decode_blocking(small_jobshop, seq)
        sched.audit(small_jobshop)

    def test_blocking_never_faster_than_unconstrained(self, rng):
        inst = job_shop(5, 4, seed=9, blocking=True)
        for _ in range(10):
            seq = random_op_sequence(inst, rng)
            blocked = decode_blocking(inst, seq).makespan
            free = operation_sequence_makespan(inst, seq)
            assert blocked >= free - 1e-9

    def test_machine_blocked_until_successor_starts(self):
        """Two jobs crossing one machine: job 0 blocks m0 until m1 frees."""
        from repro.scheduling import JobShopInstance
        inst = JobShopInstance(routing=np.array([[0, 1], [0, 1]]),
                               processing=np.array([[1.0, 10.0],
                                                    [1.0, 1.0]]),
                               blocking=True)
        # schedule: j0 on m0, j0 on m1, j1 on m0, j1 on m1
        sched = decode_blocking(inst, np.array([0, 0, 1, 1]))
        ops = {(op.job, op.stage): op for op in sched.operations}
        # job 1 cannot start on m0 before job 0 left it (start of j0 stage 1)
        assert ops[(1, 0)].start >= ops[(0, 1)].start


class TestDispatchRules:
    def test_all_rules_known(self):
        assert set(DISPATCH_RULES) == {"SPT", "LPT", "MWR", "LWR", "FIFO",
                                       "EDD"}

    def test_feasible_for_each_rule(self, small_jobshop):
        n = small_jobshop.total_operations
        for rule in DISPATCH_RULES:
            sched = priority_rule_schedule(small_jobshop, [rule] * n)
            sched.audit(small_jobshop)
            assert len(sched.operations) == n

    def test_rejects_wrong_length(self, small_jobshop):
        with pytest.raises(ValueError):
            priority_rule_schedule(small_jobshop, ["SPT"])

    def test_rejects_unknown_rule(self, small_jobshop):
        n = small_jobshop.total_operations
        with pytest.raises(ValueError):
            priority_rule_schedule(small_jobshop, ["XXX"] * n)


class TestOpenShopDecoders:
    def _seq(self, inst, rng):
        seq = np.repeat(np.arange(inst.n_jobs), inst.n_machines)
        rng.shuffle(seq)
        return seq

    def test_lpt_task_feasible(self, small_openshop, rng):
        sched = decode_job_repetition_lpt_task(small_openshop,
                                               self._seq(small_openshop, rng))
        sched.audit(small_openshop)
        assert len(sched.operations) == small_openshop.total_operations

    def test_lpt_machine_feasible(self, small_openshop, rng):
        sched = decode_job_repetition_lpt_machine(
            small_openshop, self._seq(small_openshop, rng))
        sched.audit(small_openshop)

    def test_each_job_visits_every_machine_once(self, small_openshop, rng):
        sched = decode_job_repetition_lpt_task(small_openshop,
                                               self._seq(small_openshop, rng))
        for j, ops in enumerate(sched.job_sequences()):
            machines = sorted(op.machine for op in ops)
            assert machines == list(range(small_openshop.n_machines))

    def test_lpt_task_picks_longest_first(self):
        from repro.scheduling import OpenShopInstance
        inst = OpenShopInstance(processing=np.array([[1.0, 9.0, 3.0]]))
        sched = decode_job_repetition_lpt_task(inst, np.array([0, 0, 0]))
        first = min(sched.operations, key=lambda op: op.start)
        assert first.machine == 1  # the 9.0 task

    def test_overfull_sequence_rejected(self, small_openshop):
        bad = np.zeros(small_openshop.total_operations, dtype=np.int64)
        with pytest.raises(ValueError):
            decode_job_repetition_lpt_task(small_openshop, bad)

    def test_pair_sequence_roundtrip(self, small_openshop, rng):
        pairs = np.array([(j, m) for j in range(small_openshop.n_jobs)
                          for m in range(small_openshop.n_machines)])
        rng.shuffle(pairs)
        sched = decode_pair_sequence(small_openshop, pairs)
        sched.audit(small_openshop)

    def test_pair_sequence_rejects_duplicates(self, small_openshop):
        n = small_openshop.total_operations
        pairs = np.zeros((n, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            decode_pair_sequence(small_openshop, pairs)

    def test_makespan_at_least_lower_bound(self, small_openshop, rng):
        for _ in range(5):
            seq = self._seq(small_openshop, rng)
            cmax = decode_job_repetition_lpt_task(small_openshop, seq).makespan
            assert cmax >= small_openshop.makespan_lower_bound() - 1e-9
