"""Tests for the instance substrate: LCG, generators, library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import (FT06, FT06_OPTIMUM, TaillardLCG,
                             available_instances, flexible_flow_shop,
                             flexible_job_shop, flow_shop, get_instance,
                             job_shop, open_shop, with_due_dates_twk,
                             with_weights)
from repro.scheduling import (FlexibleFlowShopInstance,
                              FlexibleJobShopInstance, FlowShopInstance,
                              JobShopInstance, OpenShopInstance)


class TestTaillardLCG:
    def test_reproducible(self):
        a = [TaillardLCG(123).next_raw() for _ in range(5)]
        b = []
        gen = TaillardLCG(123)
        for _ in range(5):
            b.append(gen.next_raw())
        assert a[0] == b[0]
        # successive draws differ
        assert len(set(b)) == 5

    def test_schrage_recurrence(self):
        """x1 = 16807 * seed mod (2^31 - 1) for a small seed."""
        gen = TaillardLCG(1)
        assert gen.next_raw() == 16807
        assert gen.next_raw() == 16807 * 16807 % (2**31 - 1)

    def test_unif_bounds(self):
        gen = TaillardLCG(99)
        draws = [gen.unif(1, 99) for _ in range(500)]
        assert min(draws) >= 1 and max(draws) <= 99

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            TaillardLCG(0)
        with pytest.raises(ValueError):
            TaillardLCG(2**31 - 1)

    def test_matrix_shape_and_determinism(self):
        m1 = TaillardLCG(5).matrix(3, 4, 1, 9)
        m2 = TaillardLCG(5).matrix(3, 4, 1, 9)
        assert m1.shape == (3, 4)
        assert np.array_equal(m1, m2)

    @given(st.integers(min_value=1, max_value=2**31 - 2),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_permutation_property(self, seed, n):
        perm = TaillardLCG(seed).permutation(n)
        assert np.array_equal(np.sort(perm), np.arange(n))


class TestGenerators:
    def test_flow_shop_shape_and_range(self):
        inst = flow_shop(7, 4, seed=2)
        assert isinstance(inst, FlowShopInstance)
        assert inst.processing.shape == (7, 4)
        assert inst.processing.min() >= 1 and inst.processing.max() <= 99

    def test_job_shop_routing_valid(self):
        inst = job_shop(6, 5, seed=3)
        assert isinstance(inst, JobShopInstance)
        for j in range(6):
            assert np.array_equal(np.sort(inst.routing[j]), np.arange(5))

    def test_open_shop(self):
        inst = open_shop(4, 4, seed=4)
        assert isinstance(inst, OpenShopInstance)

    def test_determinism(self):
        a = job_shop(5, 4, seed=10)
        b = job_shop(5, 4, seed=10)
        assert np.array_equal(a.processing, b.processing)
        assert np.array_equal(a.routing, b.routing)
        c = job_shop(5, 4, seed=11)
        assert not np.array_equal(a.processing, c.processing)

    def test_flexible_flow_shop_variants(self):
        plain = flexible_flow_shop(5, (2, 3), seed=5)
        assert isinstance(plain, FlexibleFlowShopInstance)
        assert plain.n_machines == 5
        unrel = flexible_flow_shop(5, (2, 3), seed=5, unrelated=True)
        assert unrel.processing_per_machine is not None
        setup = flexible_flow_shop(5, (2, 3), seed=5, setups=True)
        assert setup.setup is not None and len(setup.setup) == 2

    def test_flexible_job_shop_flexibility(self):
        inst = flexible_job_shop(4, 5, seed=6, stages=3, flexibility=2)
        assert isinstance(inst, FlexibleJobShopInstance)
        for j in range(4):
            for s in range(3):
                assert len(inst.eligible_machines(j, s)) == 2

    def test_flexible_job_shop_extensions(self):
        inst = flexible_job_shop(3, 3, seed=7, stages=2, setups=True,
                                 machine_release_hi=10, time_lag_hi=5)
        assert inst.setup is not None
        assert inst.machine_release.max() <= 10
        assert inst.time_lag is not None

    def test_with_due_dates_twk(self):
        inst = with_due_dates_twk(flow_shop(5, 3, seed=8), tau=2.0)
        assert np.all(np.isfinite(inst.due))
        # looser tau gives later due dates
        tight = with_due_dates_twk(flow_shop(5, 3, seed=8), tau=1.0)
        assert np.all(inst.due >= tight.due)

    def test_with_due_dates_fjsp(self):
        inst = with_due_dates_twk(flexible_job_shop(3, 3, seed=9, stages=2))
        assert np.all(np.isfinite(inst.due))

    def test_with_weights(self):
        inst = with_weights(flow_shop(5, 3, seed=8), lo=2, hi=4)
        assert np.all((2 <= inst.weights) & (inst.weights <= 4))


class TestLibrary:
    def test_ft06_data_is_canonical(self):
        assert FT06.n_jobs == 6 and FT06.n_machines == 6
        # spot-check the embedded data against the OR-Library listing
        assert FT06.routing[0, 0] == 2 and FT06.processing[0, 0] == 1.0
        assert FT06.routing[5, 2] == 5 and FT06.processing[5, 2] == 9.0
        assert FT06.processing.sum() == 197.0

    def test_ft06_optimum_is_reachable_bound(self):
        assert FT06.makespan_lower_bound() <= FT06_OPTIMUM

    def test_get_instance_fresh_objects(self):
        a = get_instance("ft06")
        b = get_instance("ft06")
        assert a is not b
        a.processing[0, 0] = 999
        assert b.processing[0, 0] == 1.0

    def test_shaped_instances_have_published_dimensions(self):
        shapes = {"ft10-shaped": (10, 10), "ft20-shaped": (20, 5),
                  "abz7-shaped": (20, 15), "la31-shaped": (30, 10),
                  "orb03-shaped": (10, 10)}
        for name, (n, m) in shapes.items():
            inst = get_instance(name)
            assert (inst.n_jobs, inst.n_machines) == (n, m), name

    def test_flow_and_open_shaped(self):
        fs = get_instance("ta-fs-20x5-shaped")
        assert isinstance(fs, FlowShopInstance)
        assert (fs.n_jobs, fs.n_machines) == (20, 5)
        os_ = get_instance("ta-os-5x5-shaped")
        assert isinstance(os_, OpenShopInstance)

    def test_registry_complete_and_loadable(self):
        names = available_instances()
        assert "ft06" in names
        assert len(names) > 30
        for name in names[:8]:
            get_instance(name)

    def test_unknown_instance_rejected(self):
        with pytest.raises(KeyError):
            get_instance("nope")
