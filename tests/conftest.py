"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.encodings import (FlowShopPermutationEncoding,
                             OperationBasedEncoding, Problem)
from repro.instances import FT06, flow_shop, job_shop, open_shop


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ft06():
    """Fresh copy of the embedded Fisher-Thompson 6x6 instance."""
    from repro.instances import get_instance
    return get_instance("ft06")


@pytest.fixture
def small_flowshop():
    return flow_shop(6, 3, seed=11)


@pytest.fixture
def small_jobshop():
    return job_shop(5, 3, seed=12)


@pytest.fixture
def small_openshop():
    return open_shop(4, 3, seed=13)


@pytest.fixture
def ft06_problem(ft06):
    return Problem(OperationBasedEncoding(ft06))


@pytest.fixture
def flowshop_problem(small_flowshop):
    return Problem(FlowShopPermutationEncoding(small_flowshop))
