"""Conformance suite for the array-native variation substrate.

Three layers of guarantees (see ``docs/architecture.md``, "Two
substrates"):

1. **kernel equality** -- each deterministic batch kernel reproduces its
   scalar twin bit-for-bit given the same cuts/masks;
2. **closure** -- every batch crossover/mutation preserves row multisets
   (hence permutation validity) like the scalar operators do;
3. **engine equivalence** -- batch selections consume the RNG exactly
   like the scalar operators, so whole array generations are *exactly*
   equal to object generations at the crossover/mutation rate extremes
   under a shared seed, and quality stays on par at intermediate rates
   (per-draw bit-identity there is impossible: batching reorders the
   stream).
"""

import numpy as np
import pytest

import repro
from repro import GAConfig, IslandGA, MaxGenerations, Population, SimpleGA
from repro.core.substrate import (ArrayPopulationView, ArrayState,
                                  available_substrates, elitist_merge_arrays,
                                  make_offspring_matrix, stable_topk)
from repro.encodings import (FlowShopPermutationEncoding,
                             OperationBasedEncoding, Problem,
                             RandomKeysFlowShopEncoding)
from repro.instances import flow_shop, get_instance
from repro.operators import (ArithmeticCrossover, ElitistRouletteSelection,
                             GaussianKeyMutation, InversionMutation,
                             JobBasedCrossover, NPointCrossover,
                             OrderCrossover, ParameterizedUniformCrossover,
                             PMXCrossover, RandomSelection, RankSelection,
                             RouletteWheelSelection, ShiftMutation,
                             StochasticUniversalSampling, SwapMutation,
                             TournamentSelection, UniformCrossover,
                             batch_crossover_for, batch_mutation_for,
                             batch_selection_for, register_batch_mutation,
                             repair_to_multiset)
from repro.operators.batch import (batch_repair_to_multiset,
                                   inversion_kernel, jox_kernel,
                                   npoint_kernel, ox_kernel, pmx_kernel,
                                   row_bincount, row_occurrence,
                                   shift_kernel)


def perm_population(m, n, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack([rng.permutation(n) for _ in range(m)]).astype(np.int64)


def repetition_population(m, n_jobs, repeats, seed=0):
    rng = np.random.default_rng(seed)
    base = np.repeat(np.arange(n_jobs, dtype=np.int64), repeats)
    return np.stack([rng.permutation(base) for _ in range(m)])


def same_multiset_rows(A, B):
    for a, b in zip(A, B):
        if not np.array_equal(np.sort(a), np.sort(b)):
            return False
    return True


# -- layer 1: kernels vs scalar operator internals -------------------------------

class TestKernelEquality:
    def test_row_occurrence_counts_left_to_right(self):
        X = np.array([[1, 1, 0, 1], [2, 0, 2, 2]], dtype=np.int64)
        expect = np.array([[0, 1, 0, 2], [0, 0, 1, 2]])
        assert np.array_equal(row_occurrence(X, 3), expect)

    def test_row_bincount_plain_and_masked(self):
        X = np.array([[0, 1, 1], [2, 2, 0]], dtype=np.int64)
        assert np.array_equal(row_bincount(X, 3),
                              [[1, 2, 0], [1, 0, 2]])
        mask = np.array([[True, False, True], [True, True, False]])
        assert np.array_equal(row_bincount(X, 3, mask=mask),
                              [[1, 1, 0], [0, 0, 2]])

    @pytest.mark.parametrize("seed", range(5))
    def test_ox_kernel_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        A = repetition_population(16, 5, 3, seed=seed)
        B = repetition_population(16, 5, 3, seed=seed + 100)
        n = A.shape[1]
        lo_hi = np.sort(np.stack(
            [rng.choice(n, size=2, replace=False) for _ in range(16)]), axis=1)
        lo, hi = lo_hi[:, 0], lo_hi[:, 1] + 1
        batch = ox_kernel(A, B, lo, hi)
        for k in range(16):
            scalar = OrderCrossover._ox_child(A[k], B[k], int(lo[k]),
                                              int(hi[k]))
            assert np.array_equal(batch[k], scalar)

    @pytest.mark.parametrize("seed", range(5))
    def test_pmx_kernel_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        A = perm_population(16, 9, seed=seed)
        B = perm_population(16, 9, seed=seed + 100)
        lo_hi = np.sort(np.stack(
            [rng.choice(9, size=2, replace=False) for _ in range(16)]), axis=1)
        lo, hi = lo_hi[:, 0], lo_hi[:, 1] + 1
        batch = pmx_kernel(A, B, lo, hi)
        for k in range(16):
            scalar = PMXCrossover._pmx_child(A[k], B[k], int(lo[k]),
                                             int(hi[k]))
            assert np.array_equal(batch[k], scalar)

    @pytest.mark.parametrize("seed", range(5))
    def test_jox_kernel_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        A = repetition_population(16, 6, 4, seed=seed)
        B = repetition_population(16, 6, 4, seed=seed + 100)
        keep = rng.random((16, 6)) < 0.5
        batch = jox_kernel(A, B, keep)
        for k in range(16):
            scalar = JobBasedCrossover._jox_child(A[k], B[k], keep[k])
            assert np.array_equal(batch[k], scalar)

    @pytest.mark.parametrize("seed", range(5))
    def test_batch_repair_matches_scalar(self, seed):
        # corrupt children by a positionwise mix, then repair toward the
        # parents' shared multiset with the other parent as donor
        A = repetition_population(12, 4, 3, seed=seed)
        B = repetition_population(12, 4, 3, seed=seed + 100)
        rng = np.random.default_rng(seed)
        mask = rng.random(A.shape) < 0.5
        child = np.where(mask, B, A)
        counts = row_bincount(A, 4)
        batch = batch_repair_to_multiset(child, counts, B)
        for k in range(12):
            scalar = repair_to_multiset(child[k], counts[k], donor=B[k])
            assert np.array_equal(batch[k], scalar)

    def test_npoint_kernel_matches_manual_mask(self):
        A = np.zeros((3, 8), dtype=np.int64)
        B = np.ones((3, 8), dtype=np.int64)
        cuts = np.array([[2, 5], [1, 7], [3, 4]])
        ca, cb = npoint_kernel(A, B, cuts)
        # parity starts at A, flips at every cut
        assert np.array_equal(ca[0], [0, 0, 1, 1, 1, 0, 0, 0])
        assert np.array_equal(cb[0], [1, 1, 0, 0, 0, 1, 1, 1])
        assert np.array_equal(ca[1], [0, 1, 1, 1, 1, 1, 1, 0])
        assert np.array_equal(ca[2], [0, 0, 0, 1, 0, 0, 0, 0])

    @pytest.mark.parametrize("seed", range(4))
    def test_shift_kernel_matches_delete_insert(self, seed):
        rng = np.random.default_rng(seed)
        X = perm_population(10, 7, seed=seed)
        src = rng.integers(0, 7, size=10)
        dst = rng.integers(0, 6, size=10)
        batch = shift_kernel(X, src, dst)
        for k in range(10):
            v = X[k, src[k]]
            scalar = np.insert(np.delete(X[k], src[k]), dst[k], v)
            assert np.array_equal(batch[k], scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_inversion_kernel_matches_slice_reverse(self, seed):
        rng = np.random.default_rng(seed)
        X = perm_population(10, 7, seed=seed)
        lo_hi = np.sort(np.stack(
            [rng.choice(7, size=2, replace=False) for _ in range(10)]), axis=1)
        lo, hi = lo_hi[:, 0], lo_hi[:, 1]
        batch = inversion_kernel(X, lo, hi)
        for k in range(10):
            scalar = X[k].copy()
            scalar[lo[k]:hi[k] + 1] = scalar[lo[k]:hi[k] + 1][::-1]
            assert np.array_equal(batch[k], scalar)


# -- layer 2: closure per batch operator -----------------------------------------

PERM_CROSSOVERS = [OrderCrossover(), PMXCrossover(),
                   NPointCrossover(points=2), UniformCrossover()]
REP_CROSSOVERS = [OrderCrossover(), JobBasedCrossover(),
                  NPointCrossover(points=3), UniformCrossover()]
INT_MUTATIONS = [SwapMutation(), SwapMutation(pairs=3), ShiftMutation(),
                 InversionMutation()]


class TestClosure:
    @pytest.mark.parametrize("op", PERM_CROSSOVERS,
                             ids=lambda o: type(o).__name__)
    @pytest.mark.parametrize("seed", range(3))
    def test_permutation_crossovers_stay_permutations(self, op, seed):
        A = perm_population(24, 11, seed=seed)
        B = perm_population(24, 11, seed=seed + 50)
        ca, cb = batch_crossover_for(op)(A, B, np.random.default_rng(seed))
        for child in (ca, cb):
            assert same_multiset_rows(child, A)

    @pytest.mark.parametrize("op", REP_CROSSOVERS,
                             ids=lambda o: type(o).__name__)
    @pytest.mark.parametrize("seed", range(3))
    def test_repetition_crossovers_preserve_multisets(self, op, seed):
        A = repetition_population(24, 5, 4, seed=seed)
        B = repetition_population(24, 5, 4, seed=seed + 50)
        ca, cb = batch_crossover_for(op)(A, B, np.random.default_rng(seed))
        for child in (ca, cb):
            assert same_multiset_rows(child, A)

    @pytest.mark.parametrize("op", INT_MUTATIONS,
                             ids=["swap", "swap3", "shift", "inversion"])
    @pytest.mark.parametrize("seed", range(3))
    def test_integer_mutations_preserve_multisets(self, op, seed):
        X = repetition_population(24, 5, 4, seed=seed)
        out = batch_mutation_for(op)(X, np.random.default_rng(seed))
        assert same_multiset_rows(out, X)
        assert out is not X  # never in place

    def test_real_crossovers_stay_in_bounds(self):
        rng = np.random.default_rng(3)
        A, B = rng.random((20, 9)), rng.random((20, 9))
        for op in (ParameterizedUniformCrossover(bias=0.7),
                   ArithmeticCrossover(), ArithmeticCrossover(0.25)):
            ca, cb = batch_crossover_for(op)(A, B, rng)
            for child in (ca, cb):
                assert child.shape == A.shape
                assert (child >= 0).all() and (child <= 1).all()

    def test_param_uniform_children_complement(self):
        rng = np.random.default_rng(4)
        A, B = rng.random((10, 6)), rng.random((10, 6))
        ca, cb = batch_crossover_for(
            ParameterizedUniformCrossover(bias=0.6))(A, B, rng)
        took_a = ca == A
        assert np.array_equal(cb, np.where(took_a, B, A))

    def test_gaussian_mutation_keeps_keys_valid(self):
        rng = np.random.default_rng(5)
        X = rng.random((30, 12))
        out = batch_mutation_for(GaussianKeyMutation(rate=0.8))(X, rng)
        assert (out >= 0).all() and (out < 1).all()
        assert (out != X).any()

    def test_unsupported_operator_raises_actionable_error(self):
        from repro.operators import CycleCrossover
        with pytest.raises(ValueError, match="no batch crossover.*supports"):
            batch_crossover_for(CycleCrossover())


# -- layer 3a: selection stream equality -----------------------------------------

SELECTIONS = [RouletteWheelSelection(), StochasticUniversalSampling(),
              TournamentSelection(size=3), ElitistRouletteSelection(0.2),
              RandomSelection(), RankSelection()]


class TestSelectionStreamEquality:
    @pytest.mark.parametrize("sel", SELECTIONS,
                             ids=lambda s: type(s).__name__)
    @pytest.mark.parametrize("k", [0, 5, 20])
    def test_batch_indices_match_scalar_choices(self, sel, k, ft06_problem):
        if k == 0 and isinstance(sel, StochasticUniversalSampling):
            pytest.skip("SUS divides by k")
        rng = np.random.default_rng(7)
        pop = Population(
            repro.Individual(ft06_problem.random_genome(rng))
            for _ in range(12))
        for i, ind in enumerate(pop):
            ind.objective = float(50 + (i % 4))   # ties included
            ind.fitness = float(10 - (i % 4))
        fits = np.array([ind.fitness for ind in pop])
        objs = pop.objectives()
        scalar = sel(pop, k, np.random.default_rng(99))
        idx = batch_selection_for(sel)(fits, objs, k,
                                       np.random.default_rng(99))
        assert len(scalar) == len(idx) == k
        members = list(pop)
        for ind, i in zip(scalar, idx):
            assert ind is members[int(i)]


# -- layer 3b: rate-extreme exact equivalence ------------------------------------

def run_pair(problem, seed=11, gens=5, **cfg_kwargs):
    """Run object and array engines with identical configs and seed."""
    results = {}
    for substrate in ("object", "array"):
        ga = SimpleGA(problem,
                      GAConfig(substrate=substrate, **cfg_kwargs),
                      MaxGenerations(gens), seed=seed)
        ga.run()
        results[substrate] = ga
    return results["object"], results["array"]


def assert_populations_equal(obj_ga, arr_ga):
    matrix, objectives = obj_ga.population.to_arrays(obj_ga.problem)
    assert np.array_equal(arr_ga.arrays.matrix, matrix)
    assert np.array_equal(arr_ga.arrays.objectives, objectives)
    assert obj_ga.state.evaluations == arr_ga.state.evaluations


class TestRateExtremeEquivalence:
    @pytest.mark.parametrize("sel", SELECTIONS,
                             ids=lambda s: type(s).__name__)
    def test_rate_zero_is_exact_for_every_selection(self, sel, ft06_problem):
        obj_ga, arr_ga = run_pair(
            ft06_problem, population_size=14, crossover_rate=0.0,
            mutation_rate=0.0, selection=sel)
        assert_populations_equal(obj_ga, arr_ga)

    def test_rate_zero_with_immigration_and_gap(self, ft06_problem):
        obj_ga, arr_ga = run_pair(
            ft06_problem, population_size=15, crossover_rate=0.0,
            mutation_rate=0.0, immigration_rate=0.25, generation_gap=0.6,
            n_elites=3)
        assert_populations_equal(obj_ga, arr_ga)

    def test_crossover_rate_one_exact_with_drawless_operator(self):
        # ArithmeticCrossover with a fixed weight consumes no RNG, so the
        # stream stays aligned even though every pair crosses
        problem = Problem(RandomKeysFlowShopEncoding(flow_shop(8, 4, seed=2)))
        obj_ga, arr_ga = run_pair(
            problem, population_size=12, crossover_rate=1.0,
            mutation_rate=0.0, crossover=ArithmeticCrossover(0.3))
        assert_populations_equal(obj_ga, arr_ga)

    def test_mutation_rate_one_exact_with_drawless_operator(self,
                                                            ft06_problem):
        class ReverseMutation:
            def __call__(self, genome, rng):
                return np.asarray(genome)[::-1].copy()

        @register_batch_mutation(ReverseMutation)
        def _batch_reverse(op, X, rng):
            return X[:, ::-1].copy()

        obj_ga, arr_ga = run_pair(
            ft06_problem, population_size=12, crossover_rate=0.0,
            mutation_rate=1.0, mutation=ReverseMutation())
        assert_populations_equal(obj_ga, arr_ga)


# -- layer 3c: quality parity + engine integration -------------------------------

class TestQualityParity:
    def test_ta_style_flowshop_parity(self):
        """Array search quality tracks the object substrate on ta-fs-20x5."""
        bests = {"object": [], "array": []}
        for substrate in bests:
            for seed in (1, 2, 3):
                report = repro.solve(repro.SolverSpec(
                    instance="ta-fs-20x5-shaped", substrate=substrate,
                    ga={"population_size": 40},
                    termination={"max_generations": 40}, seed=seed))
                bests[substrate].append(report.best_objective)
        mean_obj = np.mean(bests["object"])
        mean_arr = np.mean(bests["array"])
        assert mean_arr <= 1.1 * mean_obj
        assert mean_obj <= 1.1 * mean_arr

    def test_array_improves_over_random(self, ft06_problem):
        ga = SimpleGA(ft06_problem,
                      GAConfig(population_size=30, substrate="array"),
                      MaxGenerations(25), seed=1)
        initial = ga.initialize().best().objective
        assert ga.run().best_objective <= initial


class TestEnginesAndApi:
    # NOTE: per-engine x substrate end-to-end smoke lives in the
    # conformance sweep (tests/test_api_solve.py::TestEngineSubstrateSweep)

    def test_island_tensor_mode_and_migration(self, ft06_problem):
        ga = IslandGA(ft06_problem, n_islands=3,
                      config=GAConfig(population_size=10, substrate="array"),
                      termination=MaxGenerations(15), seed=5)
        result = ga.run()
        assert result.extra["tensor_mode"] is True
        assert ga._tensor.shape == (3, 10, 36)
        for i, isl in enumerate(ga.islands):
            assert isl.arrays.matrix.base is ga._tensor
        # migration moved something: islands share their best eventually
        assert result.best_objective <= 70

    def test_cellular_array_rejects_asynchronous_update(self, ft06_problem):
        from repro.parallel.fine_grained import CellularGA
        with pytest.raises(ValueError, match="asynchronous"):
            CellularGA(ft06_problem, rows=3, cols=3,
                       config=GAConfig(substrate="array"),
                       update="asynchronous")

    def test_cli_list_derives_array_engines_from_registry(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "array: matrix-kernel generations" in out
        assert "island" in out and "two-level" in out

    def test_view_member_cache_tracks_in_place_mutation(self, ft06_problem):
        from repro.parallel.migration import integrate_immigrant_rows
        from repro import MigrationPolicy
        ga = SimpleGA(ft06_problem,
                      GAConfig(population_size=6, substrate="array"),
                      MaxGenerations(1), seed=0)
        ga.initialize()
        view = ga.population
        before = [ind.genome.copy() for ind in view]   # materialise cache
        rows = np.stack([ft06_problem.random_genome(np.random.default_rng(1))
                         for _ in range(2)])
        integrate_immigrant_rows(ga.arrays, rows, np.array([1.0, 2.0]),
                                 MigrationPolicy(rate=2),
                                 np.random.default_rng(2))
        # live view: members rebuild after the in-place write, matching
        # best()/stats() instead of serving the stale cache
        after = [ind.genome for ind in view]
        assert any(not np.array_equal(a, b) for a, b in zip(before, after))
        assert view.best().objective == 1.0

    def test_island_rejects_mixed_substrates(self, ft06_problem):
        with pytest.raises(ValueError, match="share one substrate"):
            IslandGA(ft06_problem, n_islands=2,
                     config=[GAConfig(substrate="array"), GAConfig()])

    def test_island_array_rejects_merge_on_stagnation(self, ft06_problem):
        with pytest.raises(ValueError, match="object"):
            IslandGA(ft06_problem, n_islands=2,
                     config=GAConfig(substrate="array"),
                     merge_on_stagnation=5)

    def test_untagged_engines_gated_by_spec_validation(self):
        # all six shipped engines now accept the array substrate; the
        # object-only gate still protects third-party engines registered
        # without the array_substrate tag
        from repro.api.registry import ENGINES, RegistryEntry
        ENGINES._entries["object-only-test"] = RegistryEntry(
            name="object-only-test", factory=lambda *a, **k: None)
        try:
            with pytest.raises(repro.SpecError,
                               match="object substrate only"):
                repro.SolverSpec(instance="ft06", engine="object-only-test",
                                 substrate="array").validate()
        finally:
            del ENGINES._entries["object-only-test"]
        with pytest.raises(repro.SpecError, match="unknown substrate"):
            repro.SolverSpec(instance="ft06", substrate="tensor").validate()

    def test_composite_genomes_gated(self):
        with pytest.raises(repro.SpecError, match="composite"):
            repro.solve(repro.SolverSpec(
                instance="fjsp-8x5-shaped", substrate="array",
                termination={"max_generations": 2}))

    def test_spec_json_round_trip_carries_substrate(self):
        spec = repro.SolverSpec(instance="ft06", substrate="array")
        again = repro.SolverSpec.from_json(spec.to_json())
        assert again == spec
        assert again.substrate == "array"

    def test_available_substrates(self):
        assert available_substrates() == ("object", "array")

    def test_cli_solve_substrate_flag(self, capsys):
        from repro.cli import main
        code = main(["solve", "ft06", "--substrate", "array",
                     "--generations", "3", "--population", "12"])
        assert code == 0
        assert "best=" in capsys.readouterr().out

    def test_cli_solve_island_substrate_flag(self, capsys):
        from repro.cli import main
        code = main(["solve", "ft06", "--engine", "island", "--substrate",
                     "array", "--generations", "3", "--population", "16"])
        assert code == 0
        assert "engine=island" in capsys.readouterr().out


# -- support structures ----------------------------------------------------------

class TestSupportStructures:
    def test_stable_topk_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            values = rng.integers(0, 6, size=rng.integers(1, 40)).astype(float)
            k = int(rng.integers(0, values.size + 2))
            expect = np.argsort(values, kind="stable")[:k]
            assert np.array_equal(stable_topk(values, k), expect)

    def test_elitist_merge_arrays_matches_object_merge(self, ft06_problem):
        rng = np.random.default_rng(3)
        ga = SimpleGA(ft06_problem, GAConfig(population_size=12),
                      MaxGenerations(1), seed=3)
        pop = ga.initialize()
        offspring = ga.make_offspring(pop, 8)
        ga._evaluate(offspring)
        for n_keep in (0, 2, 4, 12):
            merged = pop.elitist_merge(offspring, n_keep)
            expect_m, expect_o = merged.to_arrays(ft06_problem)
            state = ArrayState(*pop.to_arrays(ft06_problem))
            off_m = np.stack([ind.genome for ind in offspring])
            off_o = np.array([ind.objective for ind in offspring])
            got_m, got_o = elitist_merge_arrays(state, off_m, off_o,
                                                n_keep, 12)
            assert np.array_equal(got_m, expect_m)
            assert np.array_equal(got_o, expect_o)

    def test_array_population_view_is_population_compatible(self,
                                                            ft06_problem):
        ga = SimpleGA(ft06_problem,
                      GAConfig(population_size=9, substrate="array"),
                      MaxGenerations(2), seed=8)
        ga.run()
        view = ga.population
        assert isinstance(view, ArrayPopulationView)
        assert len(view) == 9
        materialized = Population(ind.copy() for ind in view)
        assert materialized.stats().as_dict() == \
            pytest.approx(view.stats().as_dict())
        assert view.best().objective == materialized.best().objective
        assert view.worst().objective == materialized.worst().objective
        with pytest.raises(TypeError, match="read-only"):
            view[0] = materialized[0]
        with pytest.raises(TypeError, match="read-only"):
            view.append(materialized[0])

    def test_population_array_adapters_round_trip(self, ft06_problem):
        rng = np.random.default_rng(1)
        pop = Population(
            repro.Individual(ft06_problem.random_genome(rng), objective=float(i))
            for i in range(6))
        matrix, objectives = pop.to_arrays(ft06_problem)
        again = Population.from_arrays(ft06_problem, matrix, objectives)
        for a, b in zip(pop, again):
            assert np.array_equal(a.genome, b.genome)
            assert a.objective == b.objective

    def test_random_matrix_draws_match_random_genome(self, ft06_problem):
        a = ft06_problem.random_matrix(5, np.random.default_rng(6))
        rng = np.random.default_rng(6)
        expect = np.stack([ft06_problem.random_genome(rng)
                           for _ in range(5)])
        assert np.array_equal(a, expect)
