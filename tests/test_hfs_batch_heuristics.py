"""Hybrid-flow-shop batch decoder conformance + constructive heuristics.

Three suites:

* batch-vs-scalar bit-equality of ``batch_completion_hybrid_flowshop``
  against ``decode_hybrid_flowshop`` over randomised instances (setups
  on/off, unrelated machines on/off, both genome modes, FIFO tie cases),
* regressions for the scalar-path fixes (per-machine setup context,
  pinned-assignment duration computation, frozen placeholder part),
* property tests for the constructive heuristics (Johnson optimal on
  2-machine flow shops, NEH never worse than the best of many random
  orders, heuristic engines + GA seeding end-to-end).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GAConfig, MaxGenerations, Problem, SimpleGA, SolverSpec, solve
from repro.encodings.assignment_sequence import HybridFlowShopEncoding
from repro.heuristics import (heuristic_genome, heuristic_order,
                              johnson_order, neh_order, spt_order)
from repro.instances import flexible_flow_shop
from repro.scheduling.batch import batch_completion_hybrid_flowshop
from repro.scheduling.flexible import decode_hybrid_flowshop
from repro.scheduling.flowshop import flowshop_makespan
from repro.scheduling.instance import FlexibleFlowShopInstance, FlowShopInstance


def _random_hfs(seed, *, setups, unrelated):
    gen = np.random.default_rng(seed)
    n_jobs = int(gen.integers(2, 8))
    stages = tuple(int(k) for k in gen.integers(1, 4, size=gen.integers(1, 4)))
    return flexible_flow_shop(n_jobs, stages, seed=seed % 997 + 1,
                              lo=1, hi=9, setups=setups, unrelated=unrelated)


def _scalar_completions(instance, perm, assignment):
    sched = decode_hybrid_flowshop(instance, perm, assignment)
    return sched.completion_times


class TestBatchScalarBitEquality:
    """The decoder pair must agree to the last bit, not a tolerance."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 2),
           st.booleans(), st.booleans(), st.booleans())
    def test_batch_matches_scalar_randomised(self, seed, setups, unrelated,
                                             use_assignment):
        inst = _random_hfs(seed, setups=setups, unrelated=unrelated)
        gen = np.random.default_rng(seed + 1)
        pop = int(gen.integers(1, 9))
        perms = np.stack([gen.permutation(inst.n_jobs) for _ in range(pop)])
        assigns = None
        if use_assignment:
            assigns = np.stack([np.stack([
                gen.integers(0, k, size=inst.n_jobs)
                for k in inst.machines_per_stage], axis=1)
                for _ in range(pop)]).astype(np.int64)
        batch = batch_completion_hybrid_flowshop(inst, perms, assigns)
        for r in range(pop):
            scalar = _scalar_completions(
                inst, perms[r], None if assigns is None else assigns[r])
            np.testing.assert_array_equal(np.asarray(batch[r]), scalar)

    def test_fifo_ties_match_scalar(self):
        # uniform durations force ubiquitous finish-time ties: the batch
        # stage hand-off must re-order by the same stable argsort as the
        # scalar FIFO rule, or downstream stages diverge
        inst = FlexibleFlowShopInstance(
            processing=np.full((6, 3), 2.0), machines_per_stage=(2, 2, 2))
        gen = np.random.default_rng(5)
        perms = np.stack([gen.permutation(6) for _ in range(16)])
        batch = batch_completion_hybrid_flowshop(inst, perms)
        for r in range(16):
            np.testing.assert_array_equal(
                np.asarray(batch[r]), _scalar_completions(inst, perms[r], None))

    def test_validate_rejects_non_permutation(self):
        inst = flexible_flow_shop(4, (2, 2), seed=3)
        bad = np.array([[0, 1, 2, 2]])
        with pytest.raises(ValueError, match="not permutations"):
            batch_completion_hybrid_flowshop(inst, bad, validate=True)

    def test_single_row_and_empty(self):
        inst = flexible_flow_shop(4, (2, 2), seed=3)
        one = batch_completion_hybrid_flowshop(inst, np.arange(4))
        assert one.shape == (1, 4)
        empty = batch_completion_hybrid_flowshop(
            inst, np.empty((0, 4), dtype=np.int64))
        assert empty.shape == (0, 4)

    def test_encoding_batch_completion_both_modes(self):
        inst = flexible_flow_shop(5, (2, 2), seed=9, setups=True)
        for use_assignment in (True, False):
            enc = HybridFlowShopEncoding(inst, use_assignment=use_assignment)
            problem = Problem(enc)
            rng = np.random.default_rng(2)
            genomes = [enc.random_genome(rng) for _ in range(6)]
            matrix = problem.stack_genomes(genomes)
            batch = enc.batch_completion(matrix)
            for r, g in enumerate(genomes):
                np.testing.assert_array_equal(
                    np.asarray(batch[r]), enc.decode(g).completion_times)


class TestScalarPathFixes:
    """Regressions for the latent bugs the PR fixed in flexible.py."""

    def test_setup_uses_chosen_machines_own_predecessor(self):
        # 1 stage, 2 machines, 3 jobs.  After jobs 0 and 1 occupy the two
        # machines, job 2's setup row must depend on which machine it
        # lands on: the old code threw the per-machine context away.
        setup = np.zeros((4, 3))
        setup[1, 2] = 50.0   # after job 0 -> job 2: huge
        setup[2, 2] = 1.0    # after job 1 -> job 2: tiny
        inst = FlexibleFlowShopInstance(
            processing=np.array([[4.0], [2.0], [3.0]]),
            machines_per_stage=(2,), setup=[setup])
        sched = decode_hybrid_flowshop(inst, np.array([0, 1, 2]), None)
        ops = {op.job: op for op in sched.operations}
        # job 1 finishes first (t=2) so machine 1 is the earliest-finish
        # choice for job 2, paying the tiny after-job-1 setup
        assert ops[2].machine == ops[1].machine
        assert ops[2].start == pytest.approx(2.0 + 1.0)
        assert ops[2].end == pytest.approx(6.0)

    def test_initial_setup_row_zero_applies_from_idle(self):
        setup = np.zeros((3, 2))
        setup[0, 0] = 7.0  # idle -> job 0
        inst = FlexibleFlowShopInstance(
            processing=np.array([[2.0], [2.0]]),
            machines_per_stage=(1,), setup=[setup])
        sched = decode_hybrid_flowshop(inst, np.array([0, 1]), None)
        first = min(sched.operations, key=lambda op: op.start)
        assert first.job == 0 and first.start == pytest.approx(7.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 2))
    def test_pinned_assignment_matches_earliest_finish_on_single_machines(
            self, seed):
        # with one machine per stage, pinning assignment to machine 0 and
        # earliest-finish selection must produce identical schedules --
        # the pinned fast path cannot drift from the full candidate scan
        gen = np.random.default_rng(seed)
        inst = flexible_flow_shop(int(gen.integers(2, 7)), (1, 1, 1),
                                  seed=seed % 991 + 1, setups=bool(seed % 2))
        perm = gen.permutation(inst.n_jobs)
        pinned = np.zeros((inst.n_jobs, inst.n_stages), dtype=np.int64)
        a = decode_hybrid_flowshop(inst, perm, pinned)
        b = decode_hybrid_flowshop(inst, perm, None)
        np.testing.assert_array_equal(a.completion_times,
                                      b.completion_times)

    def test_frozen_part_untouched_by_variation(self):
        inst = flexible_flow_shop(6, (2, 2), seed=4)
        enc = HybridFlowShopEncoding(inst, use_assignment=False)
        problem = Problem(enc)
        config = GAConfig(population_size=8).resolved(problem)
        rng = np.random.default_rng(0)
        a, b = enc.random_genome(rng), enc.random_genome(rng)
        for _ in range(20):
            c1, c2 = config.crossover(a, b, rng)
            m1 = config.mutation(c1, rng)
            for child in (c1, c2, m1):
                assert np.all(np.asarray(child[0]) == 0), \
                    "variation touched the frozen placeholder part"
                assert sorted(np.asarray(child[1]).tolist()) == list(range(6))
            a, b = c1, m1

    def test_frozen_part_untouched_on_array_substrate(self):
        inst = flexible_flow_shop(6, (2, 2), seed=4)
        enc = HybridFlowShopEncoding(inst, use_assignment=False)
        problem = Problem(enc)
        ga = SimpleGA(problem, GAConfig(population_size=10,
                                        substrate="array"),
                      MaxGenerations(4), seed=1)
        result = ga.run()
        matrix = ga.arrays.matrix
        n, g = inst.n_jobs, inst.n_stages
        assert np.all(np.asarray(matrix)[:, :n * g] == 0)
        assert result.best.objective > 0


class TestConstructiveHeuristics:
    def test_johnson_optimal_on_two_machine_flow_shops(self):
        for seed in range(8):
            gen = np.random.default_rng(seed)
            p = gen.integers(1, 20, size=(6, 2)).astype(float)
            inst = FlowShopInstance(processing=p)
            best = min(flowshop_makespan(inst, np.asarray(perm))
                       for perm in itertools.permutations(range(6)))
            got = flowshop_makespan(inst, johnson_order(p))
            assert got == pytest.approx(best)

    def test_johnson_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="duration matrix"):
            johnson_order(np.ones((4, 3)))

    def test_spt_order_is_stable_sort_by_total(self):
        p = np.array([[3.0, 1.0], [1.0, 1.0], [2.0, 2.0], [1.0, 1.0]])
        assert spt_order(p).tolist() == [1, 3, 0, 2]

    def test_neh_not_worse_than_random_best(self):
        inst = FlowShopInstance(processing=np.random.default_rng(12)
                                .integers(1, 50, size=(10, 5)).astype(float))
        neh_val = flowshop_makespan(inst, neh_order(inst.processing))
        gen = np.random.default_rng(0)
        random_best = min(
            flowshop_makespan(inst, gen.permutation(10)) for _ in range(50))
        assert neh_val <= random_best

    def test_heuristic_order_counts_neh_evaluations(self):
        problem = Problem(HybridFlowShopEncoding(
            flexible_flow_shop(5, (2, 2), seed=7)))
        order, n_evals = heuristic_order("neh", problem)
        assert sorted(order.tolist()) == list(range(5))
        assert n_evals == sum(range(1, 6))  # insertion scans: 1+2+3+4+5
        for rule in ("johnson", "spt", "edd"):
            _, zero = heuristic_order(rule, problem)
            assert zero == 0

    def test_unknown_heuristic_raises(self):
        problem = Problem(HybridFlowShopEncoding(
            flexible_flow_shop(4, (2,), seed=1)))
        with pytest.raises(ValueError, match="unknown heuristic"):
            heuristic_order("cds", problem)

    def test_genome_mapping_reproduces_order_makespan(self):
        # the HFS genome mapping records earliest-finish machine choices;
        # replaying them pinned must reproduce the identical schedule
        inst = flexible_flow_shop(7, (2, 3), seed=5, setups=True)
        problem = Problem(HybridFlowShopEncoding(inst))
        order, _ = heuristic_order("neh", problem)
        genome = heuristic_genome("neh", problem)
        direct = decode_hybrid_flowshop(inst, order, None)
        assert float(problem.evaluate(genome)) == direct.makespan


class TestHeuristicEnginesAndSeeding:
    def test_neh_engine_solves_hfs(self):
        report = solve(SolverSpec(instance="hfs-10x3x2-shaped", engine="neh",
                                  termination={"max_generations": 1}))
        assert report.engine == "neh"
        assert report.generations == 1
        assert report.extra["heuristic"] == "neh"
        sched = report.schedule()
        sched.audit(report.problem.encoding.instance)
        assert sched.makespan == report.best_objective

    def test_heuristic_engines_deterministic_across_seeds(self):
        for engine in ("johnson", "spt", "edd"):
            a = solve(SolverSpec(instance="hfs-10x3x2-shaped", engine=engine,
                                 termination={"max_generations": 1}, seed=1))
            b = solve(SolverSpec(instance="hfs-10x3x2-shaped", engine=engine,
                                 termination={"max_generations": 1}, seed=99))
            assert a.best_objective == b.best_objective
            assert a.to_dict()["best_genome"] == b.to_dict()["best_genome"]

    def test_neh_seeding_beats_random_init_on_paired_seeds(self):
        base = dict(instance="hfs-10x3x2-shaped",
                    ga={"population_size": 30},
                    termination={"max_generations": 15})
        wins = []
        for seed in range(4):
            random_init = solve(SolverSpec(**base, seed=seed))
            seeded = solve(SolverSpec(**dict(
                base, ga={"population_size": 30, "seeding": "neh"}),
                seed=seed))
            assert seeded.best_objective <= random_init.best_objective + 1e-9
            wins.append(seeded.best_objective < random_init.best_objective)
        assert any(wins), "NEH seeding never strictly improved the makespan"

    def test_seeding_works_on_array_substrate(self):
        spec = SolverSpec(instance="hfs-10x3x2-shaped", substrate="array",
                          ga={"population_size": 20, "seeding": "neh"},
                          termination={"max_generations": 5}, seed=3)
        neh_alone = solve(SolverSpec(instance="hfs-10x3x2-shaped",
                                     engine="neh",
                                     termination={"max_generations": 1}))
        report = solve(spec)
        assert report.best_objective <= neh_alone.best_objective

    def test_unknown_seeding_name_is_spec_error(self):
        from repro.api.registry import SpecError
        with pytest.raises(SpecError, match="seeding"):
            solve(SolverSpec(instance="ft06",
                             ga={"population_size": 8, "seeding": "cds"},
                             termination={"max_generations": 1}))

    def test_all_six_ga_engines_run_hfs_on_array_substrate(self):
        for engine, params in (("simple", {}),
                               ("master-slave", {"backend": "serial"}),
                               ("island", {"islands": 2}),
                               ("cellular", {"rows": 3, "cols": 3}),
                               ("hybrid", {"islands": 2, "rows": 3,
                                           "cols": 3}),
                               ("two-level", {"islands": 2})):
            report = solve(SolverSpec(
                instance="hfs-10x3x2-shaped", engine=engine,
                substrate="array", engine_params=params,
                ga={"population_size": 18},
                termination={"max_generations": 3}, seed=6))
            report.schedule().audit(report.problem.encoding.instance)
            assert report.extra.get("substrate") == "array"

    def test_fjsp_composite_stays_gated_on_array_substrate(self):
        from repro.api.registry import SpecError
        with pytest.raises(SpecError, match="composite"):
            solve(SolverSpec(instance="fjsp-8x5-shaped", substrate="array",
                             termination={"max_generations": 2}))
