"""Strict Array-API conformance for the portable kernels.

Runs only when ``array-api-strict`` is installed (a dedicated CI leg
installs it; the tests skip cleanly elsewhere).  The strict namespace
implements *exactly* the Array-API standard -- no NumPy extras, no
implicit conversions -- so driving the portable kernels through
:meth:`ArrayBackend.from_namespace` proves they contain no hidden
NumPy-isms, which is the same property a cupy/jax backend relies on.
"""

import numpy as np
import pytest

array_api_strict = pytest.importorskip("array_api_strict")

from repro.core.backend import ArrayBackend, use_backend  # noqa: E402
from repro.core.substrate import stable_topk  # noqa: E402
from repro.instances import get_instance  # noqa: E402
from repro.scheduling.flowshop import (flowshop_makespan,  # noqa: E402
                                       flowshop_makespan_population)

STRICT = ArrayBackend.from_namespace(array_api_strict, name="strict")


class TestStrictNamespace:
    def test_flowshop_makespan_population_runs_strict(self):
        """The flagship portable kernel runs unchanged on the strict
        namespace and matches both the numpy path and the scalar
        reference decoder."""
        instance = get_instance("ta-fs-20x5-shaped")
        rng = np.random.default_rng(11)
        perms = np.stack([rng.permutation(instance.n_jobs)
                          for _ in range(8)])
        reference = flowshop_makespan_population(instance, perms)
        with use_backend(STRICT):
            strict = flowshop_makespan_population(
                instance, array_api_strict.asarray(perms))
        np.testing.assert_array_equal(np.asarray(strict), reference)
        for row, cmax in zip(perms, np.asarray(strict)):
            assert flowshop_makespan(instance, row) == cmax

    def test_stable_topk_runs_strict(self):
        values = np.asarray([4.0, 1.0, 3.0, 1.0, 2.0, 1.0])
        reference = stable_topk(values, 4)
        with use_backend(STRICT):
            strict = stable_topk(array_api_strict.asarray(values), 4)
        np.testing.assert_array_equal(np.asarray(strict), reference)
        # ties keep first-index order (the stable contract)
        np.testing.assert_array_equal(np.asarray(strict), [1, 3, 5, 4])

    def test_adapter_extensions_resolve_on_strict(self):
        xp = STRICT.xp
        x = array_api_strict.asarray([3, 1, 2, 1])
        np.testing.assert_array_equal(np.asarray(xp.stable_argsort(x)),
                                      [1, 3, 2, 0])
        copied = xp.copy(x)
        assert copied is not x
        np.testing.assert_array_equal(np.asarray(copied), np.asarray(x))
