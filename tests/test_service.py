"""End-to-end tests for the solver service (``repro.service``).

Every HTTP test talks to a real :class:`SolverServer` running on a
background thread (``serve_in_thread``) through ``urllib`` -- the same
wire a remote client would use.  Unit tests for the JobStore and event
parsing ride along at the bottom.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import SolverSpec, solve
from repro.api.components import (disable_instance_cache,
                                  enable_instance_cache,
                                  instance_cache_stats, resolve_instance)
from repro.core.ga import GAConfig
from repro.extensions.dynamic import (JobArrival, MachineBreakdown,
                                      PredictiveReactiveScheduler,
                                      demo_event_stream)
from repro.instances import get_instance
from repro.service import SolverServer, serve_in_thread
from repro.service.jobs import JobStore, job_id_for
from repro.service.pool import PoolSaturated, WorkerPool, _init_worker
from repro.service.sessions import event_from_dict
from repro.api.registry import SpecError

FAST = SolverSpec(instance="ft06", ga={"population_size": 10},
                  termination={"max_generations": 2}, seed=3)

#: keeps a single worker busy for ~1.5s: every evaluation burns 50ms of
#: CPU, so even the initial population (8 evals) outlives any request
SLOW = SolverSpec(instance="ft06", ga={"population_size": 8},
                  termination={"time_limit": 1.5}, eval_cost=0.05,
                  seed=91)


# -- wire helpers -----------------------------------------------------------------

def req(base, method, path, payload=None, timeout=60.0):
    """One HTTP request; returns (status, headers, parsed JSON body)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), json.loads(body or b"{}")


def wait_terminal(base, job_id, timeout=60.0):
    """Poll ``GET /jobs/{id}`` until the job reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = req(base, "GET", f"/jobs/{job_id}")
        if body.get("state") in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal within {timeout}s")


def sse_frames(base, job_id, timeout=60.0):
    """Consume ``GET /jobs/{id}/stream`` to EOF; returns (event, data) list."""
    request = urllib.request.Request(f"{base}/jobs/{job_id}/stream")
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        raw = resp.read().decode("utf-8")
    frames = []
    for chunk in raw.split("\n\n"):
        if not chunk.strip():
            continue
        event = data = None
        for line in chunk.splitlines():
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        frames.append((event, data))
    return frames


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(workers=2, queue_depth=8, cache_size=32)
    yield handle.base_url
    handle.stop()


# -- jobs: submit / poll / cache / stream -----------------------------------------

class TestSolveEndpoint:
    def test_submit_poll_result_matches_in_process_solve(self, server):
        status, _, body = req(server, "POST", "/solve", FAST.to_dict())
        assert status == 202
        assert body["state"] == "queued" and body["cached"] is False
        assert body["job_id"] == job_id_for(FAST.cache_key())
        final = wait_terminal(server, body["job_id"])
        assert final["state"] == "done"
        assert final["elapsed"] > 0
        # solves are deterministic in (spec, seed): the service result is
        # bit-identical to calling the facade in process
        local = solve(FAST)
        assert final["result"]["best_objective"] == local.best_objective
        assert final["result"]["best_genome"] == \
            local.to_dict()["best_genome"]

    def test_duplicate_submit_served_from_cache(self, server):
        req(server, "POST", "/solve", FAST.to_dict())
        wait_terminal(server, job_id_for(FAST.cache_key()))
        _, _, before = req(server, "GET", "/metrics")
        status, _, body = req(server, "POST", "/solve", FAST.to_dict())
        assert status == 200  # idempotent resubmit answers immediately
        assert body["cached"] is True and body["state"] == "done"
        assert body["job_id"] == job_id_for(FAST.cache_key())
        assert body["result"]["best_objective"] > 0
        _, _, after = req(server, "GET", "/metrics")
        # no re-solve happened; the hit is accounted
        assert after["solves_executed"] == before["solves_executed"]
        assert after["cache"]["hits"] == before["cache"]["hits"] + 1

    def test_heuristic_engine_takes_fast_answer_tier(self, server):
        # heuristic engines are answered inline: POST /solve returns 200
        # with the finished result, no pool round trip, no polling needed
        spec = SolverSpec(instance="hfs-10x3x2-shaped", engine="neh",
                          termination={"max_generations": 1})
        _, _, before = req(server, "GET", "/metrics")
        status, _, body = req(server, "POST", "/solve", spec.to_dict())
        assert status == 200
        assert body["state"] == "done" and body["cached"] is False
        assert body["result"]["best_objective"] == \
            solve(spec).best_objective
        _, _, after = req(server, "GET", "/metrics")
        assert after["solves_executed"] == before["solves_executed"] + 1
        # no worker slot was consumed at any point
        assert after["queue"]["pending"] == before["queue"]["pending"]
        # resubmission is a plain cache hit
        status, _, again = req(server, "POST", "/solve", spec.to_dict())
        assert status == 200 and again["cached"] is True

    def test_stream_replays_generations_then_done(self, server):
        spec = FAST.replace(seed=17, termination={"max_generations": 3})
        _, _, body = req(server, "POST", "/solve", spec.to_dict())
        frames = sse_frames(server, body["job_id"])  # follows live to EOF
        events = [e for e, _ in frames]
        assert events[0] == "running"
        assert events[-1] == "done"
        generations = [d["generation"] for e, d in frames
                       if e == "generation"]
        # generation 0 (initial population) through max_generations
        assert generations == sorted(generations)
        assert generations[0] == 0 and generations[-1] == 3
        for event, data in frames:
            if event == "generation":
                assert data["best"] <= data["mean"] <= data["worst"]
                assert data["evaluations"] > 0
        done = frames[-1][1]
        assert done["best_objective"] > 0 and done["elapsed"] > 0
        # a second stream of the now-terminal job replays the same frames
        assert sse_frames(server, body["job_id"]) == frames

    def test_failed_solve_is_a_structured_job_failure(self, server):
        # passes validate() (keys are known) but fails at resolve time
        # inside the worker: weights must be true or an [lo, hi] pair
        spec = FAST.replace(seed=23, instance_params={"weights": [3]})
        status, _, body = req(server, "POST", "/solve", spec.to_dict())
        assert status == 202
        final = wait_terminal(server, body["job_id"])
        assert final["state"] == "failed"
        assert "instance_params" in final["error"]
        # failures are not cached: resubmitting retries as a fresh job
        status, _, retry = req(server, "POST", "/solve", spec.to_dict())
        assert status == 202 and retry["cached"] is False
        wait_terminal(server, retry["job_id"])

    def test_invalid_spec_rejected_with_400(self, server):
        status, _, body = req(server, "POST", "/solve",
                              {"instance": "nope-instance"})
        assert status == 400
        assert "unknown instance" in body["error"]
        status, _, body = req(server, "POST", "/solve",
                              {"instance": "ft06", "engine": "teleport"})
        assert status == 400
        assert "unknown engine" in body["error"]

    def test_malformed_bodies_are_400(self, server):
        request = urllib.request.Request(
            server + "/solve", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

    def test_unknown_job_and_route_are_404(self, server):
        assert req(server, "GET", "/jobs/j-ffffffffffffffff")[0] == 404
        assert req(server, "GET", "/jobs/j-ffffffffffffffff/stream")[0] == 404
        assert req(server, "GET", "/no/such/route")[0] == 404

    def test_healthz_and_metrics_shapes(self, server):
        status, _, health = req(server, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["workers"] == 2 and health["queue_depth"] == 8
        _, _, metrics = req(server, "GET", "/metrics")
        assert set(metrics["jobs"]) == {"queued", "running", "done",
                                        "failed", "cancelled"}
        assert metrics["cache"]["capacity"] == 32
        assert metrics["queue"]["capacity"] == 10
        assert metrics["solve_latency"]["count"] >= 1
        assert metrics["solve_latency"]["mean"] > 0
        assert sum(metrics["solve_latency"]["buckets"].values()) \
            == metrics["solve_latency"]["count"]


class TestSweepEndpoint:
    def test_sweep_expands_dedupes_and_reuses_cache(self, server):
        # make sure the base spec's result is already cached
        req(server, "POST", "/solve", FAST.to_dict())
        wait_terminal(server, job_id_for(FAST.cache_key()))
        sweep = {"base": FAST.to_dict(),
                 "engines": ["simple", "serial"],  # alias == duplicate
                 "seeds": [3, 4]}
        status, _, body = req(server, "POST", "/sweep", sweep)
        assert status == 202
        # raw product 2x2=4; 'serial' resolves to 'simple', so 2 survive
        assert body["submitted"] == 2 and body["deduplicated"] == 2
        assert body["cached"] == 1  # seed=3 is the already-solved FAST
        for job in body["jobs"]:
            final = wait_terminal(server, job["job_id"])
            assert final["state"] == "done"

    def test_sweep_validates_like_solve(self, server):
        status, _, body = req(server, "POST", "/sweep",
                              {"engines": ["simple"]})
        assert status == 400 and "base" in body["error"]


# -- backpressure: saturation, Retry-After, cancellation --------------------------

class TestBackpressure:
    @pytest.fixture(scope="class")
    def tiny(self):
        handle = serve_in_thread(workers=1, queue_depth=3)
        yield handle.base_url
        handle.stop()

    def test_saturation_cancellation_and_drain(self, tiny):
        # fill the pool: 1 slow running + 3 queued = capacity 4
        _, _, slow = req(tiny, "POST", "/solve", SLOW.to_dict())
        cheap = [FAST.replace(seed=100 + i) for i in range(3)]
        queued = [req(tiny, "POST", "/solve", s.to_dict())[2]
                  for s in cheap]
        # one more distinct spec cannot be admitted
        status, headers, body = req(tiny, "POST", "/solve",
                                    FAST.replace(seed=999).to_dict())
        assert status == 429
        assert "saturated" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        # a saturated sweep is refused whole, nothing half-admitted
        _, _, before = req(tiny, "GET", "/metrics")
        sweep = {"base": FAST.to_dict(), "seeds": [801, 802]}
        status, headers, body = req(tiny, "POST", "/sweep", sweep)
        assert status == 429 and "Retry-After" in headers
        _, _, after = req(tiny, "GET", "/metrics")
        assert after["jobs"] == before["jobs"]
        # ...but a duplicate of an in-flight job coalesces, no slot needed
        status, _, body = req(tiny, "POST", "/solve", SLOW.to_dict())
        assert status == 202
        assert body["cached"] is True and body["job_id"] == slow["job_id"]
        # cancel the most recently queued job (not yet handed to a worker)
        victim = queued[-1]["job_id"]
        status, _, body = req(tiny, "DELETE", f"/jobs/{victim}")
        assert status == 200 and body["state"] == "cancelled"
        assert wait_terminal(tiny, victim)["state"] == "cancelled"
        # the running job cannot be preempted
        status, _, body = req(tiny, "DELETE", f"/jobs/{slow['job_id']}")
        assert status == 409
        # the freed slot admits new work again
        status, _, body = req(tiny, "POST", "/solve",
                              FAST.replace(seed=999).to_dict())
        assert status == 202
        # everything admitted eventually drains to a terminal state
        assert wait_terminal(tiny, slow["job_id"])["state"] == "done"
        assert wait_terminal(tiny, body["job_id"])["state"] == "done"
        for j in queued[:-1]:
            assert wait_terminal(tiny, j["job_id"])["state"] == "done"
        # deleting an already-terminal job reports its state, idempotently
        status, _, body = req(tiny, "DELETE", f"/jobs/{slow['job_id']}")
        assert status == 200 and body["state"] == "done"


# -- dynamic sessions -------------------------------------------------------------

def event_payload(event):
    """Serialise a dynamic Event the way a remote client would."""
    if isinstance(event, JobArrival):
        return {"type": "arrival", "time": event.time,
                "processing": list(event.processing)}
    assert isinstance(event, MachineBreakdown)
    return {"type": "breakdown", "time": event.time,
            "machine": event.machine, "duration": event.duration}


class TestSessions:
    PARAMS = {"instance": "ta-fs-20x5-shaped", "population": 16,
              "generations": 3, "seed": 5}

    def test_session_replays_e25_scenario_over_http(self, server):
        """The served session equals the in-process predictive-reactive
        loop, event for event, and honours the E25 freeze invariant."""
        instance = get_instance(self.PARAMS["instance"])
        events = list(demo_event_stream(instance, n_events=2, seed=5))

        status, _, created = req(server, "POST", "/sessions", self.PARAMS)
        assert status == 201
        sid = created["session_id"]
        assert sorted(created["sequence"]) == list(range(instance.n_jobs))

        # in-process reference with identical parameters
        sched = PredictiveReactiveScheduler(
            instance, config=GAConfig(population_size=16),
            generations=3, seed=5, warm_start=True)
        _, cmax0 = sched.start()
        assert created["predicted_makespan"] == cmax0

        for event in events:
            status, _, got = req(server, "POST", f"/sessions/{sid}/events",
                                 event_payload(event))
            assert status == 200
            point = sched.handle_event(event)
            # E25 freeze invariant, now over the wire
            assert 0 <= got["frozen"] <= got["jobs_remaining"]
            assert got["frozen"] == point.frozen
            assert got["jobs_remaining"] == point.jobs_remaining
            assert got["predicted_makespan"] == point.predicted_makespan
            assert got["sequence"] == [int(j) for j in sched.sequence]
            assert sorted(got["sequence"]) == \
                list(range(got["jobs_remaining"]))

        status, _, state = req(server, "GET", f"/sessions/{sid}")
        assert status == 200
        assert state["events_handled"] == len(events)
        assert len(state["reschedules"]) == len(events)
        for p in state["reschedules"]:
            assert 0 <= p["frozen"] <= p["jobs_remaining"]

        status, _, _ = req(server, "DELETE", f"/sessions/{sid}")
        assert status == 200
        assert req(server, "GET", f"/sessions/{sid}")[0] == 404

    def test_out_of_order_event_is_rejected(self, server):
        _, _, created = req(server, "POST", "/sessions", self.PARAMS)
        sid = created["session_id"]
        ok = {"type": "breakdown", "time": 50.0, "machine": 0,
              "duration": 10.0}
        assert req(server, "POST", f"/sessions/{sid}/events", ok)[0] == 200
        late = dict(ok, time=10.0)
        status, _, body = req(server, "POST", f"/sessions/{sid}/events",
                              late)
        assert status == 400
        assert "non-decreasing" in body["error"]
        req(server, "DELETE", f"/sessions/{sid}")

    def test_session_validation_errors(self, server):
        cases = [
            ({}, "instance"),
            ({"instance": "nope"}, "unknown instance"),
            ({"instance": "ft06"}, "FlowShopInstance"),  # job shop
            (dict(self.PARAMS, bogus=1), "unknown field"),
        ]
        for params, needle in cases:
            status, _, body = req(server, "POST", "/sessions", params)
            assert status == 400, params
            assert needle in body["error"]
        _, _, created = req(server, "POST", "/sessions", self.PARAMS)
        sid = created["session_id"]
        status, _, body = req(server, "POST", f"/sessions/{sid}/events",
                              {"type": "eclipse", "time": 1.0})
        assert status == 400 and "unknown type" in body["error"]
        req(server, "DELETE", f"/sessions/{sid}")
        assert req(server, "DELETE", f"/sessions/{sid}")[0] == 404


# -- unit: job store --------------------------------------------------------------

class TestJobStore:
    def test_idempotent_submit_and_cache_accounting(self):
        store = JobStore(cache_size=4)
        job, created = store.submit({"seed": 1}, "a" * 64)
        assert created and job.state == "queued"
        again, created = store.submit({"seed": 1}, "a" * 64)
        assert not created and again is job  # in flight -> coalesced
        assert store.coalesced == 1
        store.mark_running(job.id)
        store.finish(job.id, {"ok": True, "report": {"best_objective": 9},
                              "elapsed": 0.5})
        assert job.state == "done" and job.result["best_objective"] == 9
        _, created = store.submit({"seed": 1}, "a" * 64)
        assert not created and store.cache_hits == 1
        metrics = store.metrics()
        assert metrics["cache"]["hit_rate"] == pytest.approx(2 / 3)
        assert metrics["solve_latency"]["count"] == 1
        assert store.mean_latency() == pytest.approx(0.5)

    def test_failed_jobs_are_retried_not_cached(self):
        store = JobStore()
        job, _ = store.submit({}, "b" * 64)
        store.finish(job.id, {"ok": False, "error": "boom", "elapsed": 0.1})
        assert job.state == "failed" and job.error == "boom"
        retry, created = store.submit({}, "b" * 64)
        assert created and retry is not job and retry.state == "queued"

    def test_eviction_drops_only_terminal_jobs(self):
        store = JobStore(cache_size=2)
        done1, _ = store.submit({}, "1" * 64)
        store.finish(done1.id, {"ok": True, "report": {}, "elapsed": 0.1})
        live, _ = store.submit({}, "2" * 64)   # queued: never evicted
        done2, _ = store.submit({}, "3" * 64)
        store.finish(done2.id, {"ok": True, "report": {}, "elapsed": 0.1})
        live2, _ = store.submit({}, "4" * 64)  # overflow by 2 -> both done
        assert store.get(done1.id) is None     # jobs evicted, live jobs
        assert store.get(done2.id) is None     # held regardless
        assert store.get(live.id) is live
        assert store.get(live2.id) is live2

    def test_cancel_only_applies_to_queued_jobs(self):
        store = JobStore()
        job, _ = store.submit({}, "c" * 64)
        store.mark_running(job.id)
        assert not store.cancel(job.id)
        queued, _ = store.submit({}, "d" * 64)
        assert store.cancel(queued.id) and queued.state == "cancelled"
        # terminal jobs ignore further transitions
        store.finish(queued.id, {"ok": True, "report": {}})
        assert queued.state == "cancelled" and queued.result is None


# -- unit: worker pool admission --------------------------------------------------

class TestWorkerPoolAdmission:
    def test_capacity_is_workers_plus_queue_depth(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        try:
            slow = SLOW.to_dict()
            pool.submit("j-1", slow)
            pool.submit("j-2", slow)
            with pytest.raises(PoolSaturated, match="saturated"):
                pool.submit("j-3", slow)
            assert pool.pending == 2 and pool.waiting == 1
        finally:
            pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit("j-4", slow)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            WorkerPool(queue_depth=-1)


# -- unit: per-worker instance cache ----------------------------------------------

class TestWorkerInstanceCache:
    """Long-lived workers memoise resolved instances (and with them the
    decode tables lazily attached to instance objects) in a bounded LRU."""

    def teardown_method(self):
        disable_instance_cache()

    def test_init_worker_enables_the_cache(self):
        _init_worker(None)
        stats = instance_cache_stats()
        assert stats["enabled"] is True and stats["maxsize"] == 32

    def test_repeat_resolution_is_a_cache_hit_sharing_decode_tables(self):
        enable_instance_cache(maxsize=4)
        spec = SolverSpec(instance="fjsp-8x5-shaped",
                          termination={"max_generations": 1})
        first = resolve_instance(spec)
        sentinel = object()  # stand-in for the memoised FJSP decode tables
        first._fjsp_batch_tables = sentinel
        second = resolve_instance(spec)
        assert second is first  # same object => memoised tables survive
        assert second._fjsp_batch_tables is sentinel
        stats = instance_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_key_includes_instance_params(self):
        enable_instance_cache(maxsize=4)
        plain = SolverSpec(instance="ft06",
                           termination={"max_generations": 1})
        due = plain.replace(instance_params={"due_tau": 1.5})
        assert resolve_instance(plain) is not resolve_instance(due)
        assert instance_cache_stats()["misses"] == 2
        assert resolve_instance(due) is resolve_instance(due)
        assert instance_cache_stats()["hits"] >= 2

    def test_lru_bound_evicts_oldest(self):
        enable_instance_cache(maxsize=2)
        names = ["ft06", "ta-fs-20x5-shaped", "ta-os-5x5-shaped"]
        for name in names:
            resolve_instance(SolverSpec(
                instance=name, termination={"max_generations": 1}))
        stats = instance_cache_stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        # the evicted (oldest) entry resolves fresh -> a miss, not a hit
        resolve_instance(SolverSpec(instance="ft06",
                                    termination={"max_generations": 1}))
        assert instance_cache_stats()["misses"] == 4

    def test_disabled_cache_resolves_fresh(self):
        disable_instance_cache()
        spec = SolverSpec(instance="ft06",
                          termination={"max_generations": 1})
        assert resolve_instance(spec) is not resolve_instance(spec)
        assert instance_cache_stats()["enabled"] is False


# -- unit: event parsing ----------------------------------------------------------

class TestEventFromDict:
    def test_round_trips_both_event_kinds(self):
        arrival = event_from_dict({"type": "arrival", "time": 3.0,
                                   "processing": [1, 2, 3]})
        assert isinstance(arrival, JobArrival)
        assert arrival.processing == (1.0, 2.0, 3.0)
        brk = event_from_dict({"type": "breakdown", "time": 4,
                               "machine": 1, "duration": 9.5})
        assert isinstance(brk, MachineBreakdown)
        assert brk.machine == 1 and brk.duration == 9.5

    def test_shape_errors_are_spec_errors(self):
        for bad, needle in [
            ([], "JSON object"),
            ({"type": "solar-flare", "time": 1}, "unknown type"),
            ({"type": "arrival"}, "time"),
            ({"type": "arrival", "time": 1}, "arrival payload"),
            ({"type": "breakdown", "time": 1}, "breakdown payload"),
            ({"type": "breakdown", "time": "soon", "machine": 0,
              "duration": 1}, "number"),
        ]:
            with pytest.raises(SpecError, match=needle):
                event_from_dict(bad)


# -- server lifecycle -------------------------------------------------------------

class TestServerLifecycle:
    def test_ephemeral_port_and_clean_stop(self):
        handle = serve_in_thread(workers=1, queue_depth=1)
        try:
            assert handle.server.port != 0
            status, _, _ = req(handle.base_url, "GET", "/healthz")
            assert status == 200
        finally:
            handle.stop()
        handle.stop()  # idempotent

    def test_server_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SolverServer(cache_size=0)
