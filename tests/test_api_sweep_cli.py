"""Tests for the sweep service and the facade-backed CLI."""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import ScenarioSweep, SolverService, SolverSpec, SpecError
from repro.api.sweep import _solve_payload as _real_solve_payload
from repro.cli import main

BASE = SolverSpec(instance="ft06", ga={"population_size": 10},
                  termination={"max_generations": 2}, seed=3)

#: a spec carrying this seed hard-kills its worker process (os._exit
#: skips all exception handling, modelling a segfault in native code)
POISON_SEED = 666


def _lethal_solve_payload(payload):
    # module-level so the pooled future can pickle it by reference; the
    # forked worker inherits this module and resolves the same function
    _index, spec = payload
    if spec.get("seed") == POISON_SEED:
        os._exit(13)
    return _real_solve_payload(payload)


class TestScenarioSweep:
    def test_product_expansion_order_and_count(self):
        sweep = ScenarioSweep(base=BASE, instances=("ft06", "la01-shaped"),
                              engines=("simple", "island"), seeds=(1, 2))
        specs = sweep.specs()
        assert len(specs) == len(sweep) == 8
        assert specs[0].instance == "ft06" and specs[0].engine == "simple"
        assert specs[0].seed == 1 and specs[1].seed == 2
        assert specs[-1].instance == "la01-shaped"
        assert specs[-1].engine == "island" and specs[-1].seed == 2

    def test_empty_axes_keep_base_values(self):
        specs = ScenarioSweep(base=BASE).specs()
        assert len(specs) == 1
        assert specs[0] == BASE

    def test_duplicate_expansions_are_deduplicated(self):
        """Satellite: expansions with equal cache keys -- a repeated axis
        value or an engine alias next to its canonical name -- collapse
        to the first occurrence; ``len(sweep)`` stays the raw product."""
        sweep = ScenarioSweep(base=BASE, engines=("simple", "serial"),
                              seeds=(1, 1, 2))
        specs = sweep.specs()
        assert len(sweep) == 6          # raw product, the upper bound
        assert len(specs) == 2          # 'serial' is an alias of 'simple'
        assert [s.seed for s in specs] == [1, 2]
        assert all(s.engine == "simple" for s in specs)
        assert len({s.cache_key() for s in specs}) == 2

    def test_round_trip(self):
        sweep = ScenarioSweep(base=BASE, engines=("simple", "cellular"),
                              seeds=(7,))
        again = ScenarioSweep.from_dict(
            json.loads(json.dumps(sweep.to_dict())))
        assert again == sweep

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown field"):
            ScenarioSweep.from_dict({"base": BASE.to_dict(),
                                     "instance": ["ft06"]})
        with pytest.raises(SpecError, match="base"):
            ScenarioSweep.from_dict({"engines": ["simple"]})

    def test_from_dict_malformed_axes_are_spec_errors(self):
        # null means "don't vary this axis"; bad shapes stay actionable
        sweep = ScenarioSweep.from_dict({"base": BASE.to_dict(),
                                         "seeds": None})
        assert sweep.seeds == ()
        with pytest.raises(SpecError, match="seeds"):
            ScenarioSweep.from_dict({"base": BASE.to_dict(),
                                     "seeds": ["a"]})
        with pytest.raises(SpecError, match="must be a list"):
            ScenarioSweep.from_dict({"base": BASE.to_dict(),
                                     "engines": "simple"})

    def test_null_component_names_stay_actionable(self):
        # a JSON spec can hold null where a name belongs; the error path
        # itself must not crash (suggest() guards non-strings)
        with pytest.raises(SpecError, match="unknown engine"):
            SolverSpec(instance="ft06", engine=None).validate()
        with pytest.raises(SpecError, match="unknown instance"):
            SolverSpec.from_dict({"instance": None}).validate()


class TestSolverService:
    def test_serial_run_streams_ordered_results(self):
        sweep = ScenarioSweep(base=BASE, engines=("simple", "island"),
                              seeds=(1, 2))
        results = list(SolverService(n_workers=0).run(sweep.specs()))
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert all(r.ok for r in results)
        assert all(r.report["best_objective"] > 0 for r in results)
        assert "best=" in results[0].summary()

    def test_failures_streamed_not_raised(self):
        specs = [BASE, BASE.replace(instance="does-not-exist"), BASE]
        results = list(SolverService(n_workers=0).run(specs))
        assert [r.ok for r in results] == [True, False, True]
        assert "unknown instance" in results[1].error
        assert "ERROR" in results[1].summary()

    def test_process_pool_matches_serial(self):
        sweep = ScenarioSweep(base=BASE, engines=("simple", "cellular"))
        serial = list(SolverService(n_workers=0).run(sweep.specs()))
        pooled = list(SolverService(n_workers=2).run(sweep.specs()))
        assert [r.report["best_objective"] for r in pooled] == \
            [r.report["best_objective"] for r in serial]

    def test_unordered_mode_yields_every_result(self):
        sweep = ScenarioSweep(base=BASE, seeds=(1, 2, 3))
        results = list(SolverService(n_workers=2,
                                     ordered=False).run(sweep.specs()))
        assert sorted(r.index for r in results) == [0, 1, 2]

    def test_empty_batch(self):
        assert list(SolverService(n_workers=0).run([])) == []

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker poisoning relies on fork inheriting the patched "
               "module state")
    def test_worker_death_becomes_structured_failure(self, monkeypatch):
        """Satellite: a spec that kills its worker process poisons every
        future sharing the pool; the service must retry the bystanders in
        isolation and report the killer as a failed result -- the sweep
        never dies and never loses results."""
        from repro.api import sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "_solve_payload",
                            _lethal_solve_payload)
        specs = [BASE.replace(seed=1), BASE.replace(seed=POISON_SEED),
                 BASE.replace(seed=2)]
        results = list(SolverService(n_workers=2).run(specs))
        assert [r.index for r in results] == [0, 1, 2]
        assert [r.ok for r in results] == [True, False, True]
        assert "worker process died" in results[1].error
        # the bystanders completed with their real reports
        assert results[0].report["best_objective"] > 0
        assert results[2].report["best_objective"] > 0


class TestCLISolve:
    @pytest.mark.parametrize("engine", ["hybrid", "two-level",
                                        "fine-grained"])
    def test_new_engines_reachable_by_name(self, engine, capsys):
        code = main(["solve", "ft06", "--engine", engine,
                     "--generations", "3", "--population", "16",
                     "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best=" in out

    def test_objective_flag(self, capsys):
        code = main(["solve", "ft06", "--objective", "total-flow-time",
                     "--generations", "2", "--population", "8"])
        assert code == 0
        assert "objective=total-flow-time" in capsys.readouterr().out

    def test_spec_file_with_flag_overrides(self, tmp_path, capsys):
        spec_file = tmp_path / "job.json"
        spec_file.write_text(BASE.replace(engine="island").to_json())
        code = main(["solve", "--spec", str(spec_file),
                     "--generations", "3"])
        assert code == 0
        assert "engine=island" in capsys.readouterr().out

    def test_json_report_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main(["solve", "ft06", "--generations", "2",
                     "--population", "8", "--json", str(out_file)])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["spec"]["instance"] == "ft06"
        assert payload["best_objective"] > 0

    def test_unknown_engine_exit_code_2(self, capsys):
        code = main(["solve", "ft06", "--engine", "teleport"])
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_solve_without_instance_or_spec_errors(self, capsys):
        code = main(["solve"])
        assert code == 2
        assert "instance name or --spec" in capsys.readouterr().err


class TestCLIDynamic:
    def test_dynamic_warm_vs_cold_with_json(self, tmp_path, capsys):
        out_file = tmp_path / "dynamic.json"
        code = main(["dynamic", "ta-fs-20x5-shaped", "--events", "2",
                     "--generations", "3", "--population", "16",
                     "--seed", "5", "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "warm:" in out and "cold:" in out
        assert "warm-start gain:" in out
        payload = json.loads(out_file.read_text())
        assert set(payload["runs"]) == {"warm", "cold"}
        for run in payload["runs"].values():
            assert len(run["reschedules"]) == 2
            assert run["realised_makespan"] > 0

    def test_dynamic_single_mode_array_substrate(self, capsys):
        code = main(["dynamic", "ta-fs-20x5-shaped", "--mode", "warm",
                     "--substrate", "array", "--events", "1",
                     "--generations", "2", "--population", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "warm:" in out and "cold:" not in out

    def test_dynamic_rejects_non_flowshop(self, capsys):
        assert main(["dynamic", "ft06"]) == 2
        assert "FlowShopInstance" in capsys.readouterr().err


class TestCLISweep:
    def test_sweep_end_to_end_on_ft06(self, capsys):
        code = main(["sweep", "ft06", "--engines", "simple", "island",
                     "--seeds", "1", "2", "--generations", "2",
                     "--population", "8", "--workers", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 4 scenario(s)" in out
        assert "4/4 scenarios OK" in out

    def test_sweep_spec_file_and_jsonl_stream(self, tmp_path, capsys):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps({
            "base": BASE.to_dict(),
            "engines": ["simple", "cellular"],
        }))
        out_file = tmp_path / "results.jsonl"
        code = main(["sweep", "--spec", str(sweep_file),
                     "--json", str(out_file)])
        assert code == 0
        lines = [json.loads(line) for line
                 in out_file.read_text().splitlines()]
        assert len(lines) == 2
        assert all(line["ok"] for line in lines)
        assert lines[1]["report"]["spec"]["engine"] == "cellular"

    def test_sweep_spec_file_composes_with_axis_flags(self, tmp_path,
                                                      capsys):
        """Flags override the file, same contract as `solve`."""
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps({
            "base": BASE.to_dict(), "engines": ["simple"]}))
        code = main(["sweep", "--spec", str(sweep_file),
                     "--engines", "simple", "island",
                     "--seeds", "1", "2", "--generations", "2"])
        assert code == 0
        assert "sweep: 4 scenario(s)" in capsys.readouterr().out

    def test_missing_or_invalid_spec_file_is_actionable(self, tmp_path,
                                                        capsys):
        assert main(["solve", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", "--spec", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_sweep_with_bad_scenario_exits_1(self, capsys):
        code = main(["sweep", "ft06", "nope-instance",
                     "--generations", "2", "--population", "8",
                     "--workers", "0"])
        assert code == 1
        out = capsys.readouterr().out
        assert "1/2 scenarios OK" in out

    def test_sweep_without_instances_errors(self, capsys):
        assert main(["sweep"]) == 2


class TestCLIList:
    def test_list_includes_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for needle in ("engines:", "encodings:", "objectives:",
                       "two-level", "openshop-pairs", "weighted",
                       "aliases: fine-grained"):
            assert needle in out

    def test_list_survives_missing_docstrings(self, capsys, monkeypatch):
        """Satellite: registry enumeration must not crash on components
        without docstrings -- it prints an em-dash placeholder."""
        from repro import cli

        def undocumented(scale):
            return None
        patched = dict(cli.EXPERIMENTS)
        patched["E99"] = undocumented
        monkeypatch.setattr(cli, "EXPERIMENTS", patched)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E99: —" in out


class TestPythonDashM:
    def test_python_m_repro_matches_console_script(self):
        """Satellite: ``python -m repro`` behaves like the ``repro`` CLI."""
        src = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "solve", "ft06",
             "--generations", "2", "--population", "8"],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "best=" in proc.stdout
