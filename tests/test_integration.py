"""Cross-module integration tests.

Every engine x encoding x problem combination the survey discusses must
run end-to-end, produce feasible schedules, and respect determinism.
"""

import numpy as np
import pytest

from repro.core import (GAConfig, MaxEvaluations, MaxGenerations, SimpleGA,
                        TargetObjective)
from repro.encodings import (DispatchRuleEncoding,
                             FlowShopPermutationEncoding,
                             HybridFlowShopEncoding,
                             FlexibleJobShopEncoding,
                             OpenShopPermutationEncoding,
                             OperationBasedEncoding, Problem,
                             RandomKeysFlowShopEncoding,
                             RandomKeysJobShopEncoding)
from repro.instances import (FT06_OPTIMUM, flexible_flow_shop,
                             flexible_job_shop, flow_shop, get_instance,
                             open_shop)
from repro.parallel import (CellularGA, IslandGA, MasterSlaveGA,
                            MigrationPolicy)

TERM = MaxGenerations(10)
CFG = GAConfig(population_size=16)


def all_problems():
    ft06 = get_instance("ft06")
    fs = flow_shop(6, 4, seed=50)
    os_ = open_shop(5, 3, seed=51)
    fjsp = flexible_job_shop(4, 3, seed=52, stages=3)
    hfs = flexible_flow_shop(5, (2, 2), seed=53)
    return [
        ("jssp/op", Problem(OperationBasedEncoding(ft06)), ft06),
        ("jssp/active", Problem(OperationBasedEncoding(ft06, mode="active")),
         ft06),
        ("jssp/keys", Problem(RandomKeysJobShopEncoding(ft06)), ft06),
        ("jssp/rules", Problem(DispatchRuleEncoding(ft06)), ft06),
        ("fs/perm", Problem(FlowShopPermutationEncoding(fs)), fs),
        ("fs/keys", Problem(RandomKeysFlowShopEncoding(fs)), fs),
        ("os/lpt", Problem(OpenShopPermutationEncoding(os_)), os_),
        ("fjsp", Problem(FlexibleJobShopEncoding(fjsp)), fjsp),
        ("hfs", Problem(HybridFlowShopEncoding(hfs)), hfs),
    ]


@pytest.mark.parametrize("label,problem,instance", all_problems(),
                         ids=lambda x: x if isinstance(x, str) else "")
def test_simple_ga_end_to_end(label, problem, instance):
    result = SimpleGA(problem, CFG, TERM, seed=1).run()
    schedule = problem.decode(result.best.genome)
    if label != "hfs" or True:
        schedule.audit(instance)
    assert result.best_objective <= \
        SimpleGA(problem, CFG, MaxGenerations(0), seed=1).run().best_objective


@pytest.mark.parametrize("label,problem,instance", all_problems()[:4],
                         ids=lambda x: x if isinstance(x, str) else "")
def test_island_ga_end_to_end(label, problem, instance):
    result = IslandGA(problem, n_islands=3,
                      config=GAConfig(population_size=6),
                      migration=MigrationPolicy(interval=3, rate=1),
                      termination=TERM, seed=2).run()
    problem.decode(result.best.genome).audit(instance)


def test_cellular_ga_on_flow_shop():
    fs = flow_shop(6, 4, seed=50)
    problem = Problem(FlowShopPermutationEncoding(fs))
    result = CellularGA(problem, rows=4, cols=4, termination=TERM,
                        seed=3).run()
    problem.decode(result.best.genome).audit(fs)


class TestEqualBudgetComparisons:
    """Engines compared under identical evaluation budgets terminate with
    comparable accounting -- the survey's fair-comparison convention."""

    def test_budgets_match(self, ft06_problem):
        budget = 400
        simple = SimpleGA(ft06_problem, GAConfig(population_size=20),
                          MaxEvaluations(budget), seed=4).run()
        island = IslandGA(ft06_problem, n_islands=4,
                          config=GAConfig(population_size=5),
                          migration=MigrationPolicy(interval=2, rate=1),
                          termination=MaxEvaluations(budget), seed=4).run()
        assert abs(simple.evaluations - island.evaluations) <= 40

    def test_all_engines_find_decent_ft06(self, ft06_problem):
        """Every parallel model reaches a reasonable ft06 makespan."""
        target = FT06_OPTIMUM * 1.35  # 74
        res_simple = SimpleGA(ft06_problem, GAConfig(population_size=40),
                              MaxGenerations(40), seed=5).run()
        res_island = IslandGA(ft06_problem, n_islands=4,
                              config=GAConfig(population_size=10),
                              migration=MigrationPolicy(interval=5, rate=1),
                              termination=MaxGenerations(40), seed=5).run()
        res_cell = CellularGA(ft06_problem, rows=6, cols=6,
                              termination=MaxGenerations(40), seed=5).run()
        for res in (res_simple, res_island, res_cell):
            assert res.best_objective <= target


class TestDeterminismAcrossEngines:
    def test_master_slave_identical_to_simple(self, ft06_problem):
        a = SimpleGA(ft06_problem, CFG, TERM, seed=7).run()
        b = MasterSlaveGA(ft06_problem, CFG, TERM, seed=7,
                          backend="serial").run()
        assert np.array_equal(a.best.genome, b.best.genome)

    def test_repeated_runs_identical(self, ft06_problem):
        objs = {SimpleGA(ft06_problem, CFG, TERM, seed=9).run()
                .best_objective for _ in range(3)}
        assert len(objs) == 1


class TestFailureInjection:
    def test_evaluator_exception_propagates(self, ft06_problem):
        def broken(genomes):
            raise RuntimeError("slave died")

        ga = SimpleGA(ft06_problem, CFG, TERM, seed=0, evaluator=broken)
        with pytest.raises(RuntimeError, match="slave died"):
            ga.run()

    def test_wrong_length_evaluator_detected(self, ft06_problem):
        def short(genomes):
            return np.zeros(max(0, len(genomes) - 1))

        ga = SimpleGA(ft06_problem, CFG, TERM, seed=0, evaluator=short)
        with pytest.raises(Exception):
            ga.run()
