"""Tests for the pluggable array backend (``repro.core.backend``).

Covers the registry and availability contract, the instrumented
namespace's Array-API-subset enforcement, the transfer-counting seams
(zero transfers inside a generation, proven without a GPU), int64 index
pinning, and hypothesis property tests that the :class:`ArrayRNG`
adapter reproduces ``np.random.Generator`` streams bit-for-bit.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import SolverSpec, solve
from repro.api.registry import SpecError
from repro.core.backend import (ARRAY_API_NAMES, BACKENDS, COMPAT_NAMES,
                                EXTENSION_NAMES, ArrayBackend, ArrayRNG,
                                BackendPortabilityError, BackendUnavailable,
                                active_backend, active_namespace,
                                available_backends, get_backend, use_backend)
from repro.core.ga import GAConfig
from repro.core.substrate import (ArrayState, make_offspring_matrix,
                                  stable_topk)
from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import get_instance
from repro.parallel.fine_grained import CellularGA, grid_neighbor_table


def _cupy_missing():
    return importlib.util.find_spec("cupy") is None


def _jax_missing():
    return importlib.util.find_spec("jax") is None


# -- registry and availability ----------------------------------------------------

class TestRegistry:
    def test_known_backends(self):
        assert BACKENDS == ("numpy", "instrumented", "cupy", "jax")

    def test_numpy_and_instrumented_always_available(self):
        names = available_backends()
        assert "numpy" in names and "instrumented" in names
        assert repro.available_backends() == names  # package-level export

    def test_get_backend_returns_cached_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numpy").name == "numpy"
        assert get_backend() is get_backend("numpy")  # default

    def test_unknown_backend_is_value_error(self):
        with pytest.raises(ValueError, match="unknown backend 'tpu'"):
            get_backend("tpu")

    @pytest.mark.skipif(not _cupy_missing(), reason="cupy is installed")
    def test_missing_cupy_degrades_to_backend_unavailable(self):
        assert "cupy" not in available_backends()
        with pytest.raises(BackendUnavailable,
                           match=r"pip install cupy") as err:
            get_backend("cupy")
        assert err.value.backend == "cupy"
        # the message names what *is* usable here
        assert "numpy" in str(err.value)

    @pytest.mark.skipif(not _jax_missing(), reason="jax is installed")
    def test_missing_jax_degrades_to_backend_unavailable(self):
        with pytest.raises(BackendUnavailable, match="jax"):
            get_backend("jax")


class TestSpecIntegration:
    def test_unknown_backend_in_spec_is_spec_error(self):
        spec = SolverSpec(instance="ft06", backend="tpu",
                          termination={"max_generations": 1})
        with pytest.raises(SpecError, match="backend"):
            spec.validate()

    def test_device_backend_requires_array_substrate(self):
        spec = SolverSpec(instance="ft06", backend="cupy",
                          termination={"max_generations": 1})
        with pytest.raises(SpecError, match="substrate='array'"):
            spec.validate()

    @pytest.mark.skipif(not _cupy_missing(), reason="cupy is installed")
    def test_missing_optional_backend_solves_to_spec_error(self):
        # same degradation contract as the cpsat engine: a clean
        # SpecError naming the missing package, before any work starts
        spec = SolverSpec(instance="ft06", backend="cupy",
                          substrate="array",
                          termination={"max_generations": 1})
        with pytest.raises(SpecError, match="pip install cupy"):
            solve(spec)

    def test_backend_round_trips_through_spec_json(self):
        spec = SolverSpec(instance="ft06", backend="instrumented",
                          termination={"max_generations": 1})
        again = SolverSpec.from_json(spec.to_json())
        assert again.backend == "instrumented" and again == spec

    def test_backend_changes_cache_key(self):
        base = SolverSpec(instance="ft06",
                          termination={"max_generations": 1})
        other = base.replace(backend="instrumented")
        assert base.cache_key() != other.cache_key()


# -- the active-backend context ----------------------------------------------------

class TestActiveBackend:
    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"
        assert active_namespace() is get_backend("numpy").xp

    def test_use_backend_scopes_and_restores(self):
        with use_backend("instrumented") as backend:
            assert backend is get_backend("instrumented")
            assert active_backend() is backend
            assert active_namespace() is backend.xp
        assert active_backend().name == "numpy"

    def test_use_backend_accepts_backend_objects(self):
        backend = ArrayBackend("custom", get_backend("numpy").xp)
        with use_backend(backend):
            assert active_backend() is backend

    def test_nested_contexts(self):
        with use_backend("instrumented"):
            with use_backend("numpy"):
                assert active_backend().name == "numpy"
            assert active_backend().name == "instrumented"


# -- the instrumented namespace ----------------------------------------------------

class TestInstrumentedNamespace:
    def test_allowed_names_forward_to_numpy(self):
        xp = get_backend("instrumented").xp
        assert xp.sum is np.sum  # literal forwarding => bit-identity
        assert xp.int64 is np.int64
        np.testing.assert_array_equal(
            xp.stable_argsort(np.asarray([2.0, 1.0, 1.0, 0.5])),
            [3, 1, 2, 0])

    def test_numpy_only_names_raise_portability_error(self):
        xp = get_backend("instrumented").xp
        for name in ("flatnonzero", "vectorize", "frombuffer", "matrix",
                     "argwhere"):
            with pytest.raises(BackendPortabilityError,
                               match="Array-API subset"):
                getattr(xp, name)
        # the error message points at the portability docs
        with pytest.raises(BackendPortabilityError,
                           match="backend-portable"):
            xp.nansum

    def test_used_names_are_recorded(self):
        xp = get_backend("instrumented").xp
        xp.arange  # noqa: B018 - touching the attribute is the point
        assert "arange" in xp.used
        assert xp.used <= (ARRAY_API_NAMES | EXTENSION_NAMES | COMPAT_NAMES)

    def test_extension_helpers_match_numpy_spellings(self):
        xp = get_backend("instrumented").xp
        rng = np.random.default_rng(7)
        x = rng.integers(0, 50, size=40)
        np.testing.assert_array_equal(
            xp.stable_argsort(x), np.argsort(x, kind="stable"))
        np.testing.assert_array_equal(
            xp.bincount(x, minlength=60), np.bincount(x, minlength=60))
        np.testing.assert_array_equal(
            xp.maximum_accumulate(x), np.maximum.accumulate(x))
        np.testing.assert_array_equal(
            sorted(xp.partition(np.copy(x), 5)[:5]), np.sort(x)[:5])
        acc = np.zeros(8)
        xp.scatter_add(acc, x % 8, np.ones_like(x, dtype=float))
        np.testing.assert_array_equal(acc, np.bincount(x % 8, minlength=8))
        copied = xp.copy(x)
        assert copied is not x
        np.testing.assert_array_equal(copied, x)


# -- transfer counting -------------------------------------------------------------

def _toy_problem():
    return Problem(OperationBasedEncoding(get_instance("ft06")))


class TestTransferSeams:
    def test_counters_increment_and_reset(self):
        backend = get_backend("instrumented")
        backend.reset_transfers()
        x = np.arange(4)
        backend.to_device(x)
        backend.to_host(x)
        backend.to_host(x)
        backend.asnumpy(x)
        assert backend.transfers == {"to_device": 1, "to_host": 2,
                                     "asnumpy": 1}
        assert backend.total_transfers() == 4
        backend.reset_transfers()
        assert backend.total_transfers() == 0

    def test_make_offspring_matrix_is_transfer_free(self):
        """A whole breeding step never crosses a host<->device seam."""
        problem = _toy_problem()
        config = GAConfig(population_size=16).resolved(problem)
        rng = np.random.default_rng(3)
        matrix = problem.random_matrix(16, rng)
        state = ArrayState(matrix, np.arange(16, dtype=float))
        backend = get_backend("instrumented")
        with use_backend(backend):
            backend.reset_transfers()
            offspring = make_offspring_matrix(state, config, problem, rng,
                                              count=16)
            assert backend.total_transfers() == 0
        assert offspring.shape == matrix.shape

    def test_cellular_grid_generation_is_transfer_free(self):
        """One synchronous cellular generation stays device-resident."""
        problem = _toy_problem()
        ga = CellularGA(problem, rows=4, cols=4,
                        config=GAConfig(substrate="array"), seed=5)
        backend = get_backend("instrumented")
        with use_backend(backend):
            ga.initialize()
            backend.reset_transfers()
            ga._step_grid()
            assert backend.total_transfers() == 0

    def test_full_instrumented_solve_never_moves_mid_run(self):
        backend = get_backend("instrumented")
        backend.reset_transfers()
        report = solve(SolverSpec(instance="ft06", backend="instrumented",
                                  substrate="array",
                                  ga={"population_size": 16},
                                  termination={"max_generations": 3},
                                  seed=8))
        assert report.best_objective > 0
        assert backend.transfers["to_device"] == 0
        assert backend.transfers["to_host"] == 0


# -- bit identity ------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("substrate", ["object", "array"])
    def test_instrumented_equals_numpy(self, substrate):
        base = SolverSpec(instance="ft06", substrate=substrate,
                          ga={"population_size": 20},
                          termination={"max_generations": 4}, seed=13)
        a = solve(base)
        b = solve(base.replace(backend="instrumented"))
        assert a.best_objective == b.best_objective
        assert a.evaluations == b.evaluations
        np.testing.assert_array_equal(a.best_genome, b.best_genome)


# -- int64 index pinning (platform-independent dtypes) -----------------------------

class TestInt64Pinning:
    """Index arrays are pinned to int64 regardless of the platform's
    default int (Windows/32-bit would otherwise produce int32)."""

    def test_stable_topk_returns_int64(self):
        values = np.asarray([3.0, 1.0, 2.0, 1.0])
        assert stable_topk(values, 2).dtype == np.int64
        assert stable_topk(values, 0).dtype == np.int64
        assert stable_topk(values, 4).dtype == np.int64

    def test_grid_neighbor_table_is_int64(self):
        table = grid_neighbor_table(3, 4, ((0, 1), (1, 0)))
        assert table.dtype == np.int64

    def test_operation_stages_is_int64(self):
        from repro.scheduling.batch import operation_stages
        instance = get_instance("ft06")
        rng = np.random.default_rng(4)
        seqs = np.stack([rng.permutation(np.repeat(
            np.arange(instance.n_jobs), instance.n_machines))
            for _ in range(3)])
        assert operation_stages(instance, seqs).dtype == np.int64

    def test_permutation_matrix_decode_is_int64(self):
        from repro.extensions.fuzzy import (FuzzyFlowShopEncoding,
                                            FuzzyFlowShopInstance)
        fuzzy = FuzzyFlowShopInstance.from_crisp(
            get_instance("ta-fs-20x5-shaped"), seed=1)
        keys = np.random.default_rng(2).random((5, fuzzy.n_jobs))
        perms = FuzzyFlowShopEncoding(fuzzy).permutation_matrix(keys)
        assert perms.dtype == np.int64


# -- the RNG adapter ---------------------------------------------------------------

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
SIZES = st.integers(min_value=0, max_value=64)


class TestArrayRNGStreams:
    """ArrayRNG must reproduce np.random.Generator streams bit-for-bit:
    draw-for-draw equality for every forwarded method, including
    interleaved call sequences (stream position advances identically)."""

    @given(seed=SEEDS, size=SIZES)
    @settings(max_examples=25, deadline=None)
    def test_random_stream_identity(self, seed, size):
        ref = np.random.default_rng(seed)
        adapted = ArrayRNG(np.random.default_rng(seed))
        np.testing.assert_array_equal(adapted.random(size), ref.random(size))

    @given(seed=SEEDS, size=SIZES, low=st.integers(0, 100),
           span=st.integers(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_integers_stream_identity(self, seed, size, low, span):
        ref = np.random.default_rng(seed)
        adapted = ArrayRNG(np.random.default_rng(seed))
        np.testing.assert_array_equal(
            adapted.integers(low, low + span, size=size),
            ref.integers(low, low + span, size=size))

    @given(seed=SEEDS, size=SIZES)
    @settings(max_examples=25, deadline=None)
    def test_uniform_and_normal_stream_identity(self, seed, size):
        ref = np.random.default_rng(seed)
        adapted = ArrayRNG(np.random.default_rng(seed))
        np.testing.assert_array_equal(adapted.uniform(-2.0, 3.0, size=size),
                                      ref.uniform(-2.0, 3.0, size=size))
        np.testing.assert_array_equal(adapted.normal(1.0, 0.5, size=size),
                                      ref.normal(1.0, 0.5, size=size))

    @given(seed=SEEDS, n=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_permutation_choice_shuffle_identity(self, seed, n):
        ref = np.random.default_rng(seed)
        adapted = ArrayRNG(np.random.default_rng(seed))
        np.testing.assert_array_equal(adapted.permutation(n),
                                      ref.permutation(n))
        np.testing.assert_array_equal(
            adapted.choice(n, size=n, replace=True),
            ref.choice(n, size=n, replace=True))
        a = np.arange(n)
        b = np.arange(n)
        adapted.shuffle(a)
        ref.shuffle(b)
        np.testing.assert_array_equal(a, b)

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_interleaved_sequence_identity(self, seed):
        """Mixed draw sequences advance both streams identically."""
        ref = np.random.default_rng(seed)
        adapted = ArrayRNG(np.random.default_rng(seed))
        for _ in range(3):
            np.testing.assert_array_equal(adapted.random(5), ref.random(5))
            np.testing.assert_array_equal(adapted.integers(0, 9, size=4),
                                          ref.integers(0, 9, size=4))
            np.testing.assert_array_equal(adapted.permutation(6),
                                          ref.permutation(6))

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_spawn_children_match(self, seed):
        ref_children = np.random.default_rng(seed).spawn(3)
        adapted_children = ArrayRNG(np.random.default_rng(seed)).spawn(3)
        assert all(isinstance(c, ArrayRNG) for c in adapted_children)
        for ref_child, adapted_child in zip(ref_children, adapted_children):
            np.testing.assert_array_equal(adapted_child.random(8),
                                          ref_child.random(8))

    def test_backend_rng_factories(self):
        # numpy backend hands out the raw Generator; instrumented wraps it
        assert isinstance(get_backend("numpy").rng(5), np.random.Generator)
        wrapped = get_backend("instrumented").rng(5)
        assert isinstance(wrapped, ArrayRNG)
        np.testing.assert_array_equal(
            wrapped.random(6), np.random.default_rng(5).random(6))
