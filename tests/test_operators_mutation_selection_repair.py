"""Tests for mutation, selection and repair operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitness import ReciprocalFitness, apply_fitness
from repro.core.individual import Individual
from repro.core.population import Population
from repro.operators import (AssignmentMutation, CompositeMutation,
                             ElitistRouletteSelection, GaussianKeyMutation,
                             IntegerResetMutation, InversionMutation,
                             RandomSelection, RankSelection,
                             ResampleKeyMutation, RouletteWheelSelection,
                             ScrambleMutation, ShiftMutation,
                             StochasticUniversalSampling, SwapMutation,
                             TournamentSelection, default_mutation_for,
                             is_permutation, is_repetition_of,
                             repair_to_multiset)

PERM_MUTATIONS = [SwapMutation(), SwapMutation(pairs=3), ShiftMutation(),
                  InversionMutation(), ScrambleMutation()]


@pytest.mark.parametrize("op", PERM_MUTATIONS, ids=lambda o: type(o).__name__)
def test_mutation_permutation_closure(op, rng):
    for n in (2, 6, 11):
        g = rng.permutation(n).astype(np.int64)
        out = op(g, rng)
        assert is_permutation(out)


@pytest.mark.parametrize("op", PERM_MUTATIONS, ids=lambda o: type(o).__name__)
def test_mutation_multiset_closure(op, rng):
    counts = np.array([2, 2, 2])
    g = np.repeat(np.arange(3, dtype=np.int64), 2)
    rng.shuffle(g)
    assert is_repetition_of(op(g, rng), counts)


@pytest.mark.parametrize("op", PERM_MUTATIONS, ids=lambda o: type(o).__name__)
def test_mutation_does_not_modify_input(op, rng):
    g = rng.permutation(8).astype(np.int64)
    g0 = g.copy()
    op(g, rng)
    assert np.array_equal(g, g0)


class TestKeyMutations:
    def test_gaussian_stays_in_unit_interval(self, rng):
        g = rng.random(50)
        out = GaussianKeyMutation(sigma=0.5, rate=1.0)(g, rng)
        assert np.all(out >= 0.0) and np.all(out < 1.0)

    def test_gaussian_rate_zero_identity(self, rng):
        g = rng.random(10)
        assert np.array_equal(GaussianKeyMutation(rate=0.0)(g, rng), g)

    def test_gaussian_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GaussianKeyMutation(sigma=0.0)
        with pytest.raises(ValueError):
            GaussianKeyMutation(rate=2.0)

    def test_resample_changes_some_genes(self):
        rng = np.random.default_rng(3)
        g = np.full(100, 0.5)
        out = ResampleKeyMutation(rate=0.5)(g, rng)
        assert 10 < int(np.count_nonzero(out != 0.5)) < 90

    def test_assignment_mutation_respects_domains(self, rng):
        domains = np.array([1, 2, 3, 4])
        g = np.zeros(4, dtype=np.int64)
        out = AssignmentMutation(domains, rate=1.0)(g, rng)
        assert np.all(out < domains)

    def test_integer_reset_within_alphabet(self, rng):
        g = np.zeros(30, dtype=np.int64)
        out = IntegerResetMutation(alphabet=5, rate=1.0)(g, rng)
        assert np.all((0 <= out) & (out < 5))


class TestCompositeMutation:
    def test_parts_handled(self, rng):
        op = CompositeMutation([GaussianKeyMutation(rate=1.0), SwapMutation()])
        genome = (rng.random(5), rng.permutation(6).astype(np.int64))
        out = op(genome, rng)
        assert is_permutation(out[1])

    def test_none_part_copied(self, rng):
        op = CompositeMutation([None, SwapMutation()])
        genome = (np.array([1.0]), rng.permutation(4).astype(np.int64))
        out = op(genome, rng)
        assert np.array_equal(out[0], genome[0])
        assert out[0] is not genome[0]

    def test_rejects_flat_genome(self, rng):
        with pytest.raises(ValueError):
            CompositeMutation([None])(np.arange(3), rng)

    def test_default_mutation_for_kinds(self):
        assert default_mutation_for("permutation") is not None
        assert isinstance(default_mutation_for("composite", ("real",)),
                          CompositeMutation)
        with pytest.raises(ValueError):
            default_mutation_for("nope")


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------

def evaluated_population(objectives):
    pop = Population([Individual(np.array([i]), objective=float(o))
                      for i, o in enumerate(objectives)])
    apply_fitness(pop.members, ReciprocalFitness())
    return pop


SELECTIONS = [RouletteWheelSelection(), StochasticUniversalSampling(),
              TournamentSelection(2), TournamentSelection(5),
              ElitistRouletteSelection(0.2), RandomSelection(),
              RankSelection()]


@pytest.mark.parametrize("sel", SELECTIONS, ids=lambda s: type(s).__name__)
def test_selection_returns_k_members(sel, rng):
    pop = evaluated_population([5, 3, 8, 1, 9, 2])
    out = sel(pop, 10, rng)
    assert len(out) == 10
    assert all(ind in pop.members for ind in out)


@pytest.mark.parametrize("sel", [RouletteWheelSelection(),
                                 StochasticUniversalSampling(),
                                 TournamentSelection(3), RankSelection()],
                         ids=lambda s: type(s).__name__)
def test_selection_prefers_better(sel):
    """Fitness-based selections pick the best individual more often than
    the worst over many draws."""
    rng = np.random.default_rng(7)
    pop = evaluated_population([1.0, 100.0])  # index 0 is far better
    picks = sel(pop, 400, rng)
    best_count = sum(1 for ind in picks if ind.objective == 1.0)
    assert best_count > 250


def test_selection_requires_fitness(rng):
    pop = Population([Individual(np.array([0]), objective=1.0)])
    with pytest.raises(ValueError):
        RouletteWheelSelection()(pop, 2, rng)


def test_roulette_rejects_negative_fitness(rng):
    pop = Population([Individual(np.array([0]), objective=1.0,
                                 fitness=-1.0)])
    with pytest.raises(ValueError):
        RouletteWheelSelection()(pop, 1, rng)


def test_roulette_degenerate_all_zero_fitness(rng):
    pop = Population([Individual(np.array([i]), objective=1.0, fitness=0.0)
                      for i in range(3)])
    out = RouletteWheelSelection()(pop, 6, rng)
    assert len(out) == 6


def test_sus_expected_counts():
    """SUS guarantees floor/ceil of expected copies for each individual."""
    rng = np.random.default_rng(11)
    pop = evaluated_population([1.0, 1.0])  # equal fitness
    picks = StochasticUniversalSampling()(pop, 10, rng)
    counts = {0: 0, 1: 0}
    for ind in picks:
        counts[int(ind.genome[0])] += 1
    assert counts[0] == counts[1] == 5


def test_elitist_roulette_includes_elites(rng):
    pop = evaluated_population([1, 2, 3, 4, 5])
    sel = ElitistRouletteSelection(elite_fraction=0.4)
    picks = sel(pop, 5, rng)
    objs = [p.objective for p in picks[:2]]
    assert objs == [1.0, 2.0]


def test_tournament_size_validation():
    with pytest.raises(ValueError):
        TournamentSelection(0)


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------

class TestRepair:
    def test_noop_on_valid(self):
        counts = np.array([1, 1, 1])
        g = np.array([2, 0, 1])
        assert np.array_equal(repair_to_multiset(g, counts), g)

    def test_fixes_duplicates(self):
        counts = np.array([1, 1, 1])
        out = repair_to_multiset(np.array([0, 0, 2]), counts)
        assert is_repetition_of(out, counts)

    def test_donor_order_respected(self):
        counts = np.array([1, 1, 1, 1])
        child = np.array([0, 0, 0, 0])
        donor = np.array([3, 2, 1, 0])
        out = repair_to_multiset(child, counts, donor=donor)
        assert is_repetition_of(out, counts)
        # missing values 1,2,3 inserted in donor order 3,2,1
        assert np.array_equal(out, [0, 3, 2, 1])

    def test_out_of_range_values_replaced(self):
        counts = np.array([2, 2])
        out = repair_to_multiset(np.array([9, -1, 0, 1]), counts)
        assert is_repetition_of(out, counts)

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_repair_always_restores_multiset(self, n_vals, repeats, seed):
        rng = np.random.default_rng(seed)
        counts = np.full(n_vals, repeats)
        corrupted = rng.integers(-1, n_vals + 2,
                                 size=n_vals * repeats).astype(np.int64)
        out = repair_to_multiset(corrupted, counts)
        assert is_repetition_of(out, counts)
