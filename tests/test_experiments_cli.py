"""Tests for the experiment harness, registry and CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import (EXPERIMENTS, SCALES, ExperimentResult,
                               format_table, run_experiment)
from repro.experiments.harness import relative_improvement, repeat_seeds


class TestHarness:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_empty(self):
        assert format_table([]) == "(empty)"

    def test_scales_registered(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert SCALES["paper"].pop > SCALES["small"].pop

    def test_repeat_seeds_distinct(self):
        seeds = repeat_seeds(7, 4)
        assert len(set(seeds)) == 4

    def test_relative_improvement(self):
        assert relative_improvement(100, 90) == pytest.approx(0.1)
        assert relative_improvement(0, 5) == 0.0

    def test_result_summary_contains_claim(self):
        res = ExperimentResult(experiment="EXX", source="src",
                               claim="things hold",
                               rows=[{"x": 1}], passed=True)
        assert "things hold" in res.summary()
        assert "SHAPE OK" in res.summary()


class TestRegistry:
    def test_all_25_experiments_registered(self):
        assert len(EXPERIMENTS) == 25
        assert sorted(EXPERIMENTS) == [f"E{i:02d}" for i in range(1, 26)]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        res = run_experiment("e22", scale="smoke")
        assert res.experiment == "E22"

    @pytest.mark.parametrize("exp", ["E01", "E02", "E04", "E05", "E07",
                                     "E08", "E16", "E22"])
    def test_simulated_experiments_pass_at_any_scale(self, exp):
        """Cost-model experiments are deterministic: shape must hold."""
        res = run_experiment(exp, scale="smoke")
        assert res.passed, res.summary()
        assert res.rows

    def test_conformance_experiment_passes(self):
        res = run_experiment("E21", scale="smoke")
        assert res.passed, res.summary()

    def test_decoder_conformance_experiment_passes(self):
        res = run_experiment("E23", scale="smoke")
        assert res.passed, res.summary()
        assert len(res.rows) == 4  # all four vectorised problem classes

    @pytest.mark.parametrize("exp", ["E06", "E12", "E15"])
    def test_fast_native_experiments_run_smoke(self, exp):
        """Native GA experiments at smoke scale: structure only (stochastic
        shape checks are asserted at 'small' scale by the benchmarks)."""
        res = run_experiment(exp, scale="smoke")
        assert isinstance(res, ExperimentResult)
        assert res.rows and res.claim


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "ft06" in out

    def test_solve_simple(self, capsys):
        code = main(["solve", "ft06", "--generations", "5",
                     "--population", "12", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best=" in out and "Cmax" in out

    @pytest.mark.parametrize("engine", ["island", "cellular"])
    def test_solve_other_engines(self, engine, capsys):
        code = main(["solve", "ft06", "--engine", engine,
                     "--generations", "3", "--population", "9",
                     "--workers", "2"])
        assert code == 0

    def test_solve_flow_and_open_shop(self, capsys):
        assert main(["solve", "ta-fs-20x5-shaped", "--generations", "2",
                     "--population", "8"]) == 0
        assert main(["solve", "ta-os-5x5-shaped", "--generations", "2",
                     "--population", "8"]) == 0

    def test_run_experiment(self, capsys):
        assert main(["run", "E22", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "SHAPE OK" in out
