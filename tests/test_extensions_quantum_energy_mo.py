"""Tests for quantum GA, energy models, multi-objective and local search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAConfig, MaxGenerations
from repro.encodings import OperationBasedEncoding, Problem
from repro.extensions import (EnergyAwareObjective, EnergyMakespanVector,
                              ParetoArchive, PowerModel, QBitIndividual,
                              QuantumGA, WeightedIslandMOGA, coverage,
                              dominates, energy_consumption,
                              hypervolume_2d, insertion_hill_climb,
                              make_local_search, non_dominated_sort,
                              not_gate_mutation, peak_power,
                              penetration_migration, power_profile,
                              quantum_crossover, redirect_procedure,
                              swap_hill_climb, weight_vectors)
from repro.instances import get_instance
from repro.scheduling import Makespan, TotalWeightedCompletion, WeightedCombination


class TestQBit:
    def test_random_init_near_superposition(self, rng):
        ind = QBitIndividual.random(rng, n_genes=10, n_bits=4)
        assert ind.angles.shape == (10, 4)
        assert np.all((0 <= ind.angles) & (ind.angles <= np.pi / 2))

    def test_observe_keys_in_unit_interval(self, rng):
        ind = QBitIndividual.random(rng, 20, 8)
        keys = ind.observe(rng)
        assert keys.shape == (20,)
        assert np.all((0 <= keys) & (keys < 1.0))

    def test_extreme_angles_deterministic_observation(self, rng):
        ind = QBitIndividual(np.full((5, 4), np.pi / 2))  # always 1-bits
        keys = ind.observe(rng)
        assert np.allclose(keys, 0.5 + 0.25 + 0.125 + 0.0625)
        ind0 = QBitIndividual(np.zeros((5, 4)))
        assert np.allclose(ind0.observe(rng), 0.0)

    def test_rotation_moves_toward_target(self, rng):
        ind = QBitIndividual(np.full((3, 4), np.pi / 4))
        target = np.array([0.9375, 0.0, 0.5])  # bits 1111, 0000, 1000
        before = ind.angles.copy()
        ind.rotate_toward(target, delta=0.1)
        assert np.all(ind.angles[0] > before[0])   # toward 1s
        assert np.all(ind.angles[1] < before[1])   # toward 0s

    def test_not_gate_flips(self, rng):
        ind = QBitIndividual(np.zeros((4, 4)))
        out = not_gate_mutation(ind, rng, rate=1.0)
        assert np.allclose(out.angles, np.pi / 2)

    def test_quantum_crossover_blends(self, rng):
        a = QBitIndividual(np.zeros((2, 2)))
        b = QBitIndividual(np.full((2, 2), np.pi / 2))
        ca, cb = quantum_crossover(a, b, rng)
        assert np.all(ca.angles >= 0) and np.all(ca.angles <= np.pi / 2)
        assert np.allclose(ca.angles + cb.angles, np.pi / 2)

    def test_penetration_migration_copies_fraction(self, rng):
        src = QBitIndividual(np.full((20, 2), 0.1))
        dst = QBitIndividual(np.full((20, 2), 1.2))
        out = penetration_migration(src, dst, fraction=0.5, rng=rng)
        copied = np.isclose(out.angles[:, 0], 0.1).sum()
        assert 0 < copied < 20


class TestQuantumGA:
    def test_converges_on_toy_problem(self):
        # minimise sum of keys -> optimum pushes all bits to zero
        q = QuantumGA(lambda keys: float(np.sum(keys)), n_genes=8,
                      population_size=10, seed=5, rotation_delta=0.1)
        first = q.run(1)
        final = q.run(15)
        assert final <= first

    def test_deterministic(self):
        a = QuantumGA(lambda k: float(np.sum(k)), 6, population_size=8,
                      seed=3).run(5)
        b = QuantumGA(lambda k: float(np.sum(k)), 6, population_size=8,
                      seed=3).run(5)
        assert a == b

    def test_history_tracks_best(self):
        q = QuantumGA(lambda k: float(np.sum(k)), 6, population_size=8,
                      seed=3)
        q.run(5)
        assert len(q.history) == 5
        assert np.all(np.diff(q.history) <= 1e-12)


class TestEnergy:
    def _schedule(self, rng):
        problem = Problem(OperationBasedEncoding(get_instance("ft06")))
        return problem.decode(problem.random_genome(rng))

    def test_power_model_validation(self):
        with pytest.raises(ValueError):
            PowerModel(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            PowerModel(np.array([-1.0]), np.array([0.0]))

    def test_energy_positive_and_scales(self, rng):
        sched = self._schedule(rng)
        low = energy_consumption(sched, PowerModel.uniform(6, 1.0, 0.0))
        high = energy_consumption(sched, PowerModel.uniform(6, 2.0, 0.0))
        assert high == pytest.approx(2 * low)
        # with zero idle power, energy = total work * power
        assert low == pytest.approx(197.0)  # ft06 total processing

    def test_idle_power_adds(self, rng):
        sched = self._schedule(rng)
        no_idle = energy_consumption(sched, PowerModel.uniform(6, 5.0, 0.0))
        with_idle = energy_consumption(sched, PowerModel.uniform(6, 5.0, 1.0))
        assert with_idle >= no_idle

    def test_power_profile_and_peak(self, rng):
        sched = self._schedule(rng)
        power = PowerModel.uniform(6, 10.0, 0.0)
        ts, draw = power_profile(sched, power)
        assert draw.max() <= 60.0 + 1e-9  # at most 6 machines busy
        assert peak_power(sched, power) == pytest.approx(draw.max())

    def test_energy_aware_objective_penalises_peaks(self, rng):
        sched = self._schedule(rng)
        power = PowerModel.uniform(6, 10.0, 0.0)
        peak = peak_power(sched, power)
        loose = EnergyAwareObjective(power, peak_cap=peak + 1)
        tight = EnergyAwareObjective(power, peak_cap=peak / 2, penalty=1.0)
        inst = get_instance("ft06")
        assert loose(sched, inst) == pytest.approx(sched.makespan)
        assert tight(sched, inst) > sched.makespan

    def test_energy_makespan_vector(self, rng):
        sched = self._schedule(rng)
        power = PowerModel.uniform(6)
        obj = EnergyMakespanVector(power, weights=(0.0, 1.0))
        inst = get_instance("ft06")
        assert obj(sched, inst) == pytest.approx(sched.makespan)
        vec = obj.vector(sched, inst)
        assert vec[0] == pytest.approx(energy_consumption(sched, power))


class TestPareto:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_non_dominated_sort_fronts(self):
        pts = [(1, 5), (5, 1), (2, 2), (6, 6), (3, 3)]
        fronts = non_dominated_sort(pts)
        assert set(fronts[0]) == {0, 1, 2}
        assert set(fronts[1]) == {4}
        assert set(fronts[2]) == {3}

    def test_archive_keeps_only_nondominated(self):
        arch = ParetoArchive()
        assert arch.add((2, 2))
        assert not arch.add((3, 3))      # dominated
        assert arch.add((1, 3))
        assert arch.add((0.5, 0.5))      # dominates everything
        assert len(arch) == 1

    def test_archive_rejects_duplicates(self):
        arch = ParetoArchive()
        assert arch.add((1, 2))
        assert not arch.add((1, 2))

    def test_archive_capacity_thinning(self):
        arch = ParetoArchive(capacity=5)
        for k in range(20):
            arch.add((k, 19 - k))
        assert len(arch) <= 5
        front = arch.front()
        # extremes survive thinning
        assert front[0][0] == 0 and front[-1][0] == 19

    def test_hypervolume_known_value(self):
        hv = hypervolume_2d([(1, 1)], reference=(2, 2))
        assert hv == pytest.approx(1.0)
        hv2 = hypervolume_2d([(0, 1), (1, 0)], reference=(2, 2))
        assert hv2 == pytest.approx(3.0)

    def test_hypervolume_ignores_points_beyond_reference(self):
        assert hypervolume_2d([(5, 5)], reference=(2, 2)) == 0.0

    def test_coverage_metric(self):
        a = [(0, 0)]
        b = [(1, 1), (2, 2)]
        assert coverage(a, b) == 1.0
        assert coverage(b, a) == 0.0
        assert coverage(a, []) == 0.0

    def test_weight_vectors_spread(self):
        ws = weight_vectors(5)
        assert len(ws) == 5
        assert all(abs(sum(w) - 1.0) < 1e-9 for w in ws)
        firsts = [w[0] for w in ws]
        assert firsts == sorted(firsts)
        with pytest.raises(ValueError):
            weight_vectors(0)


class TestWeightedIslandMOGA:
    def _factory(self):
        inst = get_instance("ft06")

        def factory(w):
            obj = WeightedCombination([(w[0], Makespan()),
                                       (w[1], TotalWeightedCompletion())])
            return Problem(OperationBasedEncoding(inst), objective=obj)
        return factory

    def test_run_builds_archive(self):
        moga = WeightedIslandMOGA(self._factory(), n_islands=3,
                                  config=GAConfig(population_size=8),
                                  termination=MaxGenerations(10), epoch=5,
                                  seed=2)
        archive = moga.run()
        assert len(archive) >= 1
        front = archive.front()
        # front is mutually non-dominated
        for i, p in enumerate(front):
            for q in front[i + 1:]:
                assert not dominates(p, q) and not dominates(q, p)

    def test_local_search_hook_called(self):
        calls = []

        def ls(genome, problem, rng):
            calls.append(1)
            return genome

        moga = WeightedIslandMOGA(self._factory(), n_islands=2,
                                  config=GAConfig(population_size=6),
                                  termination=MaxGenerations(5), epoch=5,
                                  seed=2, local_search=ls)
        moga.run()
        assert len(calls) >= 2


class TestLocalSearch:
    def _problem(self):
        return Problem(OperationBasedEncoding(get_instance("ft06")))

    @pytest.mark.parametrize("fn", [swap_hill_climb, insertion_hill_climb,
                                    redirect_procedure],
                             ids=lambda f: f.__name__)
    def test_never_worse(self, fn, rng):
        problem = self._problem()
        g = problem.random_genome(rng)
        out = fn(g, problem, rng)
        assert problem.evaluate(out) <= problem.evaluate(g)

    def test_multiset_preserved(self, rng):
        from repro.operators.repair import is_repetition_of
        problem = self._problem()
        g = problem.random_genome(rng)
        out = swap_hill_climb(g, problem, rng, attempts=30)
        assert is_repetition_of(out, np.full(6, 6))

    def test_tuple_genomes_supported(self, rng):
        from repro.instances import flexible_flow_shop
        from repro.encodings import HybridFlowShopEncoding
        inst = flexible_flow_shop(4, (2, 2), seed=44)
        problem = Problem(HybridFlowShopEncoding(inst, use_assignment=False))
        g = problem.random_genome(rng)
        out = swap_hill_climb(g, problem, rng)
        assert isinstance(out, tuple)
        assert problem.evaluate(out) <= problem.evaluate(g)

    def test_factory(self):
        assert make_local_search("swap") is not None
        assert make_local_search("insertion") is not None
        assert make_local_search("redirect") is not None
        with pytest.raises(ValueError):
            make_local_search("teleport")
