"""Tests for every chromosome representation (Section III.A)."""

import numpy as np
import pytest

from repro.encodings import (DispatchRuleEncoding, FlexibleJobShopEncoding,
                             FlowShopPermutationEncoding, GenomeKind,
                             HybridFlowShopEncoding, LotStreamingEncoding,
                             OpenShopPermutationEncoding,
                             OperationBasedEncoding, Problem,
                             RandomKeysFlowShopEncoding,
                             RandomKeysJobShopEncoding, keys_to_permutation)
from repro.instances import (flexible_flow_shop, flexible_job_shop,
                             flow_shop, get_instance, job_shop, open_shop)
from repro.operators.repair import is_permutation, is_repetition_of
from repro.scheduling import Makespan, TotalWeightedCompletion


class TestFlowShopPermutation:
    def test_random_genome_valid(self, small_flowshop, rng):
        enc = FlowShopPermutationEncoding(small_flowshop)
        assert is_permutation(enc.random_genome(rng))

    def test_decode_feasible(self, small_flowshop, rng):
        enc = FlowShopPermutationEncoding(small_flowshop)
        sched = enc.decode(enc.random_genome(rng))
        sched.audit(small_flowshop)

    def test_fast_paths_consistent(self, small_flowshop, rng):
        enc = FlowShopPermutationEncoding(small_flowshop)
        genomes = [enc.random_genome(rng) for _ in range(8)]
        batch = enc.fast_makespan_batch(genomes)
        for g, expected in zip(genomes, batch):
            assert enc.fast_makespan(g) == pytest.approx(expected)
            assert enc.decode(g).makespan == pytest.approx(expected)


class TestOpenShopPermutation:
    def test_repetition_genome(self, small_openshop, rng):
        enc = OpenShopPermutationEncoding(small_openshop)
        g = enc.random_genome(rng)
        counts = np.full(small_openshop.n_jobs, small_openshop.n_machines)
        assert is_repetition_of(g, counts)

    def test_both_decoders(self, small_openshop, rng):
        for decoder in ("lpt_task", "lpt_machine"):
            enc = OpenShopPermutationEncoding(small_openshop, decoder)
            sched = enc.decode(enc.random_genome(rng))
            sched.audit(small_openshop)

    def test_invalid_decoder(self, small_openshop):
        with pytest.raises(ValueError):
            OpenShopPermutationEncoding(small_openshop, "xxx")


class TestOperationBased:
    @pytest.mark.parametrize("mode", ["semi_active", "active", "blocking",
                                      "graph"])
    def test_all_modes_feasible(self, mode, small_jobshop, rng):
        enc = OperationBasedEncoding(small_jobshop, mode=mode)
        g = enc.random_genome(rng)
        sched = enc.decode(g)
        sched.audit(small_jobshop)
        assert enc.fast_makespan(g) == pytest.approx(sched.makespan)

    def test_invalid_mode(self, small_jobshop):
        with pytest.raises(ValueError):
            OperationBasedEncoding(small_jobshop, mode="warp")

    def test_graph_mode_equals_semi_active(self, small_jobshop, rng):
        semi = OperationBasedEncoding(small_jobshop, mode="semi_active")
        graph = OperationBasedEncoding(small_jobshop, mode="graph")
        for _ in range(5):
            g = semi.random_genome(rng)
            assert graph.fast_makespan(g) == pytest.approx(
                semi.fast_makespan(g))

    def test_active_mode_not_worse_on_average(self, ft06, rng):
        semi = OperationBasedEncoding(ft06, mode="semi_active")
        act = OperationBasedEncoding(ft06, mode="active")
        gs = [semi.random_genome(rng) for _ in range(10)]
        assert np.mean([act.fast_makespan(g) for g in gs]) <= \
            np.mean([semi.fast_makespan(g) for g in gs])


class TestRandomKeys:
    def test_keys_to_permutation(self):
        assert np.array_equal(keys_to_permutation(np.array([0.3, 0.1, 0.9])),
                              [1, 0, 2])

    def test_flow_shop_keys_match_permutation_decode(self, small_flowshop,
                                                     rng):
        enc = RandomKeysFlowShopEncoding(small_flowshop)
        keys = enc.random_genome(rng)
        perm_enc = FlowShopPermutationEncoding(small_flowshop)
        assert enc.fast_makespan(keys) == pytest.approx(
            perm_enc.fast_makespan(enc.permutation(keys)))

    def test_batch(self, small_flowshop, rng):
        enc = RandomKeysFlowShopEncoding(small_flowshop)
        genomes = [enc.random_genome(rng) for _ in range(6)]
        batch = enc.fast_makespan_batch(genomes)
        singles = [enc.fast_makespan(g) for g in genomes]
        assert np.allclose(batch, singles)

    def test_jobshop_keys_decode_feasible(self, small_jobshop, rng):
        enc = RandomKeysJobShopEncoding(small_jobshop)
        sched = enc.decode(enc.random_genome(rng))
        sched.audit(small_jobshop)


class TestDispatchRules:
    def test_genome_and_decode(self, small_jobshop, rng):
        enc = DispatchRuleEncoding(small_jobshop)
        g = enc.random_genome(rng)
        assert g.size == small_jobshop.total_operations
        sched = enc.decode(g)
        sched.audit(small_jobshop)

    def test_rule_names_wrap_modulo(self, small_jobshop):
        enc = DispatchRuleEncoding(small_jobshop, rules=("SPT", "LPT"))
        names = enc.rule_names(np.array([0, 1, 2, 3] * 100)[
            :small_jobshop.total_operations])
        assert set(names) <= {"SPT", "LPT"}

    def test_unknown_rule_rejected(self, small_jobshop):
        with pytest.raises(ValueError):
            DispatchRuleEncoding(small_jobshop, rules=("SPT", "???"))


class TestFlexibleEncodings:
    def test_fjsp_encoding(self, rng):
        inst = flexible_job_shop(3, 3, seed=41, stages=2)
        enc = FlexibleJobShopEncoding(inst)
        g = enc.random_genome(rng)
        assert isinstance(g, tuple) and len(g) == 2
        enc.decode(g).audit(inst)
        assert enc.assignment_domain_sizes().size == inst.total_operations

    def test_hfs_encoding_with_and_without_assignment(self, rng):
        inst = flexible_flow_shop(4, (2, 2), seed=42)
        for use in (True, False):
            enc = HybridFlowShopEncoding(inst, use_assignment=use)
            g = enc.random_genome(rng)
            enc.decode(g).audit(inst)

    def test_lot_streaming_encoding(self, rng):
        inst = flexible_flow_shop(4, (2, 1), seed=43)
        enc = LotStreamingEncoding(inst, sublots=3)
        g = enc.random_genome(rng)
        plan = enc.plan(g)
        assert all(f.size == 3 for f in plan.fractions)
        assert enc.fast_makespan(g) > 0

    def test_lot_streaming_validates_sublots(self):
        inst = flexible_flow_shop(4, (2, 1), seed=43)
        with pytest.raises(ValueError):
            LotStreamingEncoding(inst, sublots=0)


class TestProblem:
    def test_default_objective_is_makespan(self, ft06_problem):
        assert isinstance(ft06_problem.objective, Makespan)

    def test_evaluate_uses_fast_path(self, small_flowshop, rng):
        problem = Problem(FlowShopPermutationEncoding(small_flowshop))
        g = problem.random_genome(rng)
        assert problem.evaluate(g) == pytest.approx(
            problem.decode(g).makespan)

    def test_evaluate_many_batches(self, small_flowshop, rng):
        problem = Problem(FlowShopPermutationEncoding(small_flowshop))
        gs = [problem.random_genome(rng) for _ in range(5)]
        out = problem.evaluate_many(gs)
        assert out.shape == (5,)

    def test_non_makespan_objective_decodes(self, small_flowshop, rng):
        problem = Problem(FlowShopPermutationEncoding(small_flowshop),
                          objective=TotalWeightedCompletion())
        g = problem.random_genome(rng)
        sched = problem.decode(g)
        assert problem.evaluate(g) == pytest.approx(
            TotalWeightedCompletion()(sched, small_flowshop))

    def test_objective_vector_scalar_fallback(self, ft06_problem, rng):
        g = ft06_problem.random_genome(rng)
        vec = ft06_problem.objective_vector(g)
        assert len(vec) == 1

    def test_eval_cost_burns_time(self, small_flowshop, rng):
        import time
        problem = Problem(FlowShopPermutationEncoding(small_flowshop),
                          eval_cost=0.01)
        g = problem.random_genome(rng)
        t0 = time.perf_counter()
        problem.evaluate(g)
        assert time.perf_counter() - t0 >= 0.009
