"""Tests for the declarative API: SolverSpec, registries, validation."""

import json

import pytest

from repro.api import (SolverSpec, SpecError, available_encodings,
                       available_engines, available_objectives,
                       encoding_entry, engine_entry, first_doc_line,
                       objective_entry, resolve_spec)
from repro.api.registry import NO_DESCRIPTION, Registry
from repro.instances import available_instances


class TestRegistries:
    def test_all_registered_engines(self):
        # six GA engines + two exact oracle backends + four constructive
        # heuristics
        assert available_engines() == ["cellular", "cpsat", "edd", "exact",
                                       "hybrid", "island", "johnson",
                                       "master-slave", "neh", "simple",
                                       "spt", "two-level"]

    def test_engine_aliases_resolve(self):
        assert engine_entry("fine-grained").name == "cellular"
        assert engine_entry("fine_grained").name == "cellular"
        assert engine_entry("master_slave").name == "master-slave"
        assert engine_entry("serial").name == "simple"
        assert engine_entry("island-of-cellular").name == "hybrid"

    def test_every_section_ii_objective_registered(self):
        names = available_objectives()
        for expected in ("makespan", "total-weighted-completion",
                         "total-weighted-tardiness",
                         "total-weighted-unit-penalty", "maximum-tardiness",
                         "total-flow-time", "weighted"):
            assert expected in names

    def test_every_encoding_registered(self):
        names = available_encodings()
        assert len(names) == 12
        assert "operation-based" in names and "openshop-pairs" in names
        assert "fuzzy-flowshop" in names and "stochastic-jobshop" in names

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(SpecError, match="did you mean"):
            engine_entry("iland")
        with pytest.raises(SpecError, match="available objective"):
            objective_entry("zzz-not-a-thing")

    def test_entries_have_descriptions(self):
        for name in available_engines():
            assert engine_entry(name).description != NO_DESCRIPTION
        for name in available_encodings():
            assert encoding_entry(name).description != NO_DESCRIPTION

    def test_first_doc_line_placeholder_for_missing_docstring(self):
        def undocumented(scale):
            return None
        assert first_doc_line(undocumented) == NO_DESCRIPTION
        assert first_doc_line(None) == NO_DESCRIPTION

        def documented(scale):
            """One line.

            More detail.
            """
        assert first_doc_line(documented) == "One line."

    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")

        @reg.register("a", aliases=("b",))
        def _a():
            """A thing."""

        with pytest.raises(ValueError, match="already registered"):
            @reg.register("a")
            def _a2():
                """Clash."""
        with pytest.raises(ValueError, match="alias"):
            @reg.register("c", aliases=("b",))
            def _c():
                """Alias clash."""


def _sample_instance_for(encoding_name):
    return encoding_entry(encoding_name).tags["sample_instance"]


class TestRoundTrip:
    def test_round_trip_every_engine_encoding_objective_combination(self):
        """Acceptance: from_dict(to_dict(spec)) round-trips for the whole
        registry product (and survives JSON serialization)."""
        for engine in available_engines():
            for encoding in available_encodings():
                instance = _sample_instance_for(encoding)
                for objective in available_objectives():
                    params = ({"parts": [[0.7, "makespan"],
                                         [0.3, "maximum-tardiness"]]}
                              if objective == "weighted" else {})
                    spec = SolverSpec(
                        instance=instance, encoding=encoding,
                        objective=objective, objective_params=params,
                        engine=engine, seed=13,
                        termination={"max_generations": 7})
                    again = SolverSpec.from_dict(spec.to_dict())
                    assert again == spec, (engine, encoding, objective)
                    via_json = SolverSpec.from_json(spec.to_json())
                    assert via_json == spec, (engine, encoding, objective)

    def test_registry_product_specs_all_validate(self):
        for engine in available_engines():
            for encoding in available_encodings():
                spec = SolverSpec(instance=_sample_instance_for(encoding),
                                  encoding=encoding, engine=engine)
                spec.validate()

    def test_resolved_spec_round_trips_and_validates(self):
        spec = SolverSpec(instance="ft06", engine="fine_grained",
                          ga={"population_size": 16})
        resolved = resolve_spec(spec)
        assert resolved.engine == "cellular"        # canonical name
        assert resolved.encoding == "operation-based"  # class default
        assert resolved.engine_params["neighborhood"] == "L5"  # defaults
        assert SolverSpec.from_dict(resolved.to_dict()) == resolved
        resolved.validate()

    def test_frozen_spec_not_mutable_through_shared_dict(self):
        ga = {"population_size": 30}
        spec = SolverSpec(instance="ft06", ga=ga)
        ga["population_size"] = 999
        assert spec.ga["population_size"] == 30
        assert spec.to_dict()["ga"]["population_size"] == 30

    def test_replace_produces_new_spec(self):
        spec = SolverSpec(instance="ft06")
        other = spec.replace(engine="island", seed=7)
        assert other.engine == "island" and other.seed == 7
        assert spec.engine == "simple" and spec.seed == 42


class TestValidation:
    def test_unknown_spec_field(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            SolverSpec.from_dict({"instance": "ft06", "enginee": "simple"})

    def test_missing_instance_field(self):
        with pytest.raises(SpecError, match="instance"):
            SolverSpec.from_dict({"engine": "simple"})

    def test_unknown_instance(self):
        with pytest.raises(SpecError, match="unknown instance"):
            SolverSpec(instance="nope").validate()

    def test_unknown_engine_with_suggestion(self):
        with pytest.raises(SpecError, match="did you mean 'island'"):
            SolverSpec(instance="ft06", engine="islnd").validate()

    def test_unknown_engine_param_lists_accepted(self):
        with pytest.raises(SpecError, match="accepted"):
            SolverSpec(instance="ft06", engine="island",
                       engine_params={"n_islands": 4}).validate()

    def test_bad_topology_rejected_at_validation(self):
        with pytest.raises(SpecError, match="unknown topology"):
            SolverSpec(instance="ft06", engine="island",
                       engine_params={"topology": "pentagram"}).validate()

    def test_bad_neighborhood_rejected_at_validation(self):
        with pytest.raises(SpecError, match="unknown neighborhood"):
            SolverSpec(instance="ft06", engine="cellular",
                       engine_params={"neighborhood": "L7"}).validate()

    def test_unknown_ga_key_suggests(self):
        with pytest.raises(SpecError, match="population_size"):
            SolverSpec(instance="ft06",
                       ga={"poplation_size": 10}).validate()

    def test_invalid_ga_value_surfaces_gaconfig_message(self):
        with pytest.raises(SpecError, match=r"ga: .*\[0, 1\]"):
            SolverSpec(instance="ft06",
                       ga={"crossover_rate": 1.5}).validate()

    def test_termination_must_not_be_empty(self):
        with pytest.raises(SpecError, match="at least one criterion"):
            SolverSpec(instance="ft06", termination={}).validate()

    def test_unknown_termination_criterion(self):
        with pytest.raises(SpecError, match="unknown criterion"):
            SolverSpec(instance="ft06",
                       termination={"max_gens": 5}).validate()

    def test_non_numeric_termination_value(self):
        with pytest.raises(SpecError, match="must be a number"):
            SolverSpec(instance="ft06",
                       termination={"max_generations": "ten"}).validate()

    def test_encoding_instance_class_mismatch(self):
        with pytest.raises(SpecError, match="FlowShopInstance"):
            SolverSpec(instance="ft06", encoding="permutation").validate()

    def test_weighted_objective_requires_parts(self):
        import repro
        with pytest.raises(SpecError, match="parts"):
            repro.solve(SolverSpec(instance="ft06", objective="weighted",
                                   termination={"max_generations": 1}))

    def test_weighted_objective_rejects_nesting(self):
        import repro
        spec = SolverSpec(instance="ft06", objective="weighted",
                          objective_params={
                              "parts": [[1.0, "weighted"]]},
                          termination={"max_generations": 1})
        with pytest.raises(SpecError, match="nest"):
            repro.solve(spec)

    def test_bad_seed_and_eval_cost(self):
        with pytest.raises(SpecError, match="seed"):
            SolverSpec(instance="ft06", seed="abc").validate()
        with pytest.raises(SpecError, match="eval_cost"):
            SolverSpec(instance="ft06", eval_cost=-1.0).validate()

    def test_unknown_instance_param(self):
        with pytest.raises(SpecError, match="instance_params"):
            SolverSpec(instance="ft06",
                       instance_params={"due": 1.5}).validate()

    def test_non_mapping_dict_fields_are_spec_errors(self):
        # malformed JSON job payloads must fail actionably, not with a
        # raw TypeError/ValueError from dict()
        with pytest.raises(SpecError, match="ga: must be a mapping"):
            SolverSpec.from_dict({"instance": "ft06", "ga": "big"})
        with pytest.raises(SpecError, match="termination: must be a"):
            SolverSpec.from_dict({"instance": "ft06", "termination": 5})
        with pytest.raises(SpecError, match="engine_params"):
            SolverSpec(instance="ft06", engine_params=[("workers", 2)])

    def test_bad_instance_param_value_is_spec_error(self):
        import repro
        with pytest.raises(SpecError, match="instance_params"):
            repro.solve(SolverSpec(instance="ft06",
                                   instance_params={"weights": "x"},
                                   termination={"max_generations": 1}))

    def test_every_registry_instance_loads(self):
        # the spec layer points at the instance registry; every name it
        # exposes must construct
        for name in available_instances():
            SolverSpec(instance=name).validate()


class TestHypothesisRoundTrip:
    def test_property_round_trip(self):
        """Property test: random specs over the registries round-trip
        through to_dict/from_dict and JSON."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        encodings = available_encodings()

        @st.composite
        def specs(draw):
            encoding = draw(st.sampled_from(encodings))
            termination = draw(st.dictionaries(
                st.sampled_from(("max_generations", "max_evaluations",
                                 "stagnation")),
                st.integers(min_value=1, max_value=500),
                min_size=1, max_size=3))
            return SolverSpec(
                instance=_sample_instance_for(encoding),
                encoding=encoding,
                objective=draw(st.sampled_from(
                    ("makespan", "total-flow-time", "maximum-tardiness"))),
                ga=draw(st.fixed_dictionaries({}, optional={
                    "population_size": st.integers(4, 200),
                    "crossover_rate": st.floats(0, 1),
                    "mutation_rate": st.floats(0, 1),
                })),
                termination=termination,
                engine=draw(st.sampled_from(available_engines())),
                seed=draw(st.integers(0, 2**31)),
            )

        @settings(max_examples=60, deadline=None)
        @given(spec=specs())
        def check(spec):
            assert SolverSpec.from_dict(spec.to_dict()) == spec
            assert SolverSpec.from_json(spec.to_json()) == spec
            # JSON text is canonical plain data
            json.loads(spec.to_json())
            spec.validate()

        check()


class TestCacheKey:
    def test_key_is_canonical_sha256_of_resolved_spec(self):
        spec = SolverSpec(instance="ft06", seed=13)
        key = spec.cache_key()
        assert len(key) == 64 and int(key, 16) >= 0
        payload = json.dumps(resolve_spec(spec).to_dict(), sort_keys=True,
                             separators=(",", ":"))
        import hashlib
        assert key == hashlib.sha256(payload.encode()).hexdigest()

    def test_aliases_and_resolution_hash_equal(self):
        """An alias, its canonical name and the fully-resolved spec all
        address the same deterministic run, so they share one key."""
        base = SolverSpec(instance="ft06", seed=5)
        assert base.replace(engine="serial").cache_key() == \
            base.replace(engine="simple").cache_key()
        assert base.replace(engine="fine-grained").cache_key() == \
            base.replace(engine="cellular").cache_key()
        assert resolve_spec(base).cache_key() == base.cache_key()

    def test_key_distinguishes_runs_that_differ(self):
        base = SolverSpec(instance="ft06", seed=5)
        assert base.cache_key() != base.replace(seed=6).cache_key()
        assert base.cache_key() != base.replace(engine="island").cache_key()
        assert base.cache_key() != \
            base.replace(ga={"population_size": 31}).cache_key()

    def test_unresolvable_specs_never_raise_and_stay_distinct(self):
        bad = SolverSpec(instance="no-such-instance", seed=1)
        assert bad.cache_key() == bad.cache_key()
        assert bad.cache_key() != bad.replace(seed=2).cache_key()

    def test_cache_key_stable_under_serialization_property(self):
        """Satellite property: for random registry specs,
        ``from_json(to_json(spec)).cache_key() == spec.cache_key()``."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        encodings = available_encodings()

        @st.composite
        def specs(draw):
            encoding = draw(st.sampled_from(encodings))
            return SolverSpec(
                instance=_sample_instance_for(encoding),
                encoding=draw(st.sampled_from((None, encoding))),
                objective=draw(st.sampled_from(
                    ("makespan", "total-flow-time"))),
                ga=draw(st.fixed_dictionaries({}, optional={
                    "population_size": st.integers(4, 200),
                    "mutation_rate": st.floats(0, 1),
                })),
                termination={"max_generations":
                             draw(st.integers(1, 500))},
                engine=draw(st.sampled_from(available_engines())),
                seed=draw(st.integers(0, 2**31)),
            )

        @settings(max_examples=40, deadline=None)
        @given(spec=specs())
        def check(spec):
            key = spec.cache_key()
            assert SolverSpec.from_json(spec.to_json()).cache_key() == key
            assert SolverSpec.from_dict(spec.to_dict()).cache_key() == key

        check()
