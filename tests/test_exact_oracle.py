"""Exact-solver oracle backend: proofs, reconstruction, optimality sweep.

The anchor of the conformance suite: the branch-and-bound oracle proves
optima (ft06 = 55 without any optional dependency), the proven values in
``KNOWN_OPTIMA`` stay consistent with the oracle, exact solutions survive
the trip through the normal genome/decode/audit path, and every GA
engine x substrate combination actually *reaches* the proven optimum on
tiny instances (bounded gap on ta-fs-20x5).
"""

import subprocess
import sys

import numpy as np
import pytest

from repro import ProvenGap, SolverSpec, solve
from repro.api import available_engines, available_substrates
from repro.api.registry import SpecError
from repro.exact import (ExactBackendUnavailable, ExactUnsupported,
                         bnb_supported, certify, cpsat_supported,
                         genome_for_solution, ortools_available,
                         relative_gap, solve_cpsat, solve_exact)
from repro.instances import (KNOWN_OPTIMA, get_instance, known_lower_bound,
                             known_optimum)
from repro.instances.generators import flexible_flow_shop, job_shop

#: Engine parameters for the optimality sweep (GA engines only).
GA_SWEEP_PARAMS = {
    "simple": {},
    "master-slave": {"backend": "serial"},
    "island": {"islands": 3},
    "cellular": {"rows": 4, "cols": 4},
    "hybrid": {"islands": 2, "rows": 3, "cols": 3, "migration_interval": 2},
    "two-level": {"islands": 2, "migration_interval": 2,
                  "broadcast_interval": 4},
}

#: Fixed restart-seed list: a GA is stochastic, so the anchoring claim
#: "this engine reaches the proven optimum" gets three deterministic
#: attempts per combination.
RESTART_SEEDS = (7, 11, 23)


class TestBranchAndBoundProofs:
    def test_ft06_optimum_proved_without_ortools(self):
        """The headline acceptance criterion: ft06 = 55, pure Python."""
        solution = solve_exact(get_instance("ft06"))
        assert solution.proved
        assert solution.makespan == 55.0
        assert solution.lower_bound == 55.0
        assert solution.gap == 0.0
        assert solution.nodes > 0

    @pytest.mark.parametrize("name", sorted(KNOWN_OPTIMA))
    def test_known_optima_table_is_oracle_certified(self, name):
        solution = solve_exact(get_instance(name))
        assert solution.proved
        assert solution.makespan == KNOWN_OPTIMA[name]

    @pytest.mark.parametrize("name", sorted(KNOWN_OPTIMA))
    def test_reconstructed_schedule_audits_at_the_optimum(self, name):
        """Certificates survive the genome -> decode -> audit path."""
        encoding = "openshop-pairs" if name.startswith("tiny-os") else None
        report = solve(SolverSpec(instance=name, engine="exact",
                                  encoding=encoding,
                                  termination={"max_generations": 1}))
        assert report.best_objective == KNOWN_OPTIMA[name]
        schedule = report.schedule()
        schedule.audit(report.problem.instance)
        assert schedule.makespan == KNOWN_OPTIMA[name]

    def test_optimum_never_below_combinatorial_lower_bound(self):
        for name in sorted(KNOWN_OPTIMA):
            instance = get_instance(name)
            assert KNOWN_OPTIMA[name] >= instance.makespan_lower_bound()

    def test_truncated_search_reports_unproved_incumbent(self):
        solution = solve_exact(get_instance("la01-shaped"), node_limit=500)
        assert not solution.proved
        assert solution.sequence is not None  # incumbent found, not proven
        assert solution.makespan >= solution.lower_bound > 0
        assert solution.gap > 0.0

    def test_seeded_upper_bound_prunes_to_no_sequence(self):
        """Seeding with the optimum proves it without finding a better one."""
        solution = solve_exact(get_instance("ft06"), upper_bound=55.0)
        assert solution.proved
        assert solution.makespan == 55.0
        assert solution.sequence is None

    def test_blocking_jobshop_unsupported(self):
        instance = get_instance("ft06")
        instance.blocking = True
        assert not bnb_supported(instance)
        with pytest.raises(ExactUnsupported):
            solve_exact(instance)

    def test_flexible_shop_needs_cpsat(self):
        instance = get_instance("fjsp-8x5-shaped")
        assert not bnb_supported(instance)
        assert cpsat_supported(instance)
        with pytest.raises(ExactUnsupported, match="cpsat"):
            solve_exact(instance)


class TestCertifyAndGaps:
    def test_certify_auto_uses_bnb_for_supported_classes(self):
        solution = certify(get_instance("tiny-js-4x4"))
        assert solution.backend == "bnb" and solution.proved

    def test_certify_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            certify(get_instance("ft06"), backend="simplex")

    def test_certify_auto_unsupported_class(self):
        hfs = flexible_flow_shop(3, (2, 2), seed=1)
        with pytest.raises(ExactUnsupported):
            certify(hfs)

    def test_relative_gap(self):
        assert relative_gap(110.0, 100.0) == pytest.approx(0.10)
        assert relative_gap(95.0, 100.0) == 0.0  # clamped at zero
        assert relative_gap(5.0, 0.0) == float("inf")
        assert relative_gap(0.0, 0.0) == 0.0

    def test_known_optimum_lookup(self):
        assert known_optimum("ft06") == 55.0
        assert known_optimum("abz5-shaped") is None

    def test_known_lower_bound_prefers_proven_optimum(self):
        assert known_lower_bound("ft06") == 55.0
        inst = get_instance("ta-fs-20x5-shaped")
        assert known_lower_bound(inst) == inst.makespan_lower_bound()
        with pytest.raises(KeyError):
            known_lower_bound(get_instance("hfs-10x3x2-shaped"))


class TestCpsatGate:
    """Graceful degradation without the optional ortools dependency."""

    def test_solve_cpsat_matches_bnb_or_degrades_cleanly(self):
        if ortools_available():
            solution = solve_cpsat(get_instance("ft06"))
            assert solution.proved and solution.makespan == 55.0
        else:
            with pytest.raises(ExactBackendUnavailable, match="ortools"):
                solve_cpsat(get_instance("ft06"))

    def test_cpsat_engine_error_is_a_spec_error(self):
        if ortools_available():
            pytest.skip("ortools installed; degradation path not reachable")
        with pytest.raises(SpecError, match="ortools"):
            solve(SolverSpec(instance="ft06", engine="cpsat",
                             termination={"max_generations": 1}))

    @pytest.mark.skipif(not ortools_available(),
                        reason="optional ortools dependency not installed")
    def test_cpsat_proves_every_known_optimum(self):
        for name in sorted(KNOWN_OPTIMA):
            solution = solve_cpsat(get_instance(name))
            assert solution.proved, name
            # flow shop CP-SAT certifies the unrestricted optimum, which
            # may undercut the permutation optimum the table records
            if name.startswith("tiny-fs"):
                assert solution.makespan <= KNOWN_OPTIMA[name], name
            else:
                assert solution.makespan == KNOWN_OPTIMA[name], name

    @pytest.mark.skipif(not ortools_available(),
                        reason="optional ortools dependency not installed")
    def test_cpsat_solves_the_flexible_job_shop(self):
        report = solve(SolverSpec(instance="fjsp-8x5-shaped", engine="cpsat",
                                  termination={"max_generations": 1}))
        assert report.extra["proved"]
        schedule = report.schedule()
        schedule.audit(report.problem.instance)
        assert schedule.makespan == report.best_objective


class TestExactEngine:
    def test_exact_engine_report_shape(self):
        report = solve(SolverSpec(instance="ft06", engine="exact",
                                  termination={"max_generations": 1}))
        assert report.engine == "exact"
        assert report.best_objective == 55.0
        assert report.generations == 1
        assert report.evaluations > 0
        assert "optimum proven" in report.termination_reason
        assert report.extra["proved"] is True
        assert report.extra["lower_bound"] == 55.0
        assert report.extra["backend"] == "bnb"

    def test_exact_engine_truncation_reports_gap(self):
        report = solve(SolverSpec(instance="la01-shaped", engine="exact",
                                  engine_params={"node_limit": 500},
                                  termination={"max_generations": 1}))
        assert report.extra["proved"] is False
        assert "gap" in report.termination_reason

    def test_exact_engine_respects_spec_time_limit(self):
        report = solve(SolverSpec(instance="abz7-shaped", engine="exact",
                                  termination={"time_limit": 0.2}))
        assert report.extra["proved"] is False
        assert report.elapsed < 5.0

    def test_exact_engine_rejects_non_makespan_objective(self):
        with pytest.raises(SpecError, match="makespan"):
            solve(SolverSpec(instance="ft06", engine="exact",
                             objective="total-flow-time",
                             termination={"max_generations": 1}))

    def test_exact_engine_rejects_heuristic_openshop_decoder(self):
        with pytest.raises(SpecError, match="openshop-pairs"):
            solve(SolverSpec(instance="tiny-os-4x4", engine="exact",
                             termination={"max_generations": 1}))

    def test_exact_engine_random_keys_reconstruction(self):
        report = solve(SolverSpec(instance="tiny-fs-6x3", engine="exact",
                                  encoding="random-keys-flowshop",
                                  termination={"max_generations": 1}))
        assert report.best_objective == KNOWN_OPTIMA["tiny-fs-6x3"]

    def test_exact_alias_bnb(self):
        report = solve(SolverSpec(instance="tiny-js-4x4", engine="bnb",
                                  termination={"max_generations": 1}))
        assert report.engine == "exact"

    def test_genome_for_solution_rejects_sequence_free_solutions(self):
        problem_report = solve(SolverSpec(instance="ft06", engine="exact",
                                          termination={"max_generations": 1}))
        solution = solve_exact(get_instance("ft06"), upper_bound=55.0)
        with pytest.raises(ExactUnsupported):
            genome_for_solution(problem_report.problem, solution)


class TestProvenGapThroughSolve:
    def test_proven_gap_terminates_at_known_optimum(self):
        report = solve(SolverSpec(instance="tiny-js-4x4",
                                  ga={"population_size": 48},
                                  termination={"proven_gap": 0.0,
                                               "max_generations": 300},
                                  seed=7))
        assert report.best_objective == KNOWN_OPTIMA["tiny-js-4x4"]
        assert "proven gap reached" in report.termination_reason

    def test_proven_gap_uses_combinatorial_bound_when_no_optimum(self):
        report = solve(SolverSpec(instance="ta-fs-20x5-shaped",
                                  ga={"population_size": 36},
                                  termination={"proven_gap": 0.10,
                                               "max_generations": 60},
                                  seed=7))
        lb = known_lower_bound("ta-fs-20x5-shaped")
        assert relative_gap(report.best_objective, lb) <= 0.10

    def test_proven_gap_spec_error_without_bound(self):
        with pytest.raises(SpecError, match="proven_gap"):
            solve(SolverSpec(instance="hfs-10x3x2-shaped",
                             termination={"proven_gap": 0.1,
                                          "max_generations": 2}))

    def test_proven_gap_validates_like_any_criterion(self):
        spec = SolverSpec(instance="ft06",
                          termination={"proven_gap": 0.05})
        spec.validate()  # accepted vocabulary
        with pytest.raises(SpecError):
            SolverSpec(instance="ft06",
                       termination={"proven_gap": "tight"}).validate()

    def test_direct_construction_composes_with_engines(self):
        from repro import MaxGenerations, Problem, SimpleGA
        from repro.core.ga import GAConfig
        from repro.encodings import OperationBasedEncoding
        problem = Problem(OperationBasedEncoding(get_instance("tiny-js-4x4")))
        crit = ProvenGap(known_lower_bound("tiny-js-4x4"), gap=0.0) \
            | MaxGenerations(300)
        result = SimpleGA(problem, GAConfig(population_size=48), crit,
                          seed=7).run()
        assert result.best.objective == KNOWN_OPTIMA["tiny-js-4x4"]


class TestOptimalityAnchoredSweep:
    """Every GA engine x substrate reaches a proven optimum.

    The tiny 5x5 job shop is the hardest certified instance (some
    engine configurations need a restart), so passing here means the
    whole matrix is anchored on ground truth, not self-consistency.
    E24 runs the full four-instance matrix; this keeps the hardest case
    in tier-1.
    """

    @pytest.mark.parametrize("substrate", available_substrates())
    @pytest.mark.parametrize("engine", sorted(GA_SWEEP_PARAMS))
    def test_engine_reaches_proven_optimum(self, engine, substrate):
        optimum = KNOWN_OPTIMA["tiny-js-5x5"]
        best = float("inf")
        for seed in RESTART_SEEDS:
            report = solve(SolverSpec(
                instance="tiny-js-5x5", engine=engine,
                engine_params=GA_SWEEP_PARAMS[engine], substrate=substrate,
                ga={"population_size": 48},
                termination={"target": optimum, "max_generations": 300},
                seed=seed))
            best = min(best, report.best_objective)
            if best <= optimum:
                break
        assert best == optimum, (
            f"{engine}/{substrate} stalled at {best} > proven {optimum}")

    def test_every_ga_engine_is_in_the_sweep(self):
        from repro.api import engine_entry
        # exact oracles and one-shot constructive heuristics are not GAs:
        # neither restarts towards a proven optimum
        ga_engines = [e for e in available_engines()
                      if e not in ("exact", "cpsat")
                      and not engine_entry(e).tags.get("heuristic")]
        assert sorted(ga_engines) == sorted(GA_SWEEP_PARAMS), (
            "new GA engine: add it to the optimality-anchored sweep")

    def test_e24_smoke_passes(self):
        from repro.experiments.registry import run_experiment
        result = run_experiment("E24", "smoke")
        assert result.passed, result.observations


class TestMemeticExactPolish:
    def test_exact_polish_certifies_or_improves_elites(self):
        from repro.encodings import OperationBasedEncoding
        from repro.extensions import exact_polish
        from repro import Problem
        rng = np.random.default_rng(5)
        problem = Problem(OperationBasedEncoding(get_instance("ft06")))
        genome = problem.random_genome(rng)
        polished = exact_polish(genome, problem, rng, node_limit=100_000)
        # a full-node polish of any ft06 chromosome lands on the optimum
        assert problem.evaluate(polished) == 55.0

    def test_exact_polish_keeps_already_optimal_elites(self):
        from repro.extensions import exact_polish
        report = solve(SolverSpec(instance="tiny-js-4x4", engine="exact",
                                  termination={"max_generations": 1}))
        rng = np.random.default_rng(5)
        polished = exact_polish(report.best_genome, report.problem, rng)
        assert report.problem.evaluate(polished) == 260.0

    def test_exact_polish_falls_back_on_large_instances(self):
        from repro.encodings import OperationBasedEncoding
        from repro.extensions import exact_polish
        from repro import Problem
        rng = np.random.default_rng(5)
        problem = Problem(OperationBasedEncoding(
            get_instance("abz7-shaped")))
        genome = problem.random_genome(rng)
        base = problem.evaluate(genome)
        polished = exact_polish(genome, problem, rng, max_ops=64)
        assert problem.evaluate(polished) <= base  # hill-climb fallback

    def test_make_local_search_exposes_exact(self):
        from repro.extensions import make_local_search
        from repro.encodings import OperationBasedEncoding
        from repro import Problem
        hook = make_local_search("exact")
        rng = np.random.default_rng(5)
        problem = Problem(OperationBasedEncoding(get_instance("tiny-js-4x4")))
        polished = hook(problem.random_genome(rng), problem, rng)
        assert problem.evaluate(polished) == 260.0


class TestCli:
    def test_cli_solve_with_exact_engine(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "solve", "tiny-js-4x4",
             "--engine", "exact", "--generations", "1"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "260" in proc.stdout

    def test_cli_cpsat_degrades_with_clear_message(self):
        if ortools_available():
            pytest.skip("ortools installed; degradation path not reachable")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "solve", "ft06",
             "--engine", "cpsat", "--generations", "1"],
            capture_output=True, text=True)
        assert proc.returncode != 0
        assert "ortools" in (proc.stderr + proc.stdout)
