"""Tests for the master-slave, island, cellular and hybrid engines."""

import numpy as np
import pytest

from repro.core import GAConfig, MaxGenerations, SimpleGA
from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import get_instance
from repro.parallel import (CellularGA, IslandGA, IslandOfCellularGA,
                            MasterSlaveGA, MigrationPolicy, NEIGHBORHOODS,
                            RingTopology, TwoLevelIslandGA,
                            island_with_torus_topology, neighborhood_offsets)


@pytest.fixture(scope="module")
def problem():
    return Problem(OperationBasedEncoding(get_instance("ft06")))


CFG = GAConfig(population_size=16, n_elites=2)


class TestMasterSlave:
    def test_serial_backend_equals_simple_ga(self, problem):
        simple = SimpleGA(problem, CFG, MaxGenerations(6), seed=3).run()
        ms = MasterSlaveGA(problem, CFG, MaxGenerations(6), seed=3,
                           backend="serial").run()
        assert ms.best_objective == simple.best_objective
        assert np.array_equal(ms.best.genome, simple.best.genome)

    def test_process_backend_identical_results(self, problem):
        """The survey's defining property: distribution of evaluation does
        not affect algorithm behaviour."""
        serial = MasterSlaveGA(problem, CFG, MaxGenerations(5), seed=3,
                               backend="serial").run()
        pooled = MasterSlaveGA(problem, CFG, MaxGenerations(5), seed=3,
                               backend="process", n_workers=3).run()
        assert pooled.best_objective == serial.best_objective
        assert tuple(pooled.history.best_curve()) == \
            tuple(serial.history.best_curve())

    def test_batched_backend_identical_results(self, problem):
        serial = MasterSlaveGA(problem, CFG, MaxGenerations(4), seed=9,
                               backend="serial").run()
        batched = MasterSlaveGA(problem, CFG, MaxGenerations(4), seed=9,
                                backend="batched", n_workers=2,
                                batch_size=5).run()
        assert batched.best_objective == serial.best_objective

    def test_eval_stats_recorded(self, problem):
        ms = MasterSlaveGA(problem, CFG, MaxGenerations(3), seed=1,
                           backend="serial")
        result = ms.run()
        assert ms.eval_stats.genomes == result.evaluations
        assert result.extra["backend"] == "serial"

    def test_invalid_backend(self, problem):
        with pytest.raises(ValueError):
            MasterSlaveGA(problem, backend="gpu")


class TestIslandGA:
    def test_runs_and_reports(self, problem):
        res = IslandGA(problem, n_islands=3,
                       config=GAConfig(population_size=8),
                       migration=MigrationPolicy(interval=3, rate=1),
                       termination=MaxGenerations(12), seed=4).run()
        assert res.generations == 12
        assert res.n_islands_final == 3
        assert len(res.histories) == 3
        assert res.evaluations == 3 * 8 * 13  # init + 12 generations

    def test_deterministic(self, problem):
        kw = dict(n_islands=3, config=GAConfig(population_size=8),
                  migration=MigrationPolicy(interval=3, rate=1),
                  termination=MaxGenerations(9), seed=11)
        a = IslandGA(problem, **kw).run()
        b = IslandGA(problem, **kw).run()
        assert a.best_objective == b.best_objective
        assert tuple(a.global_history.best_curve()) == \
            tuple(b.global_history.best_curve())

    def test_migration_actually_mixes(self, problem):
        """With cooperation, an island can host a genome born elsewhere."""
        ga = IslandGA(problem, n_islands=2,
                      config=GAConfig(population_size=6),
                      migration=MigrationPolicy(interval=1, rate=2),
                      termination=MaxGenerations(2), seed=5)
        ga.initialize()
        before = {i: {ind.genome_key() for ind in ga.islands[i].population}
                  for i in range(2)}
        ga._advance_serial(1)
        ga.state.generation += 1
        moved = ga.migrate(1)
        assert moved > 0

    def test_cooperation_off_never_migrates(self, problem):
        ga = IslandGA(problem, n_islands=2,
                      config=GAConfig(population_size=6),
                      migration=MigrationPolicy(interval=1, rate=2),
                      termination=MaxGenerations(2), seed=5,
                      cooperation=False)
        ga.initialize()
        assert ga.migrate(1) == 0

    def test_shared_start_identical_initial_pops(self, problem):
        ga = IslandGA(problem, n_islands=3,
                      config=GAConfig(population_size=5),
                      termination=MaxGenerations(1), seed=6,
                      shared_start=True)
        ga.initialize()
        keys = [tuple(sorted(ind.genome_key()
                             for ind in isl.population))
                for isl in ga.islands]
        assert keys[0] == keys[1] == keys[2]

    def test_heterogeneous_configs(self, problem):
        from repro.operators import (JobBasedCrossover, OrderCrossover,
                                     SwapMutation, ShiftMutation)
        configs = [GAConfig(population_size=6, crossover=JobBasedCrossover(),
                            mutation=SwapMutation()),
                   GAConfig(population_size=6, crossover=OrderCrossover(),
                            mutation=ShiftMutation())]
        res = IslandGA(problem, n_islands=2, config=configs,
                       termination=MaxGenerations(4), seed=7).run()
        assert res.generations == 4

    def test_config_count_mismatch(self, problem):
        with pytest.raises(ValueError):
            IslandGA(problem, n_islands=3,
                     config=[GAConfig(population_size=4)] * 2)

    def test_topology_size_mismatch(self, problem):
        with pytest.raises(ValueError):
            IslandGA(problem, n_islands=3, topology=RingTopology(4))

    def test_merge_on_stagnation_reduces_islands(self, problem):
        res = IslandGA(problem, n_islands=4,
                       config=GAConfig(population_size=6, mutation_rate=0.0,
                                       immigration_rate=0.0),
                       migration=MigrationPolicy(interval=2, rate=1),
                       termination=MaxGenerations(40), seed=8,
                       merge_on_stagnation=40).run()
        # threshold 40 > genome length 36, so every island stagnates
        assert res.n_islands_final < 4

    def test_process_parallel_matches_serial(self, problem):
        kw = dict(n_islands=2, config=GAConfig(population_size=6),
                  migration=MigrationPolicy(interval=2, rate=1),
                  termination=MaxGenerations(4), seed=13)
        serial = IslandGA(problem, parallel="serial", **kw).run()
        procs = IslandGA(problem, parallel="process", n_workers=2,
                         **kw).run()
        assert procs.best_objective == serial.best_objective
        assert tuple(procs.global_history.best_curve()) == \
            tuple(serial.global_history.best_curve())


class TestCellularGA:
    def test_grid_defines_population(self, problem):
        ga = CellularGA(problem, rows=4, cols=3,
                        termination=MaxGenerations(3), seed=1)
        res = ga.run()
        assert len(res.population) == 12
        assert res.extra["rows"] == 4

    def test_neighborhood_shapes(self):
        assert len(neighborhood_offsets("L5")) == 4
        assert len(neighborhood_offsets("C9")) == 8
        assert len(neighborhood_offsets("L9")) == 8
        assert len(neighborhood_offsets("C13")) == 12
        with pytest.raises(ValueError):
            neighborhood_offsets("X1")

    def test_toroidal_neighbors(self, problem):
        ga = CellularGA(problem, rows=3, cols=3, neighborhood="L5", seed=0)
        coords = ga.neighbors(0, 0)
        assert (2, 0) in coords and (0, 2) in coords  # wrap-around

    def test_if_better_replacement_monotone_cells(self, problem):
        ga = CellularGA(problem, rows=3, cols=3,
                        termination=MaxGenerations(5), seed=2,
                        replacement="if_better")
        ga.initialize()
        before = [[ga.grid[r][c].objective for c in range(3)]
                  for r in range(3)]
        for _ in range(5):
            ga.step()
        after = [[ga.grid[r][c].objective for c in range(3)]
                 for r in range(3)]
        for r in range(3):
            for c in range(3):
                assert after[r][c] <= before[r][c]

    def test_always_replacement_allowed(self, problem):
        res = CellularGA(problem, rows=3, cols=3,
                         termination=MaxGenerations(3), seed=2,
                         replacement="always").run()
        assert res.generations == 3

    def test_deterministic(self, problem):
        a = CellularGA(problem, rows=3, cols=4,
                       termination=MaxGenerations(4), seed=9).run()
        b = CellularGA(problem, rows=3, cols=4,
                       termination=MaxGenerations(4), seed=9).run()
        assert a.best_objective == b.best_objective

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            CellularGA(problem, rows=0, cols=3)
        with pytest.raises(ValueError):
            CellularGA(problem, replacement="sometimes")


class TestHybrids:
    def test_island_of_cellular_runs(self, problem):
        res = IslandOfCellularGA(problem, n_islands=2, rows=3, cols=3,
                                 termination=MaxGenerations(8),
                                 migration=MigrationPolicy(interval=4,
                                                           rate=1),
                                 seed=3).run()
        assert res.extra["model"] == "island_of_cellular"
        assert res.best_objective > 0

    def test_island_with_torus_topology_factory(self, problem):
        ga = island_with_torus_topology(problem, n_islands=9,
                                        subpop_size=4,
                                        termination=MaxGenerations(4),
                                        seed=4)
        res = ga.run()
        assert res.generations == 4

    def test_two_level_validates_intervals(self, problem):
        with pytest.raises(ValueError):
            TwoLevelIslandGA(problem,
                             migration=MigrationPolicy(interval=10),
                             broadcast_interval=5)

    def test_two_level_runs_and_reports(self, problem):
        res = TwoLevelIslandGA(problem, n_islands=3,
                               config=GAConfig(population_size=6),
                               migration=MigrationPolicy(interval=2, rate=1),
                               broadcast_interval=6,
                               termination=MaxGenerations(12),
                               seed=5).run()
        assert res.extra["GN"] == 2 and res.extra["LN"] == 6
        assert res.generations == 12

    def test_two_level_broadcast_spreads_best(self, problem):
        """After a broadcast every island contains the global best."""
        ga = TwoLevelIslandGA(problem, n_islands=3,
                              config=GAConfig(population_size=6),
                              migration=MigrationPolicy(interval=2, rate=0),
                              broadcast_interval=4,
                              termination=MaxGenerations(4), seed=6)
        inner = ga.inner
        inner.initialize()
        inner._advance_serial(4)
        ga._broadcast()
        global_best = min(isl.population.best().objective
                          for isl in inner.islands)
        for isl in inner.islands:
            assert isl.population.best().objective == global_best
