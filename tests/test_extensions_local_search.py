"""Property tests for the local-search hooks.

Every hook shares three contracts this file pins down across random
seeds: (1) the returned genome never evaluates worse than the input,
(2) the result stays inside the encoding's genome space (a permutation
stays a permutation, a repetition chromosome keeps its multiset, a
tuple genome only ever climbs on its sequence part), and (3) the
caller's genome object is never mutated in place.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Problem
from repro.encodings import (FlexibleJobShopEncoding, OperationBasedEncoding)
from repro.extensions import (critical_path_descent, exact_polish,
                              insertion_hill_climb, make_local_search,
                              redirect_procedure, swap_hill_climb)
from repro.instances import get_instance

HOOKS = {
    "swap": swap_hill_climb,
    "insertion": insertion_hill_climb,
    "redirect": redirect_procedure,
    "critical_path": critical_path_descent,
    "exact": exact_polish,
}

seeds = st.integers(min_value=0, max_value=2**31 - 1)
fast = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def jssp_problem():
    return Problem(OperationBasedEncoding(get_instance("ft06")))


@pytest.fixture(scope="module")
def fjsp_problem():
    return Problem(FlexibleJobShopEncoding(get_instance("fjsp-8x5-shaped")))


@pytest.mark.parametrize("hook", sorted(HOOKS))
class TestFlatGenomeInvariants:
    @fast
    @given(seed=seeds)
    def test_non_worsening_and_closed(self, hook, jssp_problem, seed):
        rng = np.random.default_rng(seed)
        genome = jssp_problem.random_genome(rng)
        before = genome.copy()
        base = jssp_problem.evaluate(genome)
        out = HOOKS[hook](genome, jssp_problem, rng)
        # (1) monotone non-worsening
        assert jssp_problem.evaluate(out) <= base
        # (2) genome closure: same operation multiset
        assert np.array_equal(np.sort(out), np.sort(before))
        # (3) the input genome is left untouched
        assert np.array_equal(genome, before)


@pytest.mark.parametrize("hook", sorted(HOOKS))
class TestTupleGenomeInvariants:
    @fast
    @given(seed=seeds)
    def test_sequence_part_only(self, hook, fjsp_problem, seed):
        """Tuple genomes climb on part 1; the assignment part is frozen."""
        rng = np.random.default_rng(seed)
        genome = fjsp_problem.random_genome(rng)
        assert isinstance(genome, tuple) and len(genome) == 2
        assign_before = np.asarray(genome[0]).copy()
        seq_before = np.asarray(genome[1]).copy()
        base = fjsp_problem.evaluate(genome)
        out = HOOKS[hook](genome, fjsp_problem, rng)
        assert fjsp_problem.evaluate(out) <= base
        assert isinstance(out, tuple)
        np.testing.assert_array_equal(np.asarray(out[0]), assign_before)
        assert np.array_equal(np.sort(np.asarray(out[1])),
                              np.sort(seq_before))
        # input tuple untouched
        np.testing.assert_array_equal(np.asarray(genome[0]), assign_before)
        np.testing.assert_array_equal(np.asarray(genome[1]), seq_before)


class TestHillClimbsActuallyDescend:
    def test_swap_hill_climb_improves_a_bad_genome(self, jssp_problem):
        rng = np.random.default_rng(3)
        genome = jssp_problem.random_genome(rng)
        base = jssp_problem.evaluate(genome)
        out = swap_hill_climb(genome, jssp_problem, rng, attempts=200)
        assert jssp_problem.evaluate(out) < base

    def test_critical_path_descent_beats_blind_swaps(self, jssp_problem):
        """The N1 neighbourhood is the informed one: at an equal budget
        it should not lose to uniform random swaps (on average)."""
        cp_total = blind_total = 0.0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            genome = jssp_problem.random_genome(rng)
            cp_total += jssp_problem.evaluate(critical_path_descent(
                genome, jssp_problem, np.random.default_rng(seed + 100),
                attempts=15))
            blind_total += jssp_problem.evaluate(swap_hill_climb(
                genome, jssp_problem, np.random.default_rng(seed + 100),
                attempts=15))
        assert cp_total <= blind_total

    def test_redirect_returns_input_when_kick_does_not_help(self,
                                                            jssp_problem):
        # polish a genome to a local optimum first, then redirect with a
        # tiny budget: the kicked descendant rarely beats it, and the
        # contract says the *input* genome comes back then
        rng = np.random.default_rng(0)
        genome = swap_hill_climb(jssp_problem.random_genome(rng),
                                 jssp_problem, rng, attempts=300)
        base = jssp_problem.evaluate(genome)
        out = redirect_procedure(genome, jssp_problem,
                                 np.random.default_rng(1),
                                 kicks=2, attempts=2)
        assert jssp_problem.evaluate(out) <= base


class TestExactPolish:
    def test_polish_lands_on_certified_optimum(self):
        problem = Problem(OperationBasedEncoding(
            get_instance("tiny-js-4x4")))
        rng = np.random.default_rng(7)
        out = exact_polish(problem.random_genome(rng), problem, rng)
        assert problem.evaluate(out) == 260.0

    def test_polish_is_identity_on_an_optimal_elite(self):
        from repro.exact import genome_for_solution, solve_exact
        from repro.encodings import FlowShopPermutationEncoding
        instance = get_instance("tiny-fs-6x3")
        problem = Problem(FlowShopPermutationEncoding(instance))
        optimal = genome_for_solution(problem, solve_exact(instance))
        out = exact_polish(optimal, problem, np.random.default_rng(1))
        np.testing.assert_array_equal(out, optimal)

    def test_polish_falls_back_beyond_max_ops(self, jssp_problem):
        rng = np.random.default_rng(2)
        genome = jssp_problem.random_genome(rng)
        base = jssp_problem.evaluate(genome)
        # ft06 has 36 ops; force the fallback with max_ops=10
        out = exact_polish(genome, jssp_problem, rng, max_ops=10,
                           attempts=50)
        assert jssp_problem.evaluate(out) <= base
        assert np.array_equal(np.sort(out), np.sort(genome))

    def test_polish_falls_back_for_non_makespan_objectives(self):
        from repro.scheduling.objectives import TotalFlowTime
        problem = Problem(OperationBasedEncoding(get_instance("ft06")),
                          objective=TotalFlowTime())
        rng = np.random.default_rng(4)
        genome = problem.random_genome(rng)
        out = exact_polish(genome, problem, rng, attempts=50)
        assert problem.evaluate(out) <= problem.evaluate(genome)


class TestFactory:
    def test_factory_covers_every_hook(self):
        for kind in ("swap", "insertion", "redirect", "critical_path",
                     "exact"):
            assert callable(make_local_search(kind))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown local search"):
            make_local_search("tabu")

    def test_factory_threads_attempts(self):
        problem = Problem(OperationBasedEncoding(get_instance("ft06")))
        rng = np.random.default_rng(9)
        genome = problem.random_genome(rng)
        hook = make_local_search("swap", attempts=0)
        out = hook(genome, problem, np.random.default_rng(9))
        # zero attempts: the climb is a no-op
        np.testing.assert_array_equal(out, genome)
