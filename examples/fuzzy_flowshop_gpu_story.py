"""Fuzzy flow shop + simulated CUDA speedup (Huang et al. [24]).

Two halves, matching how the paper is built:

1. *algorithm*: a random-keys GA maximising the minimum agreement index
   between fuzzy completion times and fuzzy due dates (runs natively);
2. *platform*: the speedup a GTX-285-class device model yields on the
   same workload, replayed by the simulated-cluster substrate (the GPU
   substitution documented in DESIGN.md).

Run with::

    python examples/fuzzy_flowshop_gpu_story.py
"""

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.extensions import FuzzyFlowShopEncoding, FuzzyFlowShopInstance
from repro.instances import flow_shop
from repro.parallel import (GATrace, gpu_device, simulate_master_slave,
                            simulate_serial)


def main() -> None:
    crisp = flow_shop(12, 5, seed=24)
    fuzzy = FuzzyFlowShopInstance.from_crisp(crisp, spread=0.25,
                                             due_tau=1.3, seed=24)
    problem = Problem(FuzzyFlowShopEncoding(fuzzy))

    ga = SimpleGA(problem, GAConfig(population_size=40, mutation_rate=0.3),
                  MaxGenerations(60), seed=24)
    result = ga.run()
    # objective = 1 - blended agreement index (0 = perfect agreement)
    print(f"fuzzy flow shop ({crisp.n_jobs} jobs x {crisp.n_machines} "
          f"machines with triangular fuzzy times/due dates)")
    print(f"initial objective : {result.history.records[0].best:.3f}")
    print(f"final objective   : {result.best_objective:.3f} "
          f"(lower = completions agree better with due windows)")

    enc = problem.encoding
    perm = enc.permutation(result.best.genome)
    print(f"best job sequence : {perm.tolist()}")

    print("\nsimulated CUDA speedup for this workload "
          "(GTX-285-class device, one chromosome per block):")
    print(f"{'jobs':>6} {'speedup':>8}")
    device = gpu_device(240, per_thread_speed=0.1)
    for n in (25, 50, 100, 200):
        trace = GATrace(generations=200, evals_per_generation=256,
                        eval_cost=2.2e-5 * n * 10, variation_cost=6e-3,
                        genome_bytes=8 * n)
        s = simulate_serial(trace) / simulate_master_slave(trace, device)
        print(f"{n:>6} {s:>8.1f}")
    print("(the paper reports ~19x at 200 jobs; the shape -- growth with "
          "problem size -- is the reproduced claim)")


if __name__ == "__main__":
    main()
