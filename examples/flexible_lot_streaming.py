"""Flexible flow shop with lot streaming (Defersha & Chen [35]).

Shows (1) how sublot splitting shortens the makespan of the same job
sequence, and (2) an island GA optimising sublot sizes and the sequence
together over three migration topologies.

Run with::

    python examples/flexible_lot_streaming.py
"""

import numpy as np

from repro import GAConfig, MaxGenerations, Problem
from repro.encodings import LotStreamingEncoding
from repro.instances import flexible_flow_shop
from repro.operators import (CompositeCrossover, CompositeMutation,
                             GaussianKeyMutation, OrderCrossover,
                             ParameterizedUniformCrossover, SwapMutation,
                             TournamentSelection)
from repro.parallel import IslandGA, MigrationPolicy, topology_by_name
from repro.scheduling import LotStreamingPlan, decode_lot_streaming


def main() -> None:
    instance = flexible_flow_shop(n_jobs=10, machines_per_stage=(2, 3, 2),
                                  seed=35)
    print(f"hybrid flow shop: {instance.n_jobs} jobs, stages with "
          f"{instance.machines_per_stage} parallel machines")

    # 1. lot streaming effect on a fixed sequence
    rng = np.random.default_rng(1)
    perm = rng.permutation(instance.n_jobs)
    print("\nmakespan of one fixed sequence vs sublot count:")
    for sublots in (1, 2, 3, 4):
        plan = LotStreamingPlan.equal(instance.n_jobs, sublots)
        cmax = decode_lot_streaming(instance, perm, plan).makespan
        print(f"  {sublots} sublot(s): Cmax = {cmax:7.1f}")

    # 2. island GA optimising (sublot sizes, sequence) per topology
    encoding = LotStreamingEncoding(instance, sublots=2)
    problem = Problem(encoding)
    config = GAConfig(
        population_size=10,
        crossover=CompositeCrossover([ParameterizedUniformCrossover(0.6),
                                      OrderCrossover()]),
        mutation=CompositeMutation([GaussianKeyMutation(sigma=0.15, rate=0.3),
                                    SwapMutation()]),
        selection=TournamentSelection(2), mutation_rate=0.3)

    print("\nisland GA (4 islands, 40 generations) per migration topology:")
    for name in ("ring", "mesh", "full"):
        result = IslandGA(problem, n_islands=4, config=config,
                          topology=topology_by_name(name, 4),
                          migration=MigrationPolicy(interval=5, rate=1,
                                                    emigrant="best",
                                                    replacement="random"),
                          termination=MaxGenerations(40), seed=35).run()
        print(f"  {name:>5}: best Cmax = {result.best_objective:7.1f}")

    best = result.best
    keys, perm = best.genome
    plan = encoding.plan(best.genome)
    print("\nbest sublot fractions per job (consistent sublots):")
    for j, fr in enumerate(plan.fractions[:5]):
        print(f"  job {j}: {np.round(fr, 2)}")
    print("  ...")


if __name__ == "__main__":
    main()
