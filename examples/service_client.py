"""HTTP client for the solver service: concurrent sweep over the wire.

Everything a remote client needs is stdlib ``urllib`` + ``json`` -- the
service speaks plain HTTP.  This example submits a seed sweep
concurrently, follows one job's per-generation Server-Sent-Events
stream, polls the rest to completion, and prints the service's own
cache/latency metrics.  Resubmitting the same sweep demonstrates
idempotency: every job answers from cache in milliseconds.

Start a server first (any host/port)::

    PYTHONPATH=src python -m repro serve --port 8080 --workers 2

then::

    python examples/service_client.py --base-url http://127.0.0.1:8080

``--smoke`` runs a minimal health-check round trip (wait for /healthz,
solve one tiny spec, verify the duplicate submit hits the cache) and
exits non-zero on any failure -- CI uses it to prove a freshly started
``repro serve`` process is actually serving.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor


def request(base, method, path, payload=None, timeout=120.0):
    """One JSON round trip; returns (status, body dict)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def wait_done(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = request(base, "GET", f"/jobs/{job_id}")
        if body.get("state") in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.1)
    raise TimeoutError(f"job {job_id} still not terminal after {timeout}s")


def wait_healthy(base, timeout=60.0):
    """Poll /healthz until the server answers (it may still be booting)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, body = request(base, "GET", "/healthz", timeout=2.0)
            if status == 200 and body.get("status") == "ok":
                return body
        except (urllib.error.URLError, OSError, TimeoutError):
            pass
        time.sleep(0.25)
    raise TimeoutError(f"no healthy server at {base} within {timeout}s")


def follow_stream(base, job_id):
    """Print the job's SSE progress stream until its terminal event."""
    req = urllib.request.Request(f"{base}/jobs/{job_id}/stream")
    with urllib.request.urlopen(req, timeout=300) as resp:
        event = None
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: ") and event == "generation":
                d = json.loads(line[len("data: "):])
                print(f"    gen {d['generation']:>3}  "
                      f"best={d['best']:<8g} mean={d['mean']:.1f}")
            elif line.startswith("data: ") and event not in (None,
                                                             "running"):
                print(f"    -> {event}: {line[len('data: '):]}")


def smoke(base) -> int:
    """Minimal end-to-end check; returns a process exit code."""
    health = wait_healthy(base)
    print(f"healthz ok: {health['workers']} worker(s)")
    spec = {"instance": "ft06", "ga": {"population_size": 10},
            "termination": {"max_generations": 2}, "seed": 3}
    status, body = request(base, "POST", "/solve", spec)
    if status not in (200, 202):
        print(f"submit failed: {status} {body}", file=sys.stderr)
        return 1
    final = wait_done(base, body["job_id"])
    if final["state"] != "done":
        print(f"job did not finish: {final}", file=sys.stderr)
        return 1
    status, dup = request(base, "POST", "/solve", spec)
    if status != 200 or not dup.get("cached"):
        print(f"duplicate submit missed the cache: {status} {dup}",
              file=sys.stderr)
        return 1
    print(f"smoke ok: job {body['job_id']} done, "
          f"best={final['result']['best_objective']:g}, duplicate "
          f"served from cache")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base-url", default="http://127.0.0.1:8080")
    parser.add_argument("--instance", default="ft06")
    parser.add_argument("--seeds", type=int, default=6,
                        help="number of distinct-seed jobs to submit")
    parser.add_argument("--generations", type=int, default=40)
    parser.add_argument("--smoke", action="store_true",
                        help="health-check round trip only (CI gate)")
    args = parser.parse_args(argv)
    base = args.base_url.rstrip("/")

    if args.smoke:
        return smoke(base)

    wait_healthy(base)
    specs = [{"instance": args.instance, "ga": {"population_size": 48},
              "termination": {"max_generations": args.generations},
              "seed": seed} for seed in range(1, args.seeds + 1)]

    print(f"submitting {len(specs)} jobs concurrently...")
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        submitted = list(pool.map(
            lambda s: request(base, "POST", "/solve", s), specs))
    for status, body in submitted:
        if status == 429:
            print(f"  saturated (429): {body['error']}")
        else:
            print(f"  {body['job_id']}  {body['state']}"
                  f"{'  (cached)' if body.get('cached') else ''}")

    accepted = [body for status, body in submitted if status in (200, 202)]
    if accepted:
        print(f"\nstreaming progress of {accepted[0]['job_id']}:")
        follow_stream(base, accepted[0]["job_id"])

    print("\nresults:")
    for body in accepted:
        final = wait_done(base, body["job_id"])
        state = final["state"]
        best = (f"best={final['result']['best_objective']:g}"
                if state == "done" else final.get("error", ""))
        print(f"  {body['job_id']}  {state:<6} {best}  "
              f"{final.get('elapsed') or 0:.2f}s")

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        again = list(pool.map(
            lambda s: request(base, "POST", "/solve", s), specs))
    wall = time.perf_counter() - t0
    hits = sum(1 for _, body in again if body.get("cached"))
    print(f"\nresubmitted all {len(specs)} jobs: {hits} cache hit(s) "
          f"in {wall * 1e3:.1f}ms total")

    _, metrics = request(base, "GET", "/metrics")
    cache = metrics["cache"]
    latency = metrics["solve_latency"]
    print(f"server metrics: hit_rate={cache['hit_rate']:.2f} "
          f"solves={metrics['solves_executed']} "
          f"mean_solve={latency['mean']:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
