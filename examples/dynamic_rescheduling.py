"""Predictive-reactive dynamic flow shop (Tang et al. [9], Section II).

A flow shop is planned with a GA, then disrupted by a machine breakdown
and two job arrivals; after every event the scheduler freezes what has
started and re-optimises the rest.

Run with::

    python examples/dynamic_rescheduling.py
"""

from repro.core import GAConfig
from repro.extensions import (EventStream, JobArrival, MachineBreakdown,
                              PredictiveReactiveScheduler)
from repro.instances import flow_shop


def main() -> None:
    initial = flow_shop(8, 4, seed=9)
    scheduler = PredictiveReactiveScheduler(
        initial, config=GAConfig(population_size=40), generations=40, seed=9)

    events = EventStream([
        MachineBreakdown(time=60.0, machine=1, duration=45.0),
        JobArrival(time=120.0, processing=(20.0, 35.0, 15.0, 25.0)),
        JobArrival(time=200.0, processing=(40.0, 10.0, 30.0, 20.0)),
    ])

    print(f"initial plan for {initial.n_jobs} jobs on "
          f"{initial.n_machines} machines...")
    sequence, cmax = scheduler.run(events)

    print(f"\n{'time':>6} {'event':<20} {'jobs':>5} {'new Cmax':>9}")
    for point in scheduler.reschedules:
        name = type(point.trigger).__name__
        print(f"{point.time:>6g} {name:<20} {point.jobs_remaining:>5} "
              f"{point.predicted_makespan:>9.1f}")

    print(f"\nfinal sequence: {sequence.tolist()}")
    print(f"final makespan: {cmax:.1f} "
          f"({len(scheduler.reschedules)} reactive re-optimisations)")


if __name__ == "__main__":
    main()
