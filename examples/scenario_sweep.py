"""Scenario sweep: one base spec, many scenarios, concurrent execution.

The declarative answer to "how does each parallel model behave across
instances and seeds?": a :class:`repro.ScenarioSweep` expands a base
:class:`repro.SolverSpec` over the product instances x engines x seeds
and a :class:`repro.SolverService` executes the batch on a process pool,
streaming structured results as runs finish.

Run with::

    python examples/scenario_sweep.py
"""

from collections import defaultdict

import repro


def main() -> None:
    sweep = repro.ScenarioSweep(
        base=repro.SolverSpec(
            instance="ft06",
            ga={"population_size": 48},
            termination={"max_generations": 40},
        ),
        instances=("ft06", "la01-shaped"),
        engines=("simple", "island", "cellular"),
        seeds=(1, 2, 3),
    )
    specs = sweep.specs()
    print(f"{len(specs)} scenarios "
          f"({len(sweep.instances)} instances x {len(sweep.engines)} "
          f"engines x {len(sweep.seeds)} seeds), 4 workers\n")

    bests: dict[tuple[str, str], list[float]] = defaultdict(list)
    for result in repro.SolverService(n_workers=4).run(specs):
        print(result.summary())
        if result.ok:
            spec = result.spec
            bests[(spec["instance"], spec["engine"])].append(
                result.report["best_objective"])

    print("\nmean best makespan per (instance, engine):")
    for (instance, engine), values in sorted(bests.items()):
        mean = sum(values) / len(values)
        print(f"  {instance:<14} {engine:<10} {mean:8.1f}")

    print("\nevery row above is reproducible from its spec alone: "
          "repro.solve(result.spec) reruns it bit-identically.")


if __name__ == "__main__":
    main()
