"""Island GA vs serial GA on a 10x10 job shop (the survey's Section III.D).

Reproduces, at example scale, the comparison behind Park et al. [26] and
Asadzadeh et al. [27]: an island model with ring migration against a
panmictic GA with the same total population and evaluation budget.

Run with::

    python examples/island_vs_serial_jobshop.py
"""

import numpy as np

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.encodings import OperationBasedEncoding
from repro.instances import get_instance
from repro.operators import TournamentSelection
from repro.parallel import IslandGA, MigrationPolicy, RingTopology


def ascii_curve(values, width: int = 60, label: str = "") -> str:
    """Render a convergence curve as a one-line sparkline."""
    v = np.asarray(values, dtype=float)
    lo, hi = v.min(), v.max()
    if hi == lo:
        return f"{label:>8} | {'-' * width} {v[-1]:g}"
    chars = " .:-=+*#%@"
    idx = np.linspace(0, len(v) - 1, width).astype(int)
    scaled = ((v[idx] - lo) / (hi - lo) * (len(chars) - 1)).astype(int)
    return (f"{label:>8} | "
            + "".join(chars[len(chars) - 1 - s] for s in scaled)
            + f" {v[-1]:g}")


def main() -> None:
    instance = get_instance("ft10-shaped")
    problem = Problem(OperationBasedEncoding(instance))
    total_pop, gens, seed = 48, 250, 90000
    sel = TournamentSelection(2)

    serial = SimpleGA(problem,
                      GAConfig(population_size=total_pop, selection=sel,
                               mutation_rate=0.15),
                      MaxGenerations(gens), seed=seed).run()

    island = IslandGA(problem, n_islands=4,
                      config=GAConfig(population_size=total_pop // 4,
                                      selection=sel, mutation_rate=0.15),
                      topology=RingTopology(4),
                      migration=MigrationPolicy(interval=10, rate=2,
                                                emigrant="best",
                                                replacement="worst"),
                      termination=MaxGenerations(gens), seed=seed).run()

    print(f"instance {instance.name}: {instance.n_jobs} jobs x "
          f"{instance.n_machines} machines")
    print(f"serial GA : best = {serial.best_objective:g}  "
          f"({serial.evaluations} evaluations)")
    print(f"island GA : best = {island.best_objective:g}  "
          f"({island.evaluations} evaluations, 4 islands, ring, "
          f"best-replace-worst every 10 generations)")

    print("\nconvergence (best-so-far; darker = worse):")
    print(ascii_curve(serial.history.best_curve(), label="serial"))
    print(ascii_curve(island.global_history.best_curve(), label="island"))

    print("\nper-island final bests:",
          [f"{h.final_best():g}" for h in island.histories])
    print("\nnote: single-seed outcomes vary; experiment E09 "
          "(benchmarks/bench_e09.py) repeats this comparison over several "
          "seeds and checks Park et al.'s claim statistically.")


if __name__ == "__main__":
    main()
