"""Energy-aware flow shop scheduling (Xu et al. [8], Tang et al. [9]).

Section II of the survey lists energy control as a modern integrated
factor.  This example shows both published angles:

1. *energy vs makespan objective weighting* [9]: idle machines still burn
   power, so an energy-weighted GA prefers sequences with less idle time
   even when that costs a little makespan;
2. *energy/makespan trade-off via speed scaling* [9]: running all machines
   faster shortens the schedule but burns quadratically more power.

(Peak-power capping [8] is exercised by the `EnergyAwareObjective` tests;
left-shifted permutation decoding keeps machine concurrency near-constant
across sequences, so the cap only binds with delay-insertion decoders.)

Run with::

    python examples/energy_aware_scheduling.py
"""

import numpy as np

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.encodings import FlowShopPermutationEncoding
from repro.extensions import (EnergyMakespanVector, PowerModel, SpeedScaling,
                              apply_speed_scaling, energy_consumption)
from repro.instances import flow_shop
from repro.scheduling import flowshop_schedule


def main() -> None:
    instance = flow_shop(10, 4, seed=8)
    # high idle draw amplifies the sequencing effect on energy
    power = PowerModel.uniform(4, processing=10.0, idle=6.0)
    problem_plain = Problem(FlowShopPermutationEncoding(instance))
    plain = SimpleGA(problem_plain, GAConfig(population_size=40),
                     MaxGenerations(60), seed=8).run()

    # 1. energy weight sweep: same GA, different (energy, makespan) weights
    print("objective weighting (w_energy, w_makespan) -> best schedule:")
    print(f"  {'weights':<12} {'Cmax':>7} {'idle':>7} {'energy':>9}")
    for w in ((0.0, 1.0), (0.05, 0.95), (0.2, 0.8)):
        objective = EnergyMakespanVector(power, weights=w)
        problem = Problem(FlowShopPermutationEncoding(instance),
                          objective=objective)
        result = SimpleGA(problem, GAConfig(population_size=40),
                          MaxGenerations(60), seed=8).run()
        sched = problem.decode(result.best.genome)
        print(f"  {str(w):<12} {sched.makespan:>7.1f} "
              f"{sched.idle_time():>7.1f} "
              f"{energy_consumption(sched, power):>9.1f}")
    print("(weighting energy higher trades makespan for less idle burn)")

    # 2. speed scaling: the energy/makespan dial
    print("\nspeed scaling (all machines at speed v, power ~ v^2):")
    print(f"  {'v':>4} {'Cmax':>8} {'energy':>9}")
    perm = np.asarray(plain.best.genome)
    for v in (0.8, 1.0, 1.25, 1.6):
        scaling = SpeedScaling(np.full(4, v), alpha=2.0)
        scaled_instance = apply_speed_scaling(instance, scaling)
        scaled_power = scaling.scale_power(power)
        sched = flowshop_schedule(scaled_instance, perm)
        print(f"  {v:>4} {sched.makespan:>8.1f} "
              f"{energy_consumption(sched, scaled_power):>9.1f}")
    print("(faster is shorter but costlier -- the Pareto dial Tang et al. "
          "explore with their bi-objective PSO; our WeightedIslandMOGA "
          "covers the same front, see experiment E20)")


if __name__ == "__main__":
    main()
