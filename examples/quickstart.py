"""Quickstart: solve the classic ft06 job shop with the simple GA.

Run with::

    python examples/quickstart.py

Demonstrates the core workflow every other example builds on:
instance -> encoding -> Problem -> engine -> decoded schedule.
"""

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.core import TargetObjective
from repro.encodings import OperationBasedEncoding
from repro.instances import FT06_OPTIMUM, get_instance


def main() -> None:
    instance = get_instance("ft06")
    print(f"instance: {instance.name} "
          f"({instance.n_jobs} jobs x {instance.n_machines} machines), "
          f"known optimum makespan = {FT06_OPTIMUM:g}")

    problem = Problem(OperationBasedEncoding(instance))
    ga = SimpleGA(
        problem,
        GAConfig(population_size=80, crossover_rate=0.9, mutation_rate=0.25,
                 n_elites=2),
        termination=TargetObjective(FT06_OPTIMUM) | MaxGenerations(150),
        seed=42,
    )
    result = ga.run()

    print(f"best makespan: {result.best_objective:g} "
          f"after {result.generations} generations "
          f"({result.evaluations} evaluations)")
    print(f"stopped because: {result.termination_reason}")

    schedule = problem.decode(result.best.genome)
    schedule.audit(instance)  # feasibility oracle: raises on any violation
    print("\nGantt chart (digits are job ids):")
    print(schedule.gantt())

    gap = (result.best_objective - FT06_OPTIMUM) / FT06_OPTIMUM
    print(f"\ngap to optimum: {100 * gap:.1f}%")


if __name__ == "__main__":
    main()
