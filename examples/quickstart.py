"""Quickstart: solve the classic ft06 job shop through `repro.solve()`.

Run with::

    python examples/quickstart.py

Demonstrates the declarative workflow every other example builds on: one
:class:`repro.SolverSpec` names the instance, objective, engine and
budgets; ``repro.solve(spec)`` resolves the names through the registries
and returns a :class:`repro.SolveReport` with the decoded best schedule
one call away.  The spec is plain data -- ``spec.to_json()`` is a
complete, reproducible job description.
"""

import repro
from repro.instances import FT06_OPTIMUM, get_instance


def main() -> None:
    instance = get_instance("ft06")
    print(f"instance: {instance.name} "
          f"({instance.n_jobs} jobs x {instance.n_machines} machines), "
          f"known optimum makespan = {FT06_OPTIMUM:g}")

    spec = repro.SolverSpec(
        instance="ft06",
        engine="simple",                    # try: island, cellular, hybrid
        ga={"population_size": 80, "crossover_rate": 0.9,
            "mutation_rate": 0.25, "n_elites": 2},
        termination={"target": FT06_OPTIMUM, "max_generations": 150},
        seed=42,
    )
    print(f"\nspec (JSON-serializable job description):\n{spec.to_json()}\n")

    report = repro.solve(spec)

    print(f"best makespan: {report.best_objective:g} "
          f"after {report.generations} generations "
          f"({report.evaluations} evaluations)")
    print(f"stopped because: {report.termination_reason}")

    schedule = report.schedule()
    schedule.audit(instance)  # feasibility oracle: raises on any violation
    print("\nGantt chart (digits are job ids):")
    print(schedule.gantt())

    gap = (report.best_objective - FT06_OPTIMUM) / FT06_OPTIMUM
    print(f"\ngap to optimum: {100 * gap:.1f}%")


if __name__ == "__main__":
    main()
