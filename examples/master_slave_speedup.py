"""Real master-slave speedup on this machine (survey Section III.B).

Runs the *same* GA (same seed, bit-identical results) with a serial
evaluator and with process pools of growing size, with an artificial
per-evaluation CPU cost emulating an expensive fitness function -- the
regime where the survey says master-slave parallelism pays off.

Every configuration is the same declarative spec with only the engine
parameters swapped -- exactly the survey's point that the master-slave
model is a deployment choice, not an algorithmic one.

Run with::

    python examples/master_slave_speedup.py
"""

import time

import repro


def main() -> None:
    base = repro.SolverSpec(
        instance="la16-shaped",
        engine="master-slave",
        ga={"population_size": 48, "n_elites": 2},
        termination={"max_generations": 8},
        # eval_cost burns ~2 ms of CPU per fitness evaluation
        eval_cost=2e-3,
        seed=7,
    )

    print(f"{'backend':>10} {'workers':>7} {'wall s':>8} {'speedup':>8} "
          f"{'best':>6}")
    base_time = None
    base_best = None
    for backend, workers in (("serial", 1), ("process", 2), ("process", 6),
                             ("process", 12)):
        spec = base.replace(engine_params={"backend": backend,
                                           "workers": workers})
        t0 = time.perf_counter()
        report = repro.solve(spec)
        wall = time.perf_counter() - t0
        if base_time is None:
            base_time, base_best = wall, report.best_objective
        assert report.best_objective == base_best, \
            "master-slave must not change the algorithm's behaviour"
        print(f"{backend:>10} {workers:>7} {wall:>8.2f} "
              f"{base_time / wall:>8.2f} {report.best_objective:>6g}")

    print("\nidentical best makespans across all backends confirm the "
          "survey's point: only wall-clock changes, never the search.")


if __name__ == "__main__":
    main()
