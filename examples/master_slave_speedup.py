"""Real master-slave speedup on this machine (survey Section III.B).

Runs the *same* GA (same seed, bit-identical results) with a serial
evaluator and with process pools of growing size, with an artificial
per-evaluation CPU cost emulating an expensive fitness function -- the
regime where the survey says master-slave parallelism pays off.

Run with::

    python examples/master_slave_speedup.py
"""

import time

from repro import GAConfig, MaxGenerations, Problem
from repro.encodings import OperationBasedEncoding
from repro.instances import get_instance
from repro.parallel import MasterSlaveGA


def main() -> None:
    instance = get_instance("la16-shaped")
    # eval_cost burns ~2 ms of CPU per fitness evaluation (Problem knob)
    problem = Problem(OperationBasedEncoding(instance), eval_cost=2e-3)
    cfg = GAConfig(population_size=48, n_elites=2)
    gens = MaxGenerations(8)

    print(f"{'backend':>10} {'workers':>7} {'wall s':>8} {'speedup':>8} "
          f"{'best':>6}")
    base_time = None
    base_best = None
    for backend, workers in (("serial", 1), ("process", 2), ("process", 6),
                             ("process", 12)):
        ga = MasterSlaveGA(problem, cfg, gens, seed=7, backend=backend,
                           n_workers=workers)
        t0 = time.perf_counter()
        result = ga.run()
        wall = time.perf_counter() - t0
        if base_time is None:
            base_time, base_best = wall, result.best_objective
        assert result.best_objective == base_best, \
            "master-slave must not change the algorithm's behaviour"
        print(f"{backend:>10} {workers:>7} {wall:>8.2f} "
              f"{base_time / wall:>8.2f} {result.best_objective:>6g}")

    print("\nidentical best makespans across all backends confirm the "
          "survey's point: only wall-clock changes, never the search.")


if __name__ == "__main__":
    main()
