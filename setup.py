"""Package metadata and installation.

A plain ``setup.py`` (no pyproject) on purpose: the offline environment
lacks the ``wheel`` package, so PEP 517/660 editable installs cannot build
an editable wheel.  Either path works depending on the environment::

    pip install -e .            # wherever the wheel package is available
    python setup.py develop     # offline/no-wheel environments

After either, ``import repro`` and the ``repro`` CLI work without
``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-pga-shop-scheduling",
    version="1.0.0",
    description=(
        "Reproduction of 'A Survey on Parallel Genetic Algorithms for "
        "Shop Scheduling Problems' (Luo & El Baz, IPPS 2018): serial, "
        "master-slave, island, cellular and hybrid GAs with vectorized "
        "batch evaluation"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
