#!/usr/bin/env python
"""Backend-portability lint: no new bare ``np.`` in kernel modules.

The batch kernels route their array work through the active Array-API
namespace (``xp = active_namespace()``, see ``src/repro/core/backend.py``
and the "Writing backend-portable kernels" section of
``docs/architecture.md``).  Some host-side NumPy legitimately remains --
validation error paths, scalar reference decoders, init-time table
construction, ``np.ndarray`` type hints -- so an outright ban is wrong.
Instead this lint pins the *count* of ``np.`` references per kernel
module: new hot-path NumPy cannot sneak in, while the audited remainder
stays put.

* count > baseline: **fail** -- route the new code through ``xp`` (or,
  for genuinely host-side work, lower it into a non-kernel module or
  update the baseline in the same commit with a justification).
* count < baseline: **warn** -- tighten the baseline to lock in the
  improvement.

Run::

    python tools/lint_backend.py

CI runs it on every leg; exit status 1 on any regression.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Audited ``np.`` reference count per kernel module.  Raising a number
#: here requires a justification in the same commit.
BASELINES = {
    # 103 -> 119: composite/assignment mutation twins -- np.ndarray /
    # np.random.Generator signatures plus host-side rng draws (RNG stays
    # on the host by design, mirroring every other mutation twin)
    "src/repro/operators/batch.py": 119,
    # 60 -> 71: batch_completion_hybrid_flowshop -- signature hints,
    # docstring references and the validate-path error reporting; the
    # decode itself runs entirely on the active namespace (the
    # instrumented-backend conformance sweep pins zero transfers)
    "src/repro/scheduling/batch.py": 71,
    "src/repro/scheduling/flowshop.py": 24,
    "src/repro/core/substrate.py": 31,
    "src/repro/parallel/fine_grained.py": 5,
    "src/repro/parallel/island.py": 4,
    "src/repro/parallel/hybrid.py": 3,
    "src/repro/extensions/fuzzy.py": 42,
    "src/repro/extensions/stochastic.py": 18,
    "src/repro/extensions/energy.py": 30,
}

_NP_REF = re.compile(r"\bnp\.")


def check() -> list[str]:
    """Return a list of violation messages (empty = clean)."""
    problems = []
    for rel_path, baseline in BASELINES.items():
        path = ROOT / rel_path
        if not path.is_file():
            problems.append(f"{rel_path}: kernel module missing "
                            f"(update tools/lint_backend.py)")
            continue
        count = len(_NP_REF.findall(path.read_text(encoding="utf-8")))
        if count > baseline:
            problems.append(
                f"{rel_path}: {count} bare np. references exceed the "
                f"audited baseline of {baseline} -- route new kernel "
                f"code through the active namespace "
                f"(xp = active_namespace())")
        elif count < baseline:
            print(f"note: {rel_path} is down to {count} np. references "
                  f"(baseline {baseline}); tighten the baseline")
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(f"lint_backend: {problem}", file=sys.stderr)
    if not problems:
        print(f"lint_backend: OK ({len(BASELINES)} kernel modules at or "
              f"under baseline)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
