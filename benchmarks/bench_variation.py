"""Benchmark: object vs array variation substrate (selection -> merge).

PRs 1-2 vectorised *evaluation*; this benchmark tracks the other half of
the generation loop -- selection, crossover, mutation and the elitist
merge -- which the array substrate (``GAConfig.substrate="array"``,
:mod:`repro.core.substrate`) turns from a per-pair Python loop into
matrix kernels.  It times one full variation+replacement pass on the
permutation flow shop (ta-style 50x10) across population sizes and
asserts

* the array offspring are valid permutations (closure holds under time
  pressure too), and
* the array path is at least 5x faster at population 1024 (the
  acceptance case; typically 10-30x here), env ``BENCH_MIN_SPEEDUP``
  relaxing the gate on noisy shared runners.

Emits ``BENCH_variation.json`` next to this file -- the start of the
per-PR perf trajectory CI uploads as workflow artifacts.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_variation.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_variation.py
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import GAConfig, MaxGenerations, Problem, SimpleGA
from repro.core.substrate import (ArrayState, elitist_merge_arrays,
                                  make_offspring_matrix)
from repro.encodings import FlowShopPermutationEncoding
from repro.instances import flow_shop

POPS = [64, 256, 1024]
N_JOBS, N_MACHINES = 50, 10
SEED = 7
REPS = 5
ACCEPTANCE_POP = 1024          # the >= 5x case
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_variation.json"


def best_of(fn, reps=REPS):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def engines_for(pop_size):
    """Two initialised engines over the same evaluated population."""
    problem = Problem(FlowShopPermutationEncoding(
        flow_shop(N_JOBS, N_MACHINES, seed=SEED)))
    engines = {}
    for substrate in ("object", "array"):
        ga = SimpleGA(problem,
                      GAConfig(population_size=pop_size,
                               substrate=substrate),
                      MaxGenerations(1), seed=SEED)
        ga.initialize()
        engines[substrate] = ga
    return engines


def object_pass(ga):
    """Variation + merge on the object substrate (no evaluation)."""
    cfg = ga.config
    offspring = ga.make_offspring(ga.population, cfg.population_size)
    # merge needs evaluated offspring; reuse the parent objective vector
    # so timing stays a pure variation+replacement measurement
    objs = ga.population.objectives()
    for ind, obj in zip(offspring, objs):
        ind.objective = float(obj)
    return ga.population.elitist_merge(offspring, cfg.n_elites)


def array_pass(ga):
    """Variation + merge on the array substrate (no evaluation)."""
    cfg = ga.config
    offspring = make_offspring_matrix(ga.arrays, cfg, ga.problem, ga.rng,
                                      cfg.population_size)
    objs = ga.arrays.objectives[:offspring.shape[0]]
    return elitist_merge_arrays(ga.arrays, offspring, objs, cfg.n_elites,
                                cfg.population_size)


def run_case(pop_size):
    engines = engines_for(pop_size)
    t_obj, _ = best_of(lambda: object_pass(engines["object"]))
    t_arr, (matrix, _) = best_of(lambda: array_pass(engines["array"]))
    base = np.arange(N_JOBS)
    assert all(np.array_equal(np.sort(row), base) for row in matrix), \
        "array variation broke permutation closure"
    return t_obj, t_arr


def test_variation_speedup():
    rows = []
    print(f"\n{'pop':>6} {'object s':>10} {'array s':>10} {'speedup':>8}")
    for pop_size in POPS:
        t_obj, t_arr = run_case(pop_size)
        speedup = t_obj / t_arr
        rows.append({"population": pop_size, "object_s": t_obj,
                     "array_s": t_arr, "speedup": speedup})
        print(f"{pop_size:>6} {t_obj:>10.5f} {t_arr:>10.5f} {speedup:>7.1f}x")

    OUT_PATH.write_text(json.dumps({
        "scenario": f"permutation flow shop {N_JOBS}x{N_MACHINES} "
                    f"(ta-style), full variation+merge pass",
        "reps": REPS,
        "gate": {"population": ACCEPTANCE_POP, "min_speedup": MIN_SPEEDUP},
        "rows": rows,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    gate = next(r for r in rows if r["population"] == ACCEPTANCE_POP)
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"array variation speedup {gate['speedup']:.1f}x at population "
        f"{ACCEPTANCE_POP} is below the {MIN_SPEEDUP:g}x gate")


if __name__ == "__main__":
    test_variation_speedup()
