"""Benchmark E13: Bozejko & Wodecki [30]: diff-start + diff-operators + cooperation is the best island strategy.

See EXPERIMENTS.md (E13) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e13(benchmark):
    run_and_assert(benchmark, "E13", scale="small")
