"""Benchmark E01: AitZai et al. [14][15]: GPU master-slave explores ~15x more solutions than the CPU star network in a fixed 300 s budget (blocking JSSP, pop 1056).

See EXPERIMENTS.md (E01) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e01(benchmark):
    run_and_assert(benchmark, "E01", scale="small")
