"""Benchmark: scalar vs batch evaluation of due-date/weighted objectives.

PR 1 established the batch speedup for the makespan fast paths (job shop,
flow shop).  This benchmark covers the surface the completion-time engine
added: the tardiness/weighted criteria of Section II on the two problem
classes whose decoders were previously scalar-only -- the flexible job
shop (two-part assignment+sequence chromosome, Defersha & Chen [36]) and
the open shop (pair-sequence chromosome, Kokosinski & Studzienny [32]).

For each (problem, objective) case both paths score the same population:

* scalar -- decode each chromosome to a ``Schedule`` and apply the scalar
  ``Objective`` (what every non-makespan evaluation did before this PR),
* batch  -- one ``batch_completion_*`` call reduced by ``objective.batch``.

Asserts bit-identical objective vectors and a >= 5x speedup at population
200 on both problem classes (typically far more for the FJSP, whose scalar
path builds Operation objects per gene).

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_objectives.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_batch_objectives.py
"""

import os
import time

import numpy as np

from repro.encodings import (FlexibleJobShopEncoding,
                             OpenShopPairSequenceEncoding)
from repro.instances import flexible_job_shop, open_shop
from repro.instances.generators import with_due_dates_twk, with_weights
from repro.scheduling import (Makespan, MaximumTardiness,
                              TotalWeightedCompletion,
                              TotalWeightedTardiness, WeightedCombination,
                              batch_objective)

POP = 200
FJSP_SIZES = [(10, 5), (15, 8), (20, 10)]
OPENSHOP_SIZES = [(10, 10), (15, 15), (20, 20)]
ACCEPTANCE_FJSP = (15, 8)
ACCEPTANCE_OPENSHOP = (15, 15)
# Shared CI runners are noisy; let CI relax the gate without weakening
# the local acceptance criterion.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))

OBJECTIVES = [
    TotalWeightedTardiness(),
    TotalWeightedCompletion(),
    MaximumTardiness(),
    WeightedCombination([(0.6, Makespan()),
                         (0.4, TotalWeightedTardiness())]),
]


def best_of(fn, reps=3):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _decorate(instance, seed):
    with_due_dates_twk(instance, tau=1.2, seed=seed)
    with_weights(instance, seed=seed + 1)
    return instance


def _case(encoding, genomes, matrix, objective):
    instance = encoding.instance
    batch_fn = batch_objective(objective)

    def scalar():
        return np.array([objective(encoding.decode(g), instance)
                         for g in genomes])

    def batch():
        return batch_fn(encoding.batch_completion(matrix), instance)

    t_scalar, out_scalar = best_of(scalar)
    t_batch, out_batch = best_of(batch)
    assert np.array_equal(out_scalar, out_batch), (
        f"batch diverged from scalar for {objective.name}")
    return t_scalar, t_batch


def _fjsp_case(n, m, objective, pop=POP, seed=7):
    instance = _decorate(flexible_job_shop(n, m, seed=seed, setups=True),
                         seed)
    enc = FlexibleJobShopEncoding(instance)
    rng = np.random.default_rng(seed)
    genomes = [enc.random_genome(rng) for _ in range(pop)]
    return _case(enc, genomes, enc.stack_genomes(genomes), objective)


def _openshop_case(n, m, objective, pop=POP, seed=7):
    instance = _decorate(open_shop(n, m, seed=seed), seed)
    enc = OpenShopPairSequenceEncoding(instance)
    rng = np.random.default_rng(seed)
    genomes = [enc.random_genome(rng) for _ in range(pop)]
    return _case(enc, genomes, np.stack(genomes), objective)


def _report(rows, title):
    print()
    print(f"{title} (population {POP}, best of 3)")
    print(f"{'instance':>12} {'objective':>28} {'scalar':>10} {'batch':>10} "
          f"{'speedup':>9}")
    for label, obj_name, ts, tb in rows:
        print(f"{label:>12} {obj_name[:28]:>28} {ts * 1e3:>8.2f}ms "
              f"{tb * 1e3:>8.2f}ms {ts / tb:>8.1f}x")


def test_fjsp_batch_objective_speedup():
    rows = []
    acceptance = None
    for n, m in FJSP_SIZES:
        for obj in OBJECTIVES:
            ts, tb = _fjsp_case(n, m, obj)
            rows.append((f"{n}x{m}", obj.name, ts, tb))
            if (n, m) == ACCEPTANCE_FJSP and isinstance(
                    obj, TotalWeightedTardiness):
                acceptance = ts / tb
    _report(rows, "flexible job shop: scalar decode+score vs batch")
    assert acceptance is not None
    assert acceptance >= MIN_SPEEDUP, (
        f"FJSP batch path only {acceptance:.1f}x faster on "
        f"{ACCEPTANCE_FJSP} (need >= {MIN_SPEEDUP}x)")


def test_openshop_batch_objective_speedup():
    rows = []
    acceptance = None
    for n, m in OPENSHOP_SIZES:
        for obj in OBJECTIVES:
            ts, tb = _openshop_case(n, m, obj)
            rows.append((f"{n}x{m}", obj.name, ts, tb))
            if (n, m) == ACCEPTANCE_OPENSHOP and isinstance(
                    obj, TotalWeightedTardiness):
                acceptance = ts / tb
    _report(rows, "open shop (pair sequence): scalar decode+score vs batch")
    assert acceptance is not None
    assert acceptance >= MIN_SPEEDUP, (
        f"open-shop batch path only {acceptance:.1f}x faster on "
        f"{ACCEPTANCE_OPENSHOP} (need >= {MIN_SPEEDUP}x)")


if __name__ == "__main__":
    test_fjsp_batch_objective_speedup()
    test_openshop_batch_objective_speedup()
