"""Benchmark E19: Belkadi et al. [37]: migration interval decisive; topology/replacement insignificant; many islands hurt.

See EXPERIMENTS.md (E19) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e19(benchmark):
    run_and_assert(benchmark, "E19", scale="small")
