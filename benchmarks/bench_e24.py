"""Benchmark E24: GA engines reach oracle-proven optima.

See `src/repro/experiments/conformance.py` (E24): the exact branch and
bound re-certifies the `KNOWN_OPTIMA` table, then every GA engine x
substrate combination must reach those proven optima on the certified
tiny instances (bounded gap on ta-fs-20x5).
"""

from _common import run_and_assert


def test_e24(benchmark):
    run_and_assert(benchmark, "E24", scale="small")
