"""Benchmark: scalar vs vectorised batch population decoding.

The substrate claim behind every parallel model in the repo (and the
speedups of the GPU/island papers the survey cites): decoding a whole
population as array operations beats a per-chromosome Python loop by a
wide margin.  This benchmark times both paths across instance sizes for
the job shop (permutation with repetition, semi-active) and the flow shop
(completion-time recurrence) and asserts

* objectives are bit-identical between the two paths, and
* the batch path is at least 5x faster on the 30x20 job shop with
  population 200 (the acceptance case; typically ~8-10x here, more for
  larger populations).

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_eval.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py
"""

import os
import time

import numpy as np

from repro.instances import flow_shop, job_shop
from repro.scheduling import (batch_makespan_operation_sequence,
                              batch_makespan_permutation, flowshop_makespan,
                              operation_sequence_makespan)

POP = 200
JOBSHOP_SIZES = [(10, 5), (20, 10), (30, 20), (50, 20)]
FLOWSHOP_SIZES = [(20, 5), (50, 10), (100, 20)]
ACCEPTANCE = (30, 20)          # the >= 5x case
# Shared CI runners are noisy; let CI relax the gate without weakening
# the local acceptance criterion.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))


def best_of(fn, reps=3):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _jobshop_case(n, m, pop=POP, seed=7):
    instance = job_shop(n, m, seed=seed)
    rng = np.random.default_rng(seed)
    base = np.repeat(np.arange(n, dtype=np.int64), m)
    seqs = np.stack([rng.permutation(base) for _ in range(pop)])
    t_scalar, scalar = best_of(lambda: np.array(
        [operation_sequence_makespan(instance, s) for s in seqs]))
    t_batch, batch = best_of(
        lambda: batch_makespan_operation_sequence(instance, seqs))
    assert np.array_equal(scalar, batch), "batch decoder diverged from scalar"
    return t_scalar, t_batch


def _flowshop_case(n, m, pop=POP, seed=7):
    instance = flow_shop(n, m, seed=seed)
    rng = np.random.default_rng(seed)
    perms = np.stack([rng.permutation(n) for _ in range(pop)])
    t_scalar, scalar = best_of(lambda: np.array(
        [flowshop_makespan(instance, p) for p in perms]))
    t_batch, batch = best_of(
        lambda: batch_makespan_permutation(instance, perms))
    assert np.array_equal(scalar, batch), "batch decoder diverged from scalar"
    return t_scalar, t_batch


def _report(rows, title):
    print()
    print(f"{title} (population {POP}, best of 3)")
    print(f"{'instance':>12} {'scalar':>10} {'batch':>10} {'speedup':>9}")
    for label, ts, tb in rows:
        print(f"{label:>12} {ts * 1e3:>8.2f}ms {tb * 1e3:>8.2f}ms "
              f"{ts / tb:>8.1f}x")


def test_jobshop_batch_speedup():
    rows = []
    acceptance_speedup = None
    for n, m in JOBSHOP_SIZES:
        ts, tb = _jobshop_case(n, m)
        rows.append((f"{n}x{m}", ts, tb))
        if (n, m) == ACCEPTANCE:
            acceptance_speedup = ts / tb
    _report(rows, "job shop: scalar loop vs batch decode")
    assert acceptance_speedup is not None
    assert acceptance_speedup >= MIN_SPEEDUP, (
        f"batch path only {acceptance_speedup:.1f}x faster on "
        f"{ACCEPTANCE[0]}x{ACCEPTANCE[1]} (need >= {MIN_SPEEDUP}x)")


def test_flowshop_batch_speedup():
    rows = []
    for n, m in FLOWSHOP_SIZES:
        ts, tb = _flowshop_case(n, m)
        rows.append((f"{n}x{m}", ts, tb))
    _report(rows, "flow shop: scalar loop vs batch decode")
    # the flow-shop kernel vectorises its whole inner recurrence, so the
    # win is far larger than the job-shop case
    assert all(ts / tb > 1.0 for _, ts, tb in rows)


if __name__ == "__main__":
    test_jobshop_batch_speedup()
    test_flowshop_batch_speedup()
