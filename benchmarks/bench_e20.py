"""Benchmark E20: Rashidi et al. [38]: weighted-island MOGA + local search/Redirect yields the better Pareto front.

See EXPERIMENTS.md (E20) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e20(benchmark):
    run_and_assert(benchmark, "E20", scale="small")
