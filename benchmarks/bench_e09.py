"""Benchmark E09: Park et al. [26]: ring island GA improves best AND average JSSP solutions over the single GA.

See EXPERIMENTS.md (E09) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e09(benchmark):
    run_and_assert(benchmark, "E09", scale="small")
