"""Benchmark: GA optimality gap against the exact oracle.

The surveyed GAs report "best found" makespans; the exact backend turns
those into *measured optimality gaps*.  This benchmark (1) times the
branch-and-bound oracle re-proving every certified optimum (the pure
Python certificates must stay cheap enough for CI), then (2) runs the
baseline GA at a fixed budget on each certified instance plus the
ta-fs-20x5-shaped lower-bound case, and gates the achieved gap at
``BENCH_MAX_GAP`` (default 10%).  Emits ``BENCH_gap.json`` next to this
file with the full oracle-vs-GA table, so the gap trajectory is recorded
run over run like the perf numbers.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_gap.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_gap.py
"""

import json
import os
import time
from pathlib import Path

from repro import SolverSpec, solve
from repro.exact import certify, relative_gap
from repro.instances import KNOWN_OPTIMA, get_instance, known_lower_bound

MAX_GAP = float(os.environ.get("BENCH_MAX_GAP", "0.10"))
MAX_ORACLE_S = float(os.environ.get("BENCH_MAX_ORACLE_S", "5.0"))
POP = 48
GENERATIONS = 200
SEED = 7
#: lower-bound-only case: no proven optimum, gap vs the combinatorial bound
LB_CASES = ("ta-fs-20x5-shaped",)
OUT_PATH = Path(__file__).resolve().parent / "BENCH_gap.json"


def _ga_best(name, lower_bound):
    encoding = "openshop-pairs" if name.startswith("tiny-os") else None
    t0 = time.perf_counter()
    report = solve(SolverSpec(
        instance=name, encoding=encoding,
        ga={"population_size": POP},
        # proven_gap 0.0 = run until the proven optimum (or the budget):
        # the *achieved* gap is measured, the gate is applied after
        termination={"proven_gap": 0.0,
                     "max_generations": GENERATIONS},
        seed=SEED))
    return report, time.perf_counter() - t0


def test_oracle_vs_ga_gap():
    rows = []

    for name in sorted(KNOWN_OPTIMA):
        t0 = time.perf_counter()
        solution = certify(get_instance(name))
        oracle_s = time.perf_counter() - t0
        assert solution.proved and solution.makespan == KNOWN_OPTIMA[name]
        assert oracle_s < MAX_ORACLE_S, (
            f"oracle proof for {name} took {oracle_s:.2f}s "
            f"(> {MAX_ORACLE_S:g}s budget)")
        report, ga_s = _ga_best(name, solution.makespan)
        rows.append({
            "instance": name,
            "reference": solution.makespan,
            "reference_kind": "proven optimum",
            "oracle_nodes": solution.nodes,
            "oracle_s": oracle_s,
            "ga_best": report.best_objective,
            "ga_s": ga_s,
            "gap": relative_gap(report.best_objective, solution.makespan),
        })

    for name in LB_CASES:
        lb = known_lower_bound(name)
        report, ga_s = _ga_best(name, lb)
        rows.append({
            "instance": name,
            "reference": lb,
            "reference_kind": "combinatorial lower bound",
            "oracle_nodes": 0,
            "oracle_s": 0.0,
            "ga_best": report.best_objective,
            "ga_s": ga_s,
            "gap": relative_gap(report.best_objective, lb),
        })

    print(f"\n{'instance':>18} {'reference':>10} {'GA best':>8} "
          f"{'gap':>7} {'oracle s':>9} {'GA s':>6}")
    for r in rows:
        print(f"{r['instance']:>18} {r['reference']:>10.1f} "
              f"{r['ga_best']:>8.1f} {r['gap']:>6.1%} "
              f"{r['oracle_s']:>9.3f} {r['ga_s']:>6.2f}")

    worst = max(r["gap"] for r in rows)
    print(f"worst gap: {worst:.2%} (gate: <= {MAX_GAP:.0%})")

    OUT_PATH.write_text(json.dumps({
        "population": POP,
        "generations": GENERATIONS,
        "seed": SEED,
        "gate_gap": MAX_GAP,
        "worst_gap": worst,
        "rows": rows,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    assert worst <= MAX_GAP, (
        f"GA gap {worst:.2%} exceeds the {MAX_GAP:.0%} gate")


if __name__ == "__main__":
    test_oracle_vs_ga_gap()
