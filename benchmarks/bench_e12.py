"""Benchmark E12: Spanos et al. [29]: merge-on-stagnation islands comparable to the plain island GA.

See EXPERIMENTS.md (E12) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e12(benchmark):
    run_and_assert(benchmark, "E12", scale="small")
