"""Benchmark E10: Asadzadeh & Zamanifar [27]: 8 agents on a virtual cube get shorter schedules and faster convergence.

See EXPERIMENTS.md (E10) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e10(benchmark):
    run_and_assert(benchmark, "E10", scale="small")
