"""Benchmark E11: Gu et al. [28]: parallel quantum island GA beats serial quantum GA on the stochastic JSSP.

See EXPERIMENTS.md (E11) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e11(benchmark):
    run_and_assert(benchmark, "E11", scale="small")
