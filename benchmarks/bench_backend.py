"""Benchmark: array-backend dispatch overhead + transfer accounting.

Routing every batch kernel through the active Array-API namespace
(``repro.core.backend``) must be free on the default path: the numpy
namespace forwards attribute-for-attribute (cached after first touch),
so a ``backend="instrumented"`` solve -- which additionally enforces the
portable subset on every first attribute touch -- is the worst case the
indirection can cost.  This benchmark times the same array-substrate
configuration on the ``numpy`` and ``instrumented`` backends
interleaved, asserts bit-identity, gates the median per-pair overhead at
<=5% (env ``BENCH_MAX_BACKEND_OVERHEAD_PCT``), and records the transfer
counters -- zero ``to_device``/``to_host`` crossings for the whole solve
is part of the emitted record.  When ``cupy``/``jax`` are installed
their backends are timed as extra rows (never gated: device timings are
hardware-dependent).  Emits ``BENCH_backend.json`` next to this file.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_backend.py
"""

import json
import os
import time
from pathlib import Path

from repro import SolverSpec, solve
from repro.core.backend import available_backends, get_backend

POP = 64
GENERATIONS = 60
SEED = 42
REPS = 15
MAX_OVERHEAD_PCT = float(
    os.environ.get("BENCH_MAX_BACKEND_OVERHEAD_PCT", "5.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_backend.json"

BASE = SolverSpec(instance="ft06", substrate="array",
                  ga={"population_size": POP},
                  termination={"max_generations": GENERATIONS}, seed=SEED)


def _solve_on(backend_name):
    return solve(BASE.replace(backend=backend_name))


def timed_pairs(fn_a, fn_b, reps=REPS):
    """Interleaved (a, b) wall-time pairs; adjacency decorrelates drift."""
    pairs = []
    out_a = out_b = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out_a = fn_a()
        ta = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_b = fn_b()
        tb = time.perf_counter() - t0
        pairs.append((ta, tb))
    return pairs, out_a, out_b


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def test_backend_overhead():
    # warm both paths (imports, registries, namespace attribute caches)
    _solve_on("numpy")
    _solve_on("instrumented")

    instrumented = get_backend("instrumented")
    instrumented.reset_transfers()
    pairs, on_numpy, on_instrumented = timed_pairs(
        lambda: _solve_on("numpy"), lambda: _solve_on("instrumented"))

    assert on_instrumented.best_objective == on_numpy.best_objective, \
        "instrumented backend must be bit-identical to numpy"
    assert on_instrumented.evaluations == on_numpy.evaluations
    transfers = dict(instrumented.transfers)
    assert transfers["to_device"] == 0 and transfers["to_host"] == 0, \
        "a generation must never cross the host<->device seam"

    t_numpy = min(ta for ta, _ in pairs)
    t_instrumented = min(tb for _, tb in pairs)
    # gate on the median of per-pair ratios: each ratio compares adjacent
    # runs, so a background-load spike poisons one pair, not the estimate
    overhead_pct = _median([100.0 * (tb - ta) / ta for ta, tb in pairs])

    print(f"\n{'backend':>14} {'best-of-' + str(REPS) + ' wall s':>18}")
    print(f"{'numpy':>14} {t_numpy:>18.4f}")
    print(f"{'instrumented':>14} {t_instrumented:>18.4f}")
    print(f"backend dispatch overhead (median of per-pair ratios): "
          f"{overhead_pct:+.2f}% (gate: <{MAX_OVERHEAD_PCT:g}%)")
    print(f"transfers over {REPS} instrumented solves: {transfers} "
          f"(asnumpy = report boundary only)")

    # optional device backends: timed when installed, never gated
    device_rows = {}
    for name in ("cupy", "jax"):
        if name not in available_backends():
            continue
        _solve_on(name)  # warm (kernel compilation, device init)
        t0 = time.perf_counter()
        on_device = _solve_on(name)
        elapsed = time.perf_counter() - t0
        device_rows[name] = {"wall_s": elapsed,
                             "best_objective": on_device.best_objective}
        print(f"{name:>14} {elapsed:>18.4f} (informational)")

    OUT_PATH.write_text(json.dumps({
        "instance": "ft06",
        "substrate": "array",
        "population": POP,
        "generations": GENERATIONS,
        "reps": REPS,
        "numpy_s": t_numpy,
        "instrumented_s": t_instrumented,
        "overhead_pct": overhead_pct,
        "gate_pct": MAX_OVERHEAD_PCT,
        "bit_identical": True,
        "transfers_per_reps": transfers,
        "device_backends": device_rows,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"backend dispatch overhead {overhead_pct:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT:g}% gate")


if __name__ == "__main__":
    test_backend_overhead()
