"""Benchmark E25: vectorised scenario extensions match their scalar twins.

See `src/repro/experiments/conformance.py` (E25): bit-identity of the
fuzzy / stochastic / energy batch kernels against the original object
paths, plus the rolling-horizon dynamic scenario where warm-started
reactive re-solves beat cold restarts.
"""

from _common import run_and_assert


def test_e25(benchmark):
    run_and_assert(benchmark, "E25", scale="small")
