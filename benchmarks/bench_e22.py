"""Benchmark E22: Survey Section IV / Cantu-Paz: master-slave pays off only for expensive evaluations; P* = sqrt(n*Tf/Tc).

See EXPERIMENTS.md (E22) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e22(benchmark):
    run_and_assert(benchmark, "E22", scale="small")
