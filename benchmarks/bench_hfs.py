"""Benchmark: hybrid-flow-shop batch decode + NEH-seeded convergence.

Two claims from the HFS decoder/heuristics PR, both gated:

* ``batch_completion_hybrid_flowshop`` decodes a population at least 5x
  faster than the per-chromosome ``decode_hybrid_flowshop`` loop at
  population 200 on the acceptance case (50 jobs, 4 stages, SD setups),
  in *both* genome modes -- earliest-finish machine choice and pinned
  assignment chromosomes -- while staying bit-identical to the scalar
  schedule's completion times.  CI relaxes the gate via
  ``BENCH_MIN_SPEEDUP`` (shared runners are noisy) without weakening the
  local acceptance criterion.
* ``ga={"seeding": "neh"}`` is never worse than a random initial
  population on the same seed: over paired seeds on
  ``hfs-10x3x2-shaped`` the NEH-seeded GA's mean best objective must not
  exceed the random-init GA's.

Emits ``BENCH_hfs.json`` next to this file.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hfs.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_hfs.py
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import SolverSpec, solve
from repro.instances import flexible_flow_shop
from repro.scheduling import batch_completion_hybrid_flowshop
from repro.scheduling.flexible import decode_hybrid_flowshop

POP = 200
SIZES = [(10, (2, 2, 2)), (30, (3, 2, 3)), (50, (3, 3, 3, 3))]
ACCEPTANCE = (50, (3, 3, 3, 3))          # the >= 5x case
SEEDING_SEEDS = (1, 2, 3, 4)
# Shared CI runners are noisy; let CI relax the gate without weakening
# the local acceptance criterion.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_hfs.json"


def best_of(fn, reps=3):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _population(instance, pop, seed, pinned):
    rng = np.random.default_rng(seed)
    n = instance.n_jobs
    perms = np.stack([rng.permutation(n) for _ in range(pop)]).astype(np.int64)
    if not pinned:
        return perms, None
    assigns = np.stack([
        rng.integers(0, k, size=(pop, n))
        for k in instance.machines_per_stage
    ], axis=2).astype(np.int64)      # (pop, n_jobs, n_stages)
    return perms, assigns


def _hfs_case(n, stages, pinned, pop=POP, seed=7):
    instance = flexible_flow_shop(n, stages, seed=seed, setups=True)
    perms, assigns = _population(instance, pop, seed, pinned)
    t_scalar, scalar = best_of(lambda: np.stack([
        decode_hybrid_flowshop(
            instance, perms[i],
            None if assigns is None else assigns[i]).completion_times
        for i in range(pop)]))
    t_batch, batch = best_of(
        lambda: batch_completion_hybrid_flowshop(instance, perms, assigns))
    assert np.array_equal(scalar, batch), "batch decoder diverged from scalar"
    return t_scalar, t_batch


def _seeding_pair(seed):
    base = SolverSpec(instance="hfs-10x3x2-shaped", engine="simple",
                      ga={"population_size": 40},
                      termination={"max_generations": 20}, seed=seed)
    random_init = solve(base).best_objective
    seeded = solve(base.replace(
        ga={"population_size": 40, "seeding": "neh"})).best_objective
    return random_init, seeded


def test_hfs_batch_speedup_and_seeding():
    rows = []
    acceptance = {}
    for n, stages in SIZES:
        for pinned in (False, True):
            ts, tb = _hfs_case(n, stages, pinned)
            mode = "pinned" if pinned else "earliest"
            label = f"{n}x{len(stages)} {mode}"
            rows.append((label, ts, tb))
            if (n, stages) == ACCEPTANCE:
                acceptance[mode] = ts / tb

    print()
    print(f"hybrid flow shop: scalar loop vs batch decode "
          f"(population {POP}, best of 3, SD setups)")
    print(f"{'case':>18} {'scalar':>10} {'batch':>10} {'speedup':>9}")
    for label, ts, tb in rows:
        print(f"{label:>18} {ts * 1e3:>8.2f}ms {tb * 1e3:>8.2f}ms "
              f"{ts / tb:>8.1f}x")

    pairs = [_seeding_pair(s) for s in SEEDING_SEEDS]
    mean_random = sum(r for r, _ in pairs) / len(pairs)
    mean_seeded = sum(s for _, s in pairs) / len(pairs)
    print(f"NEH seeding on hfs-10x3x2-shaped over seeds {SEEDING_SEEDS}: "
          f"random-init mean {mean_random:.1f}, "
          f"NEH-seeded mean {mean_seeded:.1f}")

    OUT_PATH.write_text(json.dumps({
        "population": POP,
        "min_speedup_gate": MIN_SPEEDUP,
        "cases": [{"case": label, "scalar_s": ts, "batch_s": tb,
                   "speedup": ts / tb} for label, ts, tb in rows],
        "acceptance_speedup": acceptance,
        "bit_identical": True,
        "seeding": {"instance": "hfs-10x3x2-shaped",
                    "seeds": list(SEEDING_SEEDS),
                    "random_init": [r for r, _ in pairs],
                    "neh_seeded": [s for _, s in pairs],
                    "mean_random": mean_random,
                    "mean_seeded": mean_seeded},
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    for mode, speedup in acceptance.items():
        assert speedup >= MIN_SPEEDUP, (
            f"batch HFS decode ({mode} mode) only {speedup:.1f}x faster on "
            f"{ACCEPTANCE[0]}x{len(ACCEPTANCE[1])} (need >= {MIN_SPEEDUP}x)")
    assert mean_seeded <= mean_random, (
        f"NEH-seeded GA (mean {mean_seeded:.1f}) must not be worse than "
        f"random init (mean {mean_random:.1f}) over paired seeds")


if __name__ == "__main__":
    test_hfs_batch_speedup_and_seeding()
