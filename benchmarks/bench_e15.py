"""Benchmark E15: Kokosinski & Studzienny [32]: open shop islands show NO clear advantage over serial (negative result).

See EXPERIMENTS.md (E15) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e15(benchmark):
    run_and_assert(benchmark, "E15", scale="small")
