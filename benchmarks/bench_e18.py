"""Benchmark E18: Defersha & Chen [36]: FJSP+SDST random-topology island beats serial at equal wall-clock, medium and large.

See EXPERIMENTS.md (E18) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e18(benchmark):
    run_and_assert(benchmark, "E18", scale="small")
