"""Benchmark E03: Mui et al. [17]: REAL 6-worker master-slave pool saves 3-4x wall-clock vs serial with identical results.

See EXPERIMENTS.md (E03) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e03(benchmark):
    run_and_assert(benchmark, "E03", scale="small")
