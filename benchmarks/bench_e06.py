"""Benchmark E06: Lin et al. [21]: island GAs reach single-GA quality with fewer evaluations (paper: 4.7x / 18.5x).

See EXPERIMENTS.md (E06) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e06(benchmark):
    run_and_assert(benchmark, "E06", scale="small")
