"""Micro-benchmarks of the hot substrate paths.

Not tied to a surveyed table; these guard the performance assumptions the
experiments rest on (the HPC-guide "profile before optimising" loop):

* vectorised population flow-shop evaluation vs the scalar path,
* JSSP semi-active decode throughput (the island/cellular inner loop),
* Giffler-Thompson active decoding,
* disjunctive-graph longest-path evaluation (Somani's kernel 2).
"""

import numpy as np
import pytest

from repro.instances import flow_shop, get_instance, job_shop
from repro.scheduling import (DisjunctiveGraph, flowshop_makespan,
                              flowshop_makespan_population,
                              giffler_thompson,
                              operation_sequence_makespan)


@pytest.fixture(scope="module")
def fs_instance():
    return flow_shop(50, 10, seed=1)


@pytest.fixture(scope="module")
def fs_population(fs_instance):
    rng = np.random.default_rng(0)
    return np.stack([rng.permutation(50) for _ in range(256)])


def test_flowshop_population_vectorised(benchmark, fs_instance,
                                        fs_population):
    out = benchmark(flowshop_makespan_population, fs_instance, fs_population)
    assert out.shape == (256,)


def test_flowshop_scalar_loop(benchmark, fs_instance, fs_population):
    def scalar():
        return [flowshop_makespan(fs_instance, p) for p in fs_population]
    out = benchmark(scalar)
    assert len(out) == 256


def test_jobshop_semi_active_decode(benchmark):
    inst = job_shop(20, 10, seed=2)
    rng = np.random.default_rng(0)
    seq = np.repeat(np.arange(20), 10)
    rng.shuffle(seq)
    cmax = benchmark(operation_sequence_makespan, inst, seq)
    assert cmax > 0


def test_giffler_thompson_decode(benchmark):
    inst = get_instance("ft10-shaped")
    prio = np.random.default_rng(0).random(100)
    sched = benchmark(giffler_thompson, inst, prio)
    assert len(sched.operations) == 100


def test_disjunctive_graph_longest_path(benchmark):
    inst = job_shop(10, 8, seed=3)
    dg = DisjunctiveGraph(inst)
    rng = np.random.default_rng(0)
    seq = np.repeat(np.arange(10), 8)
    rng.shuffle(seq)
    cmax = benchmark(dg.makespan_of_sequence, seq)
    assert cmax == pytest.approx(operation_sequence_makespan(inst, seq))
