"""Benchmark E21: Survey Tables II-V: engines structurally conform to the published pseudo-code.

See EXPERIMENTS.md (E21) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e21(benchmark):
    run_and_assert(benchmark, "E21", scale="small")
