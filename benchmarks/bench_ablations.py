"""Ablation benchmarks for design choices DESIGN.md calls out.

Each ablation fixes the budget and sweeps one design axis, printing the
quality table alongside the timing:

* JSSP decode mode: semi-active vs Giffler-Thompson active vs graph,
* cellular neighbourhood shape: L5 / L9 / C9 / C13,
* generation gap: full generational vs partial replacement,
* crossover: generic job-based vs the GT three-parent operator [17].
"""

import numpy as np
import pytest

from repro.core import GAConfig, MaxGenerations, SimpleGA
from repro.encodings import OperationBasedEncoding, Problem
from repro.instances import get_instance
from repro.operators import GTThreeParentCrossover, JobBasedCrossover
from repro.parallel import CellularGA


@pytest.fixture(scope="module")
def instance():
    return get_instance("ft06")


def _table(rows):
    from repro.experiments import format_table
    print()
    print(format_table(rows))


def test_ablation_decode_modes(benchmark, instance):
    """Active (G&T) decoding buys quality per evaluation over semi-active."""
    def sweep():
        rows = []
        out = {}
        for mode in ("semi_active", "active", "graph"):
            problem = Problem(OperationBasedEncoding(instance, mode=mode))
            result = SimpleGA(problem, GAConfig(population_size=20),
                              MaxGenerations(15), seed=8).run()
            out[mode] = result.best_objective
            rows.append({"decode_mode": mode,
                         "best": result.best_objective,
                         "evaluations": result.evaluations})
        _table(rows)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    # graph mode must agree with semi-active (same semantics, different
    # evaluator); active schedules dominate semi-active ones
    assert out["graph"] == out["semi_active"]
    assert out["active"] <= out["semi_active"]


def test_ablation_cellular_neighborhoods(benchmark, instance):
    """Bigger neighbourhoods mix faster; all shapes must stay functional."""
    problem = Problem(OperationBasedEncoding(instance))

    def sweep():
        rows = []
        bests = {}
        for shape in ("L5", "L9", "C9", "C13"):
            result = CellularGA(problem, rows=5, cols=5, neighborhood=shape,
                                termination=MaxGenerations(12),
                                seed=9).run()
            bests[shape] = result.best_objective
            rows.append({"neighborhood": shape,
                         "best": result.best_objective})
        _table(rows)
        return bests

    bests = benchmark.pedantic(sweep, rounds=1, iterations=1,
                               warmup_rounds=0)
    assert all(v < 90 for v in bests.values())


def test_ablation_generation_gap(benchmark, instance):
    """Partial replacement spends fewer evaluations per generation."""
    problem = Problem(OperationBasedEncoding(instance))

    def sweep():
        rows = []
        evals = {}
        for gap in (1.0, 0.5, 0.25):
            result = SimpleGA(problem,
                              GAConfig(population_size=24,
                                       generation_gap=gap),
                              MaxGenerations(15), seed=10).run()
            evals[gap] = result.evaluations
            rows.append({"generation_gap": gap,
                         "best": result.best_objective,
                         "evaluations": result.evaluations})
        _table(rows)
        return evals

    evals = benchmark.pedantic(sweep, rounds=1, iterations=1,
                               warmup_rounds=0)
    assert evals[0.25] < evals[0.5] < evals[1.0]


def test_ablation_gt_crossover(benchmark, instance):
    """The GT three-parent crossover embeds schedule construction in the
    operator; at equal budget it should not lose to the generic operator."""
    problem = Problem(OperationBasedEncoding(instance))

    def sweep():
        rows = []
        out = {}
        for label, xover in (("job-based", JobBasedCrossover()),
                             ("gt-3-parent",
                              GTThreeParentCrossover(instance))):
            result = SimpleGA(problem,
                              GAConfig(population_size=16, crossover=xover),
                              MaxGenerations(10), seed=11).run()
            out[label] = result.best_objective
            rows.append({"crossover": label,
                         "best": result.best_objective})
        _table(rows)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    assert out["gt-3-parent"] <= out["job-based"] * 1.1
