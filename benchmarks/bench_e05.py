"""Benchmark E05: Tamaki et al. [20]: 16-node Transputer fine-grained GA cuts time dramatically but sub-ideal (no shared memory).

See EXPERIMENTS.md (E05) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e05(benchmark):
    run_and_assert(benchmark, "E05", scale="small")
