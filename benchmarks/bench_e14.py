"""Benchmark E14: Bozejko & Wodecki [31]: 8-processor island GA best among {1,2,4,8} for sum w_j C_j at equal wall-clock.

See EXPERIMENTS.md (E14) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e14(benchmark):
    run_and_assert(benchmark, "E14", scale="small")
