"""Benchmark E07: Huang et al. [24]: CUDA fuzzy flow shop random-keys GA ~19x at 200 jobs; speedup grows with size.

See EXPERIMENTS.md (E07) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e07(benchmark):
    run_and_assert(benchmark, "E07", scale="small")
