"""Benchmark E23: batch, scalar and reference decoders are bit-identical.

See `src/repro/experiments/conformance.py` (E23): the cross-decoder
conformance check behind the batch completion-time engine.
"""

from _common import run_and_assert


def test_e23(benchmark):
    run_and_assert(benchmark, "E23", scale="small")
