"""Benchmark E16: Harmanani et al. [33]: 5-node Beowulf island GA speedup between 2.28 and 2.89.

See EXPERIMENTS.md (E16) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e16(benchmark):
    run_and_assert(benchmark, "E16", scale="small")
