"""Benchmark: solver service wire latency -- cold solve vs cache hit.

The service's idempotent result cache is its core performance promise:
solver runs are deterministic in (resolved spec, seed), so repeat traffic
must be answered from the :class:`~repro.service.jobs.JobStore` at wire
latency instead of re-running the GA.  This benchmark starts a real
:func:`~repro.service.serve_in_thread` server, measures

* **cold**: POST /solve of a fresh spec through to the terminal ``done``
  poll (worker-process dispatch + GA run + result marshalling),
* **cached**: the same POST again, answered 200-with-result from cache
  (one HTTP round trip, p50/p99 reported), and
* **throughput**: a burst of distinct-seed jobs submitted concurrently,
  drained to completion,

and gates cold/cached at >=20x (env ``BENCH_MIN_CACHE_SPEEDUP``).
Emits ``BENCH_service.json`` next to this file.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

import json
import os
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.api import SolverSpec
from repro.service import serve_in_thread

POP = 60
GENERATIONS = 150
COLD_REPS = 3
CACHED_REPS = 50
BURST = 8
MIN_CACHE_SPEEDUP = float(os.environ.get("BENCH_MIN_CACHE_SPEEDUP", "20"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_service.json"

BASE_SPEC = SolverSpec(instance="ft06", ga={"population_size": POP},
                       termination={"max_generations": GENERATIONS},
                       seed=42)


def _req(base, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def _solve_to_done(base, spec):
    """POST one spec and poll it to ``done``; returns (wall s, body)."""
    t0 = time.perf_counter()
    _, body = _req(base, "POST", "/solve", spec.to_dict())
    job_id = body["job_id"]
    while body.get("state") != "done":
        assert body.get("state") not in ("failed", "cancelled"), body
        _, body = _req(base, "GET", f"/jobs/{job_id}")
    return time.perf_counter() - t0, body


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_service_cache_speedup():
    handle = serve_in_thread(workers=2, queue_depth=16)
    base = handle.base_url
    try:
        _req(base, "GET", "/healthz")

        # cold: distinct seeds, so every rep pays the full solve
        cold_times = []
        for i in range(COLD_REPS):
            wall, _ = _solve_to_done(base, BASE_SPEC.replace(seed=1000 + i))
            cold_times.append(wall)
        cold_s = min(cold_times)

        # prime the cache, then measure pure cache-hit round trips
        _, primed = _solve_to_done(base, BASE_SPEC)
        best = primed["result"]["best_objective"]
        cached_times = []
        for _ in range(CACHED_REPS):
            t0 = time.perf_counter()
            status, body = _req(base, "POST", "/solve", BASE_SPEC.to_dict())
            cached_times.append(time.perf_counter() - t0)
            assert status == 200 and body["cached"] is True
            assert body["result"]["best_objective"] == best
        cached_s = min(cached_times)
        speedup = cold_s / cached_s

        # burst throughput: distinct seeds submitted concurrently
        t0 = time.perf_counter()
        specs = [BASE_SPEC.replace(seed=2000 + i,
                                   termination={"max_generations": 30})
                 for i in range(BURST)]
        with ThreadPoolExecutor(max_workers=BURST) as pool:
            walls = list(pool.map(lambda s: _solve_to_done(base, s)[0],
                                  specs))
        burst_s = time.perf_counter() - t0

        # the hits were served from cache, not re-solved
        _, metrics = _req(base, "GET", "/metrics")
        assert metrics["cache"]["hits"] == CACHED_REPS
        assert metrics["solves_executed"] == COLD_REPS + 1 + BURST
    finally:
        handle.stop()

    p50_ms = _percentile(cached_times, 0.50) * 1e3
    p99_ms = _percentile(cached_times, 0.99) * 1e3
    print(f"\n{'path':>22} {'wall s':>10}")
    print(f"{'cold solve (best of ' + str(COLD_REPS) + ')':>22} "
          f"{cold_s:>10.4f}")
    print(f"{'cache hit (best of ' + str(CACHED_REPS) + ')':>22} "
          f"{cached_s:>10.5f}")
    print(f"cache-hit speedup: {speedup:.1f}x (gate: "
          f">={MIN_CACHE_SPEEDUP:g}x); cached p50={p50_ms:.2f}ms "
          f"p99={p99_ms:.2f}ms")
    print(f"burst: {BURST} distinct jobs drained in {burst_s:.2f}s "
          f"({BURST / burst_s:.1f} jobs/s; slowest single wait "
          f"{max(walls):.2f}s)")

    OUT_PATH.write_text(json.dumps({
        "instance": "ft06",
        "population": POP,
        "generations": GENERATIONS,
        "cold_s": cold_s,
        "cached_s": cached_s,
        "speedup": speedup,
        "cached_p50_ms": p50_ms,
        "cached_p99_ms": p99_ms,
        "burst_jobs": BURST,
        "burst_s": burst_s,
        "burst_jobs_per_s": BURST / burst_s,
        "gate_speedup": MIN_CACHE_SPEEDUP,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cache-hit speedup {speedup:.1f}x below the "
        f"{MIN_CACHE_SPEEDUP:g}x gate")


if __name__ == "__main__":
    test_service_cache_speedup()
