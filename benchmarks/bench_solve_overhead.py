"""Benchmark: facade dispatch overhead of ``repro.solve`` vs direct use.

The declarative API must stay free: resolving a spec (registry lookups,
instance construction, validation) happens once per run, so its cost has
to vanish next to the GA itself.  This benchmark times the same
configuration -- ft06, population 60, 80 generations -- constructed
directly (``SimpleGA(...).run()``) and through ``repro.solve(spec)``,
asserts the results are bit-identical, and gates the facade's overhead
at <5% (env ``BENCH_MAX_OVERHEAD_PCT`` relaxes the gate on noisy shared
runners).  Emits ``BENCH_solve_overhead.json`` next to this file.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_solve_overhead.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_solve_overhead.py
"""

import json
import os
import time
from pathlib import Path

from repro import GAConfig, MaxGenerations, Problem, SimpleGA, SolverSpec, solve
from repro.encodings import OperationBasedEncoding
from repro.instances import get_instance

POP = 60
GENERATIONS = 80
SEED = 42
REPS = 15
MAX_OVERHEAD_PCT = float(os.environ.get("BENCH_MAX_OVERHEAD_PCT", "5.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_solve_overhead.json"


def _direct():
    problem = Problem(OperationBasedEncoding(get_instance("ft06")))
    return SimpleGA(problem, GAConfig(population_size=POP),
                    MaxGenerations(GENERATIONS), seed=SEED).run()


def _facade():
    return solve(SolverSpec(instance="ft06",
                            ga={"population_size": POP},
                            termination={"max_generations": GENERATIONS},
                            seed=SEED))


def timed_pairs(fn_a, fn_b, reps=REPS):
    """Interleaved (a, b) wall-time pairs; adjacency decorrelates drift."""
    pairs = []
    out_a = out_b = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out_a = fn_a()
        ta = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_b = fn_b()
        tb = time.perf_counter() - t0
        pairs.append((ta, tb))
    return pairs, out_a, out_b


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def test_solve_overhead():
    # warm both paths (imports, registry population, numpy caches)
    _direct()
    _facade()

    pairs, direct, facade = timed_pairs(_direct, _facade)

    assert facade.best_objective == direct.best_objective, \
        "facade must be bit-identical to direct construction"
    assert facade.evaluations == direct.evaluations

    t_direct = min(ta for ta, _ in pairs)
    t_facade = min(tb for _, tb in pairs)
    # gate on the median of per-pair ratios: each ratio compares adjacent
    # runs, so a background-load spike poisons one pair, not the estimate
    overhead_pct = _median([100.0 * (tb - ta) / ta for ta, tb in pairs])
    resolve_s = facade.timings["resolve"]

    print(f"\n{'path':>8} {'best-of-' + str(REPS) + ' wall s':>18}")
    print(f"{'direct':>8} {t_direct:>18.4f}")
    print(f"{'facade':>8} {t_facade:>18.4f}")
    print(f"facade overhead (median of per-pair ratios): "
          f"{overhead_pct:+.2f}% "
          f"(resolve step: {resolve_s * 1e3:.2f} ms; gate: "
          f"<{MAX_OVERHEAD_PCT:g}%)")

    OUT_PATH.write_text(json.dumps({
        "instance": "ft06",
        "population": POP,
        "generations": GENERATIONS,
        "reps": REPS,
        "direct_s": t_direct,
        "facade_s": t_facade,
        "overhead_pct": overhead_pct,
        "resolve_s": resolve_s,
        "gate_pct": MAX_OVERHEAD_PCT,
        "bit_identical": True,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"facade dispatch overhead {overhead_pct:.2f}% exceeds "
        f"{MAX_OVERHEAD_PCT:g}% gate")


if __name__ == "__main__":
    test_solve_overhead()
