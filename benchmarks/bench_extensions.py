"""Benchmark: scalar vs batch scoring of the scenario extensions.

The fuzzy / stochastic / energy extensions originally scored chromosomes
one at a time through Python objects (TFN arithmetic per gene, K decoded
instances per genome, Schedule walks per candidate).  This benchmark
times both paths on the same seeded populations:

* fuzzy      -- TFN-object recurrence + 10-breakpoint agreement index per
  job, versus one ``(pop, jobs, 3)`` tensor sweep;
* stochastic -- K scalar decodes per genome (common random numbers),
  versus one scenario-stacked ``(K, pop, jobs)`` kernel call;
* energy     -- per-genome ``Schedule`` build + energy/peak audit, versus
  completion-tensor kernels (exact breakpoint peak included).

Asserts bit-identical scores on every path and a >= 5x speedup for the
stochastic CRN acceptance case (population 200, 16 scenarios), and emits
``BENCH_extensions.json`` next to this file.  ``BENCH_MIN_SPEEDUP``
relaxes the gate on noisy shared runners.

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_extensions.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_extensions.py
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.extensions.energy import (PowerModel, energy_consumption,
                                     flowshop_energy_population,
                                     flowshop_peak_power_population,
                                     peak_power)
from repro.extensions.fuzzy import (FuzzyFlowShopEncoding,
                                    FuzzyFlowShopInstance, agreement_index,
                                    fuzzy_agreement_population)
from repro.extensions.stochastic import (StochasticJobShopEncoding,
                                         StochasticJobShopInstance)
from repro.instances import flow_shop, job_shop
from repro.scheduling.flowshop import flowshop_schedule

POP = 200
N_SCENARIOS = 16
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "5.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_extensions.json"


def best_of(fn, reps=3):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _fuzzy_case(n, m, pop=POP, seed=7):
    instance = FuzzyFlowShopInstance.from_crisp(flow_shop(n, m, seed=seed),
                                                spread=0.3, seed=seed + 1)
    enc = FuzzyFlowShopEncoding(instance)
    rng = np.random.default_rng(seed)
    keys = np.vstack([enc.random_genome(rng) for _ in range(pop)])
    perms = enc.permutation_matrix(keys)

    def scalar():
        scores = []
        for perm in perms:
            completion = instance.completion_times(perm)
            ais = np.array([agreement_index(completion[j], instance.due[j])
                            for j in range(instance.n_jobs)])
            scores.append(1.0 - (0.5 * ais.min() + 0.5 * ais.mean()))
        return np.array(scores)

    def batch():
        return fuzzy_agreement_population(instance, perms)

    t_scalar, out_scalar = best_of(scalar)
    t_batch, out_batch = best_of(batch)
    assert np.array_equal(out_scalar, out_batch), "fuzzy batch diverged"
    return t_scalar, t_batch


def _stochastic_case(n, m, pop=POP, n_scenarios=N_SCENARIOS, seed=7):
    instance = StochasticJobShopInstance(job_shop(n, m, seed=seed),
                                         spread=0.3,
                                         n_scenarios=n_scenarios,
                                         seed=seed + 1)
    enc = StochasticJobShopEncoding(instance)
    rng = np.random.default_rng(seed)
    matrix = np.vstack([enc.random_genome(rng) for _ in range(pop)])

    def scalar():
        return np.array([instance.expected_makespan(g) for g in matrix])

    def batch():
        return instance.batch_expected_makespan(matrix)

    t_scalar, out_scalar = best_of(scalar)
    t_batch, out_batch = best_of(batch)
    assert np.array_equal(out_scalar, out_batch), "stochastic batch diverged"
    return t_scalar, t_batch


def _energy_case(n, m, pop=POP, seed=7):
    instance = flow_shop(n, m, seed=seed)
    power = PowerModel.uniform(m, processing=9.0, idle=2.5)
    rng = np.random.default_rng(seed)
    perms = np.vstack([rng.permutation(n) for _ in range(pop)])

    def scalar():
        energy, peak = [], []
        for perm in perms:
            sched = flowshop_schedule(instance, perm)
            energy.append(energy_consumption(sched, power))
            peak.append(peak_power(sched, power))
        return np.array(energy), np.array(peak)

    def batch():
        return (flowshop_energy_population(instance, perms, power),
                flowshop_peak_power_population(instance, perms, power))

    t_scalar, out_scalar = best_of(scalar)
    t_batch, out_batch = best_of(batch)
    assert np.array_equal(out_scalar[0], out_batch[0]), "energy diverged"
    assert np.array_equal(out_scalar[1], out_batch[1]), "peak diverged"
    return t_scalar, t_batch


CASES = [
    ("fuzzy", "10x5", lambda: _fuzzy_case(10, 5)),
    ("fuzzy", "20x5", lambda: _fuzzy_case(20, 5)),
    ("stochastic", "6x6xK16", lambda: _stochastic_case(6, 6)),
    ("stochastic", "10x8xK16", lambda: _stochastic_case(10, 8)),
    ("energy", "10x5", lambda: _energy_case(10, 5)),
    ("energy", "20x10", lambda: _energy_case(20, 10)),
]
ACCEPTANCE = ("stochastic", "10x8xK16")


def test_extension_batch_speedups():
    rows = []
    acceptance = None
    for family, label, case in CASES:
        ts, tb = case()
        speedup = ts / tb
        rows.append({"extension": family, "instance": label,
                     "scalar_s": ts, "batch_s": tb, "speedup": speedup})
        if (family, label) == ACCEPTANCE:
            acceptance = speedup
    print()
    print(f"scenario extensions: scalar vs batch (population {POP}, "
          f"best of 3)")
    print(f"{'extension':>12} {'case':>10} {'scalar':>10} {'batch':>10} "
          f"{'speedup':>9}")
    for row in rows:
        print(f"{row['extension']:>12} {row['instance']:>10} "
              f"{row['scalar_s'] * 1e3:>8.2f}ms "
              f"{row['batch_s'] * 1e3:>8.2f}ms {row['speedup']:>8.1f}x")
    OUT_PATH.write_text(json.dumps({
        "population": POP, "n_scenarios": N_SCENARIOS,
        "gate_speedup": MIN_SPEEDUP,
        "acceptance_case": list(ACCEPTANCE),
        "acceptance_speedup": acceptance,
        "rows": rows}, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    assert acceptance is not None
    assert acceptance >= MIN_SPEEDUP, (
        f"stochastic CRN batch path only {acceptance:.1f}x faster at "
        f"population {POP} x {N_SCENARIOS} scenarios "
        f"(need >= {MIN_SPEEDUP}x)")


if __name__ == "__main__":
    test_extension_batch_speedups()
