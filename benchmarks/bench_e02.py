"""Benchmark E02: Somani & Singh [16]: topological-sort GPU GA ~9x faster than sequential; gap grows with instance size.

See EXPERIMENTS.md (E02) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e02(benchmark):
    run_and_assert(benchmark, "E02", scale="small")
