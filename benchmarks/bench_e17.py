"""Benchmark E17: Defersha & Chen [35]: lot-streaming HFS: island helps; fully-connected topology best; policy indifferent.

See EXPERIMENTS.md (E17) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e17(benchmark):
    run_and_assert(benchmark, "E17", scale="small")
