"""Benchmark E08: Zajicek & Sucha [25]: all-on-GPU island GA 60-120x vs sequential CPU.

See EXPERIMENTS.md (E08) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e08(benchmark):
    run_and_assert(benchmark, "E08", scale="small")
