"""Benchmark E04: Akhshabi et al. [18]: batched master-slave up to ~9x faster than serial; batches amortise dispatch.

See EXPERIMENTS.md (E04) for the paper-vs-measured record.
"""

from _common import run_and_assert


def test_e04(benchmark):
    run_and_assert(benchmark, "E04", scale="small")
