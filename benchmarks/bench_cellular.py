"""Benchmark: object vs grid-tensor cellular generations (Table IV).

PR 4 vectorised the panmictic engines; this benchmark tracks the
fine-grained (cellular) engine's grid substrate
(``GAConfig.substrate="array"`` + :class:`repro.core.substrate.GridState`):
one synchronous generation -- neighbourhood selection through the
toroidal offset table, batched crossover/mutation kernels, matrix
evaluation, masked lock-step replacement -- against the per-cell object
path, on the ta-style 20x10 permutation flow shop across grid sizes.
It asserts

* the grid offspring stay valid permutations (closure under time
  pressure too), and
* the grid path is at least 4x faster at the 32x32 acceptance grid
  (typically 4-5x here; the irreducible cost is the per-cell RNG draw
  loop that keeps grid generations bit-equal to object generations at
  the rate extremes), env ``BENCH_MIN_SPEEDUP`` relaxing the gate on
  noisy shared runners.

Emits ``BENCH_cellular.json`` next to this file (CI uploads it with the
other per-PR perf artifacts).

Run with pytest (prints the table)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cellular.py -s -q

or standalone::

    PYTHONPATH=src python benchmarks/bench_cellular.py
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import GAConfig, MaxGenerations, Problem
from repro.encodings import FlowShopPermutationEncoding
from repro.instances import flow_shop
from repro.parallel.fine_grained import CellularGA

GRIDS = [(8, 8), (16, 16), (32, 32)]
N_JOBS, N_MACHINES = 20, 10
SEED = 7
REPS = 5
ACCEPTANCE_GRID = (32, 32)     # the >= 4x case
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "4.0"))
OUT_PATH = Path(__file__).resolve().parent / "BENCH_cellular.json"


def best_of(fn, reps=REPS):
    """Best-of-N wall time; the minimum is the least noisy estimator."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def engine_for(rows, cols, substrate):
    """An initialised cellular engine over the shared scenario."""
    problem = Problem(FlowShopPermutationEncoding(
        flow_shop(N_JOBS, N_MACHINES, seed=SEED)))
    ga = CellularGA(problem, rows=rows, cols=cols,
                    config=GAConfig(substrate=substrate),
                    termination=MaxGenerations(1), seed=SEED)
    ga.initialize()
    return ga


def run_case(rows, cols):
    """Best per-generation wall time of one full step(), both substrates."""
    obj_ga = engine_for(rows, cols, "object")
    arr_ga = engine_for(rows, cols, "array")
    t_obj = best_of(obj_ga.step)
    t_arr = best_of(arr_ga.step)
    base = np.arange(N_JOBS)
    assert all(np.array_equal(np.sort(row), base)
               for row in arr_ga.grid_state.matrix), \
        "grid generations broke permutation closure"
    return t_obj, t_arr


def test_cellular_speedup():
    rows_out = []
    print(f"\n{'grid':>8} {'object s':>10} {'grid s':>10} {'speedup':>8}")
    for rows, cols in GRIDS:
        t_obj, t_arr = run_case(rows, cols)
        speedup = t_obj / t_arr
        rows_out.append({"rows": rows, "cols": cols,
                         "cells": rows * cols, "object_s": t_obj,
                         "array_s": t_arr, "speedup": speedup})
        print(f"{rows}x{cols:>4} {t_obj:>10.5f} {t_arr:>10.5f} "
              f"{speedup:>7.1f}x")

    OUT_PATH.write_text(json.dumps({
        "scenario": f"permutation flow shop {N_JOBS}x{N_MACHINES} "
                    f"(ta-style), one synchronous cellular generation",
        "reps": REPS,
        "gate": {"grid": list(ACCEPTANCE_GRID), "min_speedup": MIN_SPEEDUP},
        "rows": rows_out,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    gate = next(r for r in rows_out
                if (r["rows"], r["cols"]) == ACCEPTANCE_GRID)
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"grid-substrate cellular speedup {gate['speedup']:.1f}x at "
        f"{ACCEPTANCE_GRID[0]}x{ACCEPTANCE_GRID[1]} is below the "
        f"{MIN_SPEEDUP:g}x gate")


if __name__ == "__main__":
    test_cellular_speedup()
