"""Shared helper for the per-experiment benchmarks.

Every benchmark regenerates one surveyed claim (see DESIGN.md section 4 and
EXPERIMENTS.md): it times the experiment via pytest-benchmark, prints the
reproduced table, and asserts the claim's *shape* holds.

Experiments are deterministic (fixed seeds throughout), so the shape
assertions are stable; only the measured wall-clock varies run to run.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def run_and_assert(benchmark, experiment_id: str, scale: str = "small",
                   require_pass: bool = True):
    """Benchmark one experiment (single round) and check its shape."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"scale": scale},
        rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.summary())
    if require_pass:
        assert result.passed, (
            f"{experiment_id} shape mismatch:\n{result.summary()}")
    return result
