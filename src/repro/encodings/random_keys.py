"""Random-keys encoding (Huang et al. [24]).

A genome is a real vector in [0, 1); sorting the keys yields a permutation
(flow shop) or an operation priority vector (job shop).  Random keys keep
every real vector feasible, so real-valued operators (parameterised uniform
crossover, Gaussian mutation, arithmetic crossover of Zajicek [25]) apply
without repair -- the property CUDA implementations exploit.
"""

from __future__ import annotations

import numpy as np

from ..scheduling.batch import (batch_completion_permutation,
                                batch_makespan_permutation)
from ..scheduling.flowshop import flowshop_makespan, flowshop_schedule
from ..scheduling.instance import FlowShopInstance, JobShopInstance
from ..scheduling.jobshop import giffler_thompson
from ..scheduling.schedule import Schedule
from .base import GenomeKind

__all__ = ["RandomKeysFlowShopEncoding", "RandomKeysJobShopEncoding",
           "keys_to_permutation"]


def keys_to_permutation(keys: np.ndarray) -> np.ndarray:
    """Permutation induced by ascending key order (stable)."""
    return np.argsort(np.asarray(keys), kind="stable").astype(np.int64)


class RandomKeysFlowShopEncoding:
    """Random keys over jobs; ascending sort gives the job sequence."""

    kind = GenomeKind.REAL

    def __init__(self, instance: FlowShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.instance.n_jobs)

    def permutation(self, genome: np.ndarray) -> np.ndarray:
        return keys_to_permutation(genome)

    def decode(self, genome: np.ndarray) -> Schedule:
        return flowshop_schedule(self.instance, self.permutation(genome))

    def fast_makespan(self, genome: np.ndarray) -> float:
        return flowshop_makespan(self.instance, self.permutation(genome))

    def batch_makespan(self, chromosomes: np.ndarray) -> np.ndarray:
        keys = np.asarray(chromosomes, dtype=float)
        perms = np.argsort(keys, axis=1, kind="stable").astype(np.int64)
        return batch_makespan_permutation(self.instance, perms)

    def batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        keys = np.asarray(chromosomes, dtype=float)
        if keys.ndim == 1:
            keys = keys[None, :]
        perms = np.argsort(keys, axis=1, kind="stable").astype(np.int64)
        return batch_completion_permutation(self.instance, perms)

    def fast_makespan_batch(self, genomes: list[np.ndarray]) -> np.ndarray:
        return self.batch_makespan(np.stack(genomes))


class RandomKeysJobShopEncoding:
    """Random keys as Giffler-Thompson priorities (one key per operation)."""

    kind = GenomeKind.REAL

    def __init__(self, instance: JobShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.instance.n_jobs * self.instance.n_stages)

    def decode(self, genome: np.ndarray) -> Schedule:
        return giffler_thompson(self.instance, np.asarray(genome, dtype=float))

    def fast_makespan(self, genome: np.ndarray) -> float:
        return self.decode(genome).makespan
