"""Job-permutation encoding (flow shop, open shop).

The standard flow shop chromosome: a string of length ``n`` whose i-th gene
is the job at position i.  For open shops the same genome drives the
LPT-Task/LPT-Machine greedy decoders of Kokosinski & Studzienny [32] --
there the permutation is expanded to a permutation with repetitions by
cycling, or used directly when the caller supplies repetition genomes.
:class:`OpenShopPairSequenceEncoding` is the maximally expressive open-shop
genome the survey notes the others reduce to: a plain permutation of
operation ids, decoded greedily in list order (and hence batchable).
"""

from __future__ import annotations

import numpy as np

from ..scheduling.batch import (batch_completion_pair_sequence,
                                batch_completion_permutation,
                                batch_makespan_permutation)
from ..scheduling.flowshop import flowshop_makespan, flowshop_schedule
from ..scheduling.instance import FlowShopInstance, OpenShopInstance
from ..scheduling.openshop import (decode_job_repetition_lpt_machine,
                                   decode_job_repetition_lpt_task,
                                   decode_pair_sequence)
from ..scheduling.schedule import Schedule
from .base import GenomeKind

__all__ = ["FlowShopPermutationEncoding", "OpenShopPermutationEncoding",
           "OpenShopPairSequenceEncoding"]


class FlowShopPermutationEncoding:
    """Permutation of job indices; decoded by the flow-shop recurrence."""

    kind = GenomeKind.PERMUTATION

    def __init__(self, instance: FlowShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.permutation(self.instance.n_jobs).astype(np.int64)

    def decode(self, genome: np.ndarray) -> Schedule:
        return flowshop_schedule(self.instance, genome)

    # fast paths used by Problem.evaluate / evaluate_many / evaluate_batch
    def fast_makespan(self, genome: np.ndarray) -> float:
        return flowshop_makespan(self.instance, genome)

    def batch_makespan(self, chromosomes: np.ndarray) -> np.ndarray:
        return batch_makespan_permutation(self.instance, chromosomes)

    def batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        return batch_completion_permutation(self.instance, chromosomes)

    def fast_makespan_batch(self, genomes: list[np.ndarray]) -> np.ndarray:
        return self.batch_makespan(np.stack(genomes))


class OpenShopPermutationEncoding:
    """Permutation with repetitions + greedy LPT decoder [32].

    The genome contains each job index exactly ``n_machines`` times; the
    ``decoder`` argument selects LPT-Task (default) or LPT-Machine.
    """

    kind = GenomeKind.REPETITION

    def __init__(self, instance: OpenShopInstance, decoder: str = "lpt_task"):
        if decoder not in ("lpt_task", "lpt_machine"):
            raise ValueError("decoder must be 'lpt_task' or 'lpt_machine'")
        self.instance = instance
        self.decoder = decoder
        self.repeats = instance.n_machines

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        base = np.repeat(np.arange(self.instance.n_jobs, dtype=np.int64),
                         self.repeats)
        rng.shuffle(base)
        return base

    def decode(self, genome: np.ndarray) -> Schedule:
        if self.decoder == "lpt_task":
            return decode_job_repetition_lpt_task(self.instance, genome)
        return decode_job_repetition_lpt_machine(self.instance, genome)

    def fast_makespan(self, genome: np.ndarray) -> float:
        return self.decode(genome).makespan


class OpenShopPairSequenceEncoding:
    """Permutation of operation ids, decoded greedily in list order.

    The genome is a plain permutation of ``range(n_jobs * n_machines)``
    where op id ``k`` names operation ``(k // n_machines, k % n_machines)``
    -- i.e. the explicit pair sequence of
    :func:`~repro.scheduling.openshop.decode_pair_sequence` flattened so
    that standard permutation operators (and the batch path) apply without
    repair.  Unlike the LPT decoders, list-order placement has no
    data-dependent machine choice, so whole populations decode as one
    :func:`~repro.scheduling.batch.batch_completion_pair_sequence` call.
    """

    kind = GenomeKind.PERMUTATION

    def __init__(self, instance: OpenShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        n_ops = self.instance.n_jobs * self.instance.n_machines
        return rng.permutation(n_ops).astype(np.int64)

    def pairs(self, genome: np.ndarray) -> np.ndarray:
        """Explicit ``(n_ops, 2)`` (job, machine) pairs of ``genome``."""
        ids = np.asarray(genome, dtype=np.int64)
        m = self.instance.n_machines
        return np.column_stack([ids // m, ids % m])

    def decode(self, genome: np.ndarray) -> Schedule:
        return decode_pair_sequence(self.instance, self.pairs(genome))

    def fast_makespan(self, genome: np.ndarray) -> float:
        completion = batch_completion_pair_sequence(
            self.instance, np.asarray(genome, dtype=np.int64))
        return float(completion.max()) if completion.size else 0.0

    def batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        return batch_completion_pair_sequence(self.instance, chromosomes)
