"""Two-part genomes for flexible shops.

Belkadi et al. [37]: "genome constituted one assignment chromosome and a
sequencing chromosome".  The composite genome is a tuple; part 0 assigns
operations to machines, part 1 orders them.  Composite operators in
:mod:`repro.operators.crossover` recombine the parts independently, which
is how [36][37] describe their assignment vs. sequencing operators.
"""

from __future__ import annotations

import numpy as np

from ..scheduling.batch import (batch_completion_fjsp,
                                batch_completion_hybrid_flowshop)
from ..scheduling.flexible import (LotStreamingPlan, decode_fjsp,
                                   decode_hybrid_flowshop,
                                   decode_lot_streaming, fjsp_random_genome)
from ..scheduling.instance import (FlexibleFlowShopInstance,
                                   FlexibleJobShopInstance)
from ..scheduling.schedule import Schedule
from .base import GenomeKind

__all__ = ["FlexibleJobShopEncoding", "HybridFlowShopEncoding",
           "LotStreamingEncoding"]


class FlexibleJobShopEncoding:
    """(assignment indices, operation sequence) for the FJSP [36]."""

    kind = GenomeKind.COMPOSITE
    part_kinds = ("assignment", "repetition")

    def __init__(self, instance: FlexibleJobShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray]:
        return fjsp_random_genome(self.instance, rng)

    def decode(self, genome: tuple[np.ndarray, np.ndarray]) -> Schedule:
        assignment, sequence = genome
        return decode_fjsp(self.instance, assignment, sequence)

    def fast_makespan(self, genome: tuple[np.ndarray, np.ndarray]) -> float:
        return self.decode(genome).makespan

    # -- batch path: two-part genomes flatten to one chromosome row ---------
    def stack_genomes(self, genomes) -> np.ndarray | None:
        """Stack (assignment, sequence) tuples into a (pop, 2*n_ops) matrix.

        The two int parts concatenate into one row so the composite genome
        rides the same matrix transport as flat chromosomes (executors ship
        one compact ndarray; workers split it back).  Returns ``None`` for
        anything that is not a well-formed FJSP genome list.
        """
        n_ops = self.instance.total_operations
        if isinstance(genomes, np.ndarray):
            return genomes if (genomes.ndim == 2
                               and genomes.shape[1] == 2 * n_ops) else None
        genomes = list(genomes)
        if not genomes:
            return None
        rows = []
        for g in genomes:
            if not (isinstance(g, tuple) and len(g) == 2):
                return None
            assignment, sequence = g
            if not (isinstance(assignment, np.ndarray)
                    and isinstance(sequence, np.ndarray)
                    and assignment.shape == (n_ops,)
                    and sequence.shape == (n_ops,)):
                return None
            rows.append(np.concatenate([assignment, sequence]))
        return np.stack(rows).astype(np.int64, copy=False)

    def unstack_row(self, row: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split one stacked row back into (assignment, sequence)."""
        n_ops = self.instance.total_operations
        row = np.asarray(row, dtype=np.int64)
        return row[:n_ops], row[n_ops:]

    def batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        matrix = np.asarray(chromosomes, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        n_ops = self.instance.total_operations
        return batch_completion_fjsp(self.instance, matrix[:, :n_ops],
                                     matrix[:, n_ops:])

    def assignment_domain_sizes(self) -> np.ndarray:
        """Eligible-machine count per flattened operation (for mutation)."""
        sizes = []
        for j in range(self.instance.n_jobs):
            for s in range(self.instance.stages_of(j)):
                sizes.append(len(self.instance.eligible_machines(j, s)))
        return np.asarray(sizes, dtype=np.int64)


class HybridFlowShopEncoding:
    """(assignment matrix, job permutation) for hybrid flow shops [37].

    ``use_assignment=False`` degrades to a pure permutation genome decoded
    with earliest-finish machine selection, the common simplification; the
    assignment part is kept as a zero placeholder so the genome shape (and
    the stacked-matrix layout) is mode-independent, but it is declared
    ``"frozen"`` so composite variation operators never touch it.
    """

    kind = GenomeKind.COMPOSITE

    def __init__(self, instance: FlexibleFlowShopInstance,
                 use_assignment: bool = True):
        self.instance = instance
        self.use_assignment = use_assignment
        self.part_kinds = (("assignment", "permutation") if use_assignment
                           else ("frozen", "permutation"))

    @property
    def part_spans(self) -> tuple[int, ...]:
        """Column widths of the parts in a stacked chromosome row."""
        n = self.instance.n_jobs
        return (n * self.instance.n_stages, n)

    def random_genome(self, rng: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray]:
        perm = rng.permutation(self.instance.n_jobs).astype(np.int64)
        if self.use_assignment:
            assign = np.stack([
                rng.integers(0, k, size=self.instance.n_jobs)
                for k in self.instance.machines_per_stage
            ], axis=1)  # (n_jobs, n_stages)
        else:
            assign = np.zeros((self.instance.n_jobs, self.instance.n_stages),
                              dtype=np.int64)
        return assign, perm

    def decode(self, genome: tuple[np.ndarray, np.ndarray]) -> Schedule:
        assign, perm = genome
        return decode_hybrid_flowshop(
            self.instance, perm, assign if self.use_assignment else None)

    def fast_makespan(self, genome: tuple[np.ndarray, np.ndarray]) -> float:
        return self.decode(genome).makespan

    # -- batch path: (assignment, permutation) flattens to one row ----------
    def stack_genomes(self, genomes) -> np.ndarray | None:
        """Stack genome tuples into a (pop, n_jobs * (n_stages + 1)) matrix.

        The assignment matrix ravels row-major (job-major) ahead of the
        permutation, mirroring :class:`FlexibleJobShopEncoding`.  Returns
        ``None`` for anything that is not a well-formed HFS genome list.
        """
        n, n_stages = self.instance.n_jobs, self.instance.n_stages
        width = n * n_stages + n
        if isinstance(genomes, np.ndarray):
            return genomes if (genomes.ndim == 2
                               and genomes.shape[1] == width) else None
        genomes = list(genomes)
        if not genomes:
            return None
        rows = []
        for g in genomes:
            if not (isinstance(g, tuple) and len(g) == 2):
                return None
            assign, perm = g
            if not (isinstance(assign, np.ndarray)
                    and isinstance(perm, np.ndarray)
                    and assign.shape == (n, n_stages)
                    and perm.shape == (n,)):
                return None
            rows.append(np.concatenate([assign.ravel(), perm]))
        return np.stack(rows).astype(np.int64, copy=False)

    def unstack_row(self, row: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split one stacked row back into (assignment, permutation)."""
        n, n_stages = self.instance.n_jobs, self.instance.n_stages
        row = np.asarray(row, dtype=np.int64)
        return row[:n * n_stages].reshape(n, n_stages), row[n * n_stages:]

    def batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        matrix = np.asarray(chromosomes, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        n, n_stages = self.instance.n_jobs, self.instance.n_stages
        perms = matrix[:, n * n_stages:]
        assigns = None
        if self.use_assignment:
            assigns = matrix[:, :n * n_stages].reshape(-1, n, n_stages)
        return batch_completion_hybrid_flowshop(self.instance, perms,
                                                assigns)

    def assignment_domain_sizes(self) -> np.ndarray:
        """Stage machine-count per assignment gene (for mutation).

        The assignment part ravels job-major, so gene ``i`` belongs to
        stage ``i % n_stages`` -- exactly the modulo
        :class:`~repro.operators.mutation.AssignmentMutation` applies.
        """
        return np.asarray(self.instance.machines_per_stage, dtype=np.int64)


class LotStreamingEncoding:
    """(sublot-size keys, job permutation) for HFS with lot streaming [35].

    Part 0 is a positive real vector of length ``n_jobs * sublots`` giving
    (unnormalised) consistent sublot sizes; part 1 the job permutation.
    """

    kind = GenomeKind.COMPOSITE
    part_kinds = ("real", "permutation")

    def __init__(self, instance: FlexibleFlowShopInstance, sublots: int = 2):
        if sublots < 1:
            raise ValueError("need at least one sublot")
        self.instance = instance
        self.sublots = sublots

    def random_genome(self, rng: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray]:
        keys = rng.random(self.instance.n_jobs * self.sublots) + 0.05
        perm = rng.permutation(self.instance.n_jobs).astype(np.int64)
        return keys, perm

    def plan(self, genome: tuple[np.ndarray, np.ndarray]) -> LotStreamingPlan:
        keys, _ = genome
        return LotStreamingPlan.from_genome(keys, self.instance.n_jobs,
                                            self.sublots)

    def decode(self, genome: tuple[np.ndarray, np.ndarray]) -> Schedule:
        keys, perm = genome
        return decode_lot_streaming(self.instance, perm, self.plan(genome))

    def fast_makespan(self, genome: tuple[np.ndarray, np.ndarray]) -> float:
        return self.decode(genome).makespan
