"""Operation-based (permutation with repetition) encoding for job shops.

The survey's "direct way" for job shops: a string over job indices where
the k-th occurrence of job j denotes operation (j, k).  Any permutation of
the multiset decodes to a feasible semi-active schedule, so crossover needs
only multiset-preserving repair rather than schedule repair.

Three decoding modes:

* ``semi_active`` -- the plain greedy builder (default; fastest),
* ``active`` -- Giffler-Thompson with the chromosome as priority, giving
  active schedules as in Mui et al. [17],
* ``blocking`` -- the buffer-less decoder of AitZai et al. [14],
* ``graph`` -- disjunctive-graph longest-path evaluation (Somani [16]).
"""

from __future__ import annotations

import numpy as np

from ..scheduling.batch import (batch_completion_operation_sequence,
                                batch_makespan_operation_sequence)
from ..scheduling.graph import DisjunctiveGraph
from ..scheduling.instance import JobShopInstance
from ..scheduling.jobshop import (decode_blocking, decode_operation_sequence,
                                  giffler_thompson,
                                  operation_sequence_makespan)
from ..scheduling.schedule import Schedule
from .base import GenomeKind

__all__ = ["OperationBasedEncoding"]

_MODES = ("semi_active", "active", "blocking", "graph")


class OperationBasedEncoding:
    """Permutation-with-repetition chromosome for the JSSP."""

    kind = GenomeKind.REPETITION

    def __init__(self, instance: JobShopInstance, mode: str = "semi_active"):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if mode == "blocking" and not instance.blocking:
            # allowed, but decoding semantics assume the blocking constraint
            pass
        self.instance = instance
        self.mode = mode
        self._graph = DisjunctiveGraph(instance) if mode == "graph" else None

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        base = np.repeat(np.arange(self.instance.n_jobs, dtype=np.int64),
                         self.instance.n_stages)
        rng.shuffle(base)
        return base

    def decode(self, genome: np.ndarray) -> Schedule:
        if self.mode == "active":
            priorities = self._sequence_priorities(genome)
            return giffler_thompson(self.instance, priorities)
        if self.mode == "blocking":
            return decode_blocking(self.instance, genome)
        if self.mode == "graph":
            return self._graph.schedule_of_sequence(genome)
        return decode_operation_sequence(self.instance, genome)

    def fast_makespan(self, genome: np.ndarray) -> float:
        if self.mode == "semi_active":
            return operation_sequence_makespan(self.instance, genome)
        if self.mode == "graph":
            return self._graph.makespan_of_sequence(genome)
        return self.decode(genome).makespan

    @property
    def batch_makespan(self):
        """Vectorised population decoder (semi-active mode only).

        Active (G&T), blocking and graph decoding have data-dependent
        control flow per chromosome, so the scalar decoders stay
        authoritative there; ``getattr(..., "batch_makespan", None)``
        returns ``None`` for those modes.
        """
        if self.mode != "semi_active":
            raise AttributeError(
                f"no batch decoder for mode {self.mode!r}")
        return self._batch_makespan

    def _batch_makespan(self, chromosomes: np.ndarray) -> np.ndarray:
        return batch_makespan_operation_sequence(self.instance, chromosomes)

    @property
    def batch_completion(self):
        """Vectorised per-job completion decoder (semi-active mode only).

        Matrix of chromosomes in, ``(pop, n_jobs)`` completion-time matrix
        out -- the input to the batch objective layer, enabling every
        Section-II criterion (not just makespan) on the batch path.
        """
        if self.mode != "semi_active":
            raise AttributeError(
                f"no batch decoder for mode {self.mode!r}")
        return self._batch_completion

    def _batch_completion(self, chromosomes: np.ndarray) -> np.ndarray:
        return batch_completion_operation_sequence(self.instance, chromosomes)

    def fast_makespan_batch(self, genomes: list[np.ndarray]) -> np.ndarray:
        if self.mode == "semi_active":
            return self._batch_makespan(np.stack(genomes))
        return np.array([self.fast_makespan(g) for g in genomes], dtype=float)

    def _sequence_priorities(self, genome: np.ndarray) -> np.ndarray:
        """Positions in the chromosome become G&T priorities.

        Operation (j, s) gets the index of job j's (s+1)-th occurrence, so
        an operation appearing early in the string is preferred early in
        the conflict set.
        """
        g = self.instance.n_stages
        prio = np.empty(self.instance.n_jobs * g)
        next_stage = np.zeros(self.instance.n_jobs, dtype=np.int64)
        for pos, job in enumerate(np.asarray(genome, dtype=np.int64)):
            prio[job * g + next_stage[job]] = pos
            next_stage[job] += 1
        return prio
