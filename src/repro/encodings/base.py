"""Encoding/Problem abstraction.

Section III.A of the survey: "An individual is representative by a
chromosome ... For flow shop problems a standard chromosome consists of a
string of length n ... For job shop problems there are two ways of
chromosome representation: direct way and indirect way."

An :class:`Encoding` owns everything chromosome-specific for one problem
instance:

* sampling a random genome,
* decoding a genome to a :class:`~repro.scheduling.schedule.Schedule`,
* a fast objective evaluation (defaults to decode-then-score but decoders
  frequently provide a cheaper path),
* the *genome kind* tag that tells variation operators which space they act
  on (``permutation``, ``repetition``, ``real``, ``composite``).

A :class:`Problem` pairs an encoding with a minimised objective; GA engines
only ever see Problems, never raw instances.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..scheduling.instance import ShopInstance
from ..scheduling.objectives import Makespan, Objective
from ..scheduling.schedule import Schedule

__all__ = ["GenomeKind", "Encoding", "BatchEvaluator", "Problem",
           "stack_genomes"]


class GenomeKind:
    """Tags naming the search space a genome lives in."""

    PERMUTATION = "permutation"   # permutation of range(n)
    REPETITION = "repetition"     # permutation with repetitions (multiset)
    REAL = "real"                 # real vector (random keys, fractions)
    COMPOSITE = "composite"       # tuple of sub-genomes


class Encoding(Protocol):
    """Chromosome representation bound to a specific instance."""

    instance: ShopInstance
    kind: str

    def random_genome(self, rng: np.random.Generator) -> Any:
        """Sample a uniformly random feasible genome."""
        ...  # pragma: no cover

    def decode(self, genome: Any) -> Schedule:
        """Decode a genome into a complete schedule."""
        ...  # pragma: no cover


class BatchEvaluator(Protocol):
    """Scores a whole population in one vectorised call.

    Takes a ``(pop_size, n_genes)`` chromosome matrix and returns the
    ``(pop_size,)`` vector of minimised objectives.  Encodings expose one
    as ``batch_makespan`` when a vectorised decoder exists (see
    :mod:`repro.scheduling.batch`); :meth:`Problem.batch_evaluator` is the
    discovery point GA engines and executors use.
    """

    def __call__(self, chromosomes: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


def stack_genomes(genomes: Any) -> np.ndarray | None:
    """Stack a sequence of fixed-length array genomes into a matrix.

    Returns ``None`` when the genomes cannot form a rectangular matrix
    (composite/tuple genomes, ragged lengths, empty input) -- callers fall
    back to the scalar path in that case.  A 2-D array passes through
    unchanged, so evaluators accept either representation.
    """
    if isinstance(genomes, np.ndarray):
        return genomes if genomes.ndim == 2 else None
    genomes = list(genomes)
    if not genomes:
        return None
    first = genomes[0]
    if not isinstance(first, np.ndarray) or first.ndim != 1:
        return None
    shape = first.shape
    for g in genomes:
        if not isinstance(g, np.ndarray) or g.shape != shape:
            return None
    return np.stack(genomes)


class Problem:
    """Encoding + minimised objective = what a GA optimises.

    Parameters
    ----------
    encoding:
        the chromosome representation (already bound to its instance).
    objective:
        minimised criterion; defaults to makespan, by far the most common
        choice across the surveyed papers.
    eval_cost:
        optional artificial per-evaluation CPU cost in seconds (busy loop).
        Used by master-slave experiments to emulate the "fitness value
        calculation is complex and requires considerable computation"
        regime the survey highlights, without changing results.
    """

    def __init__(self, encoding: Encoding, objective: Objective | None = None,
                 eval_cost: float = 0.0):
        self.encoding = encoding
        self.objective = objective if objective is not None else Makespan()
        self.eval_cost = float(eval_cost)

    @property
    def instance(self) -> ShopInstance:
        return self.encoding.instance

    @property
    def kind(self) -> str:
        return self.encoding.kind

    def random_genome(self, rng: np.random.Generator) -> Any:
        return self.encoding.random_genome(rng)

    def decode(self, genome: Any) -> Schedule:
        return self.encoding.decode(genome)

    def evaluate(self, genome: Any) -> float:
        """Minimised objective value of ``genome``.

        Uses the encoding's fast path when it matches the default makespan
        objective; otherwise decodes and scores.
        """
        if self.eval_cost > 0.0:
            _burn_cpu(self.eval_cost)
        fast = getattr(self.encoding, "fast_makespan", None)
        if fast is not None and isinstance(self.objective, Makespan):
            return float(fast(genome))
        schedule = self.encoding.decode(genome)
        return float(self.objective(schedule, self.encoding.instance))

    def batch_evaluator(self) -> BatchEvaluator | None:
        """The problem's vectorised population evaluator, if it has one.

        Available when the objective is the plain makespan, no artificial
        ``eval_cost`` is configured, and the encoding ships a
        ``batch_makespan`` (matrix-in/vector-out) decoder.  GA engines and
        executors prefer this path and fall back to per-genome evaluation
        otherwise.
        """
        if self.eval_cost > 0.0 or not isinstance(self.objective, Makespan):
            return None
        return getattr(self.encoding, "batch_makespan", None)

    def evaluate_batch(self, chromosomes: np.ndarray) -> np.ndarray:
        """Objectives of a ``(pop_size, n_genes)`` chromosome matrix.

        Uses the encoding's vectorised decoder when available; otherwise
        scores row by row (still correct, just not batched).
        """
        batch = self.batch_evaluator()
        if batch is not None:
            return np.asarray(batch(chromosomes), dtype=float)
        return np.array([self.evaluate(g) for g in np.asarray(chromosomes)],
                        dtype=float)

    def evaluate_many(self, genomes: list[Any]) -> np.ndarray:
        """Vector of objective values; uses batched fast paths if available."""
        batch = self.batch_evaluator()
        if batch is not None:
            matrix = stack_genomes(genomes)
            if matrix is not None:
                return np.asarray(batch(matrix), dtype=float)
        if self.eval_cost == 0.0 and isinstance(self.objective, Makespan):
            legacy = getattr(self.encoding, "fast_makespan_batch", None)
            if legacy is not None:
                return np.asarray(legacy(genomes), dtype=float)
        return np.array([self.evaluate(g) for g in genomes], dtype=float)

    def objective_vector(self, genome: Any) -> tuple[float, ...]:
        """Multi-objective vector when the objective supports it."""
        vec = getattr(self.objective, "vector", None)
        schedule = self.encoding.decode(genome)
        if vec is None:
            return (float(self.objective(schedule, self.encoding.instance)),)
        return vec(schedule, self.encoding.instance)


def _burn_cpu(seconds: float) -> None:
    """Spend ~``seconds`` of CPU time (deterministic busy arithmetic)."""
    import time
    end = time.perf_counter() + seconds
    x = 1.0001
    while time.perf_counter() < end:
        x = x * 1.0000001 % 10.0
