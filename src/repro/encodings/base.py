"""Encoding/Problem abstraction.

Section III.A of the survey: "An individual is representative by a
chromosome ... For flow shop problems a standard chromosome consists of a
string of length n ... For job shop problems there are two ways of
chromosome representation: direct way and indirect way."

An :class:`Encoding` owns everything chromosome-specific for one problem
instance:

* sampling a random genome,
* decoding a genome to a :class:`~repro.scheduling.schedule.Schedule`,
* a fast objective evaluation (defaults to decode-then-score but decoders
  frequently provide a cheaper path),
* the *genome kind* tag that tells variation operators which space they act
  on (``permutation``, ``repetition``, ``real``, ``composite``).

A :class:`Problem` pairs an encoding with a minimised objective; GA engines
only ever see Problems, never raw instances.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..scheduling.instance import ShopInstance
from ..scheduling.objectives import Makespan, Objective, batch_objective
from ..scheduling.schedule import Schedule

__all__ = ["GenomeKind", "Encoding", "BatchEvaluator",
           "CompletionObjectiveEvaluator", "Problem", "stack_genomes"]


class GenomeKind:
    """Tags naming the search space a genome lives in."""

    PERMUTATION = "permutation"   # permutation of range(n)
    REPETITION = "repetition"     # permutation with repetitions (multiset)
    REAL = "real"                 # real vector (random keys, fractions)
    COMPOSITE = "composite"       # tuple of sub-genomes


class Encoding(Protocol):
    """Chromosome representation bound to a specific instance."""

    instance: ShopInstance
    kind: str

    def random_genome(self, rng: np.random.Generator) -> Any:
        """Sample a uniformly random feasible genome."""
        ...  # pragma: no cover

    def decode(self, genome: Any) -> Schedule:
        """Decode a genome into a complete schedule."""
        ...  # pragma: no cover


class BatchEvaluator(Protocol):
    """Scores a whole population in one vectorised call.

    Takes a ``(pop_size, n_genes)`` chromosome matrix and returns the
    ``(pop_size,)`` vector of minimised objectives.  Encodings expose
    ``batch_completion`` (chromosome matrix -> ``(pop, n_jobs)``
    completion-time matrix) when a vectorised decoder exists, plus the
    legacy ``batch_makespan`` fast path (see
    :mod:`repro.scheduling.batch`); :meth:`Problem.batch_evaluator` is the
    discovery point GA engines and executors use -- it composes
    ``batch_completion`` with the objective's batch reduction for any
    Section-II criterion.
    """

    def __call__(self, chromosomes: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class CompletionObjectiveEvaluator:
    """Batch evaluator composing a completion decoder with an objective.

    ``chromosomes -> encoding.batch_completion -> objective.batch`` --
    the generic vectorised path for every completion-reducible criterion
    (makespan, flow time, weighted completion, the tardiness family and
    weighted combinations thereof).  A plain class (not a closure) so
    evaluators stay picklable for process-pool workers.
    """

    def __init__(self, batch_completion, objective_batch,
                 instance: ShopInstance):
        self.batch_completion = batch_completion
        self.objective_batch = objective_batch
        self.instance = instance

    def __call__(self, chromosomes: np.ndarray) -> np.ndarray:
        completion = self.batch_completion(chromosomes)
        return self.objective_batch(completion, self.instance)


def stack_genomes(genomes: Any) -> np.ndarray | None:
    """Stack a sequence of fixed-length array genomes into a matrix.

    Returns ``None`` when the genomes cannot form a rectangular matrix
    (composite/tuple genomes, ragged lengths, empty input) -- callers fall
    back to the scalar path in that case.  A 2-D array passes through
    unchanged, so evaluators accept either representation.
    """
    if isinstance(genomes, np.ndarray):
        return genomes if genomes.ndim == 2 else None
    genomes = list(genomes)
    if not genomes:
        return None
    first = genomes[0]
    if not isinstance(first, np.ndarray) or first.ndim != 1:
        return None
    shape = first.shape
    for g in genomes:
        if not isinstance(g, np.ndarray) or g.shape != shape:
            return None
    return np.stack(genomes)


class Problem:
    """Encoding + minimised objective = what a GA optimises.

    Parameters
    ----------
    encoding:
        the chromosome representation (already bound to its instance).
    objective:
        minimised criterion; defaults to makespan, by far the most common
        choice across the surveyed papers.
    eval_cost:
        optional artificial per-evaluation CPU cost in seconds (busy loop).
        Used by master-slave experiments to emulate the "fitness value
        calculation is complex and requires considerable computation"
        regime the survey highlights, without changing results.
    """

    def __init__(self, encoding: Encoding, objective: Objective | None = None,
                 eval_cost: float = 0.0):
        self.encoding = encoding
        self.objective = objective if objective is not None else Makespan()
        self.eval_cost = float(eval_cost)

    @property
    def instance(self) -> ShopInstance:
        return self.encoding.instance

    @property
    def kind(self) -> str:
        return self.encoding.kind

    def random_genome(self, rng: np.random.Generator) -> Any:
        return self.encoding.random_genome(rng)

    def random_matrix(self, count: int,
                      rng: np.random.Generator) -> np.ndarray | None:
        """``count`` random genomes stacked into a chromosome matrix.

        Same draws as ``count`` :meth:`random_genome` calls, stacked
        through the genome-stacking seam; ``None`` when the genomes are
        ragged and cannot form a matrix.  The array substrate
        (:mod:`repro.core.substrate`) seeds populations and immigrants
        through this.
        """
        return self.stack_genomes(
            [self.random_genome(rng) for _ in range(count)])

    def decode(self, genome: Any) -> Schedule:
        return self.encoding.decode(genome)

    def evaluate(self, genome: Any) -> float:
        """Minimised objective value of ``genome``.

        Uses the encoding's fast path when it matches the default makespan
        objective; otherwise decodes and scores.
        """
        if self.eval_cost > 0.0:
            _burn_cpu(self.eval_cost)
        fast = getattr(self.encoding, "fast_makespan", None)
        if fast is not None and isinstance(self.objective, Makespan):
            return float(fast(genome))
        schedule = self.encoding.decode(genome)
        return float(self.objective(schedule, self.encoding.instance))

    def batch_evaluator(self) -> BatchEvaluator | None:
        """The problem's vectorised population evaluator, if it has one.

        Available when no artificial ``eval_cost`` is configured and either

        * the objective is the plain makespan and the encoding ships the
          direct ``batch_makespan`` (matrix-in/vector-out) fast path, or
        * the encoding ships a ``batch_completion`` decoder (chromosome
          matrix -> per-job completion matrix) and the objective reduces
          from completion matrices (``batch_objective`` finds a batch
          form) -- this covers every Section-II criterion and weighted
          combinations of them, or
        * the objective itself provides a ``batch_evaluator(encoding)``
          factory (schedule-level criteria such as peak power / energy
          that need operation starts and ends, not just per-job
          completions) -- it returns a matrix evaluator for encodings it
          recognises and ``None`` otherwise.

        GA engines and executors prefer this path and fall back to
        per-genome evaluation otherwise.
        """
        if self.eval_cost > 0.0:
            return None
        if isinstance(self.objective, Makespan):
            fast = getattr(self.encoding, "batch_makespan", None)
            if fast is not None:
                return fast
        completion = getattr(self.encoding, "batch_completion", None)
        objective_batch = batch_objective(self.objective)
        if completion is not None and objective_batch is not None:
            return CompletionObjectiveEvaluator(completion, objective_batch,
                                                self.encoding.instance)
        make = getattr(self.objective, "batch_evaluator", None)
        if make is not None:
            custom = make(self.encoding)
            if custom is not None:
                return custom
        return None

    def stack_genomes(self, genomes: Any) -> np.ndarray | None:
        """Stack genomes into the chromosome matrix the batch path scores.

        Defers to the encoding's own ``stack_genomes`` when it has one
        (composite genomes such as the two-part FJSP chromosome flatten
        their parts into one row); otherwise the generic rectangular
        stacking of :func:`stack_genomes` applies.  Returns ``None`` when
        the genomes cannot form a matrix -- callers fall back to the
        per-genome path.
        """
        custom = getattr(self.encoding, "stack_genomes", None)
        if custom is not None:
            return custom(genomes)
        return stack_genomes(genomes)

    def unstack_row(self, row: np.ndarray) -> Any:
        """Inverse of :meth:`stack_genomes` for one matrix row."""
        custom = getattr(self.encoding, "unstack_row", None)
        return custom(row) if custom is not None else row

    def evaluate_batch(self, chromosomes: np.ndarray) -> np.ndarray:
        """Objectives of a ``(pop_size, n_genes)`` chromosome matrix.

        Uses the encoding's vectorised decoder when available; otherwise
        scores row by row (still correct, just not batched).  Rows are
        un-stacked back to genomes for encodings with composite stacking.
        """
        batch = self.batch_evaluator()
        if batch is not None:
            return np.asarray(batch(chromosomes), dtype=float)
        return np.array([self.evaluate(self.unstack_row(g))
                         for g in np.asarray(chromosomes)], dtype=float)

    def evaluate_many(self, genomes: list[Any]) -> np.ndarray:
        """Vector of objective values; uses batched fast paths if available."""
        batch = self.batch_evaluator()
        if batch is not None:
            matrix = self.stack_genomes(genomes)
            if matrix is not None:
                return np.asarray(batch(matrix), dtype=float)
        if self.eval_cost == 0.0 and isinstance(self.objective, Makespan):
            legacy = getattr(self.encoding, "fast_makespan_batch", None)
            if legacy is not None:
                return np.asarray(legacy(genomes), dtype=float)
        return np.array([self.evaluate(g) for g in genomes], dtype=float)

    def objective_vector(self, genome: Any) -> tuple[float, ...]:
        """Multi-objective vector when the objective supports it.

        Mirrors :meth:`evaluate`: under the default makespan objective an
        encoding's ``fast_makespan`` is authoritative (encodings whose
        "makespan" is a derived criterion -- fuzzy agreement, expected
        makespan over scenarios -- score through it, and the decoded
        crisp/mean schedule would disagree), so reports stay consistent
        with what the GA optimised.
        """
        vec = getattr(self.objective, "vector", None)
        if vec is None:
            fast = getattr(self.encoding, "fast_makespan", None)
            if fast is not None and isinstance(self.objective, Makespan):
                return (float(fast(genome)),)
            schedule = self.encoding.decode(genome)
            return (float(self.objective(schedule, self.encoding.instance)),)
        schedule = self.encoding.decode(genome)
        return vec(schedule, self.encoding.instance)

    def objective_vectors(self, genomes: list[Any]) -> np.ndarray:
        """Multi-objective matrix ``(len(genomes), n_criteria)``.

        One vectorised call when the encoding has a ``batch_completion``
        decoder and the objective's criteria all reduce from completion
        matrices (``batch_vector`` for weighted combinations, the plain
        batch form as a single column otherwise); falls back to per-genome
        :meth:`objective_vector` decoding.  Both paths are bit-identical.
        """
        genomes = list(genomes)
        if not genomes:
            # criteria count without a genome to decode: an explicit
            # ``n_criteria``, the parts of a WeightedCombination, or 1
            # (scalar objective / unknown width)
            width = getattr(self.objective, "n_criteria", None)
            if width is None:
                parts = getattr(self.objective, "parts", None)
                width = len(parts) if parts else 1
            return np.zeros((0, int(width)))
        if self.eval_cost == 0.0:
            completion_fn = getattr(self.encoding, "batch_completion", None)
            vec_batch = getattr(self.objective, "batch_vector", None)
            if vec_batch is None \
                    and getattr(self.objective, "vector", None) is None:
                # genuinely single-criterion: its batch form is one column.
                # Multi-criteria objectives without a batch_vector fall back
                # to per-genome decoding so column counts always match.
                single = batch_objective(self.objective)
                if single is not None:
                    vec_batch = (lambda completion, instance:
                                 single(completion, instance)[:, None])
            supported = getattr(self.objective, "supports_batch", True)
            if completion_fn is not None and vec_batch is not None and supported:
                matrix = self.stack_genomes(genomes)
                if matrix is not None:
                    completion = completion_fn(matrix)
                    return np.asarray(vec_batch(completion,
                                                self.encoding.instance),
                                      dtype=float)
        return np.array([self.objective_vector(g) for g in genomes],
                        dtype=float)


def _burn_cpu(seconds: float) -> None:
    """Spend ~``seconds`` of CPU time (deterministic busy arithmetic)."""
    import time
    end = time.perf_counter() + seconds
    x = 1.0001
    while time.perf_counter() < end:
        x = x * 1.0000001 % 10.0
