"""Chromosome representations (Section III.A of the survey)."""

from .base import (BatchEvaluator, CompletionObjectiveEvaluator, Encoding,
                   GenomeKind, Problem, stack_genomes)
from .permutation import (FlowShopPermutationEncoding,
                          OpenShopPairSequenceEncoding,
                          OpenShopPermutationEncoding)
from .operation_based import OperationBasedEncoding
from .random_keys import (RandomKeysFlowShopEncoding, RandomKeysJobShopEncoding,
                          keys_to_permutation)
from .dispatch_rules import DispatchRuleEncoding
from .assignment_sequence import (FlexibleJobShopEncoding,
                                  HybridFlowShopEncoding,
                                  LotStreamingEncoding)

__all__ = [
    "Encoding", "GenomeKind", "Problem", "BatchEvaluator",
    "CompletionObjectiveEvaluator", "stack_genomes",
    "FlowShopPermutationEncoding", "OpenShopPermutationEncoding",
    "OpenShopPairSequenceEncoding",
    "OperationBasedEncoding",
    "RandomKeysFlowShopEncoding", "RandomKeysJobShopEncoding",
    "keys_to_permutation",
    "DispatchRuleEncoding",
    "FlexibleJobShopEncoding", "HybridFlowShopEncoding", "LotStreamingEncoding",
]
