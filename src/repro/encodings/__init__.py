"""Chromosome representations (Section III.A of the survey)."""

from .base import (BatchEvaluator, Encoding, GenomeKind, Problem,
                   stack_genomes)
from .permutation import FlowShopPermutationEncoding, OpenShopPermutationEncoding
from .operation_based import OperationBasedEncoding
from .random_keys import (RandomKeysFlowShopEncoding, RandomKeysJobShopEncoding,
                          keys_to_permutation)
from .dispatch_rules import DispatchRuleEncoding
from .assignment_sequence import (FlexibleJobShopEncoding,
                                  HybridFlowShopEncoding,
                                  LotStreamingEncoding)

__all__ = [
    "Encoding", "GenomeKind", "Problem", "BatchEvaluator", "stack_genomes",
    "FlowShopPermutationEncoding", "OpenShopPermutationEncoding",
    "OperationBasedEncoding",
    "RandomKeysFlowShopEncoding", "RandomKeysJobShopEncoding",
    "keys_to_permutation",
    "DispatchRuleEncoding",
    "FlexibleJobShopEncoding", "HybridFlowShopEncoding", "LotStreamingEncoding",
]
