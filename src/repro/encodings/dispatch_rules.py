"""Indirect encoding: dispatching-rule chromosomes.

The survey's "indirect way" (Cheng, Gen & Tsujimura [12]): the chromosome
is a sequence of dispatching rules; decoding applies rule k at construction
step k.  The genome is an integer vector indexing into a rule alphabet, so
standard discrete crossover/mutation apply with no repair at all.
"""

from __future__ import annotations

import numpy as np

from ..scheduling.instance import JobShopInstance
from ..scheduling.jobshop import DISPATCH_RULES, priority_rule_schedule
from ..scheduling.schedule import Schedule
from .base import GenomeKind

__all__ = ["DispatchRuleEncoding"]


class DispatchRuleEncoding:
    """Integer genome over a dispatching-rule alphabet."""

    kind = GenomeKind.REAL  # integer lattice; real-style ops + rounding apply

    def __init__(self, instance: JobShopInstance,
                 rules: tuple[str, ...] = ("SPT", "LPT", "MWR", "LWR", "FIFO")):
        unknown = [r for r in rules if r not in DISPATCH_RULES]
        if unknown:
            raise ValueError(f"unknown rules: {unknown}")
        self.instance = instance
        self.rules = tuple(rules)
        self.length = instance.n_jobs * instance.n_stages

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, len(self.rules), size=self.length)

    def rule_names(self, genome: np.ndarray) -> list[str]:
        idx = np.asarray(genome, dtype=np.int64) % len(self.rules)
        return [self.rules[i] for i in idx]

    def decode(self, genome: np.ndarray) -> Schedule:
        return priority_rule_schedule(self.instance, self.rule_names(genome))

    def fast_makespan(self, genome: np.ndarray) -> float:
        return self.decode(genome).makespan
