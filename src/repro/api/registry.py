"""String-keyed component registries for the declarative solver API.

The survey's whole taxonomy is a product of independent axes -- problem
class x encoding x objective x parallel model -- and a serializable
:class:`~repro.api.spec.SolverSpec` addresses each axis *by name*.  This
module provides the naming layer: three registries (engines, encodings,
objectives) populated by decorators, enumerable via ``available_*()``,
and queried by spec validation/resolution with actionable error messages
(unknown names come back with close-match suggestions).

Registering a component::

    @register_engine("island", params={"islands": 4, "topology": "ring"})
    def _run_island(problem, config, termination, seed, *, islands, topology):
        ...

Every entry carries a one-line description (first docstring line, or an
em-dash placeholder when the component has no docstring -- enumeration
must never crash on an undocumented component) and a ``params`` mapping
naming the accepted keyword parameters with their defaults, which is what
spec validation checks ``engine_params`` / ``encoding_params`` /
``objective_params`` keys against.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "SpecError",
    "Registry",
    "RegistryEntry",
    "first_doc_line",
    "register_engine", "available_engines", "engine_entry",
    "register_encoding", "available_encodings", "encoding_entry",
    "register_objective", "available_objectives", "objective_entry",
]

#: Placeholder shown for components that ship no docstring.
NO_DESCRIPTION = "—"


class SpecError(ValueError):
    """A solver spec names an unknown component or an invalid parameter.

    Always carries an actionable message: what was wrong, where in the
    spec it sits, and what the valid options are.
    """


def first_doc_line(obj: Any) -> str:
    """First docstring line of ``obj``, or an em-dash placeholder.

    Registry enumeration and ``repro list`` print this; components (or
    experiments) without docstrings must render as a placeholder rather
    than crash with ``AttributeError`` on ``None.strip()``.
    """
    doc = getattr(obj, "__doc__", None)
    if not doc or not doc.strip():
        return NO_DESCRIPTION
    return doc.strip().splitlines()[0].strip()


def suggest(name, options) -> str:
    """``did you mean ...?`` suffix for an unknown name (may be empty).

    ``name`` may be any JSON value (a spec can hold ``null`` or a number
    where a name belongs); only strings get close-match suggestions --
    the error-reporting path itself must never raise.
    """
    if not isinstance(name, str):
        return ""
    close = difflib.get_close_matches(name, list(options), n=3, cutoff=0.5)
    return f" (did you mean {', '.join(map(repr, close))}?)" if close else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One named component: factory + parameter schema + metadata."""

    name: str
    factory: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    description: str = NO_DESCRIPTION
    #: accepted keyword parameters and their defaults (the validation schema)
    params: Mapping[str, Any] = field(default_factory=dict)
    #: free-form metadata (e.g. instance types an encoding accepts)
    tags: Mapping[str, Any] = field(default_factory=dict)

    def check_params(self, given: Mapping[str, Any], where: str) -> None:
        """Reject parameter names outside the entry's schema."""
        unknown = sorted(set(given) - set(self.params))
        if unknown:
            allowed = sorted(self.params) or ["(none)"]
            raise SpecError(
                f"{where}: unknown parameter(s) {unknown} for "
                f"{self.name!r}; accepted: {allowed}")


class Registry:
    """A named family of components (engines, encodings, objectives)."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(self, name: str, *, aliases: tuple[str, ...] = (),
                 description: str | None = None,
                 params: Mapping[str, Any] | None = None,
                 **tags: Any) -> Callable:
        """Decorator registering ``factory`` under ``name`` (+ aliases)."""
        def deco(factory: Callable) -> Callable:
            if name in self._entries or name in self._aliases:
                raise ValueError(f"{self.kind} {name!r} already registered")
            entry = RegistryEntry(
                name=name, factory=factory, aliases=tuple(aliases),
                description=description or first_doc_line(factory),
                params=dict(params or {}), tags=tags)
            self._entries[name] = entry
            for alias in entry.aliases:
                if alias in self._entries or alias in self._aliases:
                    raise ValueError(
                        f"{self.kind} alias {alias!r} already registered")
                self._aliases[alias] = name
            return factory
        return deco

    def get(self, name: str) -> RegistryEntry:
        """Entry for ``name`` (aliases resolve); :class:`SpecError` if unknown."""
        key = self._aliases.get(name, name)
        if key not in self._entries:
            options = self.names() + sorted(self._aliases)
            raise SpecError(
                f"unknown {self.kind} {name!r}{suggest(name, options)}; "
                f"available {self.kind}s: {self.names()}")
        return self._entries[key]

    def names(self) -> list[str]:
        """Sorted primary names (aliases excluded)."""
        return sorted(self._entries)

    def entries(self) -> list[RegistryEntry]:
        """All entries, sorted by primary name."""
        return [self._entries[n] for n in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self):
        return iter(self.names())


ENGINES = Registry("engine")
ENCODINGS = Registry("encoding")
OBJECTIVES = Registry("objective")


def register_engine(name: str, **kwargs) -> Callable:
    """Register a GA engine adapter under ``name``."""
    return ENGINES.register(name, **kwargs)


def register_encoding(name: str, **kwargs) -> Callable:
    """Register a chromosome encoding factory under ``name``."""
    return ENCODINGS.register(name, **kwargs)


def register_objective(name: str, **kwargs) -> Callable:
    """Register an objective factory under ``name``."""
    return OBJECTIVES.register(name, **kwargs)


def available_engines() -> list[str]:
    """Names of every runnable engine (all six parallel-model adapters)."""
    return ENGINES.names()


def available_encodings() -> list[str]:
    """Names of every registered chromosome encoding."""
    return ENCODINGS.names()


def available_objectives() -> list[str]:
    """Names of every registered Section-II optimality criterion."""
    return OBJECTIVES.names()


def engine_entry(name: str) -> RegistryEntry:
    """Engine entry by name or alias."""
    return ENGINES.get(name)


def encoding_entry(name: str) -> RegistryEntry:
    """Encoding entry by name or alias."""
    return ENCODINGS.get(name)


def objective_entry(name: str) -> RegistryEntry:
    """Objective entry by name or alias."""
    return OBJECTIVES.get(name)
