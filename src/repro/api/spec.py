"""The declarative, serializable solver specification.

A :class:`SolverSpec` captures one complete solver run along the survey's
independent axes -- instance, encoding, objective, GA hyper-parameters,
termination, parallel engine -- as plain data: every field is a string,
number, bool, or a dict/list of those, so a spec round-trips through JSON
(``to_dict()`` / ``from_dict()`` / ``to_json()`` / ``from_json()``)
without loss.  Engines, encodings and objectives are addressed *by name*
through the registries in :mod:`repro.api.registry`; resolution to live
objects happens in :func:`repro.api.facade.solve`.

Validation (:meth:`SolverSpec.validate`) produces actionable errors: an
unknown name reports the valid options plus close-match suggestions, an
unknown parameter reports the accepted parameter schema, an out-of-range
hyper-parameter surfaces the underlying ``GAConfig`` message with the
spec path prefixed.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from .registry import (SpecError, encoding_entry, engine_entry,
                       objective_entry, suggest)

__all__ = ["SolverSpec", "SpecError", "GA_KEYS", "TERMINATION_KEYS",
           "INSTANCE_PARAM_KEYS"]

#: GAConfig hyper-parameters a spec may set.  Operator *instances*
#: (selection/crossover/mutation objects) are deliberately not
#: spec-addressable: they resolve to the per-genome-kind defaults, which
#: keeps every spec JSON-serializable.
GA_KEYS = ("population_size", "crossover_rate", "mutation_rate", "n_elites",
           "immigration_rate", "generation_gap", "seeding")

def _termination_builders(instance=None) -> dict:
    """Criterion name -> constructor; the single termination vocabulary.

    Both :data:`TERMINATION_KEYS` (what ``validate`` accepts) and
    :func:`repro.api.facade.resolve_termination` (what ``solve`` builds)
    derive from this mapping, so the two can never drift apart.

    ``instance`` supplies the resolved instance object to criteria that
    need instance data: ``proven_gap`` takes the gap *fraction* as its
    spec value (spec values stay plain numbers) and resolves the lower
    bound from the instance -- a proven optimum from
    :data:`repro.instances.KNOWN_OPTIMA` when one exists, else the
    combinatorial bound.
    """
    from ..core.termination import (MaxEvaluations, MaxGenerations,
                                    ProvenGap, Stagnation, TargetObjective,
                                    TimeLimit)

    def _proven_gap(v):
        if instance is None:
            raise SpecError(
                "termination: proven_gap needs a resolved instance; "
                "build ProvenGap(lower_bound, gap) directly when calling "
                "engines outside repro.solve()")
        from ..instances.library import known_lower_bound
        try:
            bound = known_lower_bound(instance)
        except KeyError as exc:
            raise SpecError(f"termination: proven_gap: {exc}") from exc
        return ProvenGap(bound, gap=float(v))

    return {
        "max_generations": lambda v: MaxGenerations(int(v)),
        "max_evaluations": lambda v: MaxEvaluations(int(v)),
        "time_limit": lambda v: TimeLimit(float(v)),
        "target": lambda v: TargetObjective(float(v)),
        "stagnation": lambda v: Stagnation(int(v)),
        "proven_gap": _proven_gap,
    }


#: Termination criteria a spec may combine (disjunction: first to fire).
TERMINATION_KEYS = tuple(_termination_builders())

#: Instance post-processing knobs (due dates / weights for the tardiness
#: and weighted families, applied deterministically).
INSTANCE_PARAM_KEYS = ("due_tau", "weights")

_FIELD_NAMES: tuple[str, ...] = (
    "instance", "encoding", "encoding_params", "objective",
    "objective_params", "ga", "termination", "engine", "engine_params",
    "seed", "eval_cost", "instance_params", "substrate", "backend")


@dataclass(frozen=True)
class SolverSpec:
    """One declarative solver run; frozen, hashable-free plain data.

    Attributes
    ----------
    instance:
        registry name from :func:`repro.instances.available_instances`.
    encoding:
        encoding name (see :func:`repro.api.available_encodings`);
        ``None`` picks the documented default for the instance's problem
        class.
    encoding_params:
        keyword parameters for the encoding factory (e.g.
        ``{"mode": "active"}`` for the operation-based encoding).
    objective:
        objective name (see :func:`repro.api.available_objectives`).
    objective_params:
        keyword parameters for the objective factory (e.g. the
        ``{"parts": [[0.7, "makespan"], [0.3, "maximum_tardiness"]]}`` of
        a weighted combination).
    ga:
        ``GAConfig`` scalar hyper-parameters (subset of :data:`GA_KEYS`).
        ``population_size`` is the *total* population; multi-population
        engines split it (see
        :func:`repro.parallel.island.default_island_population`).
    termination:
        criteria from :data:`TERMINATION_KEYS`; several combine as a
        disjunction (stop when any fires).
    engine:
        engine name or alias (see :func:`repro.api.available_engines`).
    engine_params:
        engine-specific parameters (workers, islands, topology, migration
        interval/rate, grid rows/cols, neighborhood, ...).
    seed:
        root RNG seed; equal specs produce bit-identical runs.
    eval_cost:
        artificial per-evaluation CPU cost in seconds (the master-slave
        expensive-fitness regime); disables the vectorised batch path.
    instance_params:
        instance post-processing: ``due_tau`` attaches TWK due dates,
        ``weights`` (``true`` or ``[lo, hi]``) attaches job weights.
    substrate:
        generation substrate: ``"object"`` (default -- per-``Individual``
        operator calls, bit-identical to pre-substrate behaviour) or
        ``"array"`` (the population lives as a chromosome matrix -- a
        grid tensor for the cellular engines -- and every stage runs as
        a matrix kernel; see :mod:`repro.core.substrate`).  Supported by
        all six engines for single-array genome kinds.
    backend:
        array namespace the batch kernels run on (see
        :mod:`repro.core.backend`): ``"numpy"`` (default, bit-identical
        to the plain NumPy path), ``"instrumented"`` (NumPy wrapped with
        Array-API-subset enforcement and host<->device transfer counting
        -- the CI conformance backend), or the optional device backends
        ``"cupy"`` / ``"jax"`` (import-guarded; a missing package
        degrades to a clean :class:`SpecError` naming the dependency,
        mirroring the ``cpsat`` engine).  Device backends require
        ``substrate="array"`` -- the object substrate boxes per-Individual
        genomes on the host.
    """

    instance: str
    encoding: str | None = None
    encoding_params: dict[str, Any] = field(default_factory=dict)
    objective: str = "makespan"
    objective_params: dict[str, Any] = field(default_factory=dict)
    ga: dict[str, Any] = field(default_factory=dict)
    termination: dict[str, Any] = field(
        default_factory=lambda: {"max_generations": 100})
    engine: str = "simple"
    engine_params: dict[str, Any] = field(default_factory=dict)
    seed: int = 42
    eval_cost: float = 0.0
    instance_params: dict[str, Any] = field(default_factory=dict)
    substrate: str = "object"
    backend: str = "numpy"

    def __post_init__(self) -> None:
        # normalise: None -> {}, defensive copy so a frozen spec cannot be
        # mutated through a shared dict the caller still holds
        for name in ("encoding_params", "objective_params", "ga",
                     "termination", "engine_params", "instance_params"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, Mapping):
                raise SpecError(
                    f"{name}: must be a mapping of parameter names to "
                    f"values, got {type(value).__name__} {value!r}")
            object.__setattr__(self, name,
                               copy.deepcopy(dict(value or {})))

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data dict; ``SolverSpec.from_dict`` inverts it exactly."""
        return {
            "instance": self.instance,
            "encoding": self.encoding,
            "encoding_params": copy.deepcopy(self.encoding_params),
            "objective": self.objective,
            "objective_params": copy.deepcopy(self.objective_params),
            "ga": copy.deepcopy(self.ga),
            "termination": copy.deepcopy(self.termination),
            "engine": self.engine,
            "engine_params": copy.deepcopy(self.engine_params),
            "seed": self.seed,
            "eval_cost": self.eval_cost,
            "instance_params": copy.deepcopy(self.instance_params),
            "substrate": self.substrate,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverSpec":
        """Build a spec from a plain dict; unknown keys are an error."""
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got "
                            f"{type(data).__name__}")
        unknown = sorted(set(data) - set(_FIELD_NAMES))
        if unknown:
            hints = "".join(suggest(k, _FIELD_NAMES) for k in unknown)
            raise SpecError(f"unknown spec field(s) {unknown}{hints}; "
                            f"valid fields: {sorted(_FIELD_NAMES)}")
        if "instance" not in data:
            raise SpecError("spec is missing the required 'instance' field")
        return cls(**{k: copy.deepcopy(v) for k, v in data.items()})

    def to_json(self, **kwargs) -> str:
        """JSON text of :meth:`to_dict` (sorted keys by default)."""
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SolverSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "SolverSpec":
        """Copy with fields replaced (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> str:
        """Canonical content hash identifying this solve (idempotency key).

        The key is the SHA-256 of the *resolved* spec -- canonical engine
        name (aliases normalised), concrete encoding name (per-class
        default filled in), the engine's full parameter set (registry
        defaults merged under the spec's overrides) -- serialized as
        canonical JSON (sorted keys, compact separators).  Because solver
        runs are deterministic in their spec and ``seed``, two specs with
        equal keys produce bit-identical reports, so the key is safe to
        use for result caching: the solver service serves repeat traffic
        from cache, and :meth:`ScenarioSweep.specs` drops duplicate
        expansions (e.g. an alias and its canonical name on the same
        axis).

        Stable across dict ordering and JSON round-trips:
        ``SolverSpec.from_json(spec.to_json()).cache_key()
        == spec.cache_key()``, and a spec hashes equal to its resolved
        form.  A spec that cannot be resolved (unknown names) falls back
        to hashing its raw fields -- the key never raises, so failed
        submissions still deduplicate.
        """
        from .facade import resolve_spec
        try:
            resolved = resolve_spec(self)
        except (SpecError, KeyError):
            resolved = self
        payload = json.dumps(resolved.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- validation --------------------------------------------------------------
    def validate(self, instance=None) -> "SolverSpec":
        """Check every name and parameter; returns ``self`` when valid.

        Raises :class:`SpecError` with an actionable message naming the
        offending field, the offending value, and the valid options.
        ``instance`` optionally passes an already-constructed instance
        object so callers that resolved one (the facade) avoid building
        it again just to learn its problem class.
        """
        from ..instances import available_instances
        from .components import default_encoding_name, instance_class_name

        names = available_instances()
        if self.instance not in names:
            raise SpecError(
                f"instance: unknown instance {self.instance!r}"
                f"{suggest(self.instance, names)}; see "
                f"repro.instances.available_instances()")

        bad_inst = sorted(set(self.instance_params) - set(INSTANCE_PARAM_KEYS))
        if bad_inst:
            raise SpecError(
                f"instance_params: unknown key(s) {bad_inst}; "
                f"accepted: {sorted(INSTANCE_PARAM_KEYS)}")

        if instance is None:
            instance = self.instance  # class resolved from the name below
        if self.encoding is not None:
            entry = encoding_entry(self.encoding)
            entry.check_params(self.encoding_params, "encoding_params")
            accepted = entry.tags.get("instance_classes", ())
            cls_name = instance_class_name(instance)
            if accepted and cls_name not in accepted:
                raise SpecError(
                    f"encoding: {entry.name!r} decodes "
                    f"{sorted(accepted)} instances, but {self.instance!r} "
                    f"is a {cls_name}")
        else:
            # raises SpecError when no default encoding exists
            default_encoding_name(instance)

        obj_entry = objective_entry(self.objective)
        obj_entry.check_params(self.objective_params, "objective_params")

        bad_ga = sorted(set(self.ga) - set(GA_KEYS))
        if bad_ga:
            hints = "".join(suggest(k, GA_KEYS) for k in bad_ga)
            raise SpecError(
                f"ga: unknown hyper-parameter(s) {bad_ga}{hints}; "
                f"accepted: {sorted(GA_KEYS)} (operator choices are not "
                f"spec-addressable; they resolve to per-genome-kind "
                f"defaults)")
        from ..core.ga import GAConfig
        try:
            GAConfig(**self.ga)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"ga: {exc}") from exc

        if not self.termination:
            raise SpecError(
                f"termination: at least one criterion required; "
                f"accepted: {sorted(TERMINATION_KEYS)}")
        bad_term = sorted(set(self.termination) - set(TERMINATION_KEYS))
        if bad_term:
            hints = "".join(suggest(k, TERMINATION_KEYS) for k in bad_term)
            raise SpecError(
                f"termination: unknown criterion(s) {bad_term}{hints}; "
                f"accepted: {sorted(TERMINATION_KEYS)}")
        for key, value in self.termination.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SpecError(
                    f"termination: {key} must be a number, got {value!r}")

        eng_entry = engine_entry(self.engine)
        eng_entry.check_params(self.engine_params, "engine_params")
        check = eng_entry.tags.get("check_params")
        if check is not None:
            check(dict(eng_entry.params, **self.engine_params))

        from ..core.substrate import SUBSTRATES
        if self.substrate not in SUBSTRATES:
            raise SpecError(
                f"substrate: unknown substrate {self.substrate!r}"
                f"{suggest(self.substrate, SUBSTRATES)}; "
                f"available: {sorted(SUBSTRATES)}")
        if self.substrate == "array" \
                and not eng_entry.tags.get("array_substrate"):
            from .registry import ENGINES
            supported = [e.name for e in ENGINES.entries()
                         if e.tags.get("array_substrate")]
            raise SpecError(
                f"substrate: engine {eng_entry.name!r} runs on the object "
                f"substrate only; substrate='array' is supported by "
                f"{supported}")

        from ..core.backend import BACKENDS
        if self.backend not in BACKENDS:
            raise SpecError(
                f"backend: unknown backend {self.backend!r}"
                f"{suggest(self.backend, BACKENDS)}; "
                f"known backends: {sorted(BACKENDS)} (see "
                f"repro.available_backends() for the installed subset)")
        if self.backend in ("cupy", "jax") and self.substrate != "array":
            raise SpecError(
                f"backend: device backend {self.backend!r} needs "
                f"substrate='array' (the object substrate boxes "
                f"per-Individual genomes on the host); got "
                f"substrate={self.substrate!r}")

        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError(f"seed: must be an int, got {self.seed!r}")
        if not isinstance(self.eval_cost, (int, float)) or self.eval_cost < 0:
            raise SpecError(
                f"eval_cost: must be a non-negative number, got "
                f"{self.eval_cost!r}")
        return self
