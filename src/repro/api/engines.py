"""Engine adapters: every parallel model of the survey, by name.

Registers all six engines -- the serial Table-II GA, the master-slave
model (Table III), the island model (Table V), the fine-grained cellular
model (Table IV), and the two hybrids (island-of-cellular, two-level
island) -- behind one uniform adapter signature::

    factory(problem, config, termination, seed, **engine_params) -> result

where ``result`` is the engine's native ``GAResult`` /
``IslandGAResult``.  The facade normalises these into a
:class:`~repro.api.facade.SolveReport`.

Population semantics: ``spec.ga.population_size`` is always the *total*
population budget.  Multi-population engines split it with
:func:`repro.parallel.island.default_island_population` unless
``engine_params.island_population`` pins the per-island size explicitly;
the cellular engines derive a near-square grid from it unless
``rows``/``cols`` are given (the same ``max(2, floor(sqrt(pop)))``
heuristic the old CLI used).
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..core.ga import GAConfig, SimpleGA
from ..core.termination import Termination
from ..encodings.base import Problem
from ..parallel.fine_grained import NEIGHBORHOODS, CellularGA
from ..parallel.hybrid import IslandOfCellularGA, TwoLevelIslandGA
from ..parallel.island import IslandGA, default_island_population
from ..parallel.master_slave import MasterSlaveGA
from ..parallel.migration import MigrationPolicy
from ..parallel.topology import topology_by_name
from .registry import SpecError, register_engine

__all__ = ["grid_shape_for"]

_TOPOLOGIES = ("ring", "bidirectional_ring", "mesh", "torus", "hypercube",
               "full", "fully_connected", "star", "random")


def grid_shape_for(population_size: int,
                   rows: int | None, cols: int | None) -> tuple[int, int]:
    """Cellular grid dimensions from a total population budget.

    Explicit ``rows``/``cols`` win (a missing one mirrors the other);
    otherwise the grid is the near-square ``side x side`` with
    ``side = max(2, floor(sqrt(population_size)))``.
    """
    if rows is not None or cols is not None:
        r = int(rows if rows is not None else cols)
        c = int(cols if cols is not None else rows)
        if r < 1 or c < 1:
            raise SpecError(f"engine_params: grid dimensions must be "
                            f"positive, got rows={r} cols={c}")
        return r, c
    side = max(2, int(math.isqrt(int(population_size))))
    return side, side


def _check_topology(params: dict) -> None:
    if params.get("topology") not in _TOPOLOGIES:
        raise SpecError(
            f"engine_params: unknown topology {params.get('topology')!r}; "
            f"options: {sorted(set(_TOPOLOGIES))}")


def _check_neighborhood(params: dict) -> None:
    if params.get("neighborhood") not in NEIGHBORHOODS:
        raise SpecError(
            f"engine_params: unknown neighborhood "
            f"{params.get('neighborhood')!r}; options: "
            f"{sorted(NEIGHBORHOODS)}")


def _island_config(config: GAConfig, n_islands: int,
                   island_population: int | None) -> GAConfig:
    """Per-island GAConfig from the total population budget."""
    per_island = (int(island_population) if island_population is not None
                  else default_island_population(config.population_size,
                                                 n_islands))
    n_elites = min(config.n_elites, per_island)
    return replace(config, population_size=per_island, n_elites=n_elites)


@register_engine(
    "simple", aliases=("serial",),
    description="Serial GA of Table II (the panmictic baseline)",
    params={}, array_substrate=True, observers=True)
def _run_simple(problem: Problem, config: GAConfig,
                termination: Termination, seed: int, *,
                observers=()):
    return SimpleGA(problem, config, termination, seed=seed,
                    observers=observers).run()


@register_engine(
    "master-slave", aliases=("master_slave",),
    description="Master-slave parallel evaluation, Table III "
                "(bit-identical to the serial GA)",
    params={"workers": 4, "backend": "process", "batch_size": 16,
            "chunks_per_worker": 1},
    array_substrate=True, observers=True)
def _run_master_slave(problem: Problem, config: GAConfig,
                      termination: Termination, seed: int, *,
                      workers: int = 4, backend: str = "process",
                      batch_size: int = 16, chunks_per_worker: int = 1,
                      observers=()):
    return MasterSlaveGA(problem, config, termination, seed=seed,
                         n_workers=int(workers), backend=backend,
                         batch_size=int(batch_size),
                         chunks_per_worker=int(chunks_per_worker),
                         observers=observers).run()


@register_engine(
    "island", aliases=("coarse-grained", "coarse_grained"),
    description="Island model with migration, Table V "
                "(population split across islands)",
    params={"islands": 4, "island_population": None, "topology": "ring",
            "migration_interval": 5, "migration_rate": 1,
            "emigrant": "best", "replacement": "worst",
            "shared_start": False, "cooperation": True,
            "merge_on_stagnation": None, "parallel": "serial",
            "workers": None},
    check_params=_check_topology, array_substrate=True)
def _run_island(problem: Problem, config: GAConfig,
                termination: Termination, seed: int, *,
                islands: int = 4, island_population: int | None = None,
                topology: str = "ring", migration_interval: int = 5,
                migration_rate: int = 1, emigrant: str = "best",
                replacement: str = "worst", shared_start: bool = False,
                cooperation: bool = True,
                merge_on_stagnation: int | None = None,
                parallel: str = "serial", workers: int | None = None):
    n_islands = int(islands)
    return IslandGA(
        problem, n_islands=n_islands,
        config=_island_config(config, n_islands, island_population),
        topology=topology_by_name(topology, n_islands),
        migration=MigrationPolicy(interval=int(migration_interval),
                                  rate=int(migration_rate),
                                  emigrant=emigrant,
                                  replacement=replacement),
        termination=termination, seed=seed, shared_start=shared_start,
        cooperation=cooperation, merge_on_stagnation=merge_on_stagnation,
        parallel=parallel, n_workers=workers).run()


@register_engine(
    "cellular", aliases=("fine-grained", "fine_grained"),
    description="Fine-grained cellular GA on a toroidal grid, Table IV",
    params={"rows": None, "cols": None, "neighborhood": "L5",
            "replacement": "if_better", "update": "synchronous"},
    check_params=_check_neighborhood, array_substrate=True, observers=True)
def _run_cellular(problem: Problem, config: GAConfig,
                  termination: Termination, seed: int, *,
                  rows: int | None = None, cols: int | None = None,
                  neighborhood: str = "L5", replacement: str = "if_better",
                  update: str = "synchronous", observers=()):
    r, c = grid_shape_for(config.population_size, rows, cols)
    return CellularGA(problem, rows=r, cols=c, neighborhood=neighborhood,
                      config=config, termination=termination, seed=seed,
                      replacement=replacement, update=update,
                      observers=observers).run()


@register_engine(
    "hybrid", aliases=("island-of-cellular", "island_of_cellular"),
    description="Hybrid: ring of islands, each a cellular torus "
                "(Lin et al. [21])",
    params={"islands": 4, "rows": None, "cols": None, "neighborhood": "L5",
            "migration_interval": 10, "migration_rate": 1},
    check_params=_check_neighborhood, array_substrate=True)
def _run_hybrid(problem: Problem, config: GAConfig,
                termination: Termination, seed: int, *,
                islands: int = 4, rows: int | None = None,
                cols: int | None = None, neighborhood: str = "L5",
                migration_interval: int = 10, migration_rate: int = 1):
    n_islands = int(islands)
    per_island = default_island_population(config.population_size, n_islands)
    r, c = grid_shape_for(per_island, rows, cols)
    return IslandOfCellularGA(
        problem, n_islands=n_islands, rows=r, cols=c,
        neighborhood=neighborhood, config=config,
        migration=MigrationPolicy(interval=int(migration_interval),
                                  rate=int(migration_rate)),
        termination=termination, seed=seed).run()


@register_engine(
    "exact", aliases=("bnb", "branch-and-bound"),
    description="Exact branch-and-bound oracle: proves optimal makespans "
                "for small instances (pure Python, always available)",
    params={"node_limit": 2_000_000, "time_limit": None},
    array_substrate=True)
def _run_exact(problem: Problem, config: GAConfig,
               termination: Termination, seed: int, *,
               node_limit: int | None = 2_000_000,
               time_limit: float | None = None):
    from ..exact.engine import run_exact_engine
    return run_exact_engine(problem, config, termination, seed,
                            backend="bnb",
                            node_limit=(None if node_limit is None
                                        else int(node_limit)),
                            time_limit=time_limit)


@register_engine(
    "cpsat", aliases=("cp-sat", "ortools"),
    description="OR-Tools CP-SAT exact backend (optional dependency; "
                "adds flexible job shops)",
    params={"time_limit": 60.0}, array_substrate=True)
def _run_cpsat(problem: Problem, config: GAConfig,
               termination: Termination, seed: int, *,
               time_limit: float | None = 60.0):
    from ..exact.engine import run_exact_engine
    return run_exact_engine(problem, config, termination, seed,
                            backend="cpsat", time_limit=time_limit)


def _register_heuristic(name: str, aliases: tuple[str, ...],
                        description: str) -> None:
    """Register one constructive rule as a deterministic engine.

    Heuristic engines accept any substrate (they never iterate a
    population, so the flag is vacuous but valid) and carry the
    ``heuristic=True`` tag the solver service's fast-answer tier keys
    on: deterministic millisecond solves are answered inline instead of
    paying a worker-pool round trip.
    """
    @register_engine(name, aliases=aliases, description=description,
                     params={}, array_substrate=True, heuristic=True)
    def _run(problem: Problem, config: GAConfig,
             termination: Termination, seed: int, *, _rule=name):
        from ..heuristics import run_heuristic_engine
        return run_heuristic_engine(problem, config, termination, seed,
                                    rule=_rule)


for _name, _aliases, _desc in (
    ("neh", ("nawaz-enscore-ham",),
     "NEH insertion heuristic: decreasing-work seed, best-position "
     "insertion (the classical flow shop baseline)"),
    ("johnson", (),
     "Johnson's rule: optimal for 2-machine flow shops; modified "
     "virtual-machine variant for 3+ stages"),
    ("spt", ("shortest-processing-time",),
     "Shortest total processing time dispatch order"),
    ("edd", ("earliest-due-date",),
     "Earliest due date dispatch order (identity order without due "
     "dates)"),
):
    _register_heuristic(_name, _aliases, _desc)


@register_engine(
    "two-level", aliases=("two_level", "two-level-island"),
    description="Two-level island hybrid: frequent ring + rare broadcast "
                "migration (Harmanani et al. [33])",
    params={"islands": 5, "island_population": None,
            "migration_interval": 5, "migration_rate": 1,
            "broadcast_interval": 50},
    array_substrate=True)
def _run_two_level(problem: Problem, config: GAConfig,
                   termination: Termination, seed: int, *,
                   islands: int = 5, island_population: int | None = None,
                   migration_interval: int = 5, migration_rate: int = 1,
                   broadcast_interval: int = 50):
    n_islands = int(islands)
    return TwoLevelIslandGA(
        problem, n_islands=n_islands,
        config=_island_config(config, n_islands, island_population),
        migration=MigrationPolicy(interval=int(migration_interval),
                                  rate=int(migration_rate)),
        broadcast_interval=int(broadcast_interval),
        termination=termination, seed=seed).run()
