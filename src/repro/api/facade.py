"""``repro.solve(spec) -> SolveReport``: the one entry point for solving.

Replaces the per-engine constructor zoo (and the CLI's old if/elif
dispatch chain) with a single declarative call::

    from repro import SolverSpec, solve

    report = solve(SolverSpec(instance="ft06", engine="island",
                              ga={"population_size": 60},
                              termination={"max_generations": 100},
                              seed=42))
    print(report.best_objective, report.evaluations)
    print(report.gantt())

``solve`` accepts a :class:`~repro.api.spec.SolverSpec` or a plain dict
(convenient for JSON job submission), validates it, resolves names
through the registries, runs the named engine, and normalises the
engine's native result into a :class:`SolveReport`.  Given equal specs,
``solve`` is bit-identical to constructing the engine directly -- the
facade adds dispatch, never behaviour (a property the test suite and
``benchmarks/bench_solve_overhead.py`` pin).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.backend import BackendUnavailable, get_backend, use_backend
from ..core.termination import AnyOf, Termination
from ..core.ga import GAConfig
from ..encodings.base import Problem
from ..scheduling.schedule import Schedule
from .components import (default_encoding_name, resolve_instance,
                         resolve_problem)
from .registry import SpecError, engine_entry
from .spec import SolverSpec, _termination_builders

__all__ = ["SolveReport", "solve", "resolve_termination", "resolve_spec"]


def resolve_termination(termination: Mapping[str, Any],
                        instance=None) -> Termination:
    """Build the (possibly compound) termination criterion of a spec.

    Multiple criteria combine as a disjunction: the run stops when any
    fires, mirroring ``TargetObjective(...) | MaxGenerations(...)``.
    The vocabulary is :func:`repro.api.spec._termination_builders` --
    the same mapping ``SolverSpec.validate`` checks against.
    ``instance`` feeds instance-derived criteria (``proven_gap``
    resolves its lower bound from it).
    """
    builders = _termination_builders(instance)
    criteria = []
    for key, value in termination.items():
        if key not in builders:
            raise SpecError(f"termination: unknown criterion {key!r}; "
                            f"accepted: {sorted(builders)}")
        criteria.append(builders[key](value))
    if not criteria:
        raise SpecError("termination: at least one criterion required")
    return criteria[0] if len(criteria) == 1 else AnyOf(*criteria)


def resolve_spec(spec: SolverSpec, instance=None) -> SolverSpec:
    """Fully-explicit copy of ``spec``: canonical names, defaults merged.

    The returned spec has the concrete encoding name (defaults resolved
    per problem class), the canonical engine name (aliases normalised)
    and the engine's full parameter set (registry defaults merged under
    the spec's overrides).  It round-trips like any other spec and is
    what a :class:`SolveReport` carries, so a report is always exactly
    reproducible from its own ``spec``.  ``instance`` optionally reuses
    an already-resolved instance object.
    """
    entry = engine_entry(spec.engine)
    return spec.replace(
        encoding=spec.encoding or default_encoding_name(
            instance if instance is not None else spec.instance),
        engine=entry.name,
        engine_params=dict(entry.params, **spec.engine_params))


@dataclass
class SolveReport:
    """Normalised outcome of :func:`solve`.

    ``to_dict()`` is JSON-safe (genomes become nested lists; the live
    problem/history handles are dropped), which is what the sweep service
    streams between processes.
    """

    spec: SolverSpec
    engine: str
    best_objective: float
    objective_vector: tuple[float, ...]
    best_genome: Any
    generations: int
    evaluations: int
    elapsed: float
    timings: dict[str, float]
    termination_reason: str
    extra: dict[str, Any] = field(default_factory=dict)
    problem: Problem | None = field(default=None, repr=False, compare=False)
    history: Any = field(default=None, repr=False, compare=False)

    def schedule(self) -> Schedule:
        """Decode the best genome into a full schedule (audit/Gantt)."""
        if self.problem is None:
            raise ValueError("report was deserialised without a live "
                             "problem; rebuild via solve(report.spec)")
        return self.problem.decode(self.best_genome)

    def gantt(self) -> str:
        """Gantt chart of the best schedule."""
        return self.schedule().gantt()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict (drops the live problem/history handles)."""
        return {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "best_objective": self.best_objective,
            "objective_vector": list(self.objective_vector),
            "best_genome": _genome_to_jsonable(self.best_genome),
            "generations": self.generations,
            "evaluations": self.evaluations,
            "elapsed": self.elapsed,
            "timings": dict(self.timings),
            "termination_reason": self.termination_reason,
            "extra": _jsonable(self.extra),
        }


def _genome_to_jsonable(genome: Any) -> Any:
    if isinstance(genome, np.ndarray):
        return genome.tolist()
    if isinstance(genome, tuple):
        return [_genome_to_jsonable(part) for part in genome]
    return genome


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion of engine ``extra`` payloads."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def solve(spec: SolverSpec | Mapping[str, Any],
          validate: bool = True, observers: Sequence[Any] = ()) -> SolveReport:
    """Run the solver a spec describes; the library's front door.

    Parameters
    ----------
    spec:
        a :class:`SolverSpec` or a plain dict (``SolverSpec.from_dict``
        applies, so JSON payloads work directly).
    validate:
        run :meth:`SolverSpec.validate` first (actionable errors before
        any work starts).  Disable only on specs you already validated.
    observers:
        extra :class:`~repro.core.observers.Observer` instances notified
        once per generation, forwarded to engines whose registry entry is
        tagged ``observers=True`` (simple, master-slave, cellular); other
        engines run unchanged and simply don't stream.  This is the
        progress seam the solver service's SSE endpoint rides -- observers
        are live objects, so they are call-site-only, never part of the
        (JSON-serializable) spec.
    """
    t_start = time.perf_counter()
    if not isinstance(spec, SolverSpec):
        spec = SolverSpec.from_dict(spec)
    # resolve the instance exactly once and thread it through validation,
    # spec resolution and problem construction (generated instances are
    # Python-level LCG loops -- rebuilding them per step is pure waste)
    instance = resolve_instance(spec)
    if validate:
        spec.validate(instance=instance)
    resolved = resolve_spec(spec, instance=instance)

    problem = resolve_problem(resolved, instance=instance)
    try:
        config = GAConfig(**resolved.ga, substrate=resolved.substrate)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"ga: {exc}") from exc
    if resolved.substrate == "array":
        # fail before any work with the spec path prefixed (the engine
        # would raise the same check from deeper inside otherwise)
        from ..core.substrate import check_array_support
        try:
            check_array_support(problem, config.resolved(problem))
        except ValueError as exc:
            raise SpecError(f"substrate: {exc}") from exc
    termination = resolve_termination(resolved.termination, instance)
    entry = engine_entry(resolved.engine)
    try:
        backend = get_backend(resolved.backend)
    except BackendUnavailable as exc:
        # mirror the cpsat engine: a missing optional dependency degrades
        # to a clean SpecError naming the package, before any work starts
        raise SpecError(f"backend: {exc}") from exc
    except ValueError as exc:
        raise SpecError(f"backend: {exc}") from exc
    t_resolved = time.perf_counter()

    engine_kwargs = dict(resolved.engine_params)
    if observers and entry.tags.get("observers"):
        engine_kwargs["observers"] = tuple(observers)
    with use_backend(backend):
        result = entry.factory(problem, config, termination, resolved.seed,
                               **engine_kwargs)
    t_done = time.perf_counter()

    best = result.best
    history = getattr(result, "history", None)
    if history is None:
        history = getattr(result, "global_history", None)
    extra = dict(getattr(result, "extra", {}) or {})
    n_islands = getattr(result, "n_islands_final", None)
    if n_islands is not None:
        extra.setdefault("n_islands_final", n_islands)

    return SolveReport(
        spec=resolved,
        engine=entry.name,
        best_objective=float(best.objective),
        objective_vector=tuple(float(v) for v
                               in problem.objective_vector(best.genome)),
        best_genome=best.genome,
        generations=int(result.generations),
        evaluations=int(result.evaluations),
        elapsed=float(result.elapsed),
        timings={"resolve": t_resolved - t_start,
                 "run": t_done - t_resolved,
                 "total": t_done - t_start},
        termination_reason=str(result.termination_reason),
        extra=extra,
        problem=problem,
        history=history,
    )
