"""Declarative solver API: specs, registries, facade, sweeps.

The one import site for config-driven solving::

    from repro.api import SolverSpec, solve, available_engines

    report = solve(SolverSpec(instance="ft06", engine="cellular",
                              termination={"max_generations": 50}))

Modules:

* :mod:`repro.api.registry` -- string-keyed registries for engines,
  encodings and objectives (``@register_*`` / ``available_*()``),
* :mod:`repro.api.spec` -- the frozen, JSON-round-trippable
  :class:`SolverSpec` with actionable validation,
* :mod:`repro.api.components` -- built-in encoding/objective
  registrations and ``spec -> Problem`` resolution,
* :mod:`repro.api.engines` -- adapters for all six engines (simple,
  master-slave, island, cellular/fine-grained, hybrid, two-level),
* :mod:`repro.api.facade` -- ``solve(spec) -> SolveReport``,
* :mod:`repro.api.sweep` -- :class:`ScenarioSweep` expansion and the
  concurrent :class:`SolverService`.
"""

from ..core.backend import available_backends
from ..core.substrate import available_substrates
from .registry import (SpecError, available_encodings, available_engines,
                       available_objectives, encoding_entry, engine_entry,
                       first_doc_line, objective_entry, register_encoding,
                       register_engine, register_objective)
from .spec import SolverSpec
from . import components as _components  # noqa: F401 - populates registries
from . import engines as _engines        # noqa: F401 - populates registries
from .components import resolve_problem
from .facade import SolveReport, resolve_spec, resolve_termination, solve
from .sweep import ScenarioSweep, SolverService, SweepResult

__all__ = [
    "SolverSpec", "SolveReport", "solve", "SpecError",
    "resolve_problem", "resolve_spec", "resolve_termination",
    "register_engine", "register_encoding", "register_objective",
    "available_engines", "available_encodings", "available_objectives",
    "available_substrates", "available_backends",
    "engine_entry", "encoding_entry", "objective_entry", "first_doc_line",
    "ScenarioSweep", "SolverService", "SweepResult",
]
