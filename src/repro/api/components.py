"""Built-in encoding and objective registrations + problem resolution.

Populates the :mod:`repro.api.registry` registries with every chromosome
representation of Section III.A and every optimality criterion of
Section II, then provides the resolution steps
``spec -> instance -> encoding -> objective -> Problem`` that
:func:`repro.api.facade.solve` composes.

Each encoding entry is tagged with the instance classes it can decode
(``instance_classes``), whether it is the documented default for a class
(``default_for``), and a representative registry instance
(``sample_instance``) used by conformance tests to exercise every
combination the registries expose.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any

from ..encodings import (DispatchRuleEncoding, FlexibleJobShopEncoding,
                         FlowShopPermutationEncoding, HybridFlowShopEncoding,
                         LotStreamingEncoding, OpenShopPairSequenceEncoding,
                         OpenShopPermutationEncoding, OperationBasedEncoding,
                         Problem, RandomKeysFlowShopEncoding,
                         RandomKeysJobShopEncoding)
from ..extensions.energy import EnergyAwareObjective, EnergyMakespanVector
from ..extensions.fuzzy import FuzzyFlowShopEncoding, FuzzyFlowShopInstance
from ..extensions.stochastic import (StochasticJobShopEncoding,
                                     StochasticJobShopInstance)
from ..instances import get_instance, with_due_dates_twk, with_weights
from ..scheduling.objectives import (Makespan, MaximumTardiness,
                                     TotalFlowTime, TotalWeightedCompletion,
                                     TotalWeightedTardiness,
                                     TotalWeightedUnitPenalty,
                                     WeightedCombination)
from .registry import (ENCODINGS, SpecError, register_encoding,
                       register_objective)

__all__ = ["resolve_instance", "resolve_encoding", "resolve_objective",
           "resolve_problem", "default_encoding_name",
           "instance_class_name", "enable_instance_cache",
           "disable_instance_cache", "instance_cache_stats"]


# -- per-process instance cache --------------------------------------------------
#
# Long-lived solver workers (see :mod:`repro.service.pool`) resolve the
# same named instances over and over.  Instance construction itself is
# cheap-ish (Taillard LCG loops), but the *decode tables* lazily memoised
# on the instance object (e.g. the flattened FJSP alternative tables the
# batch decoder attaches as ``_fjsp_batch_tables``) are not -- rebuilding
# them per job throws away exactly the work a resident worker should
# amortise.  The cache is opt-in and bounded: plain library use keeps the
# documented fresh-instance contract.

_INSTANCE_CACHE: OrderedDict | None = None
_INSTANCE_CACHE_MAX = 0
_INSTANCE_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def enable_instance_cache(maxsize: int = 32) -> None:
    """Memoise resolved instances in a bounded per-process LRU.

    Keyed on ``(spec.instance, spec.instance_params)``; a hit returns the
    *same* instance object, so decode tables memoised on it survive
    across jobs.  ``maxsize <= 0`` disables the cache.  Intended for
    long-lived workers (the service pool enables it at worker init);
    counters reset on every call.
    """
    global _INSTANCE_CACHE, _INSTANCE_CACHE_MAX
    _INSTANCE_CACHE_STATS.update(hits=0, misses=0, evictions=0)
    if maxsize <= 0:
        _INSTANCE_CACHE = None
        _INSTANCE_CACHE_MAX = 0
    else:
        _INSTANCE_CACHE = OrderedDict()
        _INSTANCE_CACHE_MAX = int(maxsize)


def disable_instance_cache() -> None:
    """Drop the instance cache and return to fresh-instance resolution."""
    enable_instance_cache(0)


def instance_cache_stats() -> dict[str, int | bool]:
    """Cache observability: enabled flag, size/capacity, hit counters."""
    return {"enabled": _INSTANCE_CACHE is not None,
            "size": len(_INSTANCE_CACHE or ()),
            "maxsize": _INSTANCE_CACHE_MAX,
            **_INSTANCE_CACHE_STATS}


def _instance_cache_key(spec) -> tuple[str, str]:
    return (spec.instance,
            json.dumps(spec.instance_params, sort_keys=True, default=repr))


# -- encodings (Section III.A) ---------------------------------------------------

@register_encoding(
    "operation-based", aliases=("operation_based",),
    description="Job shop permutation-with-repetition (direct encoding)",
    params={"mode": "semi_active"},
    instance_classes=("JobShopInstance",),
    default_for=("JobShopInstance",),
    sample_instance="ft06")
def _operation_based(instance, mode: str = "semi_active"):
    return OperationBasedEncoding(instance, mode=mode)


@register_encoding(
    "permutation", aliases=("flowshop-permutation",),
    description="Flow shop job permutation (the standard n-string)",
    params={},
    instance_classes=("FlowShopInstance",),
    default_for=("FlowShopInstance",),
    sample_instance="ta-fs-20x5-shaped")
def _flowshop_permutation(instance):
    return FlowShopPermutationEncoding(instance)


@register_encoding(
    "random-keys-flowshop", aliases=("random_keys_flowshop",),
    description="Flow shop random keys (real vector, argsort decode)",
    params={},
    instance_classes=("FlowShopInstance",),
    sample_instance="ta-fs-20x5-shaped")
def _random_keys_flowshop(instance):
    return RandomKeysFlowShopEncoding(instance)


@register_encoding(
    "random-keys-jobshop", aliases=("random_keys_jobshop",),
    description="Job shop random keys (indirect real-vector encoding)",
    params={},
    instance_classes=("JobShopInstance",),
    sample_instance="ft06")
def _random_keys_jobshop(instance):
    return RandomKeysJobShopEncoding(instance)


@register_encoding(
    "dispatch-rules", aliases=("dispatch_rules",),
    description="Job shop dispatching-rule alphabet (indirect encoding)",
    params={"rules": ("SPT", "LPT", "MWR", "LWR", "FIFO")},
    instance_classes=("JobShopInstance",),
    sample_instance="ft06")
def _dispatch_rules(instance, rules=("SPT", "LPT", "MWR", "LWR", "FIFO")):
    return DispatchRuleEncoding(instance, rules=tuple(rules))


@register_encoding(
    "openshop-permutation", aliases=("openshop_permutation",),
    description="Open shop job repetitions + greedy LPT decoder",
    params={"decoder": "lpt_task"},
    instance_classes=("OpenShopInstance",),
    default_for=("OpenShopInstance",),
    sample_instance="ta-os-5x5-shaped")
def _openshop_permutation(instance, decoder: str = "lpt_task"):
    return OpenShopPermutationEncoding(instance, decoder=decoder)


@register_encoding(
    "openshop-pairs", aliases=("openshop_pairs",),
    description="Open shop operation-id permutation (vectorised decode)",
    params={},
    instance_classes=("OpenShopInstance",),
    sample_instance="ta-os-5x5-shaped")
def _openshop_pairs(instance):
    return OpenShopPairSequenceEncoding(instance)


@register_encoding(
    "flexible-job-shop", aliases=("flexible_job_shop", "fjsp"),
    description="FJSP two-part (machine assignment, operation sequence)",
    params={},
    instance_classes=("FlexibleJobShopInstance",),
    default_for=("FlexibleJobShopInstance",),
    sample_instance="fjsp-8x5-shaped")
def _flexible_job_shop(instance):
    return FlexibleJobShopEncoding(instance)


@register_encoding(
    "hybrid-flow-shop", aliases=("hybrid_flow_shop", "hfs"),
    description="Hybrid flow shop (assignment matrix, job permutation)",
    params={"use_assignment": True},
    instance_classes=("FlexibleFlowShopInstance",),
    default_for=("FlexibleFlowShopInstance",),
    sample_instance="hfs-10x3x2-shaped")
def _hybrid_flow_shop(instance, use_assignment: bool = True):
    return HybridFlowShopEncoding(instance, use_assignment=use_assignment)


@register_encoding(
    "lot-streaming", aliases=("lot_streaming",),
    description="HFS lot streaming (sublot-size keys, job permutation)",
    params={"sublots": 2},
    instance_classes=("FlexibleFlowShopInstance",),
    sample_instance="hfs-10x3x2-shaped")
def _lot_streaming(instance, sublots: int = 2):
    return LotStreamingEncoding(instance, sublots=sublots)


@register_encoding(
    "fuzzy-flowshop", aliases=("fuzzy_flowshop", "fuzzy"),
    description="Fuzzy flow shop random keys scored by agreement index",
    params={"spread": 0.2, "due_tau": 1.5, "fuzzy_seed": 1},
    instance_classes=("FlowShopInstance",),
    sample_instance="ta-fs-20x5-shaped")
def _fuzzy_flowshop(instance, spread: float = 0.2, due_tau: float = 1.5,
                    fuzzy_seed: int = 1):
    fuzzy = FuzzyFlowShopInstance.from_crisp(
        instance, spread=float(spread), due_tau=float(due_tau),
        seed=int(fuzzy_seed))
    return FuzzyFlowShopEncoding(fuzzy)


@register_encoding(
    "stochastic-jobshop", aliases=("stochastic_jobshop", "stochastic"),
    description="Stochastic job shop, CRN expected makespan over K scenarios",
    params={"spread": 0.25, "distribution": "uniform", "n_scenarios": 16,
            "scenario_seed": 0},
    instance_classes=("JobShopInstance",),
    sample_instance="ft06")
def _stochastic_jobshop(instance, spread: float = 0.25,
                        distribution: str = "uniform", n_scenarios: int = 16,
                        scenario_seed: int = 0):
    stochastic = StochasticJobShopInstance(
        instance, spread=float(spread), distribution=str(distribution),
        n_scenarios=int(n_scenarios), seed=int(scenario_seed))
    return StochasticJobShopEncoding(stochastic)


# -- objectives (Section II) -----------------------------------------------------

@register_objective("makespan", aliases=("cmax",),
                    description="C_max — the dominant surveyed criterion",
                    params={})
def _makespan():
    return Makespan()


@register_objective("total-weighted-completion",
                    aliases=("total_weighted_completion", "sum-wc"),
                    description="Σ w_j C_j (Bozejko & Wodecki [31])",
                    params={})
def _total_weighted_completion():
    return TotalWeightedCompletion()


@register_objective("total-weighted-tardiness",
                    aliases=("total_weighted_tardiness", "sum-wt"),
                    description="Σ w_j T_j", params={})
def _total_weighted_tardiness():
    return TotalWeightedTardiness()


@register_objective("total-weighted-unit-penalty",
                    aliases=("total_weighted_unit_penalty", "sum-wu"),
                    description="Σ w_j U_j (weighted late-job count)",
                    params={})
def _total_weighted_unit_penalty():
    return TotalWeightedUnitPenalty()


@register_objective("maximum-tardiness", aliases=("maximum_tardiness", "tmax"),
                    description="T_max (Rashidi et al. [38])", params={})
def _maximum_tardiness():
    return MaximumTardiness()


@register_objective("total-flow-time", aliases=("total_flow_time",),
                    description="Σ (C_j − R_j), unweighted flow time",
                    params={})
def _total_flow_time():
    return TotalFlowTime()


@register_objective(
    "energy-capped-makespan", aliases=("energy_capped_makespan",),
    description="C_max + penalty x peak-power overshoot (energy-aware)",
    params={"peak_cap": None, "penalty": 10.0, "processing_watts": 10.0,
            "idle_watts": 2.0})
def _energy_capped_makespan(peak_cap=None, penalty: float = 10.0,
                            processing_watts: float = 10.0,
                            idle_watts: float = 2.0):
    import numpy as np
    cap = np.inf if peak_cap is None else float(peak_cap)
    return EnergyAwareObjective(peak_cap=cap, penalty=float(penalty),
                                processing_watts=float(processing_watts),
                                idle_watts=float(idle_watts))


@register_objective(
    "energy-makespan", aliases=("energy_makespan",),
    description="w_e x energy + w_c x C_max weighted scalarisation",
    params={"weights": (0.5, 0.5), "processing_watts": 10.0,
            "idle_watts": 2.0})
def _energy_makespan(weights=(0.5, 0.5), processing_watts: float = 10.0,
                     idle_watts: float = 2.0):
    try:
        w_energy, w_makespan = (float(w) for w in weights)
    except (TypeError, ValueError) as exc:
        raise SpecError("objective_params: 'weights' takes an "
                        "[energy, makespan] pair") from exc
    return EnergyMakespanVector(weights=(w_energy, w_makespan),
                                processing_watts=float(processing_watts),
                                idle_watts=float(idle_watts))


@register_objective(
    "weighted", aliases=("weighted-combination", "weighted_combination"),
    description="Linear combination of named criteria ('any combination')",
    params={"parts": ()})
def _weighted(parts=()):
    if not parts:
        raise SpecError(
            "objective_params: 'weighted' needs parts, e.g. "
            "{'parts': [[0.7, 'makespan'], [0.3, 'maximum-tardiness']]}")
    resolved = []
    for item in parts:
        try:
            weight, name = item
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"objective_params: each part must be a [weight, name] "
                f"pair, got {item!r}") from exc
        if name in ("weighted", "weighted-combination",
                    "weighted_combination"):
            raise SpecError("objective_params: 'weighted' parts cannot nest "
                            "another weighted combination")
        resolved.append((float(weight), _make_objective(str(name))))
    return WeightedCombination(resolved)


def _make_objective(name: str, **params: Any):
    from .registry import objective_entry
    entry = objective_entry(name)
    entry.check_params(params, "objective_params")
    return entry.factory(**params)


# -- resolution ------------------------------------------------------------------

def instance_class_name(instance_or_name) -> str:
    """Class name of a registry instance (``'JobShopInstance'`` etc.)."""
    if isinstance(instance_or_name, str):
        instance_or_name = get_instance(instance_or_name)
    return type(instance_or_name).__name__


def default_encoding_name(instance_or_name) -> str:
    """The documented default encoding for an instance's problem class."""
    cls_name = instance_class_name(instance_or_name)
    for entry in ENCODINGS.entries():
        if cls_name in entry.tags.get("default_for", ()):
            return entry.name
    raise SpecError(f"no default encoding for {cls_name}; set "
                    f"spec.encoding explicitly (available: "
                    f"{ENCODINGS.names()})")


def resolve_instance(spec):
    """Instance named by ``spec.instance``, post-processed.

    ``instance_params.due_tau`` attaches TWK due dates (tardiness-family
    objectives need finite due dates); ``instance_params.weights`` --
    ``true`` or an ``[lo, hi]`` pair -- attaches job weights.  Both are
    deterministic (Taillard LCG streams), so resolution is pure: with
    :func:`enable_instance_cache` on (service workers), equal
    ``(instance, instance_params)`` keys share one instance object and
    its memoised decode tables; otherwise every call builds fresh.
    """
    if _INSTANCE_CACHE is None:
        return _build_instance(spec)
    key = _instance_cache_key(spec)
    cached = _INSTANCE_CACHE.get(key)
    if cached is not None:
        _INSTANCE_CACHE.move_to_end(key)
        _INSTANCE_CACHE_STATS["hits"] += 1
        return cached
    _INSTANCE_CACHE_STATS["misses"] += 1
    instance = _build_instance(spec)
    _INSTANCE_CACHE[key] = instance
    while len(_INSTANCE_CACHE) > _INSTANCE_CACHE_MAX:
        _INSTANCE_CACHE.popitem(last=False)
        _INSTANCE_CACHE_STATS["evictions"] += 1
    return instance


def _build_instance(spec):
    try:
        instance = get_instance(spec.instance)
    except KeyError as exc:
        from ..instances import available_instances
        from .registry import suggest
        raise SpecError(
            f"instance: unknown instance {spec.instance!r}"
            f"{suggest(spec.instance, available_instances())}") from exc
    params = spec.instance_params
    try:
        if params.get("due_tau") is not None:
            instance = with_due_dates_twk(instance,
                                          tau=float(params["due_tau"]))
        weights = params.get("weights")
        if weights:
            if weights is True:
                instance = with_weights(instance)
            else:
                lo, hi = weights
                instance = with_weights(instance, lo=int(lo), hi=int(hi))
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"instance_params: {exc} (due_tau takes a number; weights "
            f"takes true or an [lo, hi] pair)") from exc
    return instance


def resolve_encoding(spec, instance):
    """Encoding object for ``spec`` bound to ``instance``."""
    name = spec.encoding or default_encoding_name(instance)
    entry = ENCODINGS.get(name)
    accepted = entry.tags.get("instance_classes", ())
    cls_name = type(instance).__name__
    if accepted and cls_name not in accepted:
        raise SpecError(
            f"encoding: {entry.name!r} decodes {sorted(accepted)} "
            f"instances, but {instance.name!r} is a {cls_name}")
    entry.check_params(spec.encoding_params, "encoding_params")
    try:
        return entry.factory(instance, **spec.encoding_params)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"encoding_params: {exc}") from exc


def resolve_objective(spec):
    """Objective object named by ``spec.objective``."""
    try:
        return _make_objective(spec.objective, **spec.objective_params)
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(f"objective_params: {exc}") from exc


def resolve_problem(spec, instance=None) -> Problem:
    """``spec -> Problem`` (instance + encoding + objective + eval_cost).

    ``instance`` optionally reuses an already-resolved instance object
    (the facade resolves once and threads it through every step).
    """
    if instance is None:
        instance = resolve_instance(spec)
    encoding = resolve_encoding(spec, instance)
    objective = resolve_objective(spec)
    return Problem(encoding, objective, eval_cost=spec.eval_cost)
