"""Scenario sweeps: batches of specs executed concurrently.

The ROADMAP's config-driven job submission layer: a
:class:`ScenarioSweep` expands a base :class:`~repro.api.spec.SolverSpec`
over the product of instances x engines x objectives x seeds, and a
:class:`SolverService` executes any batch of specs concurrently on a
process pool (the same ``concurrent.futures`` machinery the master-slave
executors ride), streaming structured :class:`SweepResult` records as
runs finish.

Because specs and reports are plain data, the worker boundary is two
JSON-safe dicts -- a spec in, a report out -- so the service doubles as
the in-process model of a distributed job queue: any transport that can
move JSON can move this workload.

::

    sweep = ScenarioSweep(base=SolverSpec(instance="ft06",
                                          termination={"max_generations": 30}),
                          instances=("ft06", "la01-shaped"),
                          engines=("simple", "island"),
                          seeds=(1, 2, 3))
    for res in SolverService(n_workers=4).run(sweep.specs()):
        print(res.summary())
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .registry import SpecError
from .spec import SolverSpec

__all__ = ["ScenarioSweep", "SolverService", "SweepResult"]


@dataclass
class SweepResult:
    """Outcome of one spec within a sweep (success or structured failure)."""

    index: int
    spec: dict[str, Any]
    ok: bool
    report: dict[str, Any] | None = None
    error: str | None = None
    elapsed: float = 0.0

    def summary(self) -> str:
        """One status line (what the CLI ``sweep`` subcommand prints)."""
        s = self.spec
        head = (f"[{self.index:>3}] {s.get('instance', '?'):<20} "
                f"{s.get('engine', '?'):<13} seed={s.get('seed', '?'):<6}")
        if not self.ok:
            return f"{head} ERROR: {self.error}"
        r = self.report
        return (f"{head} best={r['best_objective']:g} "
                f"evals={r['evaluations']} "
                f"[{r['spec']['objective']}] {self.elapsed:.2f}s")


@dataclass(frozen=True)
class ScenarioSweep:
    """Product expansion of a base spec over scenario axes.

    Empty axes keep the base spec's own value, so a sweep varies exactly
    the axes you name.  Expansion order is deterministic:
    instances (outer) x engines x objectives x seeds (inner).
    """

    base: SolverSpec
    instances: tuple[str, ...] = ()
    engines: tuple[str, ...] = ()
    objectives: tuple[str, ...] = ()
    seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.base, SolverSpec):
            object.__setattr__(self, "base",
                               SolverSpec.from_dict(self.base))
        for axis in ("instances", "engines", "objectives", "seeds"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))

    def specs(self) -> list[SolverSpec]:
        """The expanded, deduplicated spec list (validated lazily by ``solve``).

        Expansions that resolve to the same :meth:`SolverSpec.cache_key`
        -- a repeated axis value, or an engine alias next to its
        canonical name -- are dropped (first occurrence wins): solver
        runs are deterministic in their resolved spec, so duplicates
        could only re-compute identical reports.
        """
        out, seen = [], set()
        for instance in self.instances or (self.base.instance,):
            for engine in self.engines or (self.base.engine,):
                for objective in self.objectives or (self.base.objective,):
                    for seed in self.seeds or (self.base.seed,):
                        spec = self.base.replace(
                            instance=instance, engine=engine,
                            objective=objective, seed=int(seed))
                        key = spec.cache_key()
                        if key not in seen:
                            seen.add(key)
                            out.append(spec)
        return out

    def __len__(self) -> int:
        """Size of the raw product (an upper bound on ``len(specs())``)."""
        return (max(1, len(self.instances)) * max(1, len(self.engines))
                * max(1, len(self.objectives)) * max(1, len(self.seeds)))

    def to_dict(self) -> dict[str, Any]:
        return {"base": self.base.to_dict(),
                "instances": list(self.instances),
                "engines": list(self.engines),
                "objectives": list(self.objectives),
                "seeds": list(self.seeds)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSweep":
        known = {"base", "instances", "engines", "objectives", "seeds"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"sweep: unknown field(s) {unknown}; "
                            f"valid fields: {sorted(known)}")
        if "base" not in data:
            raise SpecError("sweep: missing required 'base' spec")
        return cls(base=SolverSpec.from_dict(data["base"]),
                   instances=_axis(data, "instances"),
                   engines=_axis(data, "engines"),
                   objectives=_axis(data, "objectives"),
                   seeds=_axis(data, "seeds", coerce=int))


def _axis(data: Mapping[str, Any], name: str, coerce=None) -> tuple:
    """One sweep axis from a JSON payload; bad shapes are SpecErrors.

    ``null`` and a missing key both mean "don't vary this axis".
    """
    values = data.get(name)
    if values is None:
        return ()
    if isinstance(values, str) or not isinstance(values, (list, tuple)):
        raise SpecError(f"sweep: {name} must be a list, got {values!r}")
    if coerce is None:
        return tuple(values)
    try:
        return tuple(coerce(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"sweep: {name}: {exc}") from exc


def _solve_payload(payload: tuple[int, dict]) -> SweepResult:
    """Worker task: one spec dict in, one JSON-safe result out."""
    from .facade import solve
    index, spec_dict = payload
    t0 = time.perf_counter()
    try:
        report = solve(spec_dict)
        return SweepResult(index=index, spec=spec_dict, ok=True,
                           report=report.to_dict(),
                           elapsed=time.perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 - a failed scenario must not
        # take the sweep down; the failure is part of the result stream
        return SweepResult(index=index, spec=spec_dict, ok=False,
                           error=f"{type(exc).__name__}: {exc}",
                           elapsed=time.perf_counter() - t0)


def _solve_isolated(payload: tuple[int, dict]) -> SweepResult:
    """Run one payload in its own single-worker pool (crash quarantine).

    Used after a shared pool broke: re-running here either completes the
    spec normally or, if this spec is what killed the worker, converts
    the process death into a structured failed :class:`SweepResult`
    (error type + message) without taking anyone else down.
    """
    index, spec = payload
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(_solve_payload, payload).result()
    except Exception as exc:  # noqa: BLE001 - the quarantined process died
        return SweepResult(index=index, spec=spec, ok=False,
                           error=f"{type(exc).__name__}: worker process "
                                 f"died ({exc or 'no diagnostic'})")


class SolverService:
    """Concurrent executor for batches of solver specs.

    Parameters
    ----------
    n_workers:
        process count; ``0`` or ``1`` runs in-process (serial) -- the
        right choice for tiny sweeps, tests, and engines that spawn
        their own pools (``parallel="process"`` islands, master-slave).
    ordered:
        yield results in submission order (default) or as completed
        (lower latency to the first result on heterogeneous batches).
    """

    def __init__(self, n_workers: int | None = None, ordered: bool = True):
        import os
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        self.n_workers = int(n_workers)
        self.ordered = ordered

    def run(self, specs: Iterable[SolverSpec | Mapping[str, Any]]
            ) -> Iterator[SweepResult]:
        """Execute every spec; yields a :class:`SweepResult` per spec.

        Failures are streamed as ``ok=False`` results, never raised --
        one bad scenario must not abort the remaining ones.
        """
        payloads = []
        for i, spec in enumerate(specs):
            if isinstance(spec, SolverSpec):
                spec = spec.to_dict()
            else:
                spec = dict(spec)
            payloads.append((i, spec))
        if not payloads:
            return
        if self.n_workers <= 1:
            for payload in payloads:
                yield _solve_payload(payload)
            return
        yield from self._run_pool(payloads)

    def _run_pool(self, payloads: Sequence[tuple[int, dict]]
                  ) -> Iterator[SweepResult]:
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {pool.submit(_solve_payload, p): p
                       for p in payloads}
            if self.ordered:
                for fut, payload in futures.items():
                    yield self._outcome(fut, payload)
            else:
                pending = set(futures)
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        yield self._outcome(fut, futures[fut])

    @staticmethod
    def _outcome(fut, payload: tuple[int, dict]) -> SweepResult:
        """Result of one pooled future, surviving worker-process death.

        ``_solve_payload`` converts ordinary solver exceptions into
        ``ok=False`` results, so ``fut.result()`` only raises when the
        worker *process* died (``BrokenProcessPool`` -- a segfault or
        ``os._exit`` in native code) or the payload could not cross the
        process boundary.  A dead worker poisons every future sharing the
        pool, so each affected payload gets one retry in a fresh isolated
        pool: the genuinely poisoned spec comes back as a structured
        failure, the innocent bystanders complete normally, and the sweep
        never loses results mid-iteration.
        """
        try:
            return fut.result()
        except Exception:  # noqa: BLE001 - pool breakage, not solver errors
            return _solve_isolated(payload)

    def run_sweep(self, sweep: ScenarioSweep) -> Iterator[SweepResult]:
        """Expand and execute a :class:`ScenarioSweep`."""
        return self.run(sweep.specs())
