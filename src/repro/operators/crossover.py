"""Crossover operators.

Covers every crossover named in the survey:

========================  =======================================  ==========
operator                  surveyed source                          genome kind
==========================================================================
n-point (+repair)         classic [1]                              perm/rep
uniform (+repair)         classic; Belkadi [37]                    perm/rep
parameterised uniform     Huang [24] (random keys)                 real
arithmetic                Zajicek [25]                             real
PMX (partially matched)   Asadzadeh [27]                           permutation
OX  (order)               classic                                  permutation
LOX (linear order)        Kokosinski [32]                          perm/rep
CX  (cycle)               Akhshabi [18], Gu [28]                   permutation
position-based            Park [26]                                permutation
job-based (JOX)           job shop op-encodings                    repetition
MSXF (multi-step fusion)  Bozejko [30]                             perm/rep
path relinking            Spanos [29]                              perm/rep
THX (time-horizon-like)   Lin [21]                                 repetition
composite                 flexible shops [36][37]                  composite
==========================================================================

All operators are classes with signature
``xover(parent_a, parent_b, rng) -> (child_a, child_b)`` acting on raw
genomes (ndarrays / tuples).  Permutation operators assume int genomes;
repetition-safe ones accept any multiset and preserve it exactly (tested
property: multiset closure).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .repair import repair_to_multiset

__all__ = [
    "Crossover",
    "NPointCrossover",
    "UniformCrossover",
    "ParameterizedUniformCrossover",
    "ArithmeticCrossover",
    "PMXCrossover",
    "OrderCrossover",
    "LinearOrderCrossover",
    "CycleCrossover",
    "PositionBasedCrossover",
    "JobBasedCrossover",
    "MultiStepCrossoverFusion",
    "PathRelinkingCrossover",
    "TimeHorizonCrossover",
    "CompositeCrossover",
    "default_crossover_for",
]

Crossover = Callable[[np.ndarray, np.ndarray, np.random.Generator],
                     tuple[np.ndarray, np.ndarray]]


def _counts(parent: np.ndarray) -> np.ndarray:
    return np.bincount(np.asarray(parent, dtype=np.int64))


class NPointCrossover:
    """Classic n-point crossover with multiset repair."""

    def __init__(self, points: int = 1, repair: bool = True):
        if points < 1:
            raise ValueError("need at least one cut point")
        self.points = points
        self.repair = repair

    def __call__(self, a: np.ndarray, b: np.ndarray,
                 rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        a = np.asarray(a)
        b = np.asarray(b)
        shape = a.shape
        a_flat, b_flat = a.ravel(), b.ravel()
        n = a_flat.size
        if n < 2:
            return a.copy(), b.copy()
        k = min(self.points, n - 1)
        cuts = np.sort(rng.choice(np.arange(1, n), size=k, replace=False))
        mask = np.zeros(n, dtype=bool)
        toggle = False
        prev = 0
        for cut in list(cuts) + [n]:
            mask[prev:cut] = toggle
            toggle = not toggle
            prev = cut
        child_a = np.where(mask, b_flat, a_flat)
        child_b = np.where(mask, a_flat, b_flat)
        if self.repair and a.ndim == 1 and np.issubdtype(a.dtype, np.integer):
            counts = _counts(a_flat)
            child_a = repair_to_multiset(child_a, counts, donor=b_flat)
            child_b = repair_to_multiset(child_b, counts, donor=a_flat)
        return child_a.reshape(shape), child_b.reshape(shape)


class UniformCrossover:
    """Uniform crossover (gene-wise coin flips) with multiset repair."""

    def __init__(self, swap_prob: float = 0.5, repair: bool = True):
        if not 0.0 <= swap_prob <= 1.0:
            raise ValueError("swap_prob must be in [0, 1]")
        self.swap_prob = swap_prob
        self.repair = repair

    def __call__(self, a, b, rng):
        a = np.asarray(a)
        b = np.asarray(b)
        mask = rng.random(a.shape) < self.swap_prob
        child_a = np.where(mask, b, a)
        child_b = np.where(mask, a, b)
        if self.repair and a.ndim == 1 and np.issubdtype(a.dtype, np.integer):
            counts = _counts(a)
            child_a = repair_to_multiset(child_a, counts, donor=b)
            child_b = repair_to_multiset(child_b, counts, donor=a)
        return child_a, child_b


class ParameterizedUniformCrossover:
    """Biased uniform crossover on real vectors (Huang et al. [24]).

    Each gene of child A comes from parent A with probability ``bias``
    (> 0.5 keeps children close to the better parent, the [24] setting).
    No repair needed: random keys are always feasible.
    """

    def __init__(self, bias: float = 0.7):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        self.bias = bias

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        take_a = rng.random(a.size) < self.bias
        return np.where(take_a, a, b), np.where(take_a, b, a)


class ArithmeticCrossover:
    """Blend crossover on real vectors (Zajicek & Sucha [25]).

    ``child = w*a + (1-w)*b`` with a fresh random weight per call.
    """

    def __init__(self, fixed_weight: float | None = None):
        self.fixed_weight = fixed_weight

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        w = self.fixed_weight if self.fixed_weight is not None else rng.random()
        return w * a + (1 - w) * b, (1 - w) * a + w * b


class PMXCrossover:
    """Partially matched crossover (Asadzadeh & Zamanifar [27]).

    Strict permutation operator: swaps a segment and resolves conflicts
    through the induced mapping.
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        lo, hi = np.sort(rng.choice(n, size=2, replace=False))
        hi += 1
        return self._pmx_child(a, b, lo, hi), self._pmx_child(b, a, lo, hi)

    @staticmethod
    def _pmx_child(a: np.ndarray, b: np.ndarray, lo: int, hi: int) -> np.ndarray:
        child = a.copy()
        child[lo:hi] = b[lo:hi]
        # mapping from the copied segment back to displaced genes
        mapping = {int(b[i]): int(a[i]) for i in range(lo, hi)}
        for i in list(range(0, lo)) + list(range(hi, a.size)):
            v = int(a[i])
            seen = set()
            while v in mapping and v not in seen:
                seen.add(v)
                v = mapping[v]
            child[i] = v
        return child


class OrderCrossover:
    """OX: keep a slice from parent A, fill the rest in parent-B order.

    Multiset-safe: works for permutations *and* permutations with
    repetition (occurrences are matched by count).
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        lo, hi = np.sort(rng.choice(n, size=2, replace=False))
        hi += 1
        return self._ox_child(a, b, lo, hi), self._ox_child(b, a, lo, hi)

    @staticmethod
    def _ox_child(a: np.ndarray, b: np.ndarray, lo: int, hi: int) -> np.ndarray:
        n = a.size
        counts = np.bincount(a, minlength=int(max(a.max(), b.max())) + 1)
        child = np.full(n, -1, dtype=np.int64)
        child[lo:hi] = a[lo:hi]
        used = np.bincount(a[lo:hi], minlength=counts.size)
        fill = []
        for v in np.concatenate([b[hi:], b[:hi]]):
            if used[v] < counts[v]:
                fill.append(int(v))
                used[v] += 1
        positions = list(range(hi, n)) + list(range(0, lo))
        for pos, v in zip(positions, fill):
            child[pos] = v
        return child


class LinearOrderCrossover:
    """LOX (Kokosinski & Studzienny [32]): like OX but without wrap-around.

    The child keeps a slice of parent A in place and fills remaining
    positions left-to-right with parent B's genes in B's order.
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        lo, hi = np.sort(rng.choice(n, size=2, replace=False))
        hi += 1
        return self._lox_child(a, b, lo, hi), self._lox_child(b, a, lo, hi)

    @staticmethod
    def _lox_child(a: np.ndarray, b: np.ndarray, lo: int, hi: int) -> np.ndarray:
        n = a.size
        counts = np.bincount(a, minlength=int(max(a.max(), b.max())) + 1)
        child = np.full(n, -1, dtype=np.int64)
        child[lo:hi] = a[lo:hi]
        used = np.bincount(a[lo:hi], minlength=counts.size)
        fill = []
        for v in b:
            if used[v] < counts[v]:
                fill.append(int(v))
                used[v] += 1
        positions = [i for i in range(n) if not lo <= i < hi]
        for pos, v in zip(positions, fill):
            child[pos] = v
        return child


class CycleCrossover:
    """CX (Akhshabi [18], Gu [28]): alternate parent cycles, no repair needed.

    Strict permutation operator (requires distinct genes).
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n = a.size
        pos_in_a = np.empty(n, dtype=np.int64)
        pos_in_a[a] = np.arange(n)
        child_a = np.full(n, -1, dtype=np.int64)
        child_b = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        take_from_a = True
        for start in range(n):
            if visited[start]:
                continue
            cycle = []
            i = start
            while not visited[i]:
                visited[i] = True
                cycle.append(i)
                i = pos_in_a[b[i]]
            src_a, src_b = (a, b) if take_from_a else (b, a)
            for i in cycle:
                child_a[i] = src_a[i]
                child_b[i] = src_b[i]
            take_from_a = not take_from_a
        return child_a, child_b


class PositionBasedCrossover:
    """Position-based crossover (one of Park et al. [26]'s operators).

    A random subset of positions is inherited from parent A; remaining
    genes come from parent B in order.  Multiset-safe.
    """

    def __init__(self, keep_prob: float = 0.5):
        self.keep_prob = keep_prob

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        mask = rng.random(a.size) < self.keep_prob
        return (self._pbx_child(a, b, mask), self._pbx_child(b, a, mask))

    @staticmethod
    def _pbx_child(a, b, mask):
        n = a.size
        counts = np.bincount(a, minlength=int(max(a.max(), b.max())) + 1)
        child = np.full(n, -1, dtype=np.int64)
        child[mask] = a[mask]
        used = np.bincount(a[mask], minlength=counts.size)
        fill = []
        for v in b:
            if used[v] < counts[v]:
                fill.append(int(v))
                used[v] += 1
        child[~mask] = fill
        return child


class JobBasedCrossover:
    """Job-based crossover (JOX) for operation-based JSSP chromosomes.

    A random subset of *jobs* keeps all its gene positions from parent A;
    the other jobs' occurrences are filled in parent-B order.  Preserves
    each job's occurrence count by construction.
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n_jobs = int(max(a.max(), b.max())) + 1
        keep = rng.random(n_jobs) < 0.5
        return self._jox_child(a, b, keep), self._jox_child(b, a, keep)

    @staticmethod
    def _jox_child(a, b, keep):
        child = np.full(a.size, -1, dtype=np.int64)
        mask = keep[a]
        child[mask] = a[mask]
        fill = [int(v) for v in b if not keep[v]]
        child[~mask] = fill
        return child


class MultiStepCrossoverFusion:
    """MSXF (Bozejko & Wodecki [30]).

    A stochastic local search biased toward the second parent: starting
    from parent A, repeatedly propose swap neighbours and prefer those
    reducing distance to parent B.  Needs an objective callable to accept /
    reject on quality; we use plain distance descent plus random tie
    breaking, the standard simplification when the fitness surface is
    expensive.  Returns (child, copy-of-better-parent).
    """

    def __init__(self, steps: int = 8):
        self.steps = steps

    @staticmethod
    def _distance(x: np.ndarray, y: np.ndarray) -> int:
        return int(np.count_nonzero(x != y))

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        current = a.copy()
        for _ in range(self.steps):
            if self._distance(current, b) == 0:
                break
            i, j = rng.integers(0, current.size, size=2)
            cand = current.copy()
            cand[i], cand[j] = cand[j], cand[i]
            if self._distance(cand, b) <= self._distance(current, b):
                current = cand
        return current, b.copy()


class PathRelinkingCrossover:
    """Path relinking (Spanos et al. [29]).

    Walks from parent A toward parent B by repairing one mismatched
    position per step (swapping in the gene B has there); a random
    intermediate point of the path is the child.  Multiset-safe whenever
    both parents share a multiset, since every step is a swap within the
    chromosome.
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        path = [a.copy()]
        current = a.copy()
        mismatch = [i for i in range(a.size) if current[i] != b[i]]
        rng.shuffle(mismatch)
        for i in mismatch:
            if current[i] == b[i]:
                continue
            js = np.nonzero(current == b[i])[0]
            js = js[js != i]
            if js.size == 0:
                continue
            j = int(js[0])
            current[i], current[j] = current[j], current[i]
            path.append(current.copy())
        if len(path) <= 2:
            return current, b.copy()
        k = int(rng.integers(1, len(path) - 1))
        return path[k], path[max(1, len(path) - 1 - k)]


class TimeHorizonCrossover:
    """THX-style crossover (Lin et al. [21]).

    The original THX swaps the portions of two schedules before/after a
    random time horizon.  On operation-based chromosomes the faithful
    analogue is a cut at a random *scheduling position* (the decoder maps
    chromosome position to construction time): the child keeps parent A's
    prefix and completes with parent B's remaining operations in B's order
    -- i.e. a one-point version of job-based order crossover.
    """

    def __call__(self, a, b, rng):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        n = a.size
        if n < 2:
            return a.copy(), b.copy()
        cut = int(rng.integers(1, n))
        return self._thx_child(a, b, cut), self._thx_child(b, a, cut)

    @staticmethod
    def _thx_child(a, b, cut):
        counts = np.bincount(a, minlength=int(max(a.max(), b.max())) + 1)
        child = np.empty(a.size, dtype=np.int64)
        child[:cut] = a[:cut]
        used = np.bincount(a[:cut], minlength=counts.size)
        fill = []
        for v in b:
            if used[v] < counts[v]:
                fill.append(int(v))
                used[v] += 1
        child[cut:] = fill
        return child


class CompositeCrossover:
    """Apply one crossover per part of a tuple genome (flexible shops).

    ``parts[k]`` may be ``None`` to copy part k from the parents unchanged.
    ``spans`` (optional) records each part's column width in a stacked
    chromosome row; the batch twin slices the population matrix with it,
    so composites whose encodings publish ``part_spans`` can run on the
    array substrate.
    """

    def __init__(self, parts: Sequence[Crossover | None],
                 spans: Sequence[int] | None = None):
        self.parts = list(parts)
        self.spans = None if spans is None else tuple(int(w) for w in spans)
        if self.spans is not None and len(self.spans) != len(self.parts):
            raise ValueError("spans must give one column width per part")

    def __call__(self, a, b, rng):
        if not isinstance(a, tuple) or len(a) != len(self.parts):
            raise ValueError("composite crossover needs tuple genomes "
                             "matching the configured part count")
        outs_a, outs_b = [], []
        for op, pa, pb in zip(self.parts, a, b):
            if op is None:
                outs_a.append(np.asarray(pa).copy())
                outs_b.append(np.asarray(pb).copy())
            else:
                ca, cb = op(pa, pb, rng)
                outs_a.append(ca)
                outs_b.append(cb)
        return tuple(outs_a), tuple(outs_b)


def default_crossover_for(kind: str, part_kinds: tuple[str, ...] = (),
                          part_spans: tuple[int, ...] | None = None
                          ) -> Crossover:
    """A sensible default crossover per genome kind.

    ``part_spans`` (composite kinds only) forwards the encoding's stacked
    column widths so the composite operator is array-substrate capable.
    """
    from ..encodings.base import GenomeKind
    if kind == GenomeKind.PERMUTATION:
        return OrderCrossover()
    if kind == GenomeKind.REPETITION:
        return JobBasedCrossover()
    if kind == GenomeKind.REAL:
        return ParameterizedUniformCrossover(bias=0.6)
    if kind == GenomeKind.COMPOSITE:
        sub = []
        for pk in part_kinds:
            if pk == "permutation":
                sub.append(OrderCrossover())
            elif pk == "repetition":
                sub.append(JobBasedCrossover())
            elif pk == "assignment":
                sub.append(UniformCrossover(repair=False))
            elif pk == "frozen":  # dead placeholder part: copy through
                sub.append(None)
            else:  # real
                sub.append(ParameterizedUniformCrossover(bias=0.6))
        return CompositeCrossover(sub, spans=part_spans)
    raise ValueError(f"unknown genome kind {kind!r}")
