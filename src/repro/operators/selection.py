"""Selection operators.

"Some well-known methods are implemented in this step: the roulette wheel
selection, the stochastic universal sampling, the tournament selection and
so on" (survey, Section III.A, citing Jebari & Madiafi [13]).

Selections operate on an evaluated :class:`~repro.core.population.
Population` (individuals carry maximised ``fitness``) and return a list of
*references* to selected parents; engines copy genomes before variation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.individual import Individual
from ..core.population import Population

__all__ = [
    "Selection",
    "RouletteWheelSelection",
    "StochasticUniversalSampling",
    "TournamentSelection",
    "ElitistRouletteSelection",
    "RandomSelection",
    "RankSelection",
]

Selection = Callable[[Population, int, np.random.Generator], list[Individual]]


def _fitness_vector(population: Population) -> np.ndarray:
    fits = []
    for ind in population:
        if ind.fitness is None:
            raise ValueError("selection requires fitness values; apply a "
                             "fitness transform first")
        fits.append(ind.fitness)
    return np.asarray(fits, dtype=float)


def _normalised_probs(fits: np.ndarray) -> np.ndarray:
    if (fits < 0).any():
        raise ValueError("roulette-family selection needs non-negative fitness")
    total = fits.sum()
    if total <= 0:
        # degenerate population (all zero fitness): uniform choice
        return np.full(fits.size, 1.0 / fits.size)
    return fits / total


class RouletteWheelSelection:
    """Fitness-proportionate sampling with replacement."""

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        probs = _normalised_probs(_fitness_vector(population))
        idx = rng.choice(len(population), size=k, replace=True, p=probs)
        return [population[int(i)] for i in idx]


class StochasticUniversalSampling:
    """SUS: one spin, ``k`` equally spaced pointers; lower variance than RWS."""

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        probs = _normalised_probs(_fitness_vector(population))
        cum = np.cumsum(probs)
        start = rng.random() / k
        pointers = start + np.arange(k) / k
        idx = np.searchsorted(cum, pointers, side="right")
        idx = np.clip(idx, 0, len(population) - 1)
        chosen = [population[int(i)] for i in idx]
        # SUS preserves expected counts; shuffle so pairing is unbiased
        rng.shuffle(chosen)
        return chosen


class TournamentSelection:
    """k-way tournament (Defersha & Chen [35][36]; Zajicek [25] uses k=2)."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError("tournament size must be >= 1")
        self.size = size

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        fits = _fitness_vector(population)
        n = len(population)
        winners = []
        for _ in range(k):
            entrants = rng.integers(0, n, size=self.size)
            best = entrants[np.argmax(fits[entrants])]
            winners.append(population[int(best)])
        return winners


class ElitistRouletteSelection:
    """Mui et al. [17]: elite fraction passes straight, rest via roulette."""

    def __init__(self, elite_fraction: float = 0.1):
        if not 0 <= elite_fraction <= 1:
            raise ValueError("elite_fraction must be in [0, 1]")
        self.elite_fraction = elite_fraction
        self._roulette = RouletteWheelSelection()

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        n_elite = min(k, int(round(self.elite_fraction * k)))
        elites = population.top(n_elite)
        rest = self._roulette(population, k - n_elite, rng)
        return list(elites) + rest


class RandomSelection:
    """Uniform random parents (Lin et al. [21] pair THX with random selection)."""

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        idx = rng.integers(0, len(population), size=k)
        return [population[int(i)] for i in idx]


class RankSelection:
    """Linear-rank-proportionate sampling (scale-free roulette)."""

    def __call__(self, population: Population, k: int,
                 rng: np.random.Generator) -> list[Individual]:
        fits = _fitness_vector(population)
        order = np.argsort(np.argsort(fits))  # 0 = worst
        weights = (order + 1).astype(float)
        probs = weights / weights.sum()
        idx = rng.choice(len(population), size=k, replace=True, p=probs)
        return [population[int(i)] for i in idx]
