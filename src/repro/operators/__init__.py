"""Genetic operators: selection, crossover, mutation, repair."""

from .selection import (ElitistRouletteSelection, RandomSelection,
                        RankSelection, RouletteWheelSelection, Selection,
                        StochasticUniversalSampling, TournamentSelection)
from .crossover import (ArithmeticCrossover, CompositeCrossover, Crossover,
                        CycleCrossover, JobBasedCrossover,
                        LinearOrderCrossover, MultiStepCrossoverFusion,
                        NPointCrossover, OrderCrossover,
                        ParameterizedUniformCrossover, PathRelinkingCrossover,
                        PMXCrossover, PositionBasedCrossover,
                        TimeHorizonCrossover, UniformCrossover,
                        default_crossover_for)
from .mutation import (AssignmentMutation, CompositeMutation,
                       GaussianKeyMutation, IntegerResetMutation,
                       InversionMutation, Mutation, ResampleKeyMutation,
                       ScrambleMutation, ShiftMutation, SwapMutation,
                       default_mutation_for)
from .gt_crossover import GTThreeParentCrossover
from .repair import is_permutation, is_repetition_of, repair_to_multiset
from .batch import (batch_crossover_for, batch_mutation_for,
                    batch_selection_for, register_batch_crossover,
                    register_batch_mutation, register_batch_selection,
                    supported_batch_operators)

__all__ = [
    "Selection", "RouletteWheelSelection", "StochasticUniversalSampling",
    "TournamentSelection", "ElitistRouletteSelection", "RandomSelection",
    "RankSelection",
    "Crossover", "NPointCrossover", "UniformCrossover",
    "ParameterizedUniformCrossover", "ArithmeticCrossover", "PMXCrossover",
    "OrderCrossover", "LinearOrderCrossover", "CycleCrossover",
    "PositionBasedCrossover", "JobBasedCrossover", "MultiStepCrossoverFusion",
    "PathRelinkingCrossover", "TimeHorizonCrossover", "CompositeCrossover",
    "default_crossover_for",
    "Mutation", "SwapMutation", "ShiftMutation", "InversionMutation",
    "ScrambleMutation", "GaussianKeyMutation", "ResampleKeyMutation",
    "AssignmentMutation", "IntegerResetMutation", "CompositeMutation",
    "default_mutation_for",
    "GTThreeParentCrossover",
    "repair_to_multiset", "is_permutation", "is_repetition_of",
    "batch_selection_for", "batch_crossover_for", "batch_mutation_for",
    "register_batch_selection", "register_batch_crossover",
    "register_batch_mutation", "supported_batch_operators",
]
