"""Mutation operators.

"Different from the binary encoding, the mutation for shop scheduling
problems works often based on the neighborhoods e.g. shift mutation
(insertion neighborhood) or pairwise interchange mutation (swap
neighborhood) to respect feasible solutions" (survey, Section III.A).

All operators are classes with signature ``mut(genome, rng) -> genome``
returning a *new* genome (inputs are never modified in place).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Mutation",
    "SwapMutation",
    "ShiftMutation",
    "InversionMutation",
    "ScrambleMutation",
    "GaussianKeyMutation",
    "ResampleKeyMutation",
    "AssignmentMutation",
    "IntegerResetMutation",
    "CompositeMutation",
    "default_mutation_for",
]

Mutation = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class SwapMutation:
    """Pairwise interchange (swap neighbourhood); ``pairs`` swaps per call."""

    def __init__(self, pairs: int = 1):
        if pairs < 1:
            raise ValueError("pairs must be positive")
        self.pairs = pairs

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome).copy()
        n = g.size
        if n < 2:
            return g
        for _ in range(self.pairs):
            i, j = rng.choice(n, size=2, replace=False)
            g[i], g[j] = g[j], g[i]
        return g


class ShiftMutation:
    """Shift / insertion neighbourhood: remove one gene, reinsert elsewhere."""

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome).copy()
        n = g.size
        if n < 2:
            return g
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n - 1))
        v = g[src]
        g = np.delete(g, src)
        return np.insert(g, dst, v)


class InversionMutation:
    """Invert a random segment (Kokosinski's invert mutation [32])."""

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome).copy()
        n = g.size
        if n < 2:
            return g
        lo, hi = np.sort(rng.choice(n, size=2, replace=False))
        g[lo:hi + 1] = g[lo:hi + 1][::-1]
        return g


class ScrambleMutation:
    """Shuffle a random segment."""

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome).copy()
        n = g.size
        if n < 2:
            return g
        lo, hi = np.sort(rng.choice(n, size=2, replace=False))
        segment = g[lo:hi + 1].copy()
        rng.shuffle(segment)
        g[lo:hi + 1] = segment
        return g


class GaussianKeyMutation:
    """Gaussian perturbation of random keys (Zajicek & Sucha [25]).

    Each gene is perturbed with probability ``rate``; results are clipped
    to [0, 1) so the genome stays a valid key vector.
    """

    def __init__(self, sigma: float = 0.1, rate: float = 0.2):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self.sigma = sigma
        self.rate = rate

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome, dtype=float).copy()
        mask = rng.random(g.size) < self.rate
        g[mask] = np.clip(g[mask] + rng.normal(0, self.sigma, mask.sum()),
                          0.0, 1.0 - 1e-12)
        return g


class ResampleKeyMutation:
    """Redraw a fraction of keys uniformly (the "immigration" per-gene form)."""

    def __init__(self, rate: float = 0.1):
        self.rate = rate

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome, dtype=float).copy()
        mask = rng.random(g.size) < self.rate
        g[mask] = rng.random(int(mask.sum()))
        return g


class AssignmentMutation:
    """Reassign operations to random eligible machines (flexible shops).

    ``domain_sizes[k]`` bounds gene k; mutated genes are redrawn uniformly
    in their own domain (Defersha & Chen's assignment operators [36]).
    """

    def __init__(self, domain_sizes: np.ndarray, rate: float = 0.1):
        self.domain_sizes = np.asarray(domain_sizes, dtype=np.int64)
        self.rate = rate

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome, dtype=np.int64).copy()
        mask = rng.random(g.size) < self.rate
        idx = np.nonzero(mask)[0]
        for i in idx:
            hi = max(1, int(self.domain_sizes[i % self.domain_sizes.size]))
            g[i] = rng.integers(0, hi)
        return g


class IntegerResetMutation:
    """Redraw integer genes uniformly in [0, alphabet) (dispatch rules)."""

    def __init__(self, alphabet: int, rate: float = 0.1):
        if alphabet < 1:
            raise ValueError("alphabet must be positive")
        self.alphabet = alphabet
        self.rate = rate

    def __call__(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        g = np.asarray(genome, dtype=np.int64).copy()
        mask = rng.random(g.size) < self.rate
        g[mask] = rng.integers(0, self.alphabet, int(mask.sum()))
        return g


class CompositeMutation:
    """One mutation per part of a tuple genome; ``None`` copies the part.

    ``spans`` (optional) records each part's column width in a stacked
    chromosome row for the batch twin (see
    :class:`~repro.operators.crossover.CompositeCrossover`).
    """

    def __init__(self, parts: Sequence[Mutation | None],
                 spans: Sequence[int] | None = None):
        self.parts = list(parts)
        self.spans = None if spans is None else tuple(int(w) for w in spans)
        if self.spans is not None and len(self.spans) != len(self.parts):
            raise ValueError("spans must give one column width per part")

    def __call__(self, genome, rng):
        if not isinstance(genome, tuple) or len(genome) != len(self.parts):
            raise ValueError("composite mutation needs a matching tuple genome")
        out = []
        for op, part in zip(self.parts, genome):
            out.append(np.asarray(part).copy() if op is None else op(part, rng))
        return tuple(out)


def default_mutation_for(kind: str, part_kinds: tuple[str, ...] = (),
                         part_spans: tuple[int, ...] | None = None
                         ) -> Mutation:
    """A sensible default mutation per genome kind.

    ``part_spans`` (composite kinds only) forwards the encoding's stacked
    column widths so the composite operator is array-substrate capable.
    """
    from ..encodings.base import GenomeKind
    if kind in (GenomeKind.PERMUTATION, GenomeKind.REPETITION):
        return SwapMutation()
    if kind == GenomeKind.REAL:
        return GaussianKeyMutation()
    if kind == GenomeKind.COMPOSITE:
        sub: list[Mutation | None] = []
        for pk in part_kinds:
            if pk in ("permutation", "repetition"):
                sub.append(SwapMutation())
            elif pk == "assignment":
                sub.append(None)  # caller should supply AssignmentMutation
            elif pk == "frozen":  # dead placeholder part: copy through
                sub.append(None)
            else:
                sub.append(GaussianKeyMutation())
        return CompositeMutation(sub, spans=part_spans)
    raise ValueError(f"unknown genome kind {kind!r}")
