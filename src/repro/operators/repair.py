"""Offspring repair for permutation-family encodings.

"Due to particular requirements of different shop scheduling problems,
additional steps may be required to repair the illegal offspring caused by
the crossover" (survey, Section III.A).  Point and uniform crossovers on
permutations (or permutations with repetition) generally produce strings
with wrong gene multiplicities; the canonical fix keeps each position that
is still legal and rewrites surplus genes with the missing ones in the
order they appear in the donor parent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["repair_to_multiset", "is_permutation", "is_repetition_of"]


def is_permutation(genome: np.ndarray) -> bool:
    """True iff ``genome`` is a permutation of ``range(len(genome))``."""
    g = np.asarray(genome)
    return bool(np.array_equal(np.sort(g), np.arange(g.size)))


def is_repetition_of(genome: np.ndarray, counts: np.ndarray) -> bool:
    """True iff ``genome`` contains value v exactly ``counts[v]`` times."""
    g = np.asarray(genome, dtype=np.int64)
    if g.size != int(np.sum(counts)):
        return False
    actual = np.bincount(g, minlength=len(counts))
    return bool(np.array_equal(actual, counts))


def repair_to_multiset(child: np.ndarray, counts: np.ndarray,
                       donor: np.ndarray | None = None) -> np.ndarray:
    """Rewrite ``child`` so value v appears exactly ``counts[v]`` times.

    Scans left to right; occurrences beyond a value's quota are replaced by
    missing values.  Missing values are issued in the order they appear in
    ``donor`` (a parent) when given, otherwise in ascending value order --
    the donor version preserves more parental structure and is what the
    n-point-with-repair crossovers use.
    """
    child = np.asarray(child, dtype=np.int64).copy()
    counts = np.asarray(counts, dtype=np.int64)
    seen = np.zeros_like(counts)
    surplus_positions: list[int] = []
    for pos, v in enumerate(child):
        if v < 0 or v >= counts.size or seen[v] >= counts[v]:
            surplus_positions.append(pos)
        else:
            seen[v] += 1
    missing_needed = counts - seen
    missing: list[int] = []
    if donor is not None:
        remaining = missing_needed.copy()
        for v in np.asarray(donor, dtype=np.int64):
            if 0 <= v < counts.size and remaining[v] > 0:
                missing.append(int(v))
                remaining[v] -= 1
        # donor may not cover everything if it has a different multiset
        for v in range(counts.size):
            missing.extend([v] * int(remaining[v]))
    else:
        for v in range(counts.size):
            missing.extend([v] * int(missing_needed[v]))
    if len(missing) != len(surplus_positions):  # pragma: no cover - invariant
        raise AssertionError("repair bookkeeping mismatch")
    for pos, v in zip(surplus_positions, missing):
        child[pos] = v
    return child
