"""Batch (array-native) forms of the variation operators.

The scalar operators in :mod:`repro.operators` act on one genome (or one
parent pair) per call; this module provides their population-wide twins
for the array substrate (:mod:`repro.core.substrate`): every function
takes whole ``(rows, n_genes)`` chromosome matrices and performs the
same transformation as ``rows`` scalar calls, with all per-gene work as
array operations -- the "keep the entire generation in flat array
form" substrate of Luo & El Baz's island/GPU follow-up papers
(arXiv:1903.10722, arXiv:1903.10741).

Every kernel routes its array math through the active backend namespace
(:func:`repro.core.backend.active_namespace`), so the same code runs on
``numpy`` (the default, byte-identical to calling NumPy directly), the
CI ``instrumented`` backend (which enforces the Array-API subset), or a
device namespace.  RNG draws stay on the ``np.random.Generator``-shaped
``rng`` argument -- the stream contracts below are defined in terms of
its call sequence, backend-independently.

Three conformance contracts hold throughout (pinned by
``tests/test_substrate.py``):

* **closure** -- every batch crossover/mutation preserves each row's
  multiset (and hence permutation validity) exactly as its scalar twin
  does;
* **kernel equality** -- the deterministic kernels (``ox_kernel``,
  ``pmx_kernel``, ``jox_kernel``, ``batch_repair_to_multiset``, ...)
  reproduce the scalar operator bit-for-bit when fed the same cut
  points / masks;
* **selection stream equality** -- the batch selections consume the RNG
  with exactly the same calls as their scalar twins and return the same
  choices (as index arrays instead of ``Individual`` lists), which is
  what makes the array substrate's rate-0 generations *exactly* equal to
  the object substrate's under a shared RNG.

Random *parameter drawing* inside crossovers/mutations is vectorised
(one call for all rows), so it is distribution-equivalent but not
stream-identical to the scalar loop -- the documented limit of array
conformance (see ``docs/architecture.md``, "Two substrates").

Dispatch is by operator class: :func:`batch_selection_for` /
:func:`batch_crossover_for` / :func:`batch_mutation_for` map a
configured scalar operator instance to its batch twin, honouring the
instance's parameters.  Third-party operators join via the
``register_batch_*`` hooks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.backend import active_namespace as _xp
from .crossover import (ArithmeticCrossover, CompositeCrossover, Crossover,
                        JobBasedCrossover, NPointCrossover, OrderCrossover,
                        ParameterizedUniformCrossover, PMXCrossover,
                        UniformCrossover)
from .mutation import (AssignmentMutation, CompositeMutation,
                       GaussianKeyMutation, InversionMutation, Mutation,
                       ShiftMutation, SwapMutation)
from .selection import (ElitistRouletteSelection, RandomSelection,
                        RankSelection, RouletteWheelSelection, Selection,
                        StochasticUniversalSampling, TournamentSelection,
                        _normalised_probs)

__all__ = [
    "batch_selection_for", "batch_crossover_for", "batch_mutation_for",
    "register_batch_selection", "register_batch_crossover",
    "register_batch_mutation",
    "supported_batch_operators",
    "row_occurrence", "row_bincount", "batch_repair_to_multiset",
    "ox_kernel", "pmx_kernel", "jox_kernel", "npoint_kernel",
    "inversion_kernel", "shift_kernel",
]

BatchSelection = Callable[..., np.ndarray]
BatchCrossover = Callable[..., tuple[np.ndarray, np.ndarray]]
BatchMutation = Callable[..., np.ndarray]

_BATCH_SELECTIONS: dict[type, Callable] = {}
_BATCH_CROSSOVERS: dict[type, Callable] = {}
_BATCH_MUTATIONS: dict[type, Callable] = {}


# -- shared integer-genome machinery ---------------------------------------------

def row_occurrence(X: np.ndarray, n_values: int) -> np.ndarray:
    """``occ[i, j]`` = earlier occurrences of ``X[i, j]`` within row ``i``.

    The building block behind every vectorised order-preserving fill
    (repair, OX, JOX): a stable argsort groups equal ``(row, value)``
    keys while keeping positions in order, so the index within each
    group is exactly the left-to-right occurrence counter the scalar
    operators maintain one element at a time.
    """
    xp = _xp()
    m, n = X.shape
    keys = (X + xp.arange(m, dtype=xp.int64)[:, None] * n_values).ravel()
    order = xp.stable_argsort(keys)
    sorted_keys = keys[order]
    pos = xp.arange(keys.size, dtype=xp.int64)
    starts = xp.empty(keys.size, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_start = xp.maximum_accumulate(xp.where(starts, pos, 0))
    occ = xp.empty(keys.size, dtype=xp.int64)
    occ[order] = pos - group_start
    return occ.reshape(m, n)


def row_bincount(X: np.ndarray, n_values: int,
                 mask: np.ndarray | None = None) -> np.ndarray:
    """Per-row value counts: ``out[i, v]`` = occurrences of v in row i.

    ``mask`` restricts counting to selected positions.
    """
    xp = _xp()
    m, n = X.shape
    keys = X + xp.arange(m, dtype=xp.int64)[:, None] * n_values
    if mask is not None:
        keys = keys[mask]
    return xp.bincount(keys.ravel(),
                       minlength=m * n_values).reshape(m, n_values)


def _value_range(A: np.ndarray, B: np.ndarray) -> int:
    return int(max(A.max(initial=0), B.max(initial=0))) + 1


def batch_repair_to_multiset(children: np.ndarray, counts: np.ndarray,
                             donors: np.ndarray) -> np.ndarray:
    """Row-wise :func:`~repro.operators.repair.repair_to_multiset`.

    ``counts`` is ``(rows, n_values)`` -- the target multiset per row;
    ``donors`` supplies missing values in donor order, exactly like the
    scalar repair.  Requires each donor row to cover its row's missing
    values (true whenever parents share a multiset, the GA invariant).
    """
    xp = _xp()
    m, n = children.shape
    n_values = counts.shape[1]
    occ_child = row_occurrence(children, n_values)
    rows = xp.arange(m, dtype=xp.int64)[:, None]
    legal = occ_child < counts[rows, children]
    if legal.all():
        return children.copy()
    child_counts = row_bincount(children, n_values)
    missing = counts - xp.minimum(child_counts, counts)
    occ_donor = row_occurrence(donors, n_values)
    take = occ_donor < missing[rows, donors]
    out = children.copy()
    # both masks enumerate row-major with equal per-row counts, so the
    # k-th surplus position and the k-th donor filler share a row
    out[~legal] = donors[take]
    return out


def _sorted_distinct_pairs(n: int, rows: int, rng: np.random.Generator,
                           high: int | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Per-row uniform distinct index pairs ``lo < hi`` in ``[0, n)``."""
    xp = _xp()
    high = n if high is None else high
    i = rng.integers(0, high, size=rows)
    j = rng.integers(0, high - 1, size=rows)
    j = j + (j >= i)
    return xp.minimum(i, j), xp.maximum(i, j)


# -- crossover kernels (deterministic given cuts/masks) --------------------------

def ox_kernel(A: np.ndarray, B: np.ndarray, lo: np.ndarray,
              hi: np.ndarray) -> np.ndarray:
    """Row-wise OX child: keep ``A[lo:hi)``, fill from B wrapped at hi.

    Bit-identical to ``OrderCrossover._ox_child`` per row (multiset-safe,
    wrap-around fill order).
    """
    xp = _xp()
    m, n = A.shape
    n_values = _value_range(A, B)
    rows = xp.arange(m, dtype=xp.int64)[:, None]
    pos = xp.arange(n, dtype=xp.int64)
    seg = (pos >= lo[:, None]) & (pos < hi[:, None])
    counts = row_bincount(A, n_values)
    used = row_bincount(A, n_values, mask=seg)
    need = counts - used
    # rotated frame: slot t holds original position (hi + t) mod n, so
    # slots 0 .. n-seg_len-1 enumerate hi..n-1, 0..lo-1 -- the OX fill order
    rot_idx = (hi[:, None] + pos) % n
    B_rot = xp.take_along_axis(B, rot_idx, axis=1)
    occ = row_occurrence(B_rot, n_values)
    take = occ < need[rows, B_rot]
    seg_len = hi - lo
    fill_slots = pos < (n - seg_len)[:, None]
    child = A.copy()
    child[xp.nonzero(fill_slots)[0], rot_idx[fill_slots]] = B_rot[take]
    return child


def pmx_kernel(A: np.ndarray, B: np.ndarray, lo: np.ndarray,
               hi: np.ndarray) -> np.ndarray:
    """Row-wise PMX child (strict permutations of ``range(n)``).

    Bit-identical to ``PMXCrossover._pmx_child`` per row: the copied B
    segment induces a value mapping that outside positions follow until
    they leave the segment's value set (chains resolved iteratively, all
    rows at once).
    """
    xp = _xp()
    m, n = A.shape
    rows = xp.arange(m, dtype=xp.int64)[:, None]
    pos = xp.arange(n, dtype=xp.int64)
    seg = (pos >= lo[:, None]) & (pos < hi[:, None])
    seg_rows = xp.nonzero(seg)[0]
    mapping = xp.tile(xp.arange(n, dtype=xp.int64), (m, 1))
    mapping[seg_rows, B[seg]] = A[seg]
    in_b_seg = xp.zeros((m, n), dtype=bool)
    in_b_seg[seg_rows, B[seg]] = True
    values = A.copy()
    conflict = in_b_seg[rows, values] & ~seg
    for _ in range(n):
        if not conflict.any():
            break
        values = xp.where(conflict, mapping[rows, values], values)
        conflict = in_b_seg[rows, values] & ~seg
    return xp.where(seg, B, values)


def jox_kernel(A: np.ndarray, B: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Row-wise JOX child: jobs with ``keep[row, job]`` hold A's positions,
    the rest are filled with B's occurrences in B order.

    Bit-identical to ``JobBasedCrossover._jox_child`` per row.
    """
    xp = _xp()
    rows = xp.arange(A.shape[0], dtype=xp.int64)[:, None]
    mask_a = keep[rows, A]
    child = xp.where(mask_a, A, -1)
    child[~mask_a] = B[~keep[rows, B]]
    return child


def npoint_kernel(A: np.ndarray, B: np.ndarray,
                  cuts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise n-point exchange masks from sorted ``(rows, k)`` cuts.

    Returns the raw (pre-repair) children; segment parity starts at
    parent A exactly like ``NPointCrossover``.
    """
    xp = _xp()
    m, n = A.shape
    delta = xp.zeros((m, n), dtype=xp.int64)
    xp.scatter_add(delta, (xp.arange(m, dtype=xp.int64)[:, None], cuts), 1)
    mask = (xp.cumsum(delta, axis=1) % 2).astype(bool)
    return xp.where(mask, B, A), xp.where(mask, A, B)


def inversion_kernel(X: np.ndarray, lo: np.ndarray,
                     hi: np.ndarray) -> np.ndarray:
    """Reverse the inclusive segment ``[lo, hi]`` of every row."""
    xp = _xp()
    pos = xp.arange(X.shape[1], dtype=xp.int64)
    seg = (pos >= lo[:, None]) & (pos <= hi[:, None])
    idx = xp.where(seg, lo[:, None] + hi[:, None] - pos, pos)
    return xp.take_along_axis(X, idx, axis=1)


def shift_kernel(X: np.ndarray, src: np.ndarray,
                 dst: np.ndarray) -> np.ndarray:
    """Remove gene ``src`` and reinsert at ``dst`` (of the n-1 list), rowwise.

    Bit-identical to ``ShiftMutation``'s delete-then-insert per row.
    """
    xp = _xp()
    m, n = X.shape
    pos = xp.arange(n, dtype=xp.int64)[None, :]
    s, d = src[:, None], dst[:, None]
    after_delete = pos - (pos > s)
    dest = after_delete + (after_delete >= d)
    dest = xp.where(pos == s, d, dest)
    out = xp.empty_like(X)
    out[xp.arange(m, dtype=xp.int64)[:, None], dest] = X
    return out


# -- batch crossovers ------------------------------------------------------------

def register_batch_crossover(scalar_cls: type):
    """Register ``fn(op, A, B, rng) -> (CA, CB)`` as the batch twin."""
    def deco(fn):
        _BATCH_CROSSOVERS[scalar_cls] = fn
        return fn
    return deco


@register_batch_crossover(OrderCrossover)
def _batch_ox(op: OrderCrossover, A: np.ndarray, B: np.ndarray,
              rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    m, n = A.shape
    if n < 2:
        return A.copy(), B.copy()
    lo, hi = _sorted_distinct_pairs(n, m, rng)
    hi = hi + 1
    return ox_kernel(A, B, lo, hi), ox_kernel(B, A, lo, hi)


@register_batch_crossover(PMXCrossover)
def _batch_pmx(op: PMXCrossover, A: np.ndarray, B: np.ndarray,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    m, n = A.shape
    if n < 2:
        return A.copy(), B.copy()
    lo, hi = _sorted_distinct_pairs(n, m, rng)
    hi = hi + 1
    return pmx_kernel(A, B, lo, hi), pmx_kernel(B, A, lo, hi)


@register_batch_crossover(JobBasedCrossover)
def _batch_jox(op: JobBasedCrossover, A: np.ndarray, B: np.ndarray,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    m = A.shape[0]
    n_jobs = _value_range(A, B)
    keep = rng.random((m, n_jobs)) < 0.5
    return jox_kernel(A, B, keep), jox_kernel(B, A, keep)


def _repair_pair(A, B, CA, CB):
    n_values = _value_range(A, B)
    counts = row_bincount(A, n_values)
    return (batch_repair_to_multiset(CA, counts, B),
            batch_repair_to_multiset(CB, counts, A))


@register_batch_crossover(NPointCrossover)
def _batch_npoint(op: NPointCrossover, A: np.ndarray, B: np.ndarray,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    xp = _xp()
    m, n = A.shape
    if n < 2:
        return A.copy(), B.copy()
    k = min(op.points, n - 1)
    if k == n - 1:
        cuts = xp.tile(xp.arange(1, n, dtype=xp.int64), (m, 1))
    else:
        # k smallest random keys over positions 1..n-1 = a uniform
        # k-subset without replacement, like the scalar rng.choice
        keys = rng.random((m, n - 1))
        cuts = xp.sort(xp.argpartition(keys, k - 1, axis=1)[:, :k],
                       axis=1).astype(xp.int64) + 1
    CA, CB = npoint_kernel(A, B, cuts)
    if op.repair and np.issubdtype(A.dtype, np.integer):
        CA, CB = _repair_pair(A, B, CA, CB)
    return CA, CB


@register_batch_crossover(UniformCrossover)
def _batch_uniform(op: UniformCrossover, A: np.ndarray, B: np.ndarray,
                   rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    xp = _xp()
    mask = rng.random(A.shape) < op.swap_prob
    CA = xp.where(mask, B, A)
    CB = xp.where(mask, A, B)
    if op.repair and np.issubdtype(A.dtype, np.integer):
        CA, CB = _repair_pair(A, B, CA, CB)
    return CA, CB


@register_batch_crossover(ParameterizedUniformCrossover)
def _batch_param_uniform(op: ParameterizedUniformCrossover, A: np.ndarray,
                         B: np.ndarray, rng: np.random.Generator
                         ) -> tuple[np.ndarray, np.ndarray]:
    xp = _xp()
    A = xp.asarray(A, dtype=xp.float64)
    B = xp.asarray(B, dtype=xp.float64)
    take_a = rng.random(A.shape) < op.bias
    return xp.where(take_a, A, B), xp.where(take_a, B, A)


@register_batch_crossover(CompositeCrossover)
def _batch_composite_crossover(op: CompositeCrossover, A: np.ndarray,
                               B: np.ndarray, rng: np.random.Generator
                               ) -> tuple[np.ndarray, np.ndarray]:
    """Column-sliced composite: each part's registered twin on its span.

    Needs ``op.spans`` (the encoding's ``part_spans``) to know where each
    part lives in the stacked row; ``None`` parts copy through.  Part
    twins must preserve their slice's dtype (true for all integer-genome
    operators -- the composite encodings stack to int64 rows).
    """
    if op.spans is None:
        raise ValueError(
            "composite crossover has no part spans; the encoding must "
            "publish part_spans for the array substrate (or use "
            "substrate='object')")
    CA, CB = A.copy(), B.copy()
    col = 0
    for part_op, width in zip(op.parts, op.spans):
        lo, hi = col, col + width
        if part_op is not None and width > 0:
            ca, cb = _lookup(_BATCH_CROSSOVERS, part_op, "crossover")(
                part_op, A[:, lo:hi], B[:, lo:hi], rng)
            CA[:, lo:hi] = ca
            CB[:, lo:hi] = cb
        col = hi
    return CA, CB


@register_batch_crossover(ArithmeticCrossover)
def _batch_arithmetic(op: ArithmeticCrossover, A: np.ndarray, B: np.ndarray,
                      rng: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray]:
    xp = _xp()
    A = xp.asarray(A, dtype=xp.float64)
    B = xp.asarray(B, dtype=xp.float64)
    if op.fixed_weight is not None:
        w = op.fixed_weight
    else:
        w = rng.random((A.shape[0], 1))
    return w * A + (1 - w) * B, (1 - w) * A + w * B


# -- batch mutations -------------------------------------------------------------

def register_batch_mutation(scalar_cls: type):
    """Register ``fn(op, X, rng) -> X'`` as the batch twin."""
    def deco(fn):
        _BATCH_MUTATIONS[scalar_cls] = fn
        return fn
    return deco


@register_batch_mutation(SwapMutation)
def _batch_swap(op: SwapMutation, X: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
    xp = _xp()
    m, n = X.shape
    out = X.copy()
    if n < 2:
        return out
    rows = xp.arange(m, dtype=xp.int64)
    for _ in range(op.pairs):
        i, j = _sorted_distinct_pairs(n, m, rng)
        vi = out[rows, i].copy()
        out[rows, i] = out[rows, j]
        out[rows, j] = vi
    return out


@register_batch_mutation(ShiftMutation)
def _batch_shift(op: ShiftMutation, X: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
    m, n = X.shape
    if n < 2:
        return X.copy()
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n - 1, size=m)
    return shift_kernel(X, src, dst)


@register_batch_mutation(InversionMutation)
def _batch_inversion(op: InversionMutation, X: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    m, n = X.shape
    if n < 2:
        return X.copy()
    lo, hi = _sorted_distinct_pairs(n, m, rng)
    return inversion_kernel(X, lo, hi)


@register_batch_mutation(AssignmentMutation)
def _batch_assignment(op: AssignmentMutation, X: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
    """Row-wise assignment reset: mutated genes redraw in their domain.

    Gene ``j`` belongs to domain ``domain_sizes[j % len(domain_sizes)]``,
    the same modulo the scalar operator applies; the redraw itself is
    vectorised (distribution-equivalent, like every batch mutation).
    """
    out = X.copy()
    mask = rng.random(out.shape) < op.rate
    if mask.any():
        # domain table is host-side operator state, like op.domain_sizes
        sizes = np.maximum(np.asarray(op.domain_sizes, dtype=np.int64), 1)
        hi = sizes[np.arange(out.shape[1]) % sizes.size]
        out[mask] = rng.integers(0, np.broadcast_to(hi, out.shape)[mask])
    return out


@register_batch_mutation(CompositeMutation)
def _batch_composite_mutation(op: CompositeMutation, X: np.ndarray,
                              rng: np.random.Generator) -> np.ndarray:
    """Column-sliced composite: each part's registered twin on its span."""
    if op.spans is None:
        raise ValueError(
            "composite mutation has no part spans; the encoding must "
            "publish part_spans for the array substrate (or use "
            "substrate='object')")
    out = X.copy()
    col = 0
    for part_op, width in zip(op.parts, op.spans):
        lo, hi = col, col + width
        if part_op is not None and width > 0:
            out[:, lo:hi] = _lookup(_BATCH_MUTATIONS, part_op, "mutation")(
                part_op, X[:, lo:hi], rng)
        col = hi
    return out


@register_batch_mutation(GaussianKeyMutation)
def _batch_gaussian(op: GaussianKeyMutation, X: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    xp = _xp()
    out = xp.asarray(X, dtype=xp.float64).copy()
    mask = rng.random(out.shape) < op.rate
    hits = int(mask.sum())
    if hits:
        out[mask] = xp.clip(out[mask] + rng.normal(0, op.sigma, hits),
                            0.0, 1.0 - 1e-12)
    return out


# -- batch selections ------------------------------------------------------------
#
# Contract: identical RNG calls to the scalar operator, returning the
# chosen *indices* instead of Individual references.  This is what makes
# rate-0 array generations exactly reproduce object generations.

def register_batch_selection(scalar_cls: type):
    """Register ``fn(op, fitness, objectives, k, rng) -> idx`` as twin."""
    def deco(fn):
        _BATCH_SELECTIONS[scalar_cls] = fn
        return fn
    return deco


@register_batch_selection(RouletteWheelSelection)
def _batch_roulette(op, fitness, objectives, k, rng) -> np.ndarray:
    xp = _xp()
    probs = _normalised_probs(fitness)
    return xp.asarray(
        rng.choice(fitness.size, size=k, replace=True, p=probs),
        dtype=xp.int64)


@register_batch_selection(StochasticUniversalSampling)
def _batch_sus(op, fitness, objectives, k, rng) -> np.ndarray:
    xp = _xp()
    probs = _normalised_probs(fitness)
    cum = xp.cumsum(probs)
    start = rng.random() / k
    pointers = start + xp.arange(k, dtype=xp.int64) / k
    idx = xp.searchsorted(cum, pointers, side="right")
    idx = xp.clip(idx, 0, fitness.size - 1)
    # the scalar twin shuffles a Python list of chosen individuals; use a
    # list here too so the Fisher-Yates draws (and permutation) match
    chosen = [int(i) for i in idx]
    rng.shuffle(chosen)
    return xp.asarray(chosen, dtype=xp.int64)


@register_batch_selection(TournamentSelection)
def _batch_tournament(op: TournamentSelection, fitness, objectives, k,
                      rng) -> np.ndarray:
    xp = _xp()
    n = fitness.size
    entrants = rng.integers(0, n, size=(k, op.size))
    winners = entrants[xp.arange(k, dtype=xp.int64),
                       xp.argmax(fitness[entrants], axis=1)]
    return winners.astype(xp.int64)


@register_batch_selection(ElitistRouletteSelection)
def _batch_elitist_roulette(op: ElitistRouletteSelection, fitness,
                            objectives, k, rng) -> np.ndarray:
    xp = _xp()
    n_elite = min(k, int(round(op.elite_fraction * k)))
    elites = xp.stable_argsort(objectives)[:n_elite]
    rest = _batch_roulette(op._roulette, fitness, objectives, k - n_elite,
                           rng)
    return xp.concatenate([elites.astype(xp.int64), rest])


@register_batch_selection(RandomSelection)
def _batch_random(op, fitness, objectives, k, rng) -> np.ndarray:
    xp = _xp()
    return xp.asarray(rng.integers(0, fitness.size, size=k), dtype=xp.int64)


@register_batch_selection(RankSelection)
def _batch_rank(op, fitness, objectives, k, rng) -> np.ndarray:
    xp = _xp()
    order = xp.argsort(xp.argsort(fitness))  # 0 = worst
    weights = (order + 1).astype(xp.float64)
    probs = weights / weights.sum()
    return xp.asarray(
        rng.choice(fitness.size, size=k, replace=True, p=probs),
        dtype=xp.int64)


# -- dispatch --------------------------------------------------------------------

def _lookup(registry: dict[type, Callable], op, what: str) -> Callable:
    for cls in type(op).__mro__:
        if cls in registry:
            return registry[cls]
    supported = sorted(c.__name__ for c in registry)
    raise ValueError(
        f"no batch {what} registered for {type(op).__name__}; the array "
        f"substrate supports: {supported} (register one via "
        f"repro.operators.batch.register_batch_{what})")


def batch_selection_for(op: Selection) -> Callable:
    """``(fitness, objectives, k, rng) -> idx`` twin of scalar ``op``."""
    fn = _lookup(_BATCH_SELECTIONS, op, "selection")
    return lambda fitness, objectives, k, rng: fn(op, fitness, objectives,
                                                  k, rng)


def batch_crossover_for(op: Crossover) -> Callable:
    """``(A, B, rng) -> (CA, CB)`` twin of scalar ``op``."""
    fn = _lookup(_BATCH_CROSSOVERS, op, "crossover")
    return lambda A, B, rng: fn(op, A, B, rng)


def batch_mutation_for(op: Mutation) -> Callable:
    """``(X, rng) -> X'`` twin of scalar ``op``."""
    fn = _lookup(_BATCH_MUTATIONS, op, "mutation")
    return lambda X, rng: fn(op, X, rng)


def supported_batch_operators() -> dict[str, list[str]]:
    """Scalar operator class names with a registered batch twin."""
    return {
        "selection": sorted(c.__name__ for c in _BATCH_SELECTIONS),
        "crossover": sorted(c.__name__ for c in _BATCH_CROSSOVERS),
        "mutation": sorted(c.__name__ for c in _BATCH_MUTATIONS),
    }
