"""Giffler-Thompson-based crossover (Mui, Hoa & Tuyen [17]).

[17]: "the crossover hired a GT algorithm implemented on three parents".
The operator runs the Giffler-Thompson active-schedule construction; at
every conflict set it consults a *randomly chosen parent of three* and
schedules the conflict operation that parent sequences earliest.  The
child is therefore always an active schedule mixing the orderings of all
three parents -- crossover and schedule repair in one step.

The operator works on permutation-with-repetition chromosomes (the
operation-based JSSP encoding) and needs the instance, so unlike the
generic operators in :mod:`repro.operators.crossover` it is constructed
per problem.
"""

from __future__ import annotations

import numpy as np

from ..scheduling.instance import JobShopInstance

__all__ = ["GTThreeParentCrossover"]


class GTThreeParentCrossover:
    """Three-parent G&T crossover over operation-based chromosomes.

    Standard two-argument crossover signature; the third parent is drawn
    internally by re-mixing the two arguments (a fresh random interleave),
    which preserves the published three-voice behaviour without changing
    the engine's pair-based calling convention.  Pass ``strict_parents=3``
    via :meth:`recombine` to supply all three parents explicitly.
    """

    def __init__(self, instance: JobShopInstance):
        self.instance = instance
        self.n = instance.n_jobs
        self.g = instance.n_stages

    # -- public API ---------------------------------------------------------
    def __call__(self, a: np.ndarray, b: np.ndarray,
                 rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        third = self._mix(a, b, rng)
        child_a = self.recombine([a, b, third], rng)
        child_b = self.recombine([b, a, third], rng)
        return child_a, child_b

    def recombine(self, parents: list[np.ndarray],
                  rng: np.random.Generator) -> np.ndarray:
        """Build one child from ``parents`` via G&T conflict resolution."""
        ranks = [self._occurrence_ranks(np.asarray(p, dtype=np.int64))
                 for p in parents]
        instance = self.instance
        job_ready = instance.release.copy()
        mach_ready = np.zeros(instance.n_machines)
        next_stage = np.zeros(self.n, dtype=np.int64)
        child: list[int] = []
        remaining = self.n * self.g
        while remaining:
            best_c, best_mach = np.inf, -1
            for j in range(self.n):
                s = next_stage[j]
                if s >= self.g:
                    continue
                mach = instance.routing[j, s]
                est = max(job_ready[j], mach_ready[mach])
                c = est + instance.processing[j, s]
                if c < best_c:
                    best_c, best_mach = c, mach
            conflict = []
            for j in range(self.n):
                s = next_stage[j]
                if s >= self.g or instance.routing[j, s] != best_mach:
                    continue
                est = max(job_ready[j], mach_ready[best_mach])
                if est < best_c:
                    conflict.append((j, int(s)))
            # the randomly chosen parent votes: earliest-sequenced op wins
            voter = ranks[int(rng.integers(0, len(ranks)))]
            job, s = min(conflict, key=lambda js: voter[js[0] * self.g + js[1]])
            start = max(job_ready[job], mach_ready[best_mach])
            end = start + instance.processing[job, s]
            job_ready[job] = end
            mach_ready[best_mach] = end
            next_stage[job] += 1
            child.append(job)
            remaining -= 1
        return np.asarray(child, dtype=np.int64)

    # -- helpers -------------------------------------------------------------
    def _occurrence_ranks(self, chromosome: np.ndarray) -> np.ndarray:
        """Position of each operation (j, s) in the chromosome."""
        ranks = np.empty(self.n * self.g, dtype=np.int64)
        seen = np.zeros(self.n, dtype=np.int64)
        for pos, job in enumerate(chromosome):
            ranks[job * self.g + seen[job]] = pos
            seen[job] += 1
        return ranks

    def _mix(self, a: np.ndarray, b: np.ndarray,
             rng: np.random.Generator) -> np.ndarray:
        """Random interleave of two chromosomes (the synthetic 3rd voice)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        quota = np.bincount(a, minlength=self.n).astype(np.int64)
        taken = np.zeros(self.n, dtype=np.int64)
        ia = ib = 0
        out = []
        while len(out) < a.size:
            src = a if rng.random() < 0.5 else b
            idx = ia if src is a else ib
            # advance the source pointer to the next gene with quota left
            while idx < src.size and taken[src[idx]] >= quota[src[idx]]:
                idx += 1
            if idx >= src.size:
                src = b if src is a else a
                idx = ib if src is b else ia
                while idx < src.size and taken[src[idx]] >= quota[src[idx]]:
                    idx += 1
            gene = int(src[idx])
            out.append(gene)
            taken[gene] += 1
            if src is a:
                ia = idx + 1
            else:
                ib = idx + 1
        return np.asarray(out, dtype=np.int64)
