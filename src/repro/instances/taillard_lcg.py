"""Taillard's portable pseudo-random generator (Taillard, EJOR 1993).

Taillard's benchmark suites (flow shop, job shop, open shop) are defined by
a small linear congruential generator so that instances can be re-created
from a seed on any machine:

    x_{k+1} = (16807 * x_k) mod (2^31 - 1)

implemented with the Schrage decomposition to avoid 64-bit overflow in the
original Pascal.  ``unif(low, high)`` maps the stream to integers.

We reproduce the *generator algorithm* exactly; the published per-instance
seed tables are not embedded (offline), so our "ta-like" instances use
documented seeds of our own (see :mod:`repro.instances.generators`).  Any
instance is perfectly reproducible from ``(seed, n, m)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TaillardLCG"]

_M = 2**31 - 1
_A = 16807
_B = 127773   # m div a
_C = 2836     # m mod a


class TaillardLCG:
    """The Taillard (1993) portable uniform generator."""

    def __init__(self, seed: int):
        if not 0 < seed < _M:
            raise ValueError(f"seed must be in (0, {_M})")
        self._x = int(seed)

    def next_raw(self) -> int:
        """Advance the stream; returns the raw state in (0, 2^31-1)."""
        k = self._x // _B
        x = _A * (self._x % _B) - k * _C
        if x < 0:
            x += _M
        self._x = x
        return x

    def next_float(self) -> float:
        """Uniform float in (0, 1)."""
        return self.next_raw() / _M

    def unif(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] (Taillard's ``unif``)."""
        return low + int(self.next_float() * (high - low + 1))

    def matrix(self, rows: int, cols: int, low: int, high: int) -> np.ndarray:
        """Row-major matrix of ``unif(low, high)`` draws."""
        out = np.empty((rows, cols), dtype=np.int64)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = self.unif(low, high)
        return out

    def permutation(self, n: int) -> np.ndarray:
        """Random permutation via Taillard's card-shuffling loop."""
        perm = np.arange(n, dtype=np.int64)
        for i in range(n - 1):
            j = self.unif(i, n - 1)
            perm[i], perm[j] = perm[j], perm[i]
        return perm
