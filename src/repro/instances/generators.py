"""Instance generators for every shop variant.

All generators are deterministic functions of an explicit ``seed`` driving
the :class:`~repro.instances.taillard_lcg.TaillardLCG` stream, following
Taillard's conventions: processing times uniform in [1, 99], job shop
routings as random permutations of the machines.

Due dates follow the TWK (total-work-content) rule ``D_j = tau * sum_k
P_jk`` or the slack rule; both are standard in the tardiness literature
and cover the surveyed papers' weighted-tardiness experiments.
"""

from __future__ import annotations

import numpy as np

from ..scheduling.instance import (FlexibleFlowShopInstance,
                                   FlexibleJobShopInstance, FlowShopInstance,
                                   JobShopInstance, OpenShopInstance)
from .taillard_lcg import TaillardLCG

__all__ = [
    "flow_shop",
    "job_shop",
    "open_shop",
    "flexible_flow_shop",
    "flexible_job_shop",
    "with_due_dates_twk",
    "with_weights",
]


def flow_shop(n_jobs: int, n_machines: int, seed: int = 1,
              lo: int = 1, hi: int = 99, name: str | None = None
              ) -> FlowShopInstance:
    """Taillard-style flow shop: processing times unif[lo, hi]."""
    gen = TaillardLCG(seed)
    # Taillard generates machine-major: times for machine 1, then 2, ...
    p = gen.matrix(n_machines, n_jobs, lo, hi).T.astype(float)
    return FlowShopInstance(
        name=name or f"fs-{n_jobs}x{n_machines}-s{seed}", processing=p)


def job_shop(n_jobs: int, n_machines: int, seed: int = 1,
             lo: int = 1, hi: int = 99, blocking: bool = False,
             name: str | None = None) -> JobShopInstance:
    """Taillard-style job shop: unif times + random machine permutations."""
    gen = TaillardLCG(seed)
    p = gen.matrix(n_jobs, n_machines, lo, hi).astype(float)
    routing = np.stack([gen.permutation(n_machines) for _ in range(n_jobs)])
    return JobShopInstance(
        name=name or f"js-{n_jobs}x{n_machines}-s{seed}",
        routing=routing, processing=p, blocking=blocking)


def open_shop(n_jobs: int, n_machines: int, seed: int = 1,
              lo: int = 1, hi: int = 99, name: str | None = None
              ) -> OpenShopInstance:
    """Taillard-style open shop: processing times unif[lo, hi]."""
    gen = TaillardLCG(seed)
    p = gen.matrix(n_jobs, n_machines, lo, hi).astype(float)
    return OpenShopInstance(
        name=name or f"os-{n_jobs}x{n_machines}-s{seed}", processing=p)


def flexible_flow_shop(n_jobs: int, machines_per_stage: tuple[int, ...],
                       seed: int = 1, lo: int = 1, hi: int = 99,
                       unrelated: bool = False,
                       setups: bool = False, setup_hi: int = 9,
                       name: str | None = None) -> FlexibleFlowShopInstance:
    """Hybrid flow shop; optionally unrelated machines and SD setups.

    ``unrelated=True`` draws a distinct duration per (job, stage, machine)
    -- the Rashidi et al. [38] environment; otherwise machines in a stage
    are identical.  ``setups=True`` adds sequence-dependent setup matrices
    per stage with times unif[1, setup_hi].
    """
    gen = TaillardLCG(seed)
    n_stages = len(machines_per_stage)
    p = gen.matrix(n_jobs, n_stages, lo, hi).astype(float)
    ppm = None
    if unrelated:
        ppm = [gen.matrix(n_jobs, k, lo, hi).astype(float)
               for k in machines_per_stage]
    setup = None
    if setups:
        setup = [gen.matrix(n_jobs + 1, n_jobs, 1, setup_hi).astype(float)
                 for _ in range(n_stages)]
    return FlexibleFlowShopInstance(
        name=name or f"hfs-{n_jobs}x{machines_per_stage}-s{seed}",
        processing=p, machines_per_stage=machines_per_stage,
        processing_per_machine=ppm, setup=setup)


def flexible_job_shop(n_jobs: int, n_machines: int, seed: int = 1,
                      stages: int | None = None, flexibility: int = 2,
                      lo: int = 1, hi: int = 99,
                      setups: bool = False, setup_hi: int = 9,
                      setup_attached: bool = True,
                      machine_release_hi: int = 0,
                      time_lag_hi: int = 0,
                      name: str | None = None) -> FlexibleJobShopInstance:
    """FJSP generator with the Defersha & Chen [36] realism knobs.

    Each operation is eligible on ``flexibility`` machines (its routed
    machine plus random alternates) with durations unif[lo, hi] per
    machine.  Optional: sequence-dependent setups, machine release dates
    unif[0, machine_release_hi], inter-stage time lags unif[0, time_lag_hi].
    """
    gen = TaillardLCG(seed)
    g = stages or n_machines
    operations = []
    for _j in range(n_jobs):
        job_ops = []
        route = gen.permutation(n_machines)
        for s in range(g):
            base_mach = int(route[s % n_machines])
            alts = {base_mach: float(gen.unif(lo, hi))}
            while len(alts) < min(flexibility, n_machines):
                m = gen.unif(0, n_machines - 1)
                if m not in alts:
                    alts[int(m)] = float(gen.unif(lo, hi))
            job_ops.append(alts)
        operations.append(job_ops)
    setup = None
    if setups:
        setup = [gen.matrix(n_jobs + 1, n_jobs, 1, setup_hi).astype(float)
                 for _ in range(n_machines)]
    machine_release = None
    if machine_release_hi > 0:
        machine_release = np.array(
            [float(gen.unif(0, machine_release_hi)) for _ in range(n_machines)])
    time_lag = None
    if time_lag_hi > 0:
        time_lag = [[float(gen.unif(0, time_lag_hi)) for _ in range(g - 1)]
                    for _ in range(n_jobs)]
    return FlexibleJobShopInstance(
        name=name or f"fjsp-{n_jobs}x{n_machines}-s{seed}",
        operations=operations, setup=setup, setup_attached=setup_attached,
        machine_release=machine_release, time_lag=time_lag)


def with_due_dates_twk(instance, tau: float = 1.5, seed: int = 1):
    """Attach TWK due dates ``D_j = tau * (total work of job j)`` in place.

    ``tau`` < 1 makes most jobs late (tight); > 2 makes most early (loose).
    A small multiplicative jitter from the Taillard stream de-synchronises
    ties deterministically.
    """
    gen = TaillardLCG(seed)
    if hasattr(instance, "processing") and instance.processing is not None \
            and np.ndim(instance.processing) == 2:
        work = np.asarray(instance.processing).sum(axis=1)
    else:  # flexible job shop: mean duration per operation
        work = np.array([
            sum(float(np.mean(list(alts.values()))) for alts in job_ops)
            for job_ops in instance.operations
        ])
    jitter = np.array([0.9 + 0.2 * gen.next_float()
                       for _ in range(instance.n_jobs)])
    instance.due = tau * work * jitter
    return instance


def with_weights(instance, lo: int = 1, hi: int = 10, seed: int = 1):
    """Attach integer job weights unif[lo, hi] in place."""
    gen = TaillardLCG(seed)
    instance.weights = np.array(
        [float(gen.unif(lo, hi)) for _ in range(instance.n_jobs)])
    return instance
