"""Benchmark instances: embedded classics, shaped stand-ins, generators."""

from .taillard_lcg import TaillardLCG
from .generators import (flexible_flow_shop, flexible_job_shop, flow_shop,
                         job_shop, open_shop, with_due_dates_twk, with_weights)
from .library import (FT06, FT06_OPTIMUM, KNOWN_OPTIMA, available_instances,
                      get_instance, known_lower_bound, known_optimum)

__all__ = [
    "TaillardLCG",
    "flow_shop", "job_shop", "open_shop", "flexible_flow_shop",
    "flexible_job_shop", "with_due_dates_twk", "with_weights",
    "FT06", "FT06_OPTIMUM", "KNOWN_OPTIMA", "available_instances",
    "get_instance", "known_optimum", "known_lower_bound",
]
