"""Stochastic job shop scheduling (Gu, Gu & Gu [28]).

[28] constructs "a stochastic job shop scheduling problem by a stochastic
expected value model": processing times are random variables and the
objective is the expected makespan.  The standard computational treatment
-- and ours -- estimates the expectation by common-random-number (CRN)
Monte-Carlo sampling: every chromosome is scored against the *same* K
sampled scenarios, which removes sampling noise from chromosome
comparisons and keeps the GA deterministic given the scenario seed.

Scoring has two bit-identical paths: the scalar per-scenario loop
(:meth:`StochasticJobShopInstance.expected_makespan`, the readable
reference) and the batch tensor path
(:meth:`StochasticJobShopInstance.batch_expected_makespan`), which decodes
all ``K * pop`` (scenario, chromosome) pairs in one flattened scan via
:func:`~repro.scheduling.batch.batch_completion_operation_sequence_scenarios`
and accumulates the scenario mean in the same order as the scalar loop.
"""

from __future__ import annotations

import numpy as np

from ..core.backend import active_namespace as _xp
from ..encodings.base import GenomeKind
from ..scheduling.batch import batch_completion_operation_sequence_scenarios
from ..scheduling.instance import JobShopInstance
from ..scheduling.jobshop import (decode_operation_sequence,
                                  operation_sequence_makespan)
from ..scheduling.schedule import Schedule

__all__ = ["StochasticJobShopInstance", "StochasticJobShopEncoding"]


class StochasticJobShopInstance:
    """Job shop whose durations are random: ``P_js ~ Uniform or Normal``.

    Parameters
    ----------
    base:
        deterministic instance providing routings and *mean* durations.
    spread:
        half-width of the uniform noise / std-dev fraction of the normal.
    distribution:
        ``"uniform"`` (mean*(1 +/- spread)) or ``"normal"``
        (mean, std = spread*mean, truncated at >= 0.05*mean).
    n_scenarios:
        CRN sample count K.
    seed:
        scenario seed; two instances with equal seeds share scenarios.
    """

    def __init__(self, base: JobShopInstance, spread: float = 0.25,
                 distribution: str = "uniform", n_scenarios: int = 16,
                 seed: int = 0):
        if distribution not in ("uniform", "normal"):
            raise ValueError("distribution must be 'uniform' or 'normal'")
        if not 0 <= spread < 1:
            raise ValueError("spread must be in [0, 1)")
        if n_scenarios < 1:
            raise ValueError("need at least one scenario")
        self.base = base
        self.spread = spread
        self.distribution = distribution
        self.n_scenarios = n_scenarios
        self.seed = seed
        self.name = f"stoch-{base.name}"
        rng = np.random.default_rng(seed)
        mean = base.processing
        scenarios = []
        for _ in range(n_scenarios):
            if distribution == "uniform":
                noise = rng.uniform(1 - spread, 1 + spread, size=mean.shape)
            else:
                noise = np.maximum(rng.normal(1.0, spread, size=mean.shape),
                                   0.05)
            scenarios.append(mean * noise)
        self.scenarios: list[np.ndarray] = scenarios
        # (K, n_jobs, n_stages) stack feeding the batch CRN kernel
        self.processing_stack = np.stack(scenarios)
        # scenario instances are immutable; built lazily, cached forever
        # (the scalar path used to reconstruct all K per evaluation)
        self._scenario_cache: dict[int, JobShopInstance] = {}

    @property
    def n_jobs(self) -> int:
        return self.base.n_jobs

    @property
    def n_machines(self) -> int:
        return self.base.n_machines

    def scenario_instance(self, k: int) -> JobShopInstance:
        """Deterministic instance of scenario ``k`` (cached)."""
        if k not in self._scenario_cache:
            self._scenario_cache[k] = JobShopInstance(
                name=f"{self.name}-sc{k}",
                routing=self.base.routing,
                processing=self.scenarios[k],
                release=self.base.release,
                due=self.base.due,
                weights=self.base.weights)
        return self._scenario_cache[k]

    def expected_makespan(self, sequence: np.ndarray) -> float:
        """CRN estimate of E[Cmax] for an operation sequence (scalar path)."""
        total = 0.0
        for k in range(self.n_scenarios):
            total += operation_sequence_makespan(self.scenario_instance(k),
                                                 sequence)
        return total / self.n_scenarios

    def batch_expected_makespan(self, sequences: np.ndarray) -> np.ndarray:
        """CRN estimates of E[Cmax] for a whole chromosome matrix.

        One vectorised decode over the ``(K, pop, n_jobs)`` completion
        tensor; the scenario mean is accumulated scenario-by-scenario in
        the same order as :meth:`expected_makespan`, so the result is
        bit-identical to the scalar loop per row.
        """
        xp = _xp()
        seqs = xp.asarray(sequences, dtype=xp.int64)
        if seqs.ndim == 1:
            seqs = seqs[None, :]
        if seqs.shape[0] == 0:
            return xp.zeros(0)
        completion = batch_completion_operation_sequence_scenarios(
            self.base, seqs, self.processing_stack)
        cmax = completion.max(axis=2)          # (K, pop)
        total = xp.zeros(seqs.shape[0])
        for k in range(self.n_scenarios):      # ordered sum: matches the
            total += cmax[k]                   # scalar accumulation bitwise
        return total / self.n_scenarios


class StochasticJobShopEncoding:
    """Operation-based encoding scored by expected makespan."""

    kind = GenomeKind.REPETITION

    def __init__(self, instance: StochasticJobShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        base = np.repeat(np.arange(self.instance.n_jobs, dtype=np.int64),
                         self.instance.base.n_stages)
        rng.shuffle(base)
        return base

    def decode(self, genome: np.ndarray) -> Schedule:
        """Schedule under the *mean* scenario (for reporting/Gantt)."""
        return decode_operation_sequence(self.instance.base, genome)

    def batch_makespan(self, matrix: np.ndarray) -> np.ndarray:
        """Expected makespans of a ``(pop, n_jobs * n_stages)`` matrix."""
        return self.instance.batch_expected_makespan(matrix)

    def fast_makespan(self, genome: np.ndarray) -> float:
        mat = np.asarray(genome, dtype=np.int64)[None, :]
        return float(self.instance.batch_expected_makespan(mat)[0])
