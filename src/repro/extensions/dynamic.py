"""Dynamic shop scheduling: predictive-reactive rescheduling (Tang [9]).

Section II of the survey lists the "dynamic environment" as a modern
integrated factor, citing Tang et al. [9]'s "predictive reactive approach"
for dynamic flexible flow shops.  The predictive-reactive loop is:

1. build a *predictive* schedule for the known jobs with a GA,
2. execute until an event fires (job arrival, machine breakdown),
3. freeze everything already started, then *reactively* re-optimise the
   remaining work with the GA, seeded with the old plan,
4. repeat until the event stream is exhausted.

The implementation is shop-agnostic at the event level but ships a
concrete flow shop rescheduler used by the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.ga import GAConfig, SimpleGA
from ..core.termination import MaxGenerations
from ..encodings.base import Problem
from ..encodings.permutation import FlowShopPermutationEncoding
from ..scheduling.instance import FlowShopInstance

__all__ = ["Event", "JobArrival", "MachineBreakdown", "EventStream",
           "PredictiveReactiveScheduler", "ReschedulePoint"]


@dataclass(frozen=True)
class Event:
    """Base event: something happens at ``time``."""

    time: float


@dataclass(frozen=True)
class JobArrival(Event):
    """A new job arrives: one row of processing times."""

    processing: tuple[float, ...] = ()


@dataclass(frozen=True)
class MachineBreakdown(Event):
    """Machine ``machine`` is down for ``duration`` time units."""

    machine: int = 0
    duration: float = 0.0


class EventStream:
    """Time-ordered event list."""

    def __init__(self, events: Sequence[Event]):
        self.events = sorted(events, key=lambda e: e.time)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class ReschedulePoint:
    """Record of one reactive re-optimisation."""

    time: float
    trigger: Event
    jobs_remaining: int
    predicted_makespan: float


class PredictiveReactiveScheduler:
    """Predictive-reactive GA loop for a dynamic flow shop.

    Jobs not yet *started on machine 0* at an event time are re-sequenced;
    jobs already in process keep their position (their remaining work is
    modelled by adjusting machine release times).  Breakdowns push the
    affected machine's availability forward.

    Parameters
    ----------
    initial:
        flow shop instance of the initially known jobs.
    config / generations / seed:
        GA settings reused at every (re)scheduling point.
    """

    def __init__(self, initial: FlowShopInstance,
                 config: GAConfig | None = None, generations: int = 30,
                 seed: int | None = None):
        self.instance = initial
        self.config = config or GAConfig(population_size=30)
        self.generations = generations
        self.seed = seed if seed is not None else 0
        self.reschedules: list[ReschedulePoint] = []
        self._round = 0

    def _optimise(self, instance: FlowShopInstance) -> tuple[np.ndarray, float]:
        problem = Problem(FlowShopPermutationEncoding(instance))
        ga = SimpleGA(problem, self.config,
                      MaxGenerations(self.generations),
                      seed=self.seed + self._round)
        self._round += 1
        result = ga.run()
        return np.asarray(result.best.genome), result.best_objective

    def run(self, events: EventStream) -> tuple[np.ndarray, float]:
        """Process the event stream; returns (final sequence, makespan).

        The returned makespan is for the *final* instance state (all
        arrived jobs, all breakdown delays folded into release times) --
        the quantity Tang et al. [9] report as the realised schedule
        quality.
        """
        instance = self.instance
        sequence, cmax = self._optimise(instance)
        for event in events:
            instance = self._apply_event(instance, event)
            sequence, cmax = self._optimise(instance)
            self.reschedules.append(ReschedulePoint(
                time=event.time, trigger=event,
                jobs_remaining=instance.n_jobs,
                predicted_makespan=cmax))
        return sequence, cmax

    def _apply_event(self, instance: FlowShopInstance,
                     event: Event) -> FlowShopInstance:
        if isinstance(event, JobArrival):
            if len(event.processing) != instance.n_machines:
                raise ValueError("arriving job needs one time per machine")
            processing = np.vstack([instance.processing,
                                    np.asarray(event.processing, dtype=float)])
            release = np.concatenate([instance.release, [event.time]])
            due = np.concatenate([instance.due, [np.inf]])
            weights = np.concatenate([instance.weights, [1.0]])
            return FlowShopInstance(name=instance.name + "+job",
                                    processing=processing, release=release,
                                    due=due, weights=weights)
        if isinstance(event, MachineBreakdown):
            # a breakdown delays every job's pass through that machine; we
            # model it by inflating processing times of unstarted jobs on
            # the broken machine proportionally to overlap probability --
            # conservatively: add the repair duration to the release of all
            # jobs (they cannot finish earlier than repair completion on a
            # single-route shop).
            release = instance.release.copy()
            release = np.maximum(release, event.time + event.duration
                                 * (instance.processing[:, event.machine] > 0))
            return FlowShopInstance(name=instance.name + "+brk",
                                    processing=instance.processing.copy(),
                                    release=release, due=instance.due.copy(),
                                    weights=instance.weights.copy())
        raise TypeError(f"unknown event type {type(event).__name__}")
