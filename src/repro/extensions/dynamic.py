"""Dynamic shop scheduling: predictive-reactive rescheduling (Tang [9]).

Section II of the survey lists the "dynamic environment" as a modern
integrated factor, citing Tang et al. [9]'s "predictive reactive approach"
for dynamic flexible flow shops.  The predictive-reactive loop is:

1. build a *predictive* schedule for the known jobs with a GA,
2. execute until an event fires (job arrival, machine breakdown),
3. freeze everything already started, then *reactively* re-optimise the
   remaining work with the GA, seeded with the old plan,
4. repeat until the event stream is exhausted.

Both promises of step 3 are honoured literally: jobs already started on
machine 0 at the event time keep their positions as a fixed prefix of
every candidate permutation (:class:`_SuffixEncoding` re-sequences only
the unstarted suffix), and each reactive solve is *warm-started* from the
incumbent population -- every previous candidate plan is projected onto
the surviving jobs (arrivals appended) and re-evaluated, so the GA
resumes from the knowledge it already paid for instead of restarting
cold.  The suffix encoding is an ordinary permutation encoding with a
``batch_makespan`` twin, so re-solves ride the vectorised flow-shop
kernel (and the array substrate) unchanged.

The implementation is shop-agnostic at the event level but ships a
concrete flow shop rescheduler used by the examples, the CLI ``dynamic``
scenario and the E25 conformance experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.ga import GAConfig, SimpleGA
from ..core.individual import Individual
from ..core.population import Population
from ..core.termination import MaxGenerations
from ..encodings.base import GenomeKind, Problem
from ..scheduling.flowshop import (flowshop_makespan,
                                   flowshop_makespan_population,
                                   flowshop_schedule)
from ..scheduling.instance import FlowShopInstance

__all__ = ["Event", "JobArrival", "MachineBreakdown", "EventStream",
           "PredictiveReactiveScheduler", "ReschedulePoint",
           "demo_event_stream"]


@dataclass(frozen=True)
class Event:
    """Base event: something happens at ``time``."""

    time: float


@dataclass(frozen=True)
class JobArrival(Event):
    """A new job arrives: one row of processing times."""

    processing: tuple[float, ...] = ()


@dataclass(frozen=True)
class MachineBreakdown(Event):
    """Machine ``machine`` is down for ``duration`` time units."""

    machine: int = 0
    duration: float = 0.0


class EventStream:
    """Time-ordered event list."""

    def __init__(self, events: Sequence[Event]):
        self.events = sorted(events, key=lambda e: e.time)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class ReschedulePoint:
    """Record of one reactive re-optimisation.

    ``jobs_remaining`` counts every job of the post-event instance (the
    historical meaning); ``frozen`` of them were already started and kept
    their positions, so ``jobs_remaining - frozen`` were re-sequenced.
    """

    time: float
    trigger: Event
    jobs_remaining: int
    predicted_makespan: float
    frozen: int = 0


class _SuffixEncoding:
    """Permutation encoding over the unstarted suffix of a dynamic plan.

    A genome permutes only the ``remaining`` (unfrozen) jobs; evaluation
    always prepends the frozen prefix, so in-process work keeps its
    committed order while the GA re-sequences everything else.  With an
    empty prefix this is exactly the standard flow-shop permutation
    encoding.  ``batch_makespan`` rides the vectorised population kernel.
    """

    kind = GenomeKind.PERMUTATION

    def __init__(self, instance: FlowShopInstance, prefix: np.ndarray):
        self.instance = instance
        self.prefix = np.asarray(prefix, dtype=np.int64)
        mask = np.ones(instance.n_jobs, dtype=bool)
        mask[self.prefix] = False
        self.remaining = np.flatnonzero(mask).astype(np.int64)

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.permutation(len(self.remaining)).astype(np.int64)

    def full_permutation(self, genome: np.ndarray) -> np.ndarray:
        suffix = self.remaining[np.asarray(genome, dtype=np.int64)]
        return np.concatenate([self.prefix, suffix])

    def full_permutations(self, matrix: np.ndarray) -> np.ndarray:
        mat = np.asarray(matrix, dtype=np.int64)
        prefix = np.tile(self.prefix, (mat.shape[0], 1))
        return np.concatenate([prefix, self.remaining[mat]], axis=1)

    def project(self, full_perm: np.ndarray) -> np.ndarray:
        """Suffix genome whose job order follows ``full_perm``.

        The warm-start projection: remaining jobs keep their relative
        order from the old plan; jobs the old plan never saw (arrivals)
        are appended in id order.
        """
        position = {int(job): i for i, job in enumerate(self.remaining)}
        order = [position[int(j)] for j in full_perm if int(j) in position]
        seen = set(order)
        order.extend(i for i in range(len(self.remaining)) if i not in seen)
        return np.asarray(order, dtype=np.int64)

    def decode(self, genome: np.ndarray):
        return flowshop_schedule(self.instance, self.full_permutation(genome))

    def fast_makespan(self, genome: np.ndarray) -> float:
        return flowshop_makespan(self.instance, self.full_permutation(genome))

    def batch_makespan(self, matrix: np.ndarray) -> np.ndarray:
        mat = np.asarray(matrix, dtype=np.int64)
        if mat.ndim != 2:
            raise ValueError("chromosome matrix must be 2-D")
        if mat.shape[0] == 0:
            return np.zeros(0)
        return flowshop_makespan_population(self.instance,
                                            self.full_permutations(mat))


class PredictiveReactiveScheduler:
    """Predictive-reactive GA loop for a dynamic flow shop.

    Jobs not yet *started on machine 0* at an event time are re-sequenced;
    jobs already in process keep their positions (a frozen prefix of every
    candidate permutation).  Breakdowns push the release of the affected,
    still-unstarted jobs past the repair; arrivals extend the job set.
    Each reactive solve is warm-started from the incumbent population
    unless ``warm_start=False`` (the cold-restart baseline).

    Parameters
    ----------
    initial:
        flow shop instance of the initially known jobs.
    config / generations / seed:
        GA settings reused at every (re)scheduling point.
    warm_start:
        seed each re-solve with the projected incumbent population
        (default) instead of a fresh random one.
    """

    def __init__(self, initial: FlowShopInstance,
                 config: GAConfig | None = None, generations: int = 30,
                 seed: int | None = None, warm_start: bool = True):
        self.instance = initial
        self.config = config or GAConfig(population_size=30)
        self.generations = generations
        self.seed = seed if seed is not None else 0
        self.warm_start = warm_start
        self.reschedules: list[ReschedulePoint] = []
        self._round = 0
        self._incumbent: list[np.ndarray] = []
        # event-driven session state: the instance as mutated by the
        # events handled so far (``self.instance`` stays the initial one),
        # the current committed plan, and its predicted makespan
        self.current_instance = initial
        self._sequence: np.ndarray | None = None
        self._cmax = float("nan")
        self._clock = float("-inf")

    @staticmethod
    def _repair(encoding: _SuffixEncoding, genome: np.ndarray,
                max_passes: int = 3) -> np.ndarray:
        """Best-improvement insertion repair of a projected plan.

        The projection keeps the old relative order but knows nothing
        about the event that invalidated it (an arrival lands at the
        tail, a breakdown reshuffles release dates), so one or two
        passes of full insertion descent -- every (remove, reinsert)
        variant evaluated in a single ``batch_makespan`` kernel call --
        turn it into a genuinely strong warm seed at negligible cost.
        """
        best = np.asarray(genome, dtype=np.int64)
        n = len(best)
        if n < 3:
            return best
        best_val = float(encoding.batch_makespan(best[None, :])[0])
        for _ in range(max_passes):
            variants = []
            for i in range(n):
                rest = np.delete(best, i)
                for j in range(n):
                    if j == i:
                        continue
                    variants.append(np.insert(rest, j, best[i]))
            values = encoding.batch_makespan(np.stack(variants))
            k = int(np.argmin(values))
            if values[k] >= best_val:
                break
            best, best_val = variants[k], float(values[k])
        return best

    def _seed_population(self, ga: SimpleGA,
                         encoding: _SuffixEncoding) -> None:
        """Install the projected incumbent as the GA's initial population.

        The incumbent best is projected and *repaired* (insertion
        descent) first; the remaining projections are deduplicated --
        a converged population is mostly copies -- and the freed slots
        filled with random immigrants, so the warm seed keeps the
        knowledge paid for so far without collapsing diversity.
        """
        size = ga.config.population_size
        genomes: list[np.ndarray] = []
        seen: set[bytes] = set()
        for rank, perm in enumerate(self._incumbent):
            if len(genomes) == size:
                break
            genome = encoding.project(perm)
            if rank == 0:
                genome = self._repair(encoding, genome)
            key = genome.tobytes()
            if key not in seen:
                seen.add(key)
                genomes.append(genome)
        while len(genomes) < size:
            genomes.append(encoding.random_genome(ga.rng))
        if ga.substrate == "array":
            matrix = np.stack(genomes)
            ga.adopt_arrays(matrix, ga._evaluate_matrix(matrix))
        else:
            pop = Population([Individual(g) for g in genomes])
            ga._evaluate(pop.members)
            ga.population = pop
        ga._notify()

    def _optimise(self, instance: FlowShopInstance,
                  prefix: np.ndarray) -> tuple[np.ndarray, float]:
        encoding = _SuffixEncoding(instance, prefix)
        seed = self.seed + self._round
        self._round += 1
        if len(encoding.remaining) <= 1:
            # nothing left to permute: the plan is fully determined
            sequence = encoding.full_permutation(
                np.arange(len(encoding.remaining), dtype=np.int64))
            self._incumbent = [sequence]
            return sequence, flowshop_makespan(instance, sequence)
        ga = SimpleGA(Problem(encoding), self.config,
                      MaxGenerations(self.generations), seed=seed)
        if self.warm_start and self._incumbent:
            self._seed_population(ga, encoding)
        result = ga.run()
        # best first: the next warm seed repairs and ranks from it
        self._incumbent = [
            encoding.full_permutation(np.asarray(result.best.genome))]
        self._incumbent.extend(
            encoding.full_permutation(np.asarray(ind.genome))
            for ind in result.population.members)
        return (encoding.full_permutation(np.asarray(result.best.genome)),
                result.best_objective)

    @staticmethod
    def _frozen_prefix(instance: FlowShopInstance, sequence: np.ndarray,
                       time: float) -> np.ndarray:
        """Jobs of ``sequence`` already started on machine 0 before ``time``.

        Machine-0 starts are non-decreasing along the sequence, so the
        started jobs form a prefix: the scan stops at the first job whose
        start reaches ``time``.
        """
        seq = np.asarray(sequence, dtype=np.int64)
        ready = 0.0
        count = 0
        for job in seq:
            start = max(ready, float(instance.release[job]))
            if start >= time:
                break
            ready = start + float(instance.processing[job, 0])
            count += 1
        return seq[:count]

    @property
    def sequence(self) -> np.ndarray | None:
        """The committed plan, or ``None`` before :meth:`start`."""
        return self._sequence

    @property
    def predicted_makespan(self) -> float:
        """Predicted makespan of the committed plan (NaN before start)."""
        return self._cmax

    def start(self) -> tuple[np.ndarray, float]:
        """Build the initial predictive schedule; idempotent.

        Step 1 of the predictive-reactive loop as a standalone call, so
        event-driven callers (the service's session endpoint) can obtain
        the baseline plan before any event exists.  Returns the committed
        (sequence, predicted makespan).
        """
        if self._sequence is None:
            self._sequence, self._cmax = self._optimise(
                self.current_instance, np.empty(0, dtype=np.int64))
        return self._sequence, self._cmax

    def handle_event(self, event: Event) -> ReschedulePoint:
        """React to one event: freeze started work, re-optimise the rest.

        The event-driven core of steps 2-3: callers push events as they
        happen (a service session POSTs them one at a time) and receive
        the incremental re-solve result.  Events must arrive in
        non-decreasing time order -- the frozen prefix of an earlier
        event cannot be reconstructed once a later one was committed.
        """
        if event.time < self._clock:
            raise ValueError(
                f"event at t={event.time:g} arrived after an event at "
                f"t={self._clock:g} was already handled; events must be "
                f"pushed in non-decreasing time order")
        self.start()
        self._clock = event.time
        frozen = self._frozen_prefix(self.current_instance, self._sequence,
                                     event.time)
        self.current_instance = self._apply_event(self.current_instance,
                                                  event, frozen)
        self._sequence, self._cmax = self._optimise(self.current_instance,
                                                    frozen)
        point = ReschedulePoint(
            time=event.time, trigger=event,
            jobs_remaining=self.current_instance.n_jobs,
            predicted_makespan=self._cmax,
            frozen=len(frozen))
        self.reschedules.append(point)
        return point

    def run(self, events: EventStream) -> tuple[np.ndarray, float]:
        """Process the event stream; returns (final sequence, makespan).

        The returned makespan is for the *final* instance state (all
        arrived jobs, all breakdown delays folded into release times) --
        the quantity Tang et al. [9] report as the realised schedule
        quality.  Equivalent to :meth:`start` followed by
        :meth:`handle_event` per event (the batch replay of a session).
        """
        self.start()
        for event in events:
            self.handle_event(event)
        self.final_sequence = self._sequence
        self.realised_makespan = self._cmax
        return self._sequence, self._cmax

    def _apply_event(self, instance: FlowShopInstance, event: Event,
                     frozen: np.ndarray) -> FlowShopInstance:
        if isinstance(event, JobArrival):
            if len(event.processing) != instance.n_machines:
                raise ValueError("arriving job needs one time per machine")
            processing = np.vstack([instance.processing,
                                    np.asarray(event.processing, dtype=float)])
            release = np.concatenate([instance.release, [event.time]])
            due = np.concatenate([instance.due, [np.inf]])
            weights = np.concatenate([instance.weights, [1.0]])
            return FlowShopInstance(name=instance.name + "+job",
                                    processing=processing, release=release,
                                    due=due, weights=weights)
        if isinstance(event, MachineBreakdown):
            # the repair delays every *affected* job's pass through the
            # broken machine; conservatively, push their release past the
            # repair (on a single-route shop they cannot finish earlier).
            # Jobs with zero processing on that machine never touch it,
            # and already-started (frozen) jobs keep their committed
            # schedule -- neither is bumped.
            affected = instance.processing[:, event.machine] > 0
            affected[np.asarray(frozen, dtype=np.int64)] = False
            release = np.where(
                affected,
                np.maximum(instance.release, event.time + event.duration),
                instance.release)
            return FlowShopInstance(name=instance.name + "+brk",
                                    processing=instance.processing.copy(),
                                    release=release, due=instance.due.copy(),
                                    weights=instance.weights.copy())
        raise TypeError(f"unknown event type {type(event).__name__}")


def demo_event_stream(instance: FlowShopInstance, n_events: int = 3,
                      seed: int = 0) -> EventStream:
    """Deterministic mixed event stream for a flow shop instance.

    Alternates job arrivals (processing rows drawn from the instance's
    own duration range via the Taillard stream, so scenarios are
    reproducible) with machine breakdowns.  Events are spread across the
    machine-0 busy span -- every job *starts* within the serial time of
    the first machine, so later events would find nothing left to
    re-sequence.  Used by the CLI ``dynamic`` scenario, the E25
    experiment and the tests.
    """
    from ..instances.taillard_lcg import TaillardLCG
    gen = TaillardLCG(seed + 1)
    lo = float(instance.processing.min())
    hi = float(instance.processing.max())
    horizon = float(instance.processing[:, 0].sum())
    events: list[Event] = []
    for i in range(n_events):
        time = horizon * (i + 1) / (n_events + 1)
        if i % 2 == 0:
            row = tuple(lo + (hi - lo) * gen.next_float()
                        for _ in range(instance.n_machines))
            events.append(JobArrival(time=time, processing=row))
        else:
            machine = int(gen.next_float() * instance.n_machines) \
                % instance.n_machines
            duration = 0.25 * horizon * (0.5 + gen.next_float())
            events.append(MachineBreakdown(time=time, machine=machine,
                                           duration=duration))
    return EventStream(events)
