"""Local search add-ons used by the surveyed hybrid GAs.

* Spanos et al. [29] pair their island GA with path relinking;
* Rashidi et al. [38] apply "a local search step or a Redirect procedure"
  after the conventional GA operators;
* Mui et al. [17] mutate via "neighborhood searching technique".

These helpers operate on raw genomes through a Problem, so they plug into
any engine (and into :class:`~repro.extensions.multiobjective.
WeightedIslandMOGA`'s ``local_search`` hook).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..encodings.base import Problem

__all__ = ["swap_hill_climb", "insertion_hill_climb", "redirect_procedure",
           "critical_path_descent", "exact_polish", "make_local_search"]


def swap_hill_climb(genome: np.ndarray, problem: Problem,
                    rng: np.random.Generator, attempts: int = 20
                    ) -> np.ndarray:
    """First-improvement hill climbing in the swap neighbourhood.

    Tries up to ``attempts`` random swaps, keeping each one that improves
    the objective.  Works on flat integer genomes (permutation /
    repetition); tuple genomes climb on their sequence part (part 1).
    """
    tuple_genome = isinstance(genome, tuple)
    seq = np.asarray(genome[1] if tuple_genome else genome).copy()
    rest = genome[0] if tuple_genome else None

    def rebuild(s):
        return (np.asarray(rest).copy(), s) if tuple_genome else s

    best_obj = problem.evaluate(rebuild(seq))
    n = seq.size
    for _ in range(attempts):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        seq[i], seq[j] = seq[j], seq[i]
        obj = problem.evaluate(rebuild(seq))
        if obj < best_obj:
            best_obj = obj
        else:
            seq[i], seq[j] = seq[j], seq[i]  # undo
    return rebuild(seq)


def insertion_hill_climb(genome: np.ndarray, problem: Problem,
                         rng: np.random.Generator, attempts: int = 20
                         ) -> np.ndarray:
    """First-improvement hill climbing in the insertion neighbourhood."""
    tuple_genome = isinstance(genome, tuple)
    seq = np.asarray(genome[1] if tuple_genome else genome).copy()
    rest = genome[0] if tuple_genome else None

    def rebuild(s):
        return (np.asarray(rest).copy(), s) if tuple_genome else s

    best_obj = problem.evaluate(rebuild(seq))
    best_seq = seq.copy()
    n = seq.size
    for _ in range(attempts):
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n - 1))
        v = best_seq[src]
        cand = np.insert(np.delete(best_seq, src), dst, v)
        obj = problem.evaluate(rebuild(cand))
        if obj < best_obj:
            best_obj = obj
            best_seq = cand
    return rebuild(best_seq)


def redirect_procedure(genome: np.ndarray, problem: Problem,
                       rng: np.random.Generator, kicks: int = 3,
                       attempts: int = 12) -> np.ndarray:
    """Rashidi's Redirect: perturb (kick) then re-descend, keep if better.

    A small iterated-local-search: apply ``kicks`` random swaps to escape
    the current basin, hill-climb, and return the better of (input,
    redirected) genomes.
    """
    base_obj = problem.evaluate(genome)
    tuple_genome = isinstance(genome, tuple)
    seq = np.asarray(genome[1] if tuple_genome else genome).copy()
    rest = genome[0] if tuple_genome else None

    def rebuild(s):
        return (np.asarray(rest).copy(), s) if tuple_genome else s

    for _ in range(kicks):
        i, j = rng.integers(0, seq.size, size=2)
        seq[i], seq[j] = seq[j], seq[i]
    kicked = swap_hill_climb(rebuild(seq), problem, rng, attempts=attempts)
    return kicked if problem.evaluate(kicked) < base_obj else genome


def critical_path_descent(genome: np.ndarray, problem: Problem,
                          rng: np.random.Generator, attempts: int = 10
                          ) -> np.ndarray:
    """Critical-path N1 descent for operation-based JSSP chromosomes.

    The classic job shop neighbourhood: only swapping *adjacent operations
    on a machine that lie on the critical path* can reduce the makespan.
    We locate the critical path via the disjunctive graph, try swapping
    critical machine-adjacent pairs in the chromosome (exchanging the two
    operations' occurrence positions), and keep improvements.

    Requires the problem's encoding to expose a ``JobShopInstance``
    (``problem.instance``); falls back to :func:`swap_hill_climb` for
    other problem types.
    """
    from ..scheduling.graph import DisjunctiveGraph
    from ..scheduling.instance import JobShopInstance

    instance = problem.instance
    if not isinstance(instance, JobShopInstance) or isinstance(genome, tuple):
        return swap_hill_climb(genome, problem, rng, attempts=attempts)

    dg = DisjunctiveGraph(instance)
    current = np.asarray(genome, dtype=np.int64).copy()
    best_obj = problem.evaluate(current)
    for _ in range(attempts):
        selection = dg.selection_from_sequence(current)
        path = dg.critical_path(selection)
        # machine-adjacent critical pairs
        pairs = [(u, v) for u, v in zip(path, path[1:])
                 if dg.machine(u) == dg.machine(v)]
        if not pairs:
            break
        u, v = pairs[int(rng.integers(0, len(pairs)))]
        cand = _swap_operations(current, dg, u, v)
        obj = problem.evaluate(cand)
        if obj < best_obj:
            current, best_obj = cand, obj
    return current


def _swap_operations(sequence: np.ndarray, dg, op_u: int, op_v: int
                     ) -> np.ndarray:
    """Swap the chromosome positions encoding operations u and v."""
    ju, su = dg.job_stage(op_u)
    jv, sv = dg.job_stage(op_v)
    out = sequence.copy()
    pos_u = pos_v = -1
    seen = {}
    for pos, job in enumerate(out):
        k = seen.get(int(job), 0)
        if job == ju and k == su:
            pos_u = pos
        if job == jv and k == sv:
            pos_v = pos
        seen[int(job)] = k + 1
    if pos_u >= 0 and pos_v >= 0:
        out[pos_u], out[pos_v] = out[pos_v], out[pos_u]
    return out


def exact_polish(genome: np.ndarray, problem: Problem,
                 rng: np.random.Generator, node_limit: int = 20_000,
                 max_ops: int = 64, attempts: int = 20) -> np.ndarray:
    """Memetic elite polish via the exact branch-and-bound oracle.

    Seeds the branch and bound with the elite's own makespan as the
    upper bound, so the search only expands nodes that could *strictly
    improve* on the chromosome -- on small instances a few thousand
    nodes either prove the elite optimal (returned unchanged, now with a
    certificate) or replace it with a strictly better genome.  Falls
    back to :func:`swap_hill_climb` when the instance is too large
    (``total_operations > max_ops``), the objective is not the makespan,
    or the problem class has no branch-and-bound solver; non-worsening
    like every hook here.
    """
    from ..exact.branch_and_bound import ExactUnsupported, solve_exact
    from ..exact.engine import genome_for_solution
    from ..scheduling.objectives import Makespan

    instance = problem.instance
    if (not isinstance(problem.objective, Makespan)
            or instance.total_operations > max_ops):
        return swap_hill_climb(genome, problem, rng, attempts=attempts)
    base_obj = problem.evaluate(genome)
    try:
        solution = solve_exact(instance, node_limit=node_limit,
                               upper_bound=base_obj)
        if solution.sequence is None:  # nothing beat the elite's bound
            return genome
        polished = genome_for_solution(problem, solution)
    except ExactUnsupported:
        return swap_hill_climb(genome, problem, rng, attempts=attempts)
    return polished if problem.evaluate(polished) < base_obj else genome


def make_local_search(kind: str = "swap", attempts: int = 20
                      ) -> Callable:
    """Factory for the MOGA ``local_search`` hook."""
    table = {
        "swap": lambda g, p, r: swap_hill_climb(g, p, r, attempts),
        "insertion": lambda g, p, r: insertion_hill_climb(g, p, r, attempts),
        "redirect": lambda g, p, r: redirect_procedure(g, p, r,
                                                       attempts=attempts),
        "critical_path": lambda g, p, r: critical_path_descent(
            g, p, r, attempts),
        "exact": lambda g, p, r: exact_polish(g, p, r, attempts=attempts),
    }
    if kind not in table:
        raise ValueError(f"unknown local search {kind!r}")
    return table[kind]
