"""Quantum-inspired GA components (Gu, Gu & Gu [28]).

[28] solves the stochastic JSSP with "a parallel quantum GA organized by
the island model with a hybrid star-shaped topology.  The information
communication was performed through a penetration migration at the upper
level and through a quantum crossover at the lower level.  Besides, the
roulette wheel selection, the cycle crossover and the Not Gate mutation
were designed as GA operators."

Quantum-inspired GAs encode individuals as vectors of Q-bit *angles*
``theta``; the amplitude pair ``(cos theta, sin theta)`` gives the
probability ``sin^2 theta`` of observing a 1.  Observation collapses the
Q-bit string to a classical bit string, which we map to a permutation via
the random-keys trick (bits weight a key vector).  Learning happens by
*rotating* angles toward the best observed solution.

Components:

* :class:`QBitIndividual` -- angles + observation + rotation,
* :class:`QuantumGA` -- a compact quantum evolutionary loop usable
  standalone or as one island,
* :func:`quantum_crossover` -- angle blending (the lower-level exchange),
* :func:`not_gate_mutation` -- flips ``theta -> pi/2 - theta``,
* :func:`penetration_migration` -- upper-level migration: the source's
  best angles partially overwrite the target's worst individual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["QBitIndividual", "QuantumGA", "quantum_crossover",
           "not_gate_mutation", "penetration_migration"]


@dataclass
class QBitIndividual:
    """A Q-bit chromosome: one rotation angle per (gene, bit)."""

    angles: np.ndarray  # (n_genes, n_bits) in [0, pi/2]
    objective: float | None = None
    keys: np.ndarray | None = None  # last observed key vector

    @staticmethod
    def random(rng: np.random.Generator, n_genes: int,
               n_bits: int = 8) -> "QBitIndividual":
        """Maximum-superposition initialisation (all angles = pi/4)."""
        jitter = rng.uniform(-0.05, 0.05, size=(n_genes, n_bits))
        return QBitIndividual(np.clip(np.pi / 4 + jitter, 0.0, np.pi / 2))

    def observe(self, rng: np.random.Generator) -> np.ndarray:
        """Collapse to a key vector in [0, 1) (bits -> binary fraction)."""
        probs = np.sin(self.angles) ** 2
        bits = rng.random(self.angles.shape) < probs
        weights = 0.5 ** np.arange(1, self.angles.shape[1] + 1)
        self.keys = bits @ weights
        return self.keys

    def rotate_toward(self, target_keys: np.ndarray, delta: float = 0.05
                      ) -> None:
        """Rotation gate: nudge each Q-bit toward the target's bits."""
        n_bits = self.angles.shape[1]
        weights = 0.5 ** np.arange(1, n_bits + 1)
        # reconstruct target bits greedily from its key values
        rem = np.asarray(target_keys, dtype=float).copy()
        for b in range(n_bits):
            take = rem >= weights[b] - 1e-12
            direction = np.where(take, 1.0, -1.0)
            self.angles[:, b] = np.clip(
                self.angles[:, b] + delta * direction, 0.0, np.pi / 2)
            rem = np.where(take, rem - weights[b], rem)


def quantum_crossover(a: QBitIndividual, b: QBitIndividual,
                      rng: np.random.Generator
                      ) -> tuple[QBitIndividual, QBitIndividual]:
    """Angle-space blend crossover (the lower-level exchange of [28])."""
    w = rng.random()
    ca = QBitIndividual(w * a.angles + (1 - w) * b.angles)
    cb = QBitIndividual((1 - w) * a.angles + w * b.angles)
    return ca, cb


def not_gate_mutation(ind: QBitIndividual, rng: np.random.Generator,
                      rate: float = 0.05) -> QBitIndividual:
    """Not-gate: swap the amplitudes of random Q-bits (theta -> pi/2-theta)."""
    angles = ind.angles.copy()
    mask = rng.random(angles.shape) < rate
    angles[mask] = np.pi / 2 - angles[mask]
    return QBitIndividual(angles)


def penetration_migration(source_best: QBitIndividual,
                          target: QBitIndividual,
                          fraction: float = 0.3,
                          rng: np.random.Generator | None = None
                          ) -> QBitIndividual:
    """Upper-level migration: copy a fraction of best angles into target."""
    rng = rng or np.random.default_rng(0)
    angles = target.angles.copy()
    mask = rng.random(angles.shape[0]) < fraction
    angles[mask] = source_best.angles[mask]
    return QBitIndividual(angles)


class QuantumGA:
    """Quantum-inspired GA over a key-decoded scheduling problem.

    Parameters
    ----------
    evaluate_keys:
        callable mapping a key vector in [0,1)^n to a minimised objective
        (e.g. random-keys JSSP decoding).
    n_genes:
        key-vector length.
    population_size, n_bits, rotation_delta, mutation_rate:
        quantum hyper-parameters.
    """

    def __init__(self, evaluate_keys: Callable[[np.ndarray], float],
                 n_genes: int, population_size: int = 20, n_bits: int = 8,
                 rotation_delta: float = 0.05, mutation_rate: float = 0.05,
                 crossover_rate: float = 0.6,
                 seed: int | np.random.Generator | None = None):
        from ..core.rng import make_rng
        self.evaluate_keys = evaluate_keys
        self.n_genes = n_genes
        self.rng = make_rng(seed)
        self.population = [QBitIndividual.random(self.rng, n_genes, n_bits)
                           for _ in range(population_size)]
        self.rotation_delta = rotation_delta
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.best_keys: np.ndarray | None = None
        self.best_objective = np.inf
        self.evaluations = 0
        self.history: list[float] = []

    def _observe_and_score(self) -> None:
        for ind in self.population:
            keys = ind.observe(self.rng)
            ind.objective = float(self.evaluate_keys(keys))
            self.evaluations += 1
            if ind.objective < self.best_objective:
                self.best_objective = ind.objective
                self.best_keys = keys.copy()

    def step(self) -> None:
        """One quantum generation: observe, select, vary, rotate."""
        self._observe_and_score()
        pop = sorted(self.population, key=lambda i: i.objective)
        n = len(pop)
        # roulette selection on rank, CX-like quantum crossover on angles
        next_pop: list[QBitIndividual] = [QBitIndividual(pop[0].angles.copy())]
        while len(next_pop) < n:
            i, j = self.rng.integers(0, max(1, n // 2), size=2)
            if self.rng.random() < self.crossover_rate:
                ca, cb = quantum_crossover(pop[int(i)], pop[int(j)], self.rng)
            else:
                ca = QBitIndividual(pop[int(i)].angles.copy())
                cb = QBitIndividual(pop[int(j)].angles.copy())
            for child in (ca, cb):
                if len(next_pop) >= n:
                    break
                child = not_gate_mutation(child, self.rng, self.mutation_rate)
                if self.best_keys is not None:
                    child.rotate_toward(self.best_keys, self.rotation_delta)
                next_pop.append(child)
        self.population = next_pop
        self.history.append(self.best_objective)

    def run(self, generations: int) -> float:
        """Run ``generations`` steps; returns the best objective found."""
        for _ in range(generations):
            self.step()
        # final observation so the last rotation is scored too
        self._observe_and_score()
        return self.best_objective
