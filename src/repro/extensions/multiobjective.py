"""Multi-objective machinery (Rashidi et al. [38], Tang et al. [9]).

[38] runs islands that each minimise a differently *weighted* combination
of (makespan, maximum tardiness): "The paired weights in different islands
are different with a small deviation between each successive pairs ...
all islands worked in parallel for Pareto optimal solutions."

Provided here:

* Pareto dominance and non-dominated sorting,
* a :class:`ParetoArchive` collecting non-dominated points across islands,
* 2-D hypervolume and coverage metrics used to compare fronts,
* :func:`weight_vectors` -- the evenly spread weight pairs of [38],
* :class:`WeightedIslandMOGA` -- the [38] algorithm: one island per
  weight pair, shared Pareto archive, optional local-search/Redirect
  post-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..core.ga import GAConfig, SimpleGA
from ..core.rng import spawn_rngs
from ..core.termination import MaxGenerations, Termination, TerminationState
from ..encodings.base import Problem
from ..scheduling.objectives import WeightedCombination

__all__ = ["dominates", "non_dominated_sort", "ParetoArchive",
           "hypervolume_2d", "coverage", "weight_vectors",
           "WeightedIslandMOGA"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (minimisation)."""
    a = tuple(a)
    b = tuple(b)
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def non_dominated_sort(points: Sequence[Sequence[float]]) -> list[list[int]]:
    """Fast non-dominated sorting; returns index fronts (front 0 = best)."""
    n = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    dom_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
            elif dominates(points[j], points[i]):
                dom_count[i] += 1
        if dom_count[i] == 0:
            fronts[0].append(i)
    k = 0
    while fronts[k]:
        nxt: list[int] = []
        for i in fronts[k]:
            for j in dominated_by[i]:
                dom_count[j] -= 1
                if dom_count[j] == 0:
                    nxt.append(j)
        fronts.append(nxt)
        k += 1
    return fronts[:-1]


@dataclass
class ParetoArchive:
    """Bounded archive of non-dominated (point, payload) entries."""

    capacity: int = 128
    entries: list[tuple[tuple[float, ...], Any]] = field(default_factory=list)

    def add(self, point: Sequence[float], payload: Any = None) -> bool:
        """Insert if non-dominated; prunes dominated entries.  Returns
        True when the point entered the archive."""
        pt = tuple(float(x) for x in point)
        for existing, _ in self.entries:
            if dominates(existing, pt) or existing == pt:
                return False
        self.entries = [(p, d) for p, d in self.entries
                        if not dominates(pt, p)]
        self.entries.append((pt, payload))
        if len(self.entries) > self.capacity:
            self._thin()
        return True

    def _thin(self) -> None:
        """Drop the most crowded entry (keeps extremes)."""
        pts = np.array([p for p, _ in self.entries])
        order = np.argsort(pts[:, 0])
        crowd = np.full(len(self.entries), np.inf)
        for k in range(1, len(order) - 1):
            crowd[order[k]] = float(
                np.sum(np.abs(pts[order[k + 1]] - pts[order[k - 1]])))
        drop = int(np.argmin(crowd))
        del self.entries[drop]

    def front(self) -> list[tuple[float, ...]]:
        """Archive points sorted by first objective."""
        return sorted(p for p, _ in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def hypervolume_2d(front: Sequence[Sequence[float]],
                   reference: Sequence[float]) -> float:
    """2-D dominated hypervolume w.r.t. ``reference`` (minimisation)."""
    ref_x, ref_y = float(reference[0]), float(reference[1])
    pts = sorted({(float(p[0]), float(p[1])) for p in front})
    hv = 0.0
    prev_y = ref_y
    for x, y in pts:
        if x >= ref_x or y >= prev_y:
            continue
        hv += (ref_x - x) * (prev_y - y)
        prev_y = y
    return hv


def coverage(front_a: Sequence[Sequence[float]],
             front_b: Sequence[Sequence[float]]) -> float:
    """C-metric: fraction of ``front_b`` dominated by some point of A."""
    if not front_b:
        return 0.0
    count = sum(1 for b in front_b
                if any(dominates(a, b) for a in front_a))
    return count / len(front_b)


def weight_vectors(n: int, epsilon: float = 0.02) -> list[tuple[float, float]]:
    """Evenly spread weight pairs (w, 1-w) with a small deviation between
    successive pairs (Rashidi [38]); clipped away from pure 0/1."""
    if n < 1:
        raise ValueError("need at least one weight pair")
    ws = np.linspace(epsilon, 1.0 - epsilon, n)
    return [(float(w), float(1.0 - w)) for w in ws]


class WeightedIslandMOGA:
    """One island per weight pair, all feeding one Pareto archive [38].

    Parameters
    ----------
    problem_factory:
        callable ``(weights) -> Problem`` building the scalarised problem
        for one island; the underlying objective must expose ``vector``.
    n_islands:
        number of weight pairs / islands.
    local_search:
        optional ``(genome, problem, rng) -> genome`` improvement step
        applied to each island's best after every epoch (the "local search
        step or Redirect procedure" of [38]).
    """

    def __init__(self, problem_factory: Callable[[tuple[float, float]], Problem],
                 n_islands: int = 5, config: GAConfig | None = None,
                 termination: Termination | None = None,
                 epoch: int = 5, seed: int | None = None,
                 local_search: Callable | None = None,
                 archive_capacity: int = 128):
        self.weights = weight_vectors(n_islands)
        self.problems = [problem_factory(w) for w in self.weights]
        self.termination = termination or MaxGenerations(50)
        self.epoch = epoch
        self.local_search = local_search
        rngs = spawn_rngs(seed, n_islands + 1)
        self._ls_rng = rngs[-1]
        cfg = config or GAConfig()
        self.islands = [SimpleGA(p, cfg, termination=MaxGenerations(0),
                                 seed=rngs[i])
                        for i, p in enumerate(self.problems)]
        self.archive = ParetoArchive(capacity=archive_capacity)
        self.state = TerminationState()

    def _archive_island(self, island: SimpleGA, problem: Problem) -> None:
        # one batch call: stack the candidates, decode completion times once,
        # reduce every criterion column-wise (bit-identical to per-genome
        # decoding; falls back to it for non-batchable problems)
        top = island.population.top(3)
        vectors = problem.objective_vectors([ind.genome for ind in top])
        for ind, vec in zip(top, vectors):
            self.archive.add(tuple(float(x) for x in vec), payload=ind.copy())

    def run(self) -> ParetoArchive:
        """Evolve all islands; returns the shared Pareto archive."""
        for isl in self.islands:
            isl.initialize()
        while not self.termination.done(self.state):
            for isl, prob in zip(self.islands, self.problems):
                for _ in range(self.epoch):
                    isl.step()
                if self.local_search is not None:
                    best = isl.population.best()
                    improved = self.local_search(best.genome, prob,
                                                 self._ls_rng)
                    obj = prob.evaluate(improved)
                    isl.state.evaluations += 1
                    if obj < best.objective:
                        worst_idx = int(np.argmax(isl.population.objectives()))
                        from ..core.individual import Individual
                        improved_ind = Individual(improved, objective=obj)
                        isl.population[worst_idx] = improved_ind
                        # feed the improvement straight into the archive:
                        # it may sit on a part of the front the island's
                        # scalarisation never visits again
                        self.archive.add(prob.objective_vector(improved),
                                         payload=improved_ind.copy())
                self._archive_island(isl, prob)
            self.state.generation += self.epoch
            self.state.evaluations = sum(i.state.evaluations
                                         for i in self.islands)
            best = min(i.population.best().objective for i in self.islands)
            self.state.record_best(best)
        return self.archive
