"""Fuzzy scheduling (Huang, Huang & Lai [24]).

[24] solves flow shop problems "with fuzzy processing times and fuzzy due
dates, where the possibility and necessity measures with exact formulas
were adopted to maximize the earliness and tardiness simultaneously".

This module implements the standard triangular-fuzzy-number (TFN) algebra
used in that literature:

* a TFN ``(a, b, c)`` with ``a <= b <= c``;
* addition is component-wise;
* the fuzzy max is approximated component-wise (the criterion-preserving
  approximation standard in fuzzy-scheduling GAs);
* ``possibility(C <= D)`` and ``necessity(C <= D)`` against a fuzzy due
  date follow the classic Dubois-Prade formulas;
* the *agreement index* (area of intersection over area of C) measures
  how well a completion time honours a due-date window.

A :class:`FuzzyFlowShopProblem` glues TFN arithmetic into the flow-shop
recurrence and exposes the [24]-style objective: maximise the minimum
agreement index (we minimise its negation to fit the engine convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scheduling.instance import FlowShopInstance
from .. import encodings
from ..encodings.base import GenomeKind

__all__ = ["TFN", "FuzzyFlowShopInstance", "FuzzyFlowShopEncoding",
           "fuzzy_flowshop_makespan", "agreement_index"]


@dataclass(frozen=True)
class TFN:
    """Triangular fuzzy number (a <= b <= c)."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise ValueError(f"TFN requires a <= b <= c, got {self}")

    def __add__(self, other: "TFN") -> "TFN":
        return TFN(self.a + other.a, self.b + other.b, self.c + other.c)

    def maximum(self, other: "TFN") -> "TFN":
        """Component-wise fuzzy max approximation."""
        return TFN(max(self.a, other.a), max(self.b, other.b),
                   max(self.c, other.c))

    def defuzzify(self) -> float:
        """Centroid defuzzification ((a + 2b + c) / 4, the common choice)."""
        return (self.a + 2 * self.b + self.c) / 4.0

    def possibility_leq(self, due: "TFN") -> float:
        """Possibility that this completion time meets fuzzy due date.

        ``Pos(C <= D) = sup min(mu_C(x), mu_D(y)) over x <= y``; for TFNs
        this reduces to 1 when ``b <= due.b`` and otherwise to the height
        of the intersection of C's rising edge and D's falling edge.
        """
        if self.b <= due.b:
            return 1.0
        denom = (due.c - due.b) + (self.b - self.a)
        if denom <= 0:
            return 1.0 if self.a <= due.c else 0.0
        h = (due.c - self.a) / denom
        return float(np.clip(h, 0.0, 1.0))

    def necessity_leq(self, due: "TFN") -> float:
        """Necessity (dual, pessimistic) that C meets the fuzzy due date."""
        if self.c <= due.b:
            return 1.0
        denom = (due.c - due.b) + (self.c - self.b)
        if denom <= 0:
            return 1.0 if self.c <= due.c else 0.0
        h = (due.c - self.b) / denom
        return float(np.clip(h, 0.0, 1.0))


def agreement_index(completion: TFN, due: TFN) -> float:
    """Area(C ∩ D) / Area(C) -- the classic earliness/tardiness agreement.

    1 when the completion possibility mass lies entirely inside the due
    window, 0 when disjoint.  Computed on a numeric grid; exact enough for
    ranking chromosomes (the only use in the GA).
    """
    lo = min(completion.a, due.a)
    hi = max(completion.c, due.c)
    if hi <= lo:
        return 1.0
    xs = np.linspace(lo, hi, 257)
    mu_c = _tfn_membership(completion, xs)
    mu_d = _tfn_membership(due, xs)
    inter = np.trapezoid(np.minimum(mu_c, mu_d), xs)
    area_c = np.trapezoid(mu_c, xs)
    if area_c <= 0:
        return 0.0
    return float(inter / area_c)


def _tfn_membership(t: TFN, xs: np.ndarray) -> np.ndarray:
    up = np.where(t.b > t.a, (xs - t.a) / max(t.b - t.a, 1e-300), 1.0)
    down = np.where(t.c > t.b, (t.c - xs) / max(t.c - t.b, 1e-300), 1.0)
    mu = np.minimum(up, down)
    mu = np.where((xs < t.a) | (xs > t.c), 0.0, np.clip(mu, 0.0, 1.0))
    # degenerate (crisp) TFN: spike at b
    if t.a == t.b == t.c:
        mu = np.where(np.isclose(xs, t.b), 1.0, 0.0)
    return mu


class FuzzyFlowShopInstance:
    """Flow shop with TFN processing times and TFN due dates.

    Parameters
    ----------
    processing:
        ``processing[j][k]`` = :class:`TFN` of job j on machine k.
    due:
        fuzzy due date per job.
    """

    def __init__(self, processing: Sequence[Sequence[TFN]],
                 due: Sequence[TFN], name: str = "fuzzy-fs"):
        self.processing = [list(row) for row in processing]
        self.n_jobs = len(self.processing)
        self.n_machines = len(self.processing[0]) if self.n_jobs else 0
        for j, row in enumerate(self.processing):
            if len(row) != self.n_machines:
                raise ValueError(f"job {j}: ragged processing row")
        self.due = list(due)
        if len(self.due) != self.n_jobs:
            raise ValueError("need one fuzzy due date per job")
        self.name = name

    @staticmethod
    def from_crisp(instance: FlowShopInstance, spread: float = 0.2,
                   due_tau: float = 1.5, seed: int = 1
                   ) -> "FuzzyFlowShopInstance":
        """Fuzzify a crisp instance: ``(p(1-u), p, p(1+v))`` TFNs.

        Spreads are deterministic functions of the Taillard stream so the
        fuzzified instance is reproducible.
        """
        from ..instances.taillard_lcg import TaillardLCG
        gen = TaillardLCG(seed)
        proc = []
        for j in range(instance.n_jobs):
            row = []
            for k in range(instance.n_machines):
                p = float(instance.processing[j, k])
                u = spread * gen.next_float()
                v = spread * gen.next_float()
                row.append(TFN(p * (1 - u), p, p * (1 + v)))
            proc.append(row)
        # due dates must reflect queueing: a job's completion includes the
        # work of jobs sequenced before it, so the due centre adds the
        # expected waiting (half the other jobs' mean per-machine work).
        mean_op = float(instance.processing.mean())
        wait = 0.5 * (instance.n_jobs - 1) * mean_op
        due = []
        for j in range(instance.n_jobs):
            total = sum(t.b for t in proc[j])
            centre = due_tau * (total + wait)
            width = 0.35 * centre
            due.append(TFN(centre - width, centre, centre + width))
        return FuzzyFlowShopInstance(proc, due, name=f"fuzzy-{instance.name}")

    def completion_times(self, permutation: np.ndarray) -> list[TFN]:
        """Fuzzy completion time per job for a permutation schedule."""
        perm = np.asarray(permutation, dtype=np.int64)
        zero = TFN(0.0, 0.0, 0.0)
        prev_row = [zero] * self.n_machines
        completion: list[TFN] = [zero] * self.n_jobs
        for job in perm:
            row: list[TFN] = []
            t = prev_row[0] + self.processing[job][0]
            row.append(t)
            for k in range(1, self.n_machines):
                t = t.maximum(prev_row[k]) + self.processing[job][k]
                row.append(t)
            prev_row = row
            completion[int(job)] = row[-1]
        return completion


def fuzzy_flowshop_makespan(instance: FuzzyFlowShopInstance,
                            permutation: np.ndarray) -> TFN:
    """Fuzzy makespan: fuzzy max of all completion times."""
    comp = instance.completion_times(permutation)
    out = comp[0]
    for t in comp[1:]:
        out = out.maximum(t)
    return out


class FuzzyFlowShopEncoding:
    """Random-keys encoding over a fuzzy flow shop ([24] uses random keys).

    The minimised objective is ``1 - min_j AI_j`` (agreement index), so 0
    is perfect: every job's fuzzy completion lies inside its due window.
    Exposed through ``fast_makespan`` so the standard engines need no
    special casing.
    """

    kind = GenomeKind.REAL

    def __init__(self, instance: FuzzyFlowShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.instance.n_jobs)

    def permutation(self, genome: np.ndarray) -> np.ndarray:
        return np.argsort(np.asarray(genome), kind="stable").astype(np.int64)

    def decode(self, genome: np.ndarray):
        """Decode via a crisp (defuzzified) flow shop schedule."""
        crisp = FlowShopInstance(
            name=self.instance.name + "-defuzz",
            processing=np.array([[t.defuzzify() for t in row]
                                 for row in self.instance.processing]))
        from ..scheduling.flowshop import flowshop_schedule
        return flowshop_schedule(crisp, self.permutation(genome))

    def fast_makespan(self, genome: np.ndarray) -> float:
        perm = self.permutation(genome)
        comp = self.instance.completion_times(perm)
        ais = [agreement_index(c, d)
               for c, d in zip(comp, self.instance.due)]
        # [24] maximise the worst agreement; blending in the mean keeps a
        # gradient alive when some job's index bottoms out at zero.
        return 1.0 - (0.5 * min(ais) + 0.5 * float(np.mean(ais)))
