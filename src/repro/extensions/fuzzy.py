"""Fuzzy scheduling (Huang, Huang & Lai [24]).

[24] solves flow shop problems "with fuzzy processing times and fuzzy due
dates, where the possibility and necessity measures with exact formulas
were adopted to maximize the earliness and tardiness simultaneously".

This module implements the standard triangular-fuzzy-number (TFN) algebra
used in that literature:

* a TFN ``(a, b, c)`` with ``a <= b <= c``;
* addition is component-wise;
* the fuzzy max is approximated component-wise (the criterion-preserving
  approximation standard in fuzzy-scheduling GAs);
* ``possibility(C <= D)`` and ``necessity(C <= D)`` against a fuzzy due
  date follow the classic Dubois-Prade formulas;
* the *agreement index* (area of intersection over area of C) measures
  how well a completion time honours a due-date window.

Two evaluation paths share one arithmetic:

* the scalar :class:`TFN` objects and :meth:`FuzzyFlowShopInstance.completion_times`
  recurrence (readable, used for single chromosomes and as the reference
  in conformance tests);
* the batch kernels :func:`fuzzy_completion_population` /
  :func:`batch_agreement_index`, which evaluate a whole population of
  random-key chromosomes as ``(pop, jobs, 3)`` TFN tensors.  The scalar
  agreement index delegates to the batch kernel on a one-element array,
  so the two paths are bit-identical by construction.

The agreement index is computed *exactly*: the intersection of two
triangular memberships is piecewise linear with kinks only at the six
triangle vertices and the four pairwise edge crossings, so integrating
with the midpoint rule over that breakpoint grid is exact (no sampling
grid, no NumPy-2-only ``trapezoid`` dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.backend import active_namespace as _xp
from ..scheduling.instance import FlowShopInstance
from ..encodings.base import GenomeKind

__all__ = ["TFN", "FuzzyFlowShopInstance", "FuzzyFlowShopEncoding",
           "fuzzy_flowshop_makespan", "agreement_index",
           "batch_agreement_index", "fuzzy_completion_population",
           "fuzzy_agreement_population"]


@dataclass(frozen=True)
class TFN:
    """Triangular fuzzy number (a <= b <= c)."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise ValueError(f"TFN requires a <= b <= c, got {self}")

    def __add__(self, other: "TFN") -> "TFN":
        return TFN(self.a + other.a, self.b + other.b, self.c + other.c)

    def maximum(self, other: "TFN") -> "TFN":
        """Component-wise fuzzy max approximation."""
        return TFN(max(self.a, other.a), max(self.b, other.b),
                   max(self.c, other.c))

    def defuzzify(self) -> float:
        """Centroid defuzzification ((a + 2b + c) / 4, the common choice)."""
        return (self.a + 2 * self.b + self.c) / 4.0

    def possibility_leq(self, due: "TFN") -> float:
        """Possibility that this completion time meets fuzzy due date.

        ``Pos(C <= D) = sup min(mu_C(x), mu_D(y)) over x <= y``; for TFNs
        this reduces to 1 when ``b <= due.b`` and otherwise to the height
        of the intersection of C's rising edge and D's falling edge.
        """
        if self.b <= due.b:
            return 1.0
        denom = (due.c - due.b) + (self.b - self.a)
        if denom <= 0:
            return 1.0 if self.a <= due.c else 0.0
        h = (due.c - self.a) / denom
        return float(np.clip(h, 0.0, 1.0))

    def necessity_leq(self, due: "TFN") -> float:
        """Necessity (dual, pessimistic) that C meets the fuzzy due date."""
        if self.c <= due.b:
            return 1.0
        denom = (due.c - due.b) + (self.c - self.b)
        if denom <= 0:
            return 1.0 if self.c <= due.c else 0.0
        h = (due.c - self.b) / denom
        return float(np.clip(h, 0.0, 1.0))


def _membership(x: np.ndarray, a: np.ndarray, b: np.ndarray,
                c: np.ndarray) -> np.ndarray:
    """Triangular membership, elementwise over broadcastable arrays."""
    xp = _xp()
    with xp.errstate(over="ignore"):
        up = xp.where(b > a, (x - a) / xp.where(b > a, b - a, 1.0), 1.0)
        down = xp.where(c > b, (c - x) / xp.where(c > b, c - b, 1.0), 1.0)
    mu = xp.clip(xp.minimum(up, down), 0.0, 1.0)
    return xp.where((x < a) | (x > c), 0.0, mu)


def _edge_cross(num: np.ndarray, den: np.ndarray,
                fallback: np.ndarray) -> np.ndarray:
    """``num / den`` with non-finite results (parallel/degenerate edges)
    replaced by ``fallback`` -- a spurious breakpoint candidate never
    changes a piecewise-linear integral, so no special-casing is needed."""
    xp = _xp()
    with xp.errstate(divide="ignore", invalid="ignore"):
        x = num / den
    return xp.where(xp.isfinite(x), x, fallback)


def batch_agreement_index(completion: np.ndarray,
                          due: np.ndarray) -> np.ndarray:
    """Exact ``Area(C ∩ D) / Area(C)`` for TFN tensors, elementwise.

    ``completion`` and ``due`` are broadcast-compatible ``(..., 3)`` arrays
    of ``(a, b, c)`` triples; the result drops the last axis.  The
    integrand ``min(mu_C, mu_D)`` is piecewise linear with kinks only at
    the six vertices and the four rising/falling edge crossings, so the
    midpoint rule over the sorted 10-point breakpoint grid integrates it
    exactly (midpoints sit strictly inside each linear piece, which also
    makes jump discontinuities of degenerate zero-width edges harmless).
    Degenerate completions with ``Area(C) = 0`` score 0, matching the
    historical grid-based behaviour.
    """
    xp = _xp()
    comp, d = xp.broadcast_arrays(xp.asarray(completion, dtype=xp.float64),
                                  xp.asarray(due, dtype=xp.float64))
    ca, cb, cc = comp[..., 0], comp[..., 1], comp[..., 2]
    da, db, dc = d[..., 0], d[..., 1], d[..., 2]
    candidates = xp.stack([
        ca, cb, cc, da, db, dc,
        # rising(C) x falling(D)
        _edge_cross(ca * (dc - db) + dc * (cb - ca),
                    (dc - db) + (cb - ca), ca),
        # falling(C) x rising(D)
        _edge_cross(cc * (db - da) + da * (cc - cb),
                    (db - da) + (cc - cb), ca),
        # rising(C) x rising(D)
        _edge_cross(ca * (db - da) - da * (cb - ca),
                    (db - da) - (cb - ca), ca),
        # falling(C) x falling(D)
        _edge_cross(cc * (dc - db) - dc * (cc - cb),
                    (cc - cb) - (dc - db), ca),
    ], axis=-1)
    xs = xp.sort(candidates, axis=-1)
    widths = xs[..., 1:] - xs[..., :-1]
    mids = 0.5 * (xs[..., :-1] + xs[..., 1:])
    mu = xp.minimum(
        _membership(mids, ca[..., None], cb[..., None], cc[..., None]),
        _membership(mids, da[..., None], db[..., None], dc[..., None]))
    inter = xp.zeros(ca.shape)
    for i in range(mu.shape[-1]):           # fixed 9 intervals, kept as an
        inter += widths[..., i] * mu[..., i]  # ordered sum for bit-stability
    area_c = 0.5 * (cc - ca)
    ai = xp.divide(inter, area_c, out=xp.zeros_like(inter),
                   where=area_c > 0)
    return xp.clip(ai, 0.0, 1.0)


def agreement_index(completion: TFN, due: TFN) -> float:
    """Area(C ∩ D) / Area(C) -- the classic earliness/tardiness agreement.

    1 when the completion possibility mass lies entirely inside the due
    window, 0 when disjoint.  Delegates to :func:`batch_agreement_index`
    on a one-element tensor, so scalar and batch scoring are bit-identical
    by construction.
    """
    comp = np.array([completion.a, completion.b, completion.c])
    d = np.array([due.a, due.b, due.c])
    return float(batch_agreement_index(comp, d))


class FuzzyFlowShopInstance:
    """Flow shop with TFN processing times and TFN due dates.

    Parameters
    ----------
    processing:
        ``processing[j][k]`` = :class:`TFN` of job j on machine k.
    due:
        fuzzy due date per job.
    """

    def __init__(self, processing: Sequence[Sequence[TFN]],
                 due: Sequence[TFN], name: str = "fuzzy-fs"):
        self.processing = [list(row) for row in processing]
        self.n_jobs = len(self.processing)
        self.n_machines = len(self.processing[0]) if self.n_jobs else 0
        for j, row in enumerate(self.processing):
            if len(row) != self.n_machines:
                raise ValueError(f"job {j}: ragged processing row")
        self.due = list(due)
        if len(self.due) != self.n_jobs:
            raise ValueError("need one fuzzy due date per job")
        self.name = name
        # tensor forms feed the batch kernels; the defuzzified crisp twin
        # (used by every decode) is built once on first use
        self.processing_tensor = np.array(
            [[[t.a, t.b, t.c] for t in row] for row in self.processing],
            dtype=float).reshape(self.n_jobs, self.n_machines, 3)
        self.due_tensor = np.array(
            [[t.a, t.b, t.c] for t in self.due],
            dtype=float).reshape(self.n_jobs, 3)
        self._crisp: FlowShopInstance | None = None

    @staticmethod
    def from_crisp(instance: FlowShopInstance, spread: float = 0.2,
                   due_tau: float = 1.5, seed: int = 1
                   ) -> "FuzzyFlowShopInstance":
        """Fuzzify a crisp instance: ``(p(1-u), p, p(1+v))`` TFNs.

        Spreads are deterministic functions of the Taillard stream so the
        fuzzified instance is reproducible.
        """
        from ..instances.taillard_lcg import TaillardLCG
        gen = TaillardLCG(seed)
        proc = []
        for j in range(instance.n_jobs):
            row = []
            for k in range(instance.n_machines):
                p = float(instance.processing[j, k])
                u = spread * gen.next_float()
                v = spread * gen.next_float()
                row.append(TFN(p * (1 - u), p, p * (1 + v)))
            proc.append(row)
        # due dates must reflect queueing: a job's completion includes the
        # work of jobs sequenced before it, so the due centre adds the
        # expected waiting (half the other jobs' mean per-machine work).
        mean_op = float(instance.processing.mean())
        wait = 0.5 * (instance.n_jobs - 1) * mean_op
        due = []
        for j in range(instance.n_jobs):
            total = sum(t.b for t in proc[j])
            centre = due_tau * (total + wait)
            width = 0.35 * centre
            due.append(TFN(centre - width, centre, centre + width))
        return FuzzyFlowShopInstance(proc, due, name=f"fuzzy-{instance.name}")

    def crisp_instance(self) -> FlowShopInstance:
        """Cached defuzzified twin (for Schedule decoding and Gantt)."""
        if self._crisp is None:
            pt = self.processing_tensor
            self._crisp = FlowShopInstance(
                name=self.name + "-defuzz",
                processing=(pt[:, :, 0] + 2 * pt[:, :, 1] + pt[:, :, 2])
                / 4.0)
        return self._crisp

    def completion_times(self, permutation: np.ndarray) -> list[TFN]:
        """Fuzzy completion time per job for a permutation schedule."""
        perm = np.asarray(permutation, dtype=np.int64)
        zero = TFN(0.0, 0.0, 0.0)
        prev_row = [zero] * self.n_machines
        completion: list[TFN] = [zero] * self.n_jobs
        for job in perm:
            row: list[TFN] = []
            t = prev_row[0] + self.processing[job][0]
            row.append(t)
            for k in range(1, self.n_machines):
                t = t.maximum(prev_row[k]) + self.processing[job][k]
                row.append(t)
            prev_row = row
            completion[int(job)] = row[-1]
        return completion


def fuzzy_completion_population(instance: FuzzyFlowShopInstance,
                                permutations: np.ndarray) -> np.ndarray:
    """``(pop, n_jobs, 3)`` TFN completion tensor of ``P`` permutations.

    The flow-shop recurrence of
    :meth:`FuzzyFlowShopInstance.completion_times` with the per-position
    scan in Python and the component-wise TFN add/max vectorised over the
    population axis; row ``p`` is bit-identical to the scalar recurrence
    on ``permutations[p]``.
    """
    xp = _xp()
    perms = xp.asarray(permutations, dtype=xp.int64)
    if perms.ndim != 2:
        raise ValueError("permutations must be (P, n)")
    pop, n = perms.shape
    if n != instance.n_jobs:
        raise ValueError(
            f"permutations must have n_jobs = {instance.n_jobs} columns")
    m = instance.n_machines
    proc = xp.asarray(instance.processing_tensor)
    rows = xp.arange(pop, dtype=xp.int64)
    prev = xp.zeros((pop, m, 3))
    completion = xp.zeros((pop, n, 3))
    for i in range(n):
        jobs = perms[:, i]
        p_i = proc[jobs]                        # (P, m, 3)
        t = prev[:, 0] + p_i[:, 0]
        prev[:, 0] = t
        for k in range(1, m):
            t = xp.maximum(t, prev[:, k]) + p_i[:, k]
            prev[:, k] = t
        completion[rows, jobs] = t
    return completion


def fuzzy_agreement_population(instance: FuzzyFlowShopInstance,
                               permutations: np.ndarray) -> np.ndarray:
    """``(pop,)`` minimised agreement objective of ``P`` permutations.

    The [24]-style criterion ``1 - (0.5 * min_j AI_j + 0.5 * mean_j AI_j)``
    computed end-to-end on TFN tensors (no per-chromosome Python scoring).
    """
    comp = fuzzy_completion_population(instance, permutations)
    ais = batch_agreement_index(comp, instance.due_tensor[None, :, :])
    return 1.0 - (0.5 * ais.min(axis=1) + 0.5 * ais.mean(axis=1))


def fuzzy_flowshop_makespan(instance: FuzzyFlowShopInstance,
                            permutation: np.ndarray) -> TFN:
    """Fuzzy makespan: fuzzy max of all completion times."""
    comp = instance.completion_times(permutation)
    out = comp[0]
    for t in comp[1:]:
        out = out.maximum(t)
    return out


class FuzzyFlowShopEncoding:
    """Random-keys encoding over a fuzzy flow shop ([24] uses random keys).

    The minimised objective is ``1 - min_j AI_j`` (agreement index), so 0
    is perfect: every job's fuzzy completion lies inside its due window.
    Exposed through ``fast_makespan``/``batch_makespan`` so the standard
    engines (object and array substrate alike) need no special casing; the
    scalar path delegates to the batch kernel on a one-row matrix, making
    the two bit-identical by construction.
    """

    kind = GenomeKind.REAL

    def __init__(self, instance: FuzzyFlowShopInstance):
        self.instance = instance

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.instance.n_jobs)

    def permutation(self, genome: np.ndarray) -> np.ndarray:
        return np.argsort(np.asarray(genome), kind="stable").astype(np.int64)

    def permutation_matrix(self, matrix: np.ndarray) -> np.ndarray:
        xp = _xp()
        return xp.stable_argsort(xp.asarray(matrix),
                                 axis=1).astype(xp.int64)

    def decode(self, genome: np.ndarray):
        """Decode via the cached crisp (defuzzified) flow shop schedule."""
        from ..scheduling.flowshop import flowshop_schedule
        return flowshop_schedule(self.instance.crisp_instance(),
                                 self.permutation(genome))

    def batch_makespan(self, matrix: np.ndarray) -> np.ndarray:
        """Agreement objectives of a ``(pop, n_jobs)`` random-key matrix."""
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2:
            raise ValueError("chromosome matrix must be (pop, n_jobs)")
        if mat.shape[0] == 0:
            return np.zeros(0)
        return fuzzy_agreement_population(self.instance,
                                          self.permutation_matrix(mat))

    def fast_makespan(self, genome: np.ndarray) -> float:
        mat = np.asarray(genome, dtype=float)[None, :]
        return float(self.batch_makespan(mat)[0])
