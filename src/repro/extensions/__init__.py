"""Modern integrated factors (Section II) + surveyed special algorithms."""

from .fuzzy import (TFN, FuzzyFlowShopEncoding, FuzzyFlowShopInstance,
                    agreement_index, batch_agreement_index,
                    fuzzy_agreement_population, fuzzy_completion_population,
                    fuzzy_flowshop_makespan)
from .stochastic import StochasticJobShopEncoding, StochasticJobShopInstance
from .quantum import (QBitIndividual, QuantumGA, not_gate_mutation,
                      penetration_migration, quantum_crossover)
from .energy import (EnergyAwareObjective, EnergyMakespanVector, PowerModel,
                     SpeedScaling, apply_speed_scaling, energy_consumption,
                     flowshop_energy_population,
                     flowshop_peak_power_population, peak_power,
                     power_profile)
from .multiobjective import (ParetoArchive, WeightedIslandMOGA, coverage,
                             dominates, hypervolume_2d, non_dominated_sort,
                             weight_vectors)
from .local_search import (critical_path_descent, exact_polish,
                           insertion_hill_climb, make_local_search,
                           redirect_procedure, swap_hill_climb)
from .dynamic import (Event, EventStream, JobArrival, MachineBreakdown,
                      PredictiveReactiveScheduler, ReschedulePoint)

__all__ = [
    "TFN", "FuzzyFlowShopInstance", "FuzzyFlowShopEncoding",
    "fuzzy_flowshop_makespan", "agreement_index", "batch_agreement_index",
    "fuzzy_completion_population", "fuzzy_agreement_population",
    "StochasticJobShopInstance", "StochasticJobShopEncoding",
    "QBitIndividual", "QuantumGA", "quantum_crossover", "not_gate_mutation",
    "penetration_migration",
    "PowerModel", "energy_consumption", "power_profile", "peak_power",
    "flowshop_energy_population", "flowshop_peak_power_population",
    "EnergyAwareObjective", "EnergyMakespanVector", "SpeedScaling",
    "apply_speed_scaling",
    "dominates", "non_dominated_sort", "ParetoArchive", "hypervolume_2d",
    "coverage", "weight_vectors", "WeightedIslandMOGA",
    "swap_hill_climb", "insertion_hill_climb", "redirect_procedure",
    "critical_path_descent", "exact_polish", "make_local_search",
    "Event", "JobArrival", "MachineBreakdown", "EventStream",
    "PredictiveReactiveScheduler", "ReschedulePoint",
]
