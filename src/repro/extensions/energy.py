"""Energy-aware shop scheduling (Section II "new integrated factors").

Two surveyed primary works motivate this module:

* Xu, Weng & Fujimura [8]: MIP models trading *peak power* against
  "traditional production efficiency" in flexible flow shops -- we model
  per-machine power draw and expose the instantaneous power profile plus a
  peak-power-capped objective;
* Tang et al. [9]: "reducing the energy consumption and the makespan" in
  dynamic flexible flow shops -- we provide the (energy, makespan)
  bi-objective used with the weighted-island multi-objective machinery.

Model: each machine draws ``processing_power`` W while busy and
``idle_power`` W while idle inside its busy window; optional per-machine
speed scaling multiplies duration by ``1/v`` and power by ``v**alpha``
(the classic cube-law knob, default alpha=2).

Peak power is computed *exactly*: the total draw is piecewise constant
with steps only at operation starts and ends, so its maximum over the
schedule is the maximum over that breakpoint set -- no sampling grid, no
resolution knob (:func:`power_profile` keeps the fixed grid purely for
plotting).  Both objectives also ship batch evaluators that score whole
flow-shop populations from the ``(pop, n, m)`` completion tensor without
materialising :class:`~repro.scheduling.schedule.Schedule` objects; the
batch and scalar paths perform the same float64 operations in the same
order, so they are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import active_namespace as _xp
from ..scheduling.instance import FlowShopInstance, ShopInstance
from ..scheduling.schedule import Schedule

__all__ = ["PowerModel", "energy_consumption", "power_profile", "peak_power",
           "flowshop_energy_population", "flowshop_peak_power_population",
           "EnergyAwareObjective", "EnergyMakespanVector",
           "SpeedScaling", "apply_speed_scaling"]


@dataclass
class PowerModel:
    """Per-machine electrical model.

    Attributes
    ----------
    processing_power:
        watts while processing, per machine.
    idle_power:
        watts while idle inside the machine's busy horizon.
    """

    processing_power: np.ndarray
    idle_power: np.ndarray

    def __post_init__(self) -> None:
        self.processing_power = np.asarray(self.processing_power, dtype=float)
        self.idle_power = np.asarray(self.idle_power, dtype=float)
        if self.processing_power.shape != self.idle_power.shape:
            raise ValueError("power vectors must have equal shapes")
        if (self.processing_power < 0).any() or (self.idle_power < 0).any():
            raise ValueError("power draws must be non-negative")

    @staticmethod
    def uniform(n_machines: int, processing: float = 10.0,
                idle: float = 2.0) -> "PowerModel":
        """Identical machines."""
        return PowerModel(np.full(n_machines, processing),
                          np.full(n_machines, idle))


def energy_consumption(schedule: Schedule, power: PowerModel) -> float:
    """Total energy: busy time * processing power + idle gaps * idle power.

    Idle power is charged only between a machine's first start and last
    end (machines are off outside their busy window).  Per-machine busy
    time is a contiguous-vector ``np.sum`` so the batch twin
    (:func:`flowshop_energy_population`) reduces in the same order and
    stays bit-identical.
    """
    total = 0.0
    for m, seq in enumerate(schedule.machine_sequences()):
        if not seq:
            continue
        busy = float(np.array([op.duration for op in seq]).sum())
        horizon = seq[-1].end - seq[0].start
        idle = max(0.0, horizon - busy)
        total += busy * power.processing_power[m] + idle * power.idle_power[m]
    return total


def _draw_at(schedule: Schedule, power: PowerModel,
             ts: np.ndarray) -> np.ndarray:
    """Total instantaneous draw at each time in ``ts``.

    Half-open ``[start, end)`` semantics per operation; idle draw inside a
    machine's ``[first start, last end)`` window, zero outside.
    """
    draw = np.zeros(ts.shape)
    for m, seq in enumerate(schedule.machine_sequences()):
        if not seq:
            continue
        window = (ts >= seq[0].start) & (ts < seq[-1].end)
        machine_draw = np.where(window, power.idle_power[m], 0.0)
        for op in seq:
            busy = (ts >= op.start) & (ts < op.end)
            machine_draw = np.where(busy, power.processing_power[m],
                                    machine_draw)
        draw += machine_draw
    return draw


def power_profile(schedule: Schedule, power: PowerModel,
                  resolution: int = 512) -> tuple[np.ndarray, np.ndarray]:
    """Instantaneous total power draw sampled on a time grid.

    For plotting only: the fixed grid can step over features narrower
    than ``makespan / resolution``.  Quantitative consumers (objectives,
    tests) use :func:`peak_power`, which is exact.
    """
    horizon = schedule.makespan
    if horizon <= 0:
        return np.zeros(1), np.zeros(1)
    ts = np.linspace(0.0, horizon, resolution, endpoint=False)
    return ts, _draw_at(schedule, power, ts)


def peak_power(schedule: Schedule, power: PowerModel) -> float:
    """Maximum instantaneous draw over the schedule -- exact.

    The total draw is piecewise constant, changing only at operation
    starts and ends, so evaluating it at every breakpoint covers every
    constant piece (each piece's left endpoint is some start or end).
    Resolution-independent by construction: a narrow high-draw operation
    that a sampling grid would step over is always caught.
    """
    ts = np.array([t for op in schedule.operations
                   for t in (op.start, op.end)])
    if ts.size == 0:
        return 0.0
    return float(_draw_at(schedule, power, ts).max())


def flowshop_energy_population(instance: FlowShopInstance,
                               permutations: np.ndarray,
                               power: PowerModel) -> np.ndarray:
    """Total energy of ``P`` flow-shop permutations, no Schedule objects.

    Consumes the ``(P, n, m)`` completion tensor; per machine, busy time
    and the first-start/last-end window reproduce
    :func:`energy_consumption`'s arithmetic (same reduction order), so
    the result is bit-identical to scoring decoded schedules per row.
    """
    from ..scheduling.flowshop import flowshop_completion_tensor
    xp = _xp()
    perms = xp.asarray(permutations, dtype=xp.int64)
    comp = flowshop_completion_tensor(instance, perms)     # (P, n, m)
    p = xp.asarray(instance.processing)[perms]             # (P, n, m)
    starts = comp - p
    durations = comp - starts       # end - (end - p): matches op.duration
    pop = perms.shape[0]
    total = xp.zeros(pop)
    for k in range(instance.n_machines):
        busy = xp.ascontiguousarray(durations[:, :, k]).sum(axis=1)
        horizon = comp[:, -1, k] - starts[:, 0, k]
        idle = xp.maximum(0.0, horizon - busy)
        total += busy * power.processing_power[k] + idle * power.idle_power[k]
    return total


def flowshop_peak_power_population(instance: FlowShopInstance,
                                   permutations: np.ndarray,
                                   power: PowerModel) -> np.ndarray:
    """Exact peak power of ``P`` flow-shop permutations, vectorised.

    Every individual's draw is evaluated at its own ``2 * n * m``
    operation start/end breakpoints with the same half-open window
    semantics as :func:`_draw_at`, machine contributions accumulated in
    machine order -- bit-identical to :func:`peak_power` on the decoded
    schedule per row.
    """
    from ..scheduling.flowshop import flowshop_completion_tensor
    xp = _xp()
    perms = xp.asarray(permutations, dtype=xp.int64)
    comp = flowshop_completion_tensor(instance, perms)     # (P, n, m)
    p = xp.asarray(instance.processing)[perms]
    starts = comp - p
    pop, n = perms.shape
    m = instance.n_machines
    if n == 0 or m == 0:
        return xp.zeros(pop)
    ts = xp.concatenate([starts.reshape(pop, n * m),
                         comp.reshape(pop, n * m)], axis=1)  # (P, T)
    draw = xp.zeros(ts.shape)
    for k in range(m):
        window = ((ts >= starts[:, 0, k][:, None])
                  & (ts < comp[:, -1, k][:, None]))
        machine_draw = xp.where(window, power.idle_power[k], 0.0)
        for i in range(n):
            busy = ((ts >= starts[:, i, k][:, None])
                    & (ts < comp[:, i, k][:, None]))
            machine_draw = xp.where(busy, power.processing_power[k],
                                    machine_draw)
        draw += machine_draw
    return draw.max(axis=1)


class _LazyPowerMixin:
    """Resolve a :class:`PowerModel` lazily from the scored instance.

    Registry-built objectives cannot know the machine count at
    construction time (objectives are resolved before instances in the
    spec pipeline), so they carry uniform per-machine watt scalars and
    materialise the vector model on first use, cached per machine count.
    """

    power: PowerModel | None
    processing_watts: float
    idle_watts: float

    def power_for(self, instance: ShopInstance) -> PowerModel:
        if self.power is not None:
            return self.power
        cached = getattr(self, "_power_cache", None)
        if cached is None or cached.processing_power.size != \
                instance.n_machines:
            cached = PowerModel.uniform(instance.n_machines,
                                        self.processing_watts,
                                        self.idle_watts)
            self._power_cache = cached
        return cached


class EnergyAwareObjective(_LazyPowerMixin):
    """Xu et al. [8]-style criterion: makespan + peak-power-cap penalty.

    ``objective = Cmax + penalty * max(0, peak - cap)``; with a generous
    cap this reduces to plain makespan, with a tight cap the GA is pushed
    toward schedules that stagger power-hungry operations.

    ``power`` may be ``None``: the model is then built lazily as
    ``PowerModel.uniform(n_machines, processing_watts, idle_watts)`` when
    the first schedule arrives (the registry path, where the instance is
    unknown at construction time).
    """

    # peak power needs operation-level data, not just per-job completions,
    # so the completion-matrix batch reduction does not apply
    supports_batch = False

    def __init__(self, power: PowerModel | None = None,
                 peak_cap: float = np.inf, penalty: float = 10.0,
                 processing_watts: float = 10.0, idle_watts: float = 2.0):
        self.power = power
        self.peak_cap = float(peak_cap)
        self.penalty = float(penalty)
        self.processing_watts = float(processing_watts)
        self.idle_watts = float(idle_watts)
        self.name = f"energy-capped-makespan(cap={peak_cap:g})"

    def __call__(self, schedule: Schedule, instance: ShopInstance) -> float:
        power = self.power_for(instance)
        overshoot = max(0.0, peak_power(schedule, power) - self.peak_cap)
        return schedule.makespan + self.penalty * overshoot

    def batch_evaluator(self, encoding):
        """Schedule-free population evaluator for flow-shop permutations.

        The :meth:`Problem.batch_evaluator` discovery hook: returns a
        picklable matrix evaluator when ``encoding`` is the flow-shop
        permutation encoding (chromosome rows *are* permutations), else
        ``None`` (callers fall back to per-genome decoding).
        """
        from ..encodings.permutation import FlowShopPermutationEncoding
        if isinstance(encoding, FlowShopPermutationEncoding):
            return _FlowShopEnergyCappedEvaluator(encoding.instance, self)
        return None


class _FlowShopEnergyCappedEvaluator:
    """Batch twin of :class:`EnergyAwareObjective` (plain class: picklable)."""

    def __init__(self, instance: FlowShopInstance,
                 objective: EnergyAwareObjective):
        self.instance = instance
        self.objective = objective

    def __call__(self, chromosomes: np.ndarray) -> np.ndarray:
        xp = _xp()
        perms = xp.asarray(chromosomes, dtype=xp.int64)
        if perms.shape[0] == 0:
            return xp.zeros(0)
        power = self.objective.power_for(self.instance)
        from ..scheduling.flowshop import flowshop_makespan_population
        cmax = flowshop_makespan_population(self.instance, perms)
        peak = flowshop_peak_power_population(self.instance, perms, power)
        overshoot = xp.maximum(0.0, peak - self.objective.peak_cap)
        return cmax + self.objective.penalty * overshoot


class EnergyMakespanVector(_LazyPowerMixin):
    """Tang et al. [9] bi-objective: (total energy, makespan).

    Scalarised with ``weights`` for single-objective engines; exposes
    ``vector`` for Pareto archiving (the multi-objective island model).
    ``power=None`` resolves lazily like :class:`EnergyAwareObjective`.
    """

    supports_batch = False
    n_criteria = 2

    def __init__(self, power: PowerModel | None = None,
                 weights: tuple[float, float] = (0.5, 0.5),
                 processing_watts: float = 10.0, idle_watts: float = 2.0):
        self.power = power
        self.weights = (float(weights[0]), float(weights[1]))
        self.processing_watts = float(processing_watts)
        self.idle_watts = float(idle_watts)
        self.name = f"energy+makespan{self.weights}"

    def __call__(self, schedule: Schedule, instance: ShopInstance) -> float:
        e, c = self.vector(schedule, instance)
        return self.weights[0] * e + self.weights[1] * c

    def vector(self, schedule: Schedule, instance: ShopInstance
               ) -> tuple[float, float]:
        power = self.power_for(instance)
        return (energy_consumption(schedule, power), schedule.makespan)

    def batch_evaluator(self, encoding):
        """Discovery hook twin of :meth:`EnergyAwareObjective.batch_evaluator`."""
        from ..encodings.permutation import FlowShopPermutationEncoding
        if isinstance(encoding, FlowShopPermutationEncoding):
            return _FlowShopEnergyMakespanEvaluator(encoding.instance, self)
        return None


class _FlowShopEnergyMakespanEvaluator:
    """Batch twin of :class:`EnergyMakespanVector` (plain class: picklable)."""

    def __init__(self, instance: FlowShopInstance,
                 objective: EnergyMakespanVector):
        self.instance = instance
        self.objective = objective

    def __call__(self, chromosomes: np.ndarray) -> np.ndarray:
        xp = _xp()
        perms = xp.asarray(chromosomes, dtype=xp.int64)
        if perms.shape[0] == 0:
            return xp.zeros(0)
        power = self.objective.power_for(self.instance)
        from ..scheduling.flowshop import flowshop_makespan_population
        energy = flowshop_energy_population(self.instance, perms, power)
        cmax = flowshop_makespan_population(self.instance, perms)
        w_e, w_c = self.objective.weights
        return w_e * energy + w_c * cmax


@dataclass
class SpeedScaling:
    """Per-machine speed levels with the cube-law power trade-off.

    Running machine m at relative speed ``v`` divides its processing times
    by ``v`` and multiplies its processing power by ``v ** alpha`` (alpha =
    2 by default; 3 for the strict cube law).  This is the
    energy/makespan dial of Tang et al. [9]: faster schedules burn more
    energy.
    """

    speeds: np.ndarray
    alpha: float = 2.0

    def __post_init__(self) -> None:
        self.speeds = np.asarray(self.speeds, dtype=float)
        if (self.speeds <= 0).any():
            raise ValueError("speeds must be positive")
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1")

    def scale_power(self, base: PowerModel) -> PowerModel:
        """Power model at the configured speeds."""
        if base.processing_power.shape != self.speeds.shape:
            raise ValueError("speed vector must cover every machine")
        return PowerModel(base.processing_power * self.speeds ** self.alpha,
                          base.idle_power.copy())


def apply_speed_scaling(instance, scaling: SpeedScaling):
    """New flow shop instance with machine-column times divided by speed.

    Only flow/open shop style instances (2-D ``processing`` with machine
    columns) are supported; a faster machine k shortens column k for every
    job.  Combine with :meth:`SpeedScaling.scale_power` to evaluate the
    energy cost of the acceleration.
    """
    from ..scheduling.instance import FlowShopInstance, OpenShopInstance
    if not isinstance(instance, (FlowShopInstance, OpenShopInstance)):
        raise TypeError("speed scaling supports flow/open shop instances")
    if instance.processing.shape[1] != scaling.speeds.size:
        raise ValueError("speed vector must cover every machine")
    scaled = instance.processing / scaling.speeds[None, :]
    cls = type(instance)
    return cls(name=f"{instance.name}-scaled",
               processing=scaled,
               release=instance.release.copy(),
               due=instance.due.copy(),
               weights=instance.weights.copy())
