"""Energy-aware shop scheduling (Section II "new integrated factors").

Two surveyed primary works motivate this module:

* Xu, Weng & Fujimura [8]: MIP models trading *peak power* against
  "traditional production efficiency" in flexible flow shops -- we model
  per-machine power draw and expose the instantaneous power profile plus a
  peak-power-capped objective;
* Tang et al. [9]: "reducing the energy consumption and the makespan" in
  dynamic flexible flow shops -- we provide the (energy, makespan)
  bi-objective used with the weighted-island multi-objective machinery.

Model: each machine draws ``processing_power`` W while busy and
``idle_power`` W while idle inside its busy window; optional per-machine
speed scaling multiplies duration by ``1/v`` and power by ``v**alpha``
(the classic cube-law knob, default alpha=2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scheduling.instance import ShopInstance
from ..scheduling.schedule import Schedule

__all__ = ["PowerModel", "energy_consumption", "power_profile", "peak_power",
           "EnergyAwareObjective", "EnergyMakespanVector",
           "SpeedScaling", "apply_speed_scaling"]


@dataclass
class PowerModel:
    """Per-machine electrical model.

    Attributes
    ----------
    processing_power:
        watts while processing, per machine.
    idle_power:
        watts while idle inside the machine's busy horizon.
    """

    processing_power: np.ndarray
    idle_power: np.ndarray

    def __post_init__(self) -> None:
        self.processing_power = np.asarray(self.processing_power, dtype=float)
        self.idle_power = np.asarray(self.idle_power, dtype=float)
        if self.processing_power.shape != self.idle_power.shape:
            raise ValueError("power vectors must have equal shapes")
        if (self.processing_power < 0).any() or (self.idle_power < 0).any():
            raise ValueError("power draws must be non-negative")

    @staticmethod
    def uniform(n_machines: int, processing: float = 10.0,
                idle: float = 2.0) -> "PowerModel":
        """Identical machines."""
        return PowerModel(np.full(n_machines, processing),
                          np.full(n_machines, idle))


def energy_consumption(schedule: Schedule, power: PowerModel) -> float:
    """Total energy: busy time * processing power + idle gaps * idle power.

    Idle power is charged only between a machine's first start and last
    end (machines are off outside their busy window).
    """
    total = 0.0
    for m, seq in enumerate(schedule.machine_sequences()):
        if not seq:
            continue
        busy = sum(op.duration for op in seq)
        horizon = seq[-1].end - seq[0].start
        idle = max(0.0, horizon - busy)
        total += busy * power.processing_power[m] + idle * power.idle_power[m]
    return total


def power_profile(schedule: Schedule, power: PowerModel,
                  resolution: int = 512) -> tuple[np.ndarray, np.ndarray]:
    """Instantaneous total power draw sampled on a time grid."""
    horizon = schedule.makespan
    if horizon <= 0:
        return np.zeros(1), np.zeros(1)
    ts = np.linspace(0.0, horizon, resolution, endpoint=False)
    draw = np.zeros(resolution)
    for m, seq in enumerate(schedule.machine_sequences()):
        if not seq:
            continue
        window = (ts >= seq[0].start) & (ts < seq[-1].end)
        machine_draw = np.where(window, power.idle_power[m], 0.0)
        for op in seq:
            busy = (ts >= op.start) & (ts < op.end)
            machine_draw = np.where(busy, power.processing_power[m],
                                    machine_draw)
        draw += machine_draw
    return ts, draw


def peak_power(schedule: Schedule, power: PowerModel,
               resolution: int = 512) -> float:
    """Maximum instantaneous draw over the schedule."""
    _, draw = power_profile(schedule, power, resolution)
    return float(draw.max()) if draw.size else 0.0


class EnergyAwareObjective:
    """Xu et al. [8]-style criterion: makespan + peak-power-cap penalty.

    ``objective = Cmax + penalty * max(0, peak - cap)``; with a generous
    cap this reduces to plain makespan, with a tight cap the GA is pushed
    toward schedules that stagger power-hungry operations.
    """

    def __init__(self, power: PowerModel, peak_cap: float,
                 penalty: float = 10.0):
        self.power = power
        self.peak_cap = peak_cap
        self.penalty = penalty
        self.name = f"energy-capped-makespan(cap={peak_cap:g})"

    def __call__(self, schedule: Schedule, instance: ShopInstance) -> float:
        overshoot = max(0.0, peak_power(schedule, self.power) - self.peak_cap)
        return schedule.makespan + self.penalty * overshoot


class EnergyMakespanVector:
    """Tang et al. [9] bi-objective: (total energy, makespan).

    Scalarised with ``weights`` for single-objective engines; exposes
    ``vector`` for Pareto archiving (the multi-objective island model).
    """

    def __init__(self, power: PowerModel,
                 weights: tuple[float, float] = (0.5, 0.5)):
        self.power = power
        self.weights = weights
        self.name = f"energy+makespan{weights}"

    def __call__(self, schedule: Schedule, instance: ShopInstance) -> float:
        e, c = self.vector(schedule, instance)
        return self.weights[0] * e + self.weights[1] * c

    def vector(self, schedule: Schedule, instance: ShopInstance
               ) -> tuple[float, float]:
        return (energy_consumption(schedule, self.power), schedule.makespan)


@dataclass
class SpeedScaling:
    """Per-machine speed levels with the cube-law power trade-off.

    Running machine m at relative speed ``v`` divides its processing times
    by ``v`` and multiplies its processing power by ``v ** alpha`` (alpha =
    2 by default; 3 for the strict cube law).  This is the
    energy/makespan dial of Tang et al. [9]: faster schedules burn more
    energy.
    """

    speeds: np.ndarray
    alpha: float = 2.0

    def __post_init__(self) -> None:
        self.speeds = np.asarray(self.speeds, dtype=float)
        if (self.speeds <= 0).any():
            raise ValueError("speeds must be positive")
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1")

    def scale_power(self, base: PowerModel) -> PowerModel:
        """Power model at the configured speeds."""
        if base.processing_power.shape != self.speeds.shape:
            raise ValueError("speed vector must cover every machine")
        return PowerModel(base.processing_power * self.speeds ** self.alpha,
                          base.idle_power.copy())


def apply_speed_scaling(instance, scaling: SpeedScaling):
    """New flow shop instance with machine-column times divided by speed.

    Only flow/open shop style instances (2-D ``processing`` with machine
    columns) are supported; a faster machine k shortens column k for every
    job.  Combine with :meth:`SpeedScaling.scale_power` to evaluate the
    energy cost of the acceleration.
    """
    from ..scheduling.instance import FlowShopInstance, OpenShopInstance
    if not isinstance(instance, (FlowShopInstance, OpenShopInstance)):
        raise TypeError("speed scaling supports flow/open shop instances")
    if instance.processing.shape[1] != scaling.speeds.size:
        raise ValueError("speed vector must cover every machine")
    scaled = instance.processing / scaling.speeds[None, :]
    cls = type(instance)
    return cls(name=f"{instance.name}-scaled",
               processing=scaled,
               release=instance.release.copy(),
               due=instance.due.copy(),
               weights=instance.weights.copy())
