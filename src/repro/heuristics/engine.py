"""Adapter exposing the constructive heuristics as ``SolverSpec`` engines.

``repro.solve(SolverSpec(engine="neh"))`` runs the rule, expresses its
job order as a genome of the spec's encoding, and scores that genome
through the problem's normal evaluation path -- so the reported
objective is exactly what ``report.schedule().audit(...)`` verifies,
never a side-channel number.  The result is shaped like a ``GAResult``
(``best``, ``generations``, ``evaluations``, ``elapsed``,
``termination_reason``, ``extra``) and the facade normalises it like
any GA engine.

Heuristic engines are deterministic and finish in milliseconds, which
is why their registry entries carry the ``heuristic=True`` tag: the
solver service answers them inline (the fast tier) instead of paying a
worker-pool round trip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..core.ga import GAConfig
from ..core.individual import Individual
from ..core.termination import Termination
from ..encodings.base import Problem
from .constructive import heuristic_order, order_to_genome

__all__ = ["HeuristicRunResult", "run_heuristic_engine"]


@dataclass
class HeuristicRunResult:
    """Engine-result shim the facade normalises like any ``GAResult``."""

    best: Individual
    generations: int
    evaluations: int
    elapsed: float
    termination_reason: str
    extra: dict[str, Any] = field(default_factory=dict)
    history: Any = None


def run_heuristic_engine(problem: Problem, config: GAConfig,
                         termination: Termination, seed: int, *,
                         rule: str) -> HeuristicRunResult:
    """Run constructive rule ``rule`` on ``problem`` as an engine.

    ``seed``, the GA hyper-parameters and the termination criterion are
    accepted (the adapter signature is uniform across engines) but
    ignored: the construction is deterministic and single-shot.  Rule
    and encoding mismatches surface as
    :class:`~repro.api.registry.SpecError` with the valid options named.
    """
    from ..api.registry import SpecError

    t0 = time.perf_counter()
    try:
        order, n_evals = heuristic_order(rule, problem)
        genome = order_to_genome(problem, order)
    except ValueError as exc:
        raise SpecError(f"engine: {exc}") from exc
    objective = float(problem.evaluate(genome))
    best = Individual(genome=genome, objective=objective)
    elapsed = time.perf_counter() - t0
    return HeuristicRunResult(
        best=best,
        generations=1,
        evaluations=n_evals + 1,
        elapsed=elapsed,
        termination_reason=f"constructive heuristic {rule!r} completed",
        extra={"heuristic": rule,
               "job_order": [int(j) for j in order],
               "substrate": config.substrate},
    )
