"""Constructive order rules and their genome mappings.

Every rule here produces a *job order*; :func:`heuristic_genome` then
expresses that order in whatever chromosome encoding the problem uses
(direct permutation, random keys, operation repetition, two-part
flexible-shop tuples).  Keeping the two steps separate means one NEH
implementation seeds every encoding of the same instance.

Rules
-----
``johnson``
    Johnson's rule: provably optimal for 2-machine flow shops; for
    ``m > 2`` machines the modified (Campbell--Dudek--Smith-style)
    variant runs Johnson on two virtual machines -- the sum of the first
    ``m - 1`` columns vs. the sum of the last ``m - 1`` -- which at
    ``m = 3`` is the classic ``p1 + p2`` vs. ``p2 + p3`` 3-machine rule.
``neh``
    Nawaz--Enscore--Ham insertion: jobs sorted by decreasing total work,
    inserted one at a time at the makespan-minimising position.
``spt``
    shortest total processing time first (dispatch order).
``edd``
    earliest due date first; with no due dates (all ``+inf``) this
    degrades to the identity order, stably.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..scheduling.flexible import decode_hybrid_flowshop
from ..scheduling.flowshop import flowshop_completion
from ..scheduling.instance import (FlexibleFlowShopInstance,
                                   FlexibleJobShopInstance, FlowShopInstance)

__all__ = ["HEURISTIC_NAMES", "johnson_order", "neh_order", "spt_order",
           "edd_order", "heuristic_order", "heuristic_genome"]

#: Rule names the seeding hook and the engine registry accept.
HEURISTIC_NAMES = ("johnson", "neh", "spt", "edd")


# -- order rules (pure: duration/due arrays in, job order out) ---------------

def johnson_order(durations: np.ndarray) -> np.ndarray:
    """Johnson's rule on a 2-column duration matrix (optimal for F2||Cmax).

    Jobs with ``p1 <= p2`` go first in ascending ``p1``; the rest go last
    in descending ``p2``.  Ties break stably on job index, so the order
    is deterministic.
    """
    p = np.asarray(durations, dtype=float)
    if p.ndim != 2 or p.shape[1] != 2:
        raise ValueError("johnson_order needs an (n_jobs, 2) duration matrix")
    head = np.flatnonzero(p[:, 0] <= p[:, 1])
    tail = np.flatnonzero(p[:, 0] > p[:, 1])
    head = head[np.argsort(p[head, 0], kind="stable")]
    tail = tail[np.argsort(-p[tail, 1], kind="stable")]
    return np.concatenate([head, tail]).astype(np.int64)


def _johnson_virtual(durations: np.ndarray) -> np.ndarray:
    """Modified Johnson for ``m > 2``: two virtual machines.

    Virtual machine 1 sums columns ``0..m-2``, virtual machine 2 sums
    ``1..m-1``; at ``m = 3`` this is the classical 3-machine rule.
    """
    p = np.asarray(durations, dtype=float)
    virt = np.column_stack([p[:, :-1].sum(axis=1), p[:, 1:].sum(axis=1)])
    return johnson_order(virt)


def spt_order(durations: np.ndarray) -> np.ndarray:
    """Shortest total processing time first (stable)."""
    p = np.asarray(durations, dtype=float)
    totals = p.sum(axis=1) if p.ndim == 2 else p
    return np.argsort(totals, kind="stable").astype(np.int64)


def edd_order(due: np.ndarray) -> np.ndarray:
    """Earliest due date first (stable; all-``inf`` keeps index order)."""
    return np.argsort(np.asarray(due, dtype=float),
                      kind="stable").astype(np.int64)


def neh_order(durations: np.ndarray,
              order_objective: Callable[[np.ndarray], float] | None = None
              ) -> np.ndarray:
    """NEH insertion order; ``order_objective`` scores partial job orders.

    The default objective treats ``durations`` as a permutation flow shop
    and evaluates the partial makespan directly; problem-aware callers
    (see :func:`heuristic_order`) pass their own evaluator so the same
    insertion loop optimises hybrid flow shops or any genome-decodable
    objective.
    """
    p = np.asarray(durations, dtype=float)
    if order_objective is None:
        inst = FlowShopInstance(processing=p)

        def order_objective(cand: np.ndarray) -> float:
            c = flowshop_completion(inst, cand)
            return float(c[-1, -1]) if c.size else 0.0

    seed = np.argsort(-p.sum(axis=1), kind="stable")
    seq: list[int] = []
    for job in seed:
        best_seq, best_val = None, np.inf
        for pos in range(len(seq) + 1):
            cand = seq[:pos] + [int(job)] + seq[pos:]
            val = float(order_objective(np.asarray(cand, dtype=np.int64)))
            if val < best_val:
                best_seq, best_val = cand, val
        seq = best_seq
    return np.asarray(seq, dtype=np.int64)


# -- problem-facing glue ------------------------------------------------------

def _stage_durations(instance: Any) -> np.ndarray:
    """(n_jobs, n_stages) nominal duration matrix of an instance.

    Rectangular instances expose ``processing`` directly; the flexible
    job shop has per-operation machine alternatives, so its nominal
    duration is the best (minimum) eligible-machine time per stage,
    padded with zeros for jobs with fewer stages.
    """
    processing = getattr(instance, "processing", None)
    if processing is not None:
        return np.asarray(processing, dtype=float)
    if isinstance(instance, FlexibleJobShopInstance):
        g = max(instance.stages_of(j) for j in range(instance.n_jobs))
        table = np.zeros((instance.n_jobs, g))
        for j in range(instance.n_jobs):
            for s in range(instance.stages_of(j)):
                table[j, s] = min(instance.duration(j, s, m)
                                  for m in instance.eligible_machines(j, s))
        return table
    raise ValueError(
        f"no duration matrix available for "
        f"{type(instance).__name__}; constructive heuristics need "
        f"per-job stage durations")


class _CountingEvaluator:
    """Wrap an order objective, counting how often it is called."""

    def __init__(self, fn: Callable[[np.ndarray], float]):
        self.fn = fn
        self.count = 0

    def __call__(self, cand: np.ndarray) -> float:
        self.count += 1
        return self.fn(cand)


def _partial_order_objective(problem: Any) -> Callable[[np.ndarray], float]:
    """Makespan of a *partial* job order for NEH's insertion loop.

    Flow-shop-like instances evaluate the partial schedule natively
    (their decoders accept any job subset); everything else completes
    the order with the missing jobs in index order and evaluates the
    full genome -- slower, but correct for any encoding.
    """
    instance = problem.encoding.instance
    if isinstance(instance, FlowShopInstance):
        def objective(cand: np.ndarray) -> float:
            c = flowshop_completion(instance, cand)
            return float(c[-1, -1]) if c.size else 0.0
        return objective
    if isinstance(instance, FlexibleFlowShopInstance):
        def objective(cand: np.ndarray) -> float:
            return decode_hybrid_flowshop(instance, cand, None).makespan
        return objective

    n = instance.n_jobs

    def objective(cand: np.ndarray) -> float:
        present = set(int(j) for j in cand)
        full = np.concatenate([
            np.asarray(cand, dtype=np.int64),
            np.asarray([j for j in range(n) if j not in present],
                       dtype=np.int64)])
        return float(problem.evaluate(order_to_genome(problem, full)))
    return objective


def heuristic_order(name: str, problem: Any) -> tuple[np.ndarray, int]:
    """Job order of rule ``name`` on ``problem``; returns (order, n_evals).

    ``n_evals`` counts full/partial objective evaluations the rule spent
    (0 for the closed-form dispatch rules, ``O(n^2)`` for NEH), which
    the engine adapter reports as ``evaluations``.
    """
    instance = problem.encoding.instance
    rule = str(name).lower()
    if rule == "edd":
        return edd_order(instance.due), 0
    durations = _stage_durations(instance)
    if rule == "spt":
        return spt_order(durations), 0
    if rule == "johnson":
        if durations.shape[1] < 2:
            raise ValueError("johnson needs at least 2 stages")
        if durations.shape[1] == 2:
            return johnson_order(durations), 0
        return _johnson_virtual(durations), 0
    if rule == "neh":
        objective = _CountingEvaluator(_partial_order_objective(problem))
        order = neh_order(durations, objective)
        return order, objective.count
    raise ValueError(
        f"unknown heuristic {name!r}; available: {list(HEURISTIC_NAMES)}")


def order_to_genome(problem: Any, order: np.ndarray) -> Any:
    """Express a job order as a genome of ``problem``'s encoding.

    The mapping is exact: decoding the returned genome schedules jobs in
    exactly ``order`` (per stage for repetition encodings).  Encodings
    whose decoders cannot express an arbitrary job order raise
    ``ValueError``.
    """
    # late imports: encodings import scheduling, heuristics imports both
    from ..encodings.assignment_sequence import (FlexibleJobShopEncoding,
                                                 HybridFlowShopEncoding)
    from ..encodings.operation_based import OperationBasedEncoding
    from ..encodings.permutation import (FlowShopPermutationEncoding,
                                         OpenShopPairSequenceEncoding,
                                         OpenShopPermutationEncoding)
    from ..encodings.random_keys import RandomKeysFlowShopEncoding

    enc = problem.encoding
    order = np.asarray(order, dtype=np.int64)
    if isinstance(enc, FlowShopPermutationEncoding):
        return order
    if isinstance(enc, RandomKeysFlowShopEncoding):
        # keys whose stable ascending argsort reproduces the order
        keys = np.empty(order.size, dtype=float)
        keys[order] = np.arange(order.size, dtype=float) / max(1, order.size)
        return keys
    if isinstance(enc, OpenShopPermutationEncoding):
        return np.tile(order, enc.instance.n_machines)
    if isinstance(enc, OpenShopPairSequenceEncoding):
        m = enc.instance.n_machines
        return (order[:, None] * m + np.arange(m, dtype=np.int64)).ravel()
    if isinstance(enc, OperationBasedEncoding):
        return np.tile(order, enc.instance.n_stages)
    if isinstance(enc, HybridFlowShopEncoding):
        instance = enc.instance
        if enc.use_assignment:
            # record the earliest-finish machine choices so the pinned
            # replay reproduces the identical schedule
            sched = decode_hybrid_flowshop(instance, order, None)
            stage_base = np.concatenate(
                [[0], np.cumsum(instance.machines_per_stage)])
            assign = np.zeros((instance.n_jobs, instance.n_stages),
                              dtype=np.int64)
            for op in sched.operations:
                assign[op.job, op.stage] = op.machine - stage_base[op.stage]
        else:
            assign = np.zeros((instance.n_jobs, instance.n_stages),
                              dtype=np.int64)
        return assign, order
    if isinstance(enc, FlexibleJobShopEncoding):
        instance = enc.instance
        # greedy assignment: fastest eligible machine per operation
        assign = []
        for j in range(instance.n_jobs):
            for s in range(instance.stages_of(j)):
                durs = [instance.duration(j, s, m)
                        for m in instance.eligible_machines(j, s)]
                assign.append(int(np.argmin(durs)))
        g = max(instance.stages_of(j) for j in range(instance.n_jobs))
        seq = [int(j) for r in range(g) for j in order
               if instance.stages_of(int(j)) > r]
        return (np.asarray(assign, dtype=np.int64),
                np.asarray(seq, dtype=np.int64))
    raise ValueError(
        f"no heuristic genome mapping for encoding {type(enc).__name__}; "
        f"supported: permutation, random-keys, repetition, open-shop "
        f"pairs, and the flexible-shop composites")


def heuristic_genome(name: str, problem: Any) -> Any:
    """Genome of rule ``name``'s solution (the GA seeding entry point)."""
    order, _ = heuristic_order(name, problem)
    return order_to_genome(problem, order)
