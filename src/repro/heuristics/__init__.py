"""Constructive scheduling heuristics and their engine adapters.

The survey's GA baselines are always measured against the classical
constructive rules -- Johnson's algorithm for (near-)optimal flow shop
seeds, NEH insertion, and the SPT/EDD dispatch orders.  This package
provides them in two forms:

* **orders** -- :func:`heuristic_order` builds the job order a rule
  produces for a problem, and :func:`heuristic_genome` maps that order
  onto the problem's chromosome encoding, which is what GA population
  seeding (``GAConfig.seeding``) consumes;
* **engines** -- :func:`run_heuristic_engine` wraps a rule as a
  ``SolverSpec`` engine (``engine="neh"``, ``"johnson"``, ``"spt"``,
  ``"edd"``), returning a result the facade normalises exactly like a
  GA run, so reports, Gantt audits and the CLI work unchanged.
"""

from .constructive import (HEURISTIC_NAMES, edd_order, heuristic_genome,
                           heuristic_order, johnson_order, neh_order,
                           spt_order)
from .engine import HeuristicRunResult, run_heuristic_engine

__all__ = [
    "HEURISTIC_NAMES",
    "johnson_order",
    "neh_order",
    "spt_order",
    "edd_order",
    "heuristic_order",
    "heuristic_genome",
    "HeuristicRunResult",
    "run_heuristic_engine",
]
