"""repro: parallel genetic algorithms for shop scheduling problems.

A library-scale reproduction of Luo & El Baz, "A Survey on Parallel
Genetic Algorithms for Shop Scheduling Problems" (IPPS 2018):

* :mod:`repro.scheduling` -- flow/job/open/flexible shop substrates,
* :mod:`repro.encodings` -- chromosome representations,
* :mod:`repro.operators` -- every selection/crossover/mutation the survey
  names,
* :mod:`repro.core` -- the simple GA of Table II,
* :mod:`repro.parallel` -- master-slave (Table III), fine-grained
  (Table IV), island (Table V) and hybrid models, plus simulated HPC
  platforms for speedup studies,
* :mod:`repro.extensions` -- fuzzy, stochastic, quantum, energy-aware,
  dynamic and multi-objective variants,
* :mod:`repro.instances` -- ft06 + shaped benchmark stand-ins + generators,
* :mod:`repro.experiments` -- the 22 reproduced claims (E01-E22).

Quickstart::

    from repro import SimpleGA, GAConfig, MaxGenerations, Problem
    from repro.encodings import OperationBasedEncoding
    from repro.instances import get_instance

    problem = Problem(OperationBasedEncoding(get_instance("ft06")))
    result = SimpleGA(problem, GAConfig(population_size=60),
                      MaxGenerations(100), seed=42).run()
    print(result.best_objective)
"""

from .core import (GAConfig, GAResult, Individual, MaxEvaluations,
                   MaxGenerations, Population, SimpleGA, Stagnation,
                   TargetObjective, TimeLimit)
from .encodings import Problem
from .parallel import (CellularGA, IslandGA, MasterSlaveGA, MigrationPolicy)

__version__ = "1.0.0"

__all__ = [
    "SimpleGA", "GAConfig", "GAResult", "Individual", "Population",
    "MaxGenerations", "MaxEvaluations", "TimeLimit", "TargetObjective",
    "Stagnation",
    "Problem",
    "MasterSlaveGA", "IslandGA", "CellularGA", "MigrationPolicy",
    "__version__",
]
