"""repro: parallel genetic algorithms for shop scheduling problems.

A library-scale reproduction of Luo & El Baz, "A Survey on Parallel
Genetic Algorithms for Shop Scheduling Problems" (IPPS 2018):

* :mod:`repro.scheduling` -- flow/job/open/flexible shop substrates,
* :mod:`repro.encodings` -- chromosome representations,
* :mod:`repro.operators` -- every selection/crossover/mutation the survey
  names,
* :mod:`repro.core` -- the simple GA of Table II,
* :mod:`repro.parallel` -- master-slave (Table III), fine-grained
  (Table IV), island (Table V) and hybrid models, plus simulated HPC
  platforms for speedup studies,
* :mod:`repro.extensions` -- fuzzy, stochastic, quantum, energy-aware,
  dynamic and multi-objective variants,
* :mod:`repro.instances` -- ft06 + shaped benchmark stand-ins + generators,
* :mod:`repro.experiments` -- the 23 reproduced claims (E01-E23).

* :mod:`repro.api` -- the declarative front door: :class:`SolverSpec`,
  ``repro.solve()``, named registries and concurrent scenario sweeps.

Quickstart::

    import repro

    report = repro.solve(repro.SolverSpec(
        instance="ft06", engine="island",
        ga={"population_size": 60},
        termination={"max_generations": 100}, seed=42))
    print(report.best_objective)

Every engine, encoding and objective is addressable by name
(``repro.available_engines()`` etc.); the classes behind them remain
importable for programmatic use::

    from repro import SimpleGA, GAConfig, MaxGenerations, Problem
    from repro.encodings import OperationBasedEncoding
    from repro.instances import get_instance

    problem = Problem(OperationBasedEncoding(get_instance("ft06")))
    result = SimpleGA(problem, GAConfig(population_size=60),
                      MaxGenerations(100), seed=42).run()
    print(result.best_objective)
"""

from .core import (GAConfig, GAResult, Individual, MaxEvaluations,
                   MaxGenerations, Population, ProvenGap, SimpleGA,
                   Stagnation, TargetObjective, TimeLimit)
from .encodings import Problem
from .parallel import (CellularGA, IslandGA, MasterSlaveGA, MigrationPolicy)
from .api import (ScenarioSweep, SolveReport, SolverService, SolverSpec,
                  SpecError, available_backends, available_encodings,
                  available_engines, available_objectives,
                  available_substrates, solve)

__version__ = "1.0.0"

__all__ = [
    "SimpleGA", "GAConfig", "GAResult", "Individual", "Population",
    "MaxGenerations", "MaxEvaluations", "TimeLimit", "TargetObjective",
    "ProvenGap", "Stagnation",
    "Problem",
    "MasterSlaveGA", "IslandGA", "CellularGA", "MigrationPolicy",
    "SolverSpec", "SolveReport", "solve", "SpecError",
    "ScenarioSweep", "SolverService",
    "available_engines", "available_encodings", "available_objectives",
    "available_substrates", "available_backends",
    "__version__",
]
