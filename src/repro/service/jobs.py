"""Job lifecycle, idempotent keys and the LRU result cache.

A :class:`Job` is one submitted solve moving through the lifecycle
``queued -> running -> done | failed | cancelled``.  Jobs are identified
by their spec's :meth:`~repro.api.SolverSpec.cache_key` -- solver runs
are deterministic in (resolved spec, seed), so two submissions with equal
keys are the *same* job: a duplicate submit while the first is in flight
coalesces onto it, and a duplicate after completion is served straight
from the store's result cache without re-solving.  The store is bounded:
terminal jobs beyond ``cache_size`` are evicted oldest-first (LRU on
last access), active jobs are never evicted (the worker pool's queue
depth bounds those).

The store is deliberately not thread-safe: the server confines it to the
event-loop thread and bridges pool callbacks in with
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JobStore", "JOB_STATES", "TERMINAL_STATES",
           "LATENCY_BUCKETS", "job_id_for"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_id_for(key: str) -> str:
    """Deterministic job id for a cache key (idempotent by construction)."""
    return "j-" + key[:16]

#: Upper edges (seconds) of the solve-latency histogram ``/metrics`` reports.
LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                   float("inf"))


@dataclass
class Job:
    """One solve moving through the service."""

    id: str
    key: str
    spec: dict[str, Any]
    state: str = "queued"
    submitted: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    elapsed: float | None = None
    #: per-generation progress events (what the SSE endpoint replays)
    progress: list[dict[str, Any]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """JSON-safe status payload (``GET /jobs/{id}``)."""
        out: dict[str, Any] = {
            "job_id": self.id, "key": self.key, "state": self.state,
            "spec": self.spec, "submitted": self.submitted,
            "started": self.started, "finished": self.finished,
            "elapsed": self.elapsed, "generations_seen": len(self.progress),
        }
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class JobStore:
    """Bounded registry of jobs with idempotency and cache accounting."""

    def __init__(self, cache_size: int = 256):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.cache_size = cache_size
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        # metrics
        self.cache_hits = 0        # duplicate of a completed job
        self.coalesced = 0         # duplicate of an in-flight job
        self.cache_misses = 0      # genuinely new work
        self.solves_executed = 0   # jobs that actually reached a worker
        self._latency_counts = [0] * len(LATENCY_BUCKETS)
        self._latency_sum = 0.0
        self._latency_n = 0

    # -- submission --------------------------------------------------------------
    def submit(self, spec: dict[str, Any], key: str) -> tuple[Job, bool]:
        """Register a submission; returns ``(job, created)``.

        ``created=False`` means the submission was idempotent: the key
        matched a live job (coalesced) or a completed one (cache hit) and
        no new solve is needed.  A key whose previous job failed or was
        cancelled is retried as a fresh job (errors are not cached).
        """
        job_id = job_id_for(key)
        existing = self._jobs.get(job_id)
        if existing is not None and existing.state not in ("failed",
                                                           "cancelled"):
            if existing.state == "done":
                self.cache_hits += 1
            else:
                self.coalesced += 1
            self._jobs.move_to_end(job_id)
            return existing, False
        self.cache_misses += 1
        job = Job(id=job_id, key=key, spec=spec)
        self._jobs[job_id] = job
        self._jobs.move_to_end(job_id)  # a failed-job retry reuses the slot
        self._evict()
        return job, True

    def _evict(self) -> None:
        """Drop least-recently-touched *terminal* jobs beyond capacity."""
        excess = len(self._jobs) - self.cache_size
        if excess <= 0:
            return
        for job_id in [jid for jid, job in self._jobs.items()
                       if job.terminal][:excess]:
            del self._jobs[job_id]

    # -- lifecycle transitions ---------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        job = self._jobs.get(job_id)
        if job is not None:
            self._jobs.move_to_end(job_id)
        return job

    def mark_running(self, job_id: str) -> None:
        job = self._jobs.get(job_id)
        if job is not None and job.state == "queued":
            job.state = "running"
            job.started = time.time()

    def record_progress(self, job_id: str, event: dict[str, Any]) -> None:
        job = self._jobs.get(job_id)
        if job is not None and not job.terminal:
            job.progress.append(event)

    def finish(self, job_id: str, outcome: dict[str, Any]) -> None:
        """Apply a worker outcome (the dict ``pool._run_job`` returns)."""
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return
        job.finished = time.time()
        job.elapsed = outcome.get("elapsed")
        self.solves_executed += 1
        if outcome.get("ok"):
            job.state = "done"
            job.result = outcome.get("report")
        else:
            job.state = "failed"
            job.error = outcome.get("error", "unknown worker failure")
        if job.elapsed is not None:
            self._observe_latency(float(job.elapsed))

    def cancel(self, job_id: str) -> bool:
        """Mark a *queued* job cancelled; running jobs are not preemptible."""
        job = self._jobs.get(job_id)
        if job is None or job.state != "queued":
            return False
        job.state = "cancelled"
        job.finished = time.time()
        return True

    # -- metrics -----------------------------------------------------------------
    def _observe_latency(self, seconds: float) -> None:
        self._latency_sum += seconds
        self._latency_n += 1
        for i, edge in enumerate(LATENCY_BUCKETS):
            if seconds <= edge:
                self._latency_counts[i] += 1
                break

    def states(self) -> dict[str, int]:
        counts = dict.fromkeys(JOB_STATES, 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` payload fragment this store owns."""
        lookups = self.cache_hits + self.coalesced + self.cache_misses
        buckets = {("+inf" if edge == float("inf") else f"{edge:g}"): count
                   for edge, count in zip(LATENCY_BUCKETS,
                                          self._latency_counts)}
        return {
            "jobs": self.states(),
            "cache": {
                "hits": self.cache_hits,
                "coalesced": self.coalesced,
                "misses": self.cache_misses,
                "hit_rate": ((self.cache_hits + self.coalesced) / lookups
                             if lookups else 0.0),
                "size": len(self._jobs),
                "capacity": self.cache_size,
            },
            "solves_executed": self.solves_executed,
            "solve_latency": {
                "count": self._latency_n,
                "mean": (self._latency_sum / self._latency_n
                         if self._latency_n else 0.0),
                "buckets": buckets,
            },
        }

    def mean_latency(self, default: float = 1.0) -> float:
        """Average solve wall time so far (the Retry-After estimate)."""
        return (self._latency_sum / self._latency_n if self._latency_n
                else default)
