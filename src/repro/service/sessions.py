"""Event-driven dynamic scheduling sessions.

A session wraps one
:class:`~repro.extensions.dynamic.PredictiveReactiveScheduler`: creating
it builds the initial predictive schedule, and every event POSTed into it
(a job arrival or machine breakdown, as JSON) triggers one incremental
reactive re-solve -- started jobs stay frozen, the remainder is
re-optimised warm-started from the incumbent population -- whose result
is returned to the caller.  This is the online half of the
predictive-reactive loop served over HTTP: the client owns the event
stream, the service owns the schedule.

Blocking GA work happens inside :meth:`DynamicSession.start` /
:meth:`DynamicSession.handle`; the server runs both on its executor and
serialises them with a per-session lock (re-solves mutate scheduler
state, so two events for one session must never interleave).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..api.registry import SpecError
from ..core.ga import GAConfig
from ..extensions.dynamic import (Event, JobArrival, MachineBreakdown,
                                  PredictiveReactiveScheduler)
from ..instances import get_instance

__all__ = ["DynamicSession", "SessionStore", "event_from_dict"]

_EVENT_KINDS = ("arrival", "breakdown")


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Build a dynamic event from its JSON form.

    ``{"type": "arrival", "time": t, "processing": [...]}`` or
    ``{"type": "breakdown", "time": t, "machine": m, "duration": d}``.
    Shape errors raise :class:`SpecError` (the server's 400 path).
    """
    if not isinstance(data, Mapping):
        raise SpecError(f"event must be a JSON object, got "
                        f"{type(data).__name__}")
    kind = data.get("type")
    if kind not in _EVENT_KINDS:
        raise SpecError(f"event: unknown type {kind!r}; "
                        f"accepted: {list(_EVENT_KINDS)}")
    try:
        when = float(data["time"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"event: 'time' must be a number: {exc}") from exc
    try:
        if kind == "arrival":
            processing = tuple(float(p) for p in data["processing"])
            return JobArrival(time=when, processing=processing)
        return MachineBreakdown(time=when, machine=int(data["machine"]),
                                duration=float(data["duration"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"event: invalid {kind} payload: {exc}") from exc


class DynamicSession:
    """One live predictive-reactive scheduler behind the session API."""

    def __init__(self, session_id: str, params: Mapping[str, Any]):
        known = {"instance", "population", "generations", "seed",
                 "warm_start", "substrate"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise SpecError(f"session: unknown field(s) {unknown}; "
                            f"valid fields: {sorted(known)}")
        name = params.get("instance")
        if not isinstance(name, str):
            raise SpecError("session: missing required 'instance' name")
        try:
            instance = get_instance(name)
        except KeyError as exc:
            raise SpecError(f"session: unknown instance {name!r}") from exc
        if type(instance).__name__ != "FlowShopInstance":
            raise SpecError(
                f"session: {name!r} is a {type(instance).__name__}; "
                f"dynamic sessions need a FlowShopInstance")
        try:
            config = GAConfig(
                population_size=int(params.get("population", 30)),
                substrate=str(params.get("substrate", "object")))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"session: {exc}") from exc
        self.id = session_id
        self.instance_name = name
        self.created = time.time()
        self.events_handled = 0
        self.scheduler = PredictiveReactiveScheduler(
            instance, config=config,
            generations=int(params.get("generations", 15)),
            seed=int(params.get("seed", 0)),
            warm_start=bool(params.get("warm_start", True)))

    # Both solve entry points are blocking (GA runs); the server calls
    # them on its executor under the per-session lock.
    def start(self) -> dict[str, Any]:
        """Build the initial predictive schedule; returns the plan."""
        sequence, cmax = self.scheduler.start()
        return {"sequence": [int(j) for j in sequence],
                "predicted_makespan": float(cmax)}

    def handle(self, event_data: Mapping[str, Any]) -> dict[str, Any]:
        """Apply one event and re-solve; returns the incremental result."""
        event = event_from_dict(event_data)
        try:
            point = self.scheduler.handle_event(event)
        except ValueError as exc:  # out-of-order event, bad arrival shape
            raise SpecError(f"event: {exc}") from exc
        self.events_handled += 1
        return {"session_id": self.id,
                "event": type(point.trigger).__name__,
                "time": point.time,
                "frozen": point.frozen,
                "jobs_remaining": point.jobs_remaining,
                "predicted_makespan": float(point.predicted_makespan),
                "sequence": [int(j) for j in self.scheduler.sequence]}

    def to_dict(self) -> dict[str, Any]:
        """Status payload (``GET /sessions/{id}``)."""
        sched = self.scheduler
        out: dict[str, Any] = {
            "session_id": self.id,
            "instance": self.instance_name,
            "jobs_now": sched.current_instance.n_jobs,
            "warm_start": sched.warm_start,
            "events_handled": self.events_handled,
            "created": self.created,
            "reschedules": [
                {"time": p.time, "event": type(p.trigger).__name__,
                 "frozen": p.frozen, "jobs_remaining": p.jobs_remaining,
                 "predicted_makespan": float(p.predicted_makespan)}
                for p in sched.reschedules],
        }
        plan = sched.sequence
        if plan is not None:
            out["sequence"] = [int(j) for j in plan]
            out["predicted_makespan"] = float(sched.predicted_makespan)
        return out


class SessionStore:
    """Registry of live sessions (event-loop confined, like the JobStore)."""

    def __init__(self, max_sessions: int = 64):
        self.max_sessions = max_sessions
        self._sessions: dict[str, DynamicSession] = {}
        self._counter = 0
        self.created_total = 0

    def create(self, params: Mapping[str, Any]) -> DynamicSession:
        if len(self._sessions) >= self.max_sessions:
            raise SpecError(f"session: at capacity "
                            f"({self.max_sessions} live sessions); "
                            f"DELETE one first")
        self._counter += 1
        session = DynamicSession(f"s-{self._counter}", params)
        self._sessions[session.id] = session
        self.created_total += 1
        return session

    def get(self, session_id: str) -> DynamicSession | None:
        return self._sessions.get(session_id)

    def delete(self, session_id: str) -> bool:
        return self._sessions.pop(session_id, None) is not None

    def metrics(self) -> dict[str, Any]:
        return {"active": len(self._sessions),
                "created_total": self.created_total,
                "events_handled": sum(s.events_handled
                                      for s in self._sessions.values())}
