"""The asyncio HTTP solver server (``repro serve``).

A dependency-free HTTP/1.1 front end over the declarative facade: specs
go in as JSON, jobs come back as JSON, progress streams out as
Server-Sent Events.  One connection per request (``Connection: close``),
which keeps the protocol surface tiny and is plenty for a solver whose
unit of work is seconds, not microseconds.

Endpoints
---------
``POST /solve``
    body = a :class:`~repro.api.SolverSpec` JSON dict.  202 with
    ``{job_id, state, cached}`` (200 when idempotency already has the
    result), 400 on spec errors, 429 + ``Retry-After`` when the worker
    pool is saturated.  Engines tagged ``heuristic=True`` (``neh``,
    ``johnson``, ``spt``, ``edd``) take the *fast-answer tier*: the
    deterministic millisecond solve runs inline and the response is an
    immediate 200 with the finished result -- no worker-pool round trip,
    no queue slot consumed.
``POST /sweep``
    body = a :class:`~repro.api.ScenarioSweep` JSON dict; expands,
    deduplicates, submits every spec.  All-or-nothing admission: 429 when
    the expansion does not fit the pool's free capacity.
``GET /jobs/{id}`` / ``DELETE /jobs/{id}``
    status+result retrieval / cancel (only queued jobs are cancellable;
    running ones answer 409).
``GET /jobs/{id}/stream``
    SSE: replays buffered per-generation stats, then live events until
    the job reaches a terminal state (``event:`` = ``running``,
    ``generation``, ``done``, ``failed``, ``cancelled``).
``POST /sessions`` / ``GET|DELETE /sessions/{id}`` /
``POST /sessions/{id}/events``
    event-driven dynamic scheduling (see
    :mod:`repro.service.sessions`).
``GET /healthz`` / ``GET /metrics``
    liveness / jobs-by-state, cache hit rate, queue depth and the
    solve-latency histogram.

Threading model: the :class:`~repro.service.jobs.JobStore` and
:class:`~repro.service.sessions.SessionStore` are confined to the event
loop.  Worker-pool completion callbacks and progress-drain events arrive
on foreign threads and are bridged in with ``call_soon_threadsafe``;
session GA solves run on the loop's executor under a per-session lock.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from http import HTTPStatus
from typing import Any

from ..api.registry import SpecError
from ..api.spec import SolverSpec
from ..api.sweep import ScenarioSweep
from .jobs import Job, JobStore, job_id_for
from .pool import PoolSaturated, WorkerPool
from .sessions import SessionStore

__all__ = ["SolverServer", "serve_in_thread", "ServerHandle"]


class _HttpError(Exception):
    """Internal: raise anywhere in a route to emit a JSON error response."""

    def __init__(self, status: int, message: str,
                 headers: tuple[tuple[str, str], ...] = ()):
        super().__init__(message)
        self.status = status
        self.headers = headers


class SolverServer:
    """One solver service: HTTP front, worker pool, job/session stores."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 workers: int = 2, queue_depth: int = 16,
                 cache_size: int = 256, max_sessions: int = 64):
        self.host = host
        self.port = port
        self.jobs = JobStore(cache_size=cache_size)
        self.sessions = SessionStore(max_sessions=max_sessions)
        self._workers = workers
        self._queue_depth = queue_depth
        self.pool: WorkerPool | None = None
        self._futures: dict[str, Any] = {}
        self._session_locks: dict[str, asyncio.Lock] = {}
        self._job_changed: dict[str, asyncio.Event] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self.started = time.time()

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the pool; idempotent-free, call once."""
        self._loop = asyncio.get_running_loop()
        self.pool = WorkerPool(workers=self._workers,
                               queue_depth=self._queue_depth,
                               on_event=self._on_worker_event)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled; calls :meth:`start` first if needed."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None
        # wake any SSE streamer still waiting so connections drain
        for event in self._job_changed.values():
            event.set()

    # -- worker bridge (foreign threads -> event loop) ---------------------------
    def _on_worker_event(self, event: dict[str, Any]) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._apply_worker_event, event)

    def _apply_worker_event(self, event: dict[str, Any]) -> None:
        job_id = event.get("job_id")
        if event.get("event") == "running":
            self.jobs.mark_running(job_id)
        else:
            self.jobs.record_progress(job_id, event)
        self._notify_job(job_id)

    def _on_job_done(self, job_id: str, future) -> None:
        """Completion callback (pool thread) -> loop-confined finish."""
        try:
            outcome = future.result()
        except asyncio.CancelledError:
            return
        except Exception as exc:  # noqa: BLE001 - worker process death
            outcome = {"ok": False,
                       "error": f"{type(exc).__name__}: worker process "
                                f"died ({exc or 'no diagnostic'})"}
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._finish_job, job_id, outcome)

    def _finish_job(self, job_id: str, outcome: dict[str, Any]) -> None:
        self.jobs.finish(job_id, outcome)
        self._futures.pop(job_id, None)
        self._notify_job(job_id)

    def _notify_job(self, job_id: str) -> None:
        event = self._job_changed.get(job_id)
        if event is not None:
            event.set()

    # -- submission core ---------------------------------------------------------
    def _retry_after(self) -> int:
        """Seconds until a queue slot should free up (Retry-After)."""
        pool = self.pool
        waiting = pool.pending if pool is not None else 1
        per_slot = self.jobs.mean_latency(default=1.0)
        return max(1, math.ceil(per_slot * waiting / max(1, pool.workers)))

    def _submit_spec(self, spec_dict: dict[str, Any]) -> tuple[Job, bool]:
        """Validate + dedupe + admit one spec; raises _HttpError on 400/429."""
        try:
            spec = SolverSpec.from_dict(spec_dict)
            spec.validate()
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from exc
        job, created = self.jobs.submit(spec.to_dict(), spec.cache_key())
        if not created:
            return job, False
        if self._is_heuristic(spec.engine):
            # fast-answer tier: constructive heuristics are deterministic
            # millisecond solves, so running them inline (and answering
            # POST /solve with the finished result) beats paying a worker
            # process round trip; the pool stays free for real GA runs
            self._run_inline(job)
            return job, True
        try:
            future = self.pool.submit(job.id, job.spec)
        except PoolSaturated as exc:
            # roll the phantom job back out of the store
            self.jobs.cancel(job.id)
            raise _HttpError(
                429, f"{exc}; retry later",
                headers=(("Retry-After", str(self._retry_after())),)
            ) from exc
        self._futures[job.id] = future
        future.add_done_callback(
            lambda fut, job_id=job.id: self._on_job_done(job_id, fut))
        return job, True

    @staticmethod
    def _is_heuristic(engine: str) -> bool:
        """True for engines tagged ``heuristic=True`` (fast-tier eligible)."""
        from ..api.registry import engine_entry
        try:
            return bool(engine_entry(engine).tags.get("heuristic"))
        except SpecError:
            return False

    def _run_inline(self, job: Job) -> None:
        """Solve a fast-tier job on the serving thread, worker-outcome shaped."""
        from ..api.facade import solve
        self.jobs.mark_running(job.id)
        t0 = time.perf_counter()
        try:
            report = solve(job.spec, validate=False)
            outcome = {"ok": True, "report": report.to_dict(),
                       "elapsed": time.perf_counter() - t0}
        except Exception as exc:  # noqa: BLE001 - becomes the job's failure
            outcome = {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                       "elapsed": time.perf_counter() - t0}
        self.jobs.finish(job.id, outcome)
        self._notify_job(job.id)

    # -- routes ------------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return _respond(writer, 200, {
                "status": "ok", "workers": self.pool.workers,
                "queue_depth": self.pool.queue_depth,
                "uptime": time.time() - self.started})
        if method == "GET" and parts == ["metrics"]:
            return _respond(writer, 200, self._metrics())
        if method == "POST" and parts == ["solve"]:
            job, created = self._submit_spec(_parse_json(body))
            status = 202 if not job.terminal else 200
            return _respond(writer, status, {
                "job_id": job.id, "state": job.state,
                "cached": not created,
                **({"result": job.result} if job.state == "done" else {})})
        if method == "POST" and parts == ["sweep"]:
            return self._post_sweep(_parse_json(body), writer)
        if parts and parts[0] == "jobs":
            return await self._route_jobs(method, parts, writer)
        if parts and parts[0] == "sessions":
            return await self._route_sessions(method, parts, body, writer)
        raise _HttpError(404, f"no route for {method} {path}")

    def _post_sweep(self, data: dict[str, Any],
                    writer: asyncio.StreamWriter) -> None:
        try:
            sweep = ScenarioSweep.from_dict(data)
            specs = sweep.specs()
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from exc
        raw = len(sweep)
        # all-or-nothing admission: count the specs that would need a
        # worker slot (no live job under their key), and refuse the whole
        # batch if they don't fit -- a half-admitted sweep is worse than a
        # clean 429
        need = 0
        for spec in specs:
            if self._is_heuristic(spec.engine):
                continue  # fast tier: answered inline, needs no pool slot
            job = self.jobs.get(job_id_for(spec.cache_key()))
            if job is None or job.state in ("failed", "cancelled"):
                need += 1
        free = self.pool.capacity - self.pool.pending
        if need > free:
            raise _HttpError(
                429, f"sweep needs {need} pool slot(s), {free} free",
                headers=(("Retry-After", str(self._retry_after())),))
        out = []
        for spec in specs:
            job, created = self._submit_spec(spec.to_dict())
            out.append({"job_id": job.id, "state": job.state,
                        "cached": not created})
        return _respond(writer, 202, {
            "jobs": out, "submitted": len(out),
            "deduplicated": raw - len(specs),
            "cached": sum(1 for j in out if j["cached"])})

    async def _route_jobs(self, method: str, parts: list[str],
                          writer: asyncio.StreamWriter) -> None:
        if len(parts) < 2:
            raise _HttpError(404, "job id required")
        job = self.jobs.get(parts[1])
        if job is None:
            raise _HttpError(404, f"unknown job {parts[1]!r}")
        if method == "GET" and len(parts) == 2:
            return _respond(writer, 200, job.to_dict())
        if method == "GET" and parts[2:] == ["stream"]:
            return await self._stream_job(job, writer)
        if method == "DELETE" and len(parts) == 2:
            if job.terminal:
                return _respond(writer, 200, {"job_id": job.id,
                                              "state": job.state})
            future = self._futures.get(job.id)
            if future is not None and future.cancel():
                self._futures.pop(job.id, None)
                self.jobs.cancel(job.id)
                self._notify_job(job.id)
                return _respond(writer, 200, {"job_id": job.id,
                                              "state": job.state})
            raise _HttpError(409, f"job {job.id} is {job.state}; a "
                                  f"running solve cannot be preempted")
        raise _HttpError(404, f"no route for {method} on jobs")

    async def _stream_job(self, job: Job,
                          writer: asyncio.StreamWriter) -> None:
        """SSE: replay buffered progress, then follow until terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n")
        changed = self._job_changed.setdefault(job.id, asyncio.Event())
        sent = 0
        running_sent = False
        try:
            while True:
                # clear *before* reading, so anything appended during the
                # drain await below re-sets the flag and wait() returns
                # immediately instead of stalling one event behind
                changed.clear()
                if not running_sent and job.state != "queued":
                    _sse(writer, "running", {"job_id": job.id})
                    running_sent = True
                while sent < len(job.progress):
                    _sse(writer, "generation", job.progress[sent])
                    sent += 1
                await writer.drain()
                if job.terminal:
                    break
                await changed.wait()
            summary = {"job_id": job.id, "state": job.state,
                       "elapsed": job.elapsed}
            if job.state == "done":
                report = job.result or {}
                summary["best_objective"] = report.get("best_objective")
                summary["generations"] = report.get("generations")
            elif job.error is not None:
                summary["error"] = job.error
            _sse(writer, job.state, summary)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            # drop the wakeup event once the job can never fire it again
            if job.terminal:
                self._job_changed.pop(job.id, None)

    async def _route_sessions(self, method: str, parts: list[str],
                              body: bytes,
                              writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        if method == "POST" and len(parts) == 1:
            try:
                session = self.sessions.create(_parse_json(body))
            except SpecError as exc:
                raise _HttpError(400, str(exc)) from exc
            lock = self._session_locks.setdefault(session.id,
                                                  asyncio.Lock())
            async with lock:
                plan = await loop.run_in_executor(None, session.start)
            return _respond(writer, 201,
                            {"session_id": session.id,
                             "instance": session.instance_name, **plan})
        if len(parts) < 2:
            raise _HttpError(404, "session id required")
        session = self.sessions.get(parts[1])
        if session is None:
            raise _HttpError(404, f"unknown session {parts[1]!r}")
        if method == "GET" and len(parts) == 2:
            return _respond(writer, 200, session.to_dict())
        if method == "DELETE" and len(parts) == 2:
            self.sessions.delete(session.id)
            self._session_locks.pop(session.id, None)
            return _respond(writer, 200, {"session_id": session.id,
                                          "state": "deleted"})
        if method == "POST" and parts[2:] == ["events"]:
            payload = _parse_json(body)
            lock = self._session_locks.setdefault(session.id,
                                                  asyncio.Lock())
            async with lock:
                try:
                    result = await loop.run_in_executor(
                        None, session.handle, payload)
                except SpecError as exc:
                    raise _HttpError(400, str(exc)) from exc
            return _respond(writer, 200, result)
        raise _HttpError(404, f"no route for {method} on sessions")

    def _metrics(self) -> dict[str, Any]:
        pool = self.pool
        return {
            **self.jobs.metrics(),
            "queue": {"workers": pool.workers,
                      "queue_depth_limit": pool.queue_depth,
                      "capacity": pool.capacity,
                      "pending": pool.pending,
                      "waiting": pool.waiting},
            "sessions": self.sessions.metrics(),
            "uptime": time.time() - self.started,
        }

    # -- connection handling -----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await _read_request(reader)
        except (_HttpError, asyncio.IncompleteReadError, ValueError):
            writer.close()
            return
        try:
            await self._route(method, path, body, writer)
        except _HttpError as exc:
            _respond(writer, exc.status, {"error": str(exc)},
                     headers=exc.headers)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500; the
            # server must survive any single request
            _respond(writer, 500,
                     {"error": f"{type(exc).__name__}: {exc}"})
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


# -- wire helpers ----------------------------------------------------------------

_MAX_BODY = 16 * 1024 * 1024


async def _read_request(reader: asyncio.StreamReader
                        ) -> tuple[str, str, bytes]:
    request_line = await reader.readline()
    try:
        method, path, _version = request_line.decode("ascii").split()
    except ValueError as exc:
        raise ValueError(f"malformed request line "
                         f"{request_line!r}") from exc
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length < 0 or length > _MAX_BODY:
        raise ValueError(f"bad content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body


def _parse_json(body: bytes) -> dict[str, Any]:
    try:
        data = json.loads(body.decode("utf-8") or "null")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise _HttpError(400, f"body must be a JSON object, got "
                              f"{type(data).__name__}")
    return data


def _respond(writer: asyncio.StreamWriter, status: int,
             payload: dict[str, Any],
             headers: tuple[tuple[str, str], ...] = ()) -> None:
    body = json.dumps(payload).encode("utf-8")
    phrase = HTTPStatus(status).phrase
    head = (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n")
    for name, value in headers:
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("ascii") + b"\r\n" + body)


def _sse(writer: asyncio.StreamWriter, event: str,
         data: dict[str, Any]) -> None:
    """One Server-Sent Event frame: ``event:`` name + JSON ``data:``."""
    writer.write(f"event: {event}\ndata: {json.dumps(data)}\n\n"
                 .encode("utf-8"))


# -- embedding helper (tests, benchmarks, notebooks) ------------------------------

class ServerHandle:
    """A running server on a background thread; ``stop()`` tears it down."""

    def __init__(self, server: SolverServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop.is_closed():
            return
        closed = asyncio.run_coroutine_threadsafe(self.server.close(), loop)
        try:
            closed.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - tear the loop down regardless
            pass
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=timeout)


def serve_in_thread(host: str = "127.0.0.1", port: int = 0,
                    **kwargs: Any) -> ServerHandle:
    """Start a :class:`SolverServer` on a daemon thread; returns a handle.

    ``port=0`` binds an ephemeral port (read it back from
    ``handle.server.port``).  The embedding seam used by the test suite,
    the service benchmark, and anyone wanting an in-process server.
    """
    server = SolverServer(host=host, port=port, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-service-http",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("server failed to start within 30s")
    if failure:
        raise failure[0]
    return ServerHandle(server, thread, loop)
