"""Bounded process worker pool with a streamed-progress bridge.

The pool runs solves through the same process-boundary contract as
:class:`~repro.api.sweep.SolverService` -- a JSON-safe spec dict in, a
JSON-safe outcome dict out -- but adds the two properties a server needs:

* **backpressure**: admission is capped at ``workers + queue_depth``
  in-flight jobs.  :meth:`WorkerPool.submit` raises
  :class:`PoolSaturated` beyond that, which the HTTP layer translates
  into ``429 Too Many Requests`` + ``Retry-After`` -- the load-balancing
  concern of keeping workers saturated *without* accepting work that can
  only rot in a queue.
* **live progress**: every worker holds the write end of a shared
  ``multiprocessing`` queue (inherited at fork through the pool
  initializer, i.e. a pipe under the hood).  A
  :class:`~repro.core.observers.CallbackObserver` inside the worker
  pushes one compact stats record per generation, a drain thread in the
  server process consumes them, and the SSE endpoint replays them to
  clients.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

__all__ = ["PoolSaturated", "WorkerPool"]


class PoolSaturated(RuntimeError):
    """The pool's admission cap (workers + queue depth) is reached."""

    def __init__(self, capacity: int, pending: int):
        super().__init__(f"worker pool saturated: {pending} job(s) "
                         f"in flight >= capacity {capacity}")
        self.capacity = capacity
        self.pending = pending


# Write end of the progress queue inside each *worker* process; installed
# by the pool initializer (the queue rides the fork/spawn inheritance
# channel of the worker Process, i.e. an OS pipe).
_PROGRESS_QUEUE = None


def _init_worker(queue) -> None:
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = queue
    # Workers are long-lived: memoise resolved instances (and with them
    # the decode tables lazily attached to instance objects) so repeat
    # jobs on the same instance skip table construction entirely.
    from ..api.components import enable_instance_cache
    enable_instance_cache(maxsize=32)


def _emit(event: dict[str, Any]) -> None:
    queue = _PROGRESS_QUEUE
    if queue is not None:
        try:
            queue.put(event)
        except Exception:  # noqa: BLE001 - progress is best-effort; a full
            pass           # or closed pipe must never fail the solve


def _run_job(job_id: str, spec: dict[str, Any]) -> dict[str, Any]:
    """Worker task: solve one spec, streaming per-generation stats.

    Ordinary solver exceptions come back as a structured ``ok=False``
    outcome -- the future only raises if this process dies.
    """
    from ..api.facade import solve
    from ..core.observers import CallbackObserver

    t0 = time.perf_counter()
    _emit({"event": "running", "job_id": job_id})

    def on_generation(generation, population, evaluations, elapsed,
                      **extra) -> None:
        stats = population.stats()
        _emit({"event": "generation", "job_id": job_id,
               "generation": int(generation),
               "best": float(stats.best), "mean": float(stats.mean),
               "std": float(stats.std), "worst": float(stats.worst),
               "evaluations": int(evaluations), "elapsed": float(elapsed)})

    try:
        report = solve(spec, observers=(CallbackObserver(on_generation),))
        return {"ok": True, "report": report.to_dict(),
                "elapsed": time.perf_counter() - t0}
    except Exception as exc:  # noqa: BLE001 - becomes the job's failure
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                "elapsed": time.perf_counter() - t0}


class WorkerPool:
    """Process pool with bounded admission and a progress drain thread.

    Parameters
    ----------
    workers:
        solver processes.
    queue_depth:
        jobs allowed to *wait* beyond the ones running; admission
        capacity is ``workers + queue_depth``.
    on_event:
        callback for progress events; invoked on the drain thread, so
        implementations must be thread-safe (the server bridges into the
        event loop with ``call_soon_threadsafe``).
    """

    def __init__(self, workers: int = 2, queue_depth: int = 16,
                 on_event: Callable[[dict[str, Any]], None] | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.workers = workers
        self.queue_depth = queue_depth
        self.capacity = workers + queue_depth
        self.on_event = on_event
        self._ctx = multiprocessing.get_context()
        self._queue = self._ctx.Queue()
        self._pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=self._ctx,
            initializer=_init_worker, initargs=(self._queue,))
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self._drain = threading.Thread(target=self._drain_loop,
                                       name="repro-service-progress",
                                       daemon=True)
        self._drain.start()

    # -- admission ---------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Jobs admitted and not yet finished (running + waiting)."""
        with self._lock:
            return self._pending

    @property
    def waiting(self) -> int:
        """Admitted jobs beyond the worker count (the queue depth now)."""
        with self._lock:
            return max(0, self._pending - self.workers)

    def submit(self, job_id: str, spec: dict[str, Any]) -> Future:
        """Admit one job; raises :class:`PoolSaturated` beyond capacity."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            if self._pending >= self.capacity:
                raise PoolSaturated(self.capacity, self._pending)
            self._pending += 1
        try:
            future = self._pool.submit(_run_job, job_id, spec)
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: Future) -> None:
        with self._lock:
            self._pending -= 1

    # -- progress bridge ---------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            try:
                event = self._queue.get()
            except (EOFError, OSError):
                return
            if event is None:
                return
            callback = self.on_event
            if callback is not None:
                try:
                    callback(event)
                except Exception:  # noqa: BLE001 - a bad consumer must not
                    pass           # kill the drain for every other job

    def shutdown(self) -> None:
        """Stop accepting work, cancel what's queued, stop the drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False, cancel_futures=True)
        try:
            self._queue.put(None)
        except Exception:  # noqa: BLE001 - queue may already be torn down
            pass
        self._drain.join(timeout=2.0)
        self._queue.close()
