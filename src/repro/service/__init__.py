"""Solver-as-a-service: the async HTTP layer above the declarative facade.

The service turns ``repro.solve`` into network infrastructure -- the
workload shape of Luo & El Baz's *online* dynamic flow shop work
(re-solving against arriving jobs and breakdowns) -- with nothing beyond
the stdlib: ``asyncio`` for the HTTP front, ``multiprocessing`` for the
solver pool, ``json`` on the wire.

* :mod:`repro.service.jobs` -- job lifecycle (queued -> running ->
  done/failed/cancelled), idempotent job keys
  (:meth:`repro.api.SolverSpec.cache_key`), and the LRU result cache that
  serves repeat traffic without re-solving.
* :mod:`repro.service.pool` -- the bounded process worker pool with an
  explicit queue-depth limit (backpressure surfaces as HTTP 429) and the
  progress-event bridge from worker processes.
* :mod:`repro.service.sessions` -- event-driven dynamic sessions over
  :class:`~repro.extensions.dynamic.PredictiveReactiveScheduler`.
* :mod:`repro.service.server` -- the asyncio endpoints (``/solve``,
  ``/sweep``, ``/jobs/{id}``, SSE ``/jobs/{id}/stream``, ``/sessions``,
  ``/healthz``, ``/metrics``) behind ``repro serve``.
"""

from .jobs import Job, JobStore
from .pool import PoolSaturated, WorkerPool
from .server import SolverServer, serve_in_thread
from .sessions import SessionStore, event_from_dict

__all__ = ["Job", "JobStore", "PoolSaturated", "WorkerPool",
           "SolverServer", "serve_in_thread", "SessionStore",
           "event_from_dict"]
