"""Deterministic random-number management.

Every stochastic component in :mod:`repro` draws from a
:class:`numpy.random.Generator` handed to it explicitly; there is no module
level or global RNG state.  Parallel components (islands, cellular cells,
slave evaluators) need *independent but reproducible* streams, which NumPy's
:class:`numpy.random.SeedSequence` spawning mechanism provides: child streams
are statistically independent and the whole tree is a pure function of the
root seed.

The helpers here are deliberately tiny -- they exist so the rest of the code
base shares one idiom instead of re-inventing seed plumbing per module.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "derive_rng",
    "random_permutation",
    "RngStream",
]


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.  All public entry points of the library funnel
    their ``seed`` argument through this function.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from a root ``seed``."""
    root = np.random.SeedSequence(seed)
    return root.spawn(n)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from a root ``seed``.

    Used to give each island / cell / worker its own stream so that the
    composite algorithm is reproducible regardless of execution order.
    """
    return [np.random.default_rng(ss) for ss in spawn_seeds(seed, n)]


def derive_rng(rng: np.random.Generator, *, jumps: int = 1) -> np.random.Generator:
    """Derive a fresh, independent generator from an existing one.

    Unlike :func:`spawn_rngs` this does not need the root seed: it draws a
    64-bit state from ``rng`` and seeds a child.  ``jumps`` simply advances
    the parent several draws, which is occasionally useful to decorrelate a
    family of children derived in a loop.
    """
    state = None
    for _ in range(max(1, jumps)):
        state = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(state)


def random_permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random permutation of ``range(n)`` as an int64 array."""
    return rng.permutation(n).astype(np.int64)


class RngStream:
    """An endless iterator of independent generators rooted at one seed.

    Convenient for components that create sub-workers lazily (e.g. the
    merge-on-stagnation island model whose island count shrinks over time).
    """

    def __init__(self, seed: int | None):
        self._root = np.random.SeedSequence(seed)
        self._count = 0

    def __iter__(self) -> Iterator[np.random.Generator]:
        return self

    def __next__(self) -> np.random.Generator:
        return self.take()

    def take(self) -> np.random.Generator:
        """Return the next independent generator in the stream."""
        # SeedSequence.spawn advances an internal counter, so successive
        # calls yield distinct, independent children.
        child = self._root.spawn(1)[0]
        self._count += 1
        return np.random.default_rng(child)

    def take_many(self, n: int) -> Sequence[np.random.Generator]:
        """Return the next ``n`` independent generators."""
        return [self.take() for _ in range(n)]
