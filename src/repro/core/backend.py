"""Pluggable array backends: Array-API-style ``xp`` namespaces.

The array substrate (:mod:`repro.core.substrate`) made whole generations
matrix-shaped; this module makes the *namespace* those matrices run on a
runtime choice, which is the precondition for the device-resident
evolution of Luo & El Baz's GPU island papers (arXiv:1903.10722,
arXiv:1903.10741): decode, score, select, cross, mutate and merge all
execute on one backend, with host transfer only at explicit seams.

Four backends are registered:

``numpy``
    the default.  Its namespace forwards every attribute to NumPy
    (cached per instance after first lookup), so kernels routed through
    it are *byte-identical* to calling NumPy directly -- the bit-identity
    contracts of the substrate conformance suite are preserved by
    construction.
``instrumented``
    always available, used by CI in place of a GPU.  Same NumPy
    forwarding, but attribute access is restricted to the Array-API
    subset the kernels are allowed to use (plus the explicit extension
    helpers below), and every host<->device transfer seam is counted --
    so tests can assert *zero transfers inside a generation* without any
    accelerator hardware, and any NumPy-only call sneaking into a kernel
    fails loudly.
``cupy`` / ``jax``
    optional, import-guarded.  When the package is missing they degrade
    to :class:`BackendUnavailable` with an actionable message, which the
    declarative layer translates into a ``SpecError`` exactly like the
    ``cpsat`` engine does for OR-Tools.

Kernels obtain the namespace via :func:`active_namespace` (a context
variable defaulting to the numpy backend); :func:`use_backend` scopes a
backend to a ``with`` block and is the single seam the solve facade
wraps engine runs in.

**Extensions.**  The Array-API standard has no stable-sort spelling, no
``bincount``, no scatter-add and no ``put_along_axis``; the namespaces
therefore carry a small set of explicit helpers (``stable_argsort``,
``take_along_axis``, ``put_along_axis``, ``scatter_add``, ``bincount``,
``maximum_accumulate``, ``partition``) that each backend implements with
its native primitives.  Kernels must use these helpers instead of the
NumPy-only spellings -- the instrumented backend enforces it.
"""

from __future__ import annotations

import contextvars
import importlib.util
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

__all__ = [
    "BACKENDS", "available_backends",
    "ArrayBackend", "ArrayRNG",
    "BackendUnavailable", "BackendPortabilityError",
    "get_backend", "active_backend", "active_namespace", "use_backend",
    "ARRAY_API_NAMES", "EXTENSION_NAMES", "COMPAT_NAMES",
]

#: Registered backend names, in listing order.  ``numpy`` and
#: ``instrumented`` always resolve; ``cupy``/``jax`` need their package.
BACKENDS = ("numpy", "instrumented", "cupy", "jax")


class BackendUnavailable(RuntimeError):
    """An optional backend's package is not importable.

    Carries an actionable message (which package, how to install it,
    what *is* available) so the declarative layer can surface it as a
    ``SpecError`` verbatim -- the same degradation contract as the
    ``cpsat`` engine's ``ExactBackendUnavailable``.
    """

    def __init__(self, backend: str, package: str):
        super().__init__(
            f"backend {backend!r} needs the optional {package} package "
            f"(pip install {package}); backends available here: "
            f"{', '.join(available_backends())}")
        self.backend = backend
        self.package = package


class BackendPortabilityError(AttributeError):
    """A kernel touched a namespace attribute outside the allowed subset.

    Raised by the instrumented backend only: the numpy backend forwards
    everything.  Hitting this means a kernel would break on a real
    device backend -- use the Array-API spelling or one of the explicit
    extension helpers.
    """


# -- the allowed namespace subset -------------------------------------------------

#: Curated Array-API standard names (2023.12 + the 2024 additions the
#: kernels rely on).  The instrumented backend allows exactly these plus
#: :data:`EXTENSION_NAMES` and :data:`COMPAT_NAMES`.
ARRAY_API_NAMES = frozenset({
    # creation
    "arange", "asarray", "empty", "empty_like", "eye", "full", "full_like",
    "linspace", "meshgrid", "ones", "ones_like", "tril", "triu", "zeros",
    "zeros_like",
    # dtypes + dtype utilities
    "bool", "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "float32", "float64", "astype", "can_cast", "finfo", "iinfo",
    "isdtype", "result_type",
    # elementwise
    "abs", "add", "ceil", "clip", "copysign", "cos", "divide", "equal",
    "exp", "expm1", "floor", "floor_divide", "greater", "greater_equal",
    "hypot", "isfinite", "isinf", "isnan", "less", "less_equal", "log",
    "log1p", "log2", "log10", "logaddexp", "logical_and", "logical_not",
    "logical_or", "logical_xor", "maximum", "minimum", "multiply",
    "negative", "not_equal", "positive", "pow", "remainder", "round",
    "sign", "sin", "sqrt", "square", "subtract", "tan", "trunc",
    # manipulation
    "broadcast_arrays", "broadcast_to", "concat", "expand_dims", "flip",
    "moveaxis", "permute_dims", "repeat", "reshape", "roll", "squeeze",
    "stack", "tile", "unstack",
    # searching / sorting / sets
    "argmax", "argmin", "count_nonzero", "nonzero", "searchsorted",
    "where", "argsort", "sort", "unique_all", "unique_counts",
    "unique_inverse", "unique_values",
    # statistical / utility
    "cumulative_sum", "max", "mean", "min", "prod", "std", "sum", "var",
    "all", "any", "diff", "take", "take_along_axis",
    # linear algebra
    "matmul", "tensordot", "vecdot",
})

#: Explicit portable helpers the namespaces implement themselves (no
#: Array-API spelling exists): kernels must call these instead of the
#: NumPy-only ``kind="stable"`` / ``np.add.at`` / ``np.bincount`` /
#: ``np.put_along_axis`` / ``np.maximum.accumulate`` / ``np.partition``.
EXTENSION_NAMES = frozenset({
    "stable_argsort", "put_along_axis", "scatter_add", "bincount",
    "maximum_accumulate", "partition", "argpartition", "copy",
})

#: NumPy-family spellings that every targeted namespace (numpy, cupy,
#: jax.numpy) provides and the kernels may keep: the Array-API renames
#: (``concat``/``cumulative_sum``) only landed in NumPy 2.0 and the CI
#: still runs a NumPy 1.22 leg, plus in-place/layout helpers the
#: substrate's stable-buffer contract needs.
COMPAT_NAMES = frozenset({
    "concatenate", "cumsum", "copyto", "ascontiguousarray", "errstate",
    "unique", "sort_complex",  # unique(axis=) has no Array-API twin yet
})

_ALLOWED_NAMES = ARRAY_API_NAMES | EXTENSION_NAMES | COMPAT_NAMES


# -- namespaces -------------------------------------------------------------------

class NumpyNamespace:
    """``xp`` namespace forwarding to NumPy, byte-identical to ``np``.

    Attribute lookups resolve on NumPy and are cached into the instance
    dict, so after first touch ``xp.foo`` costs one dict hit -- the same
    as the module attribute lookup ``np.foo`` it replaces (the <5%
    dispatch-overhead gate of ``benchmarks/bench_backend.py`` rides on
    this).  The extension helpers below are the only code of its own.
    """

    # -- portable extensions (no Array-API spelling exists) --
    @staticmethod
    def stable_argsort(x, axis=-1):
        """``argsort`` with guaranteed-stable ties (NumPy ``kind="stable"``)."""
        return np.argsort(x, axis=axis, kind="stable")

    @staticmethod
    def put_along_axis(x, indices, values, axis):
        np.put_along_axis(x, indices, values, axis=axis)

    @staticmethod
    def scatter_add(x, indices, values):
        """In-place unbuffered ``x[indices] += values`` (NumPy ``add.at``)."""
        np.add.at(x, indices, values)

    @staticmethod
    def bincount(x, minlength=0):
        return np.bincount(x, minlength=minlength)

    @staticmethod
    def maximum_accumulate(x):
        """Running maximum along the last axis (NumPy ``maximum.accumulate``)."""
        return np.maximum.accumulate(x)

    @staticmethod
    def partition(x, kth):
        return np.partition(x, kth)

    @staticmethod
    def argpartition(x, kth, axis=-1):
        return np.argpartition(x, kth, axis=axis)

    @staticmethod
    def copy(x):
        """Detached copy (Array-API arrays have no ``.copy()`` method)."""
        return np.copy(x)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        value = getattr(np, name)
        setattr(self, name, value)  # cache: next access is a dict hit
        return value


class InstrumentedNamespace(NumpyNamespace):
    """NumPy forwarding restricted to the allowed Array-API subset.

    Names outside :data:`ARRAY_API_NAMES` | :data:`EXTENSION_NAMES` |
    :data:`COMPAT_NAMES` raise :class:`BackendPortabilityError` instead
    of resolving, and every allowed name is recorded in :attr:`used`
    (first touch) so tests can see exactly which surface the kernels
    exercise.  Results are bit-identical to the numpy backend -- the
    values *are* NumPy's.
    """

    def __init__(self) -> None:
        self.used: set[str] = set()

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in _ALLOWED_NAMES:
            raise BackendPortabilityError(
                f"xp.{name} is outside the Array-API subset the kernels "
                f"may use; spell it with a standard name or an explicit "
                f"extension helper ({', '.join(sorted(EXTENSION_NAMES))}) "
                f"-- see docs/architecture.md, 'Writing backend-portable "
                f"kernels'")
        self.used.add(name)
        value = getattr(np, name)
        setattr(self, name, value)
        return value


class NamespaceAdapter:
    """Wrap a foreign Array-API namespace, adding the repro extensions.

    Used for ``array-api-strict`` in CI and as the base for the
    cupy/jax namespaces: forwards attribute access to the wrapped
    module and implements the extension helpers in terms of standard
    operations where the module lacks a native spelling.
    """

    def __init__(self, xp: Any):
        self._wrapped = xp

    def stable_argsort(self, x, axis=-1):
        xp = self._wrapped
        try:
            return xp.argsort(x, axis=axis, stable=True)  # Array-API spelling
        except TypeError:
            return xp.argsort(x, axis=axis, kind="stable")

    def take_along_axis(self, x, indices, axis):
        fn = getattr(self._wrapped, "take_along_axis", None)
        if fn is not None:
            return fn(x, indices, axis=axis)
        raise BackendPortabilityError(
            f"{self._wrapped.__name__} provides no take_along_axis")

    def put_along_axis(self, x, indices, values, axis):
        fn = getattr(self._wrapped, "put_along_axis", None)
        if fn is None:
            raise BackendPortabilityError(
                f"{self._wrapped.__name__} provides no put_along_axis")
        fn(x, indices, values, axis=axis)

    def scatter_add(self, x, indices, values):
        add = getattr(self._wrapped, "add", None)
        at = getattr(add, "at", None)
        if at is None:
            raise BackendPortabilityError(
                f"{self._wrapped.__name__} provides no unbuffered "
                f"scatter-add")
        at(x, indices, values)

    def bincount(self, x, minlength=0):
        fn = getattr(self._wrapped, "bincount", None)
        if fn is not None:
            return fn(x, minlength=minlength)
        raise BackendPortabilityError(
            f"{self._wrapped.__name__} provides no bincount")

    def maximum_accumulate(self, x):
        maximum = getattr(self._wrapped, "maximum", None)
        accumulate = getattr(maximum, "accumulate", None)
        if accumulate is not None:
            return accumulate(x)
        raise BackendPortabilityError(
            f"{self._wrapped.__name__} provides no maximum.accumulate")

    def partition(self, x, kth):
        fn = getattr(self._wrapped, "partition", None)
        if fn is not None:
            return fn(x, kth)
        return self._wrapped.sort(x)  # slower but order-equivalent

    def argpartition(self, x, kth, axis=-1):
        fn = getattr(self._wrapped, "argpartition", None)
        if fn is not None:
            return fn(x, kth, axis=axis)
        return self._wrapped.argsort(x, axis=axis)  # slower, same prefix set

    def copy(self, x):
        fn = getattr(self._wrapped, "copy", None)
        if fn is not None:
            return fn(x)
        return self._wrapped.asarray(x, copy=True)  # Array-API spelling

    def concatenate(self, arrays, axis=0):
        fn = getattr(self._wrapped, "concatenate", None)
        if fn is None:
            fn = self._wrapped.concat  # Array-API spelling
        return fn(arrays, axis=axis)

    def cumsum(self, x, axis=None):
        fn = getattr(self._wrapped, "cumsum", None)
        if fn is None:
            fn = self._wrapped.cumulative_sum
        return fn(x, axis=axis)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        value = getattr(self._wrapped, name)
        setattr(self, name, value)
        return value


# -- RNG adapter ------------------------------------------------------------------

class ArrayRNG:
    """Adapter pinning ``np.random.Generator`` draw semantics.

    Wraps a host :class:`numpy.random.Generator` and forwards each draw
    method 1:1, so its streams are bit-identical to the wrapped
    generator's (property-tested with hypothesis in
    ``tests/test_backend.py``).  Device backends substitute a subclass
    that draws on-device where the distribution allows and falls back to
    host draws + :meth:`ArrayBackend.to_device` where it does not --
    keeping the *semantics* (and therefore the conformance contracts)
    identical across backends.
    """

    __slots__ = ("_generator",)

    def __init__(self, generator: np.random.Generator):
        self._generator = generator

    @property
    def bit_generator(self):
        return self._generator.bit_generator

    def random(self, size=None):
        return self._generator.random(size)

    def integers(self, low, high=None, size=None):
        return self._generator.integers(low, high, size=size)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self._generator.uniform(low, high, size=size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._generator.normal(loc, scale, size=size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._generator.permutation(x)

    def shuffle(self, x) -> None:
        self._generator.shuffle(x)

    def spawn(self, n_children: int) -> list["ArrayRNG"]:
        return [type(self)(g) for g in self._generator.spawn(n_children)]


# -- backend object ---------------------------------------------------------------

def _identity(x):
    return x


class ArrayBackend:
    """One array execution target: namespace + RNG factory + transfer seams.

    ``to_device``/``to_host``/``asnumpy`` are the *only* sanctioned
    host<->device crossing points; each call increments
    :attr:`transfers`, which the instrumented backend's tests use to
    prove kernels stay device-resident for an entire generation.  On the
    numpy-family backends the conversions are identity (plus
    ``np.asarray`` for :meth:`asnumpy`), so counting is the whole cost.
    """

    def __init__(self, name: str, xp: Any,
                 rng_factory: Callable[..., Any] | None = None,
                 asnumpy: Callable[[Any], np.ndarray] | None = None,
                 to_device: Callable[[Any], Any] | None = None,
                 to_host: Callable[[Any], Any] | None = None):
        self.name = name
        self.xp = xp
        self._rng_factory = rng_factory or np.random.default_rng
        self._asnumpy = asnumpy or np.asarray
        self._to_device = to_device or _identity
        self._to_host = to_host or _identity
        self.transfers = {"to_device": 0, "to_host": 0, "asnumpy": 0}

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r})"

    def rng(self, seed=None):
        """A generator with ``np.random.Generator`` draw semantics."""
        return self._rng_factory(seed)

    # -- transfer seams (the countable boundary) --
    def to_device(self, x):
        """Move host data onto the backend's device (identity on numpy)."""
        self.transfers["to_device"] += 1
        return self._to_device(x)

    def to_host(self, x):
        """Move device data back to the host (identity on numpy)."""
        self.transfers["to_host"] += 1
        return self._to_host(x)

    def asnumpy(self, x) -> np.ndarray:
        """Materialise ``x`` as a host ``np.ndarray`` (report boundary)."""
        self.transfers["asnumpy"] += 1
        return self._asnumpy(x)

    def reset_transfers(self) -> None:
        for key in self.transfers:
            self.transfers[key] = 0

    def total_transfers(self) -> int:
        return sum(self.transfers.values())

    @classmethod
    def from_namespace(cls, xp: Any, name: str = "custom",
                       **kwargs) -> "ArrayBackend":
        """Backend over any Array-API namespace (e.g. ``array_api_strict``).

        The namespace is wrapped in :class:`NamespaceAdapter` so the
        repro extension helpers resolve; conversions default to
        ``np.asarray`` round trips, which every Array-API library's
        arrays support via the buffer/DLPack protocols.
        """
        return cls(name, NamespaceAdapter(xp), **kwargs)


# -- registry ---------------------------------------------------------------------

def _make_numpy() -> ArrayBackend:
    return ArrayBackend("numpy", NumpyNamespace())


def _make_instrumented() -> ArrayBackend:
    return ArrayBackend(
        "instrumented", InstrumentedNamespace(),
        rng_factory=lambda seed=None: ArrayRNG(np.random.default_rng(seed)))


def _make_cupy() -> ArrayBackend:
    try:
        import cupy
    except ImportError as exc:
        raise BackendUnavailable("cupy", "cupy") from exc
    return ArrayBackend(
        "cupy", NamespaceAdapter(cupy),
        rng_factory=lambda seed=None: ArrayRNG(np.random.default_rng(seed)),
        asnumpy=cupy.asnumpy, to_device=cupy.asarray, to_host=cupy.asnumpy)


def _make_jax() -> ArrayBackend:
    try:
        import jax
        import jax.numpy as jnp
    except ImportError as exc:
        raise BackendUnavailable("jax", "jax") from exc
    return ArrayBackend(
        "jax", NamespaceAdapter(jnp),
        rng_factory=lambda seed=None: ArrayRNG(np.random.default_rng(seed)),
        asnumpy=np.asarray, to_device=jax.device_put, to_host=jax.device_get)


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy,
    "instrumented": _make_instrumented,
    "cupy": _make_cupy,
    "jax": _make_jax,
}

#: Optional backends and the module whose presence makes them available.
_OPTIONAL_PACKAGES = {"cupy": "cupy", "jax": "jax"}

_BACKEND_CACHE: dict[str, ArrayBackend] = {}


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment (package importable)."""
    names = []
    for name in BACKENDS:
        package = _OPTIONAL_PACKAGES.get(name)
        if package is not None and importlib.util.find_spec(package) is None:
            continue
        names.append(name)
    return tuple(names)


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Resolve a backend by name (cached singletons).

    Raises ``ValueError`` for unknown names and
    :class:`BackendUnavailable` for known-but-uninstalled ones; the
    declarative layer maps both onto ``SpecError``.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; known backends: "
            f"{', '.join(BACKENDS)}")
    backend = _BACKEND_CACHE.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        _BACKEND_CACHE[name] = backend
    return backend


# -- active-backend context -------------------------------------------------------

_ACTIVE: contextvars.ContextVar[ArrayBackend | None] = \
    contextvars.ContextVar("repro_array_backend", default=None)


def active_backend() -> ArrayBackend:
    """The backend in effect (the numpy backend outside any context)."""
    backend = _ACTIVE.get()
    return backend if backend is not None else get_backend("numpy")


def active_namespace() -> Any:
    """The active backend's ``xp`` namespace -- what kernels call."""
    backend = _ACTIVE.get()
    return (backend if backend is not None
            else get_backend("numpy")).xp


@contextmanager
def use_backend(backend: str | ArrayBackend) -> Iterator[ArrayBackend]:
    """Scope a backend to a ``with`` block (context-variable based, so
    concurrent solves on other threads keep their own backend)."""
    if isinstance(backend, str):
        backend = get_backend(backend)
    token = _ACTIVE.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE.reset(token)
