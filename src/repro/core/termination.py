"""Termination criteria ("while termination criteria are not satisfied").

Tables II-V of the survey all loop on an abstract termination test.  The
surveyed works use (at least) four concrete criteria, sometimes combined:

* a generation budget (most papers),
* a wall-clock budget (AitZai et al. [14]: fixed 300 s),
* a fitness-evaluation budget (fair serial-vs-parallel comparisons),
* a target objective / stagnation window (Spanos et al. [29]).

Criteria are composable with ``|`` (any) and ``&`` (all).
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "TerminationState",
    "Termination",
    "MaxGenerations",
    "MaxEvaluations",
    "TimeLimit",
    "TargetObjective",
    "ProvenGap",
    "Stagnation",
    "AnyOf",
    "AllOf",
]


class TerminationState:
    """Mutable counters the engine updates every generation."""

    __slots__ = ("generation", "evaluations", "start_time", "best_objective",
                 "best_generation", "clock")

    def __init__(self, clock=time.perf_counter):
        self.generation = 0
        self.evaluations = 0
        self.clock = clock
        self.start_time = clock()
        self.best_objective: Optional[float] = None
        self.best_generation = 0

    def elapsed(self) -> float:
        """Wall-clock seconds since the state was created."""
        return self.clock() - self.start_time

    def record_best(self, objective: float) -> None:
        """Track best-so-far; remembers when it last improved (stagnation)."""
        if self.best_objective is None or objective < self.best_objective:
            self.best_objective = objective
            self.best_generation = self.generation


class Termination:
    """Base class; subclasses implement :meth:`done`."""

    def done(self, state: TerminationState) -> bool:  # pragma: no cover
        raise NotImplementedError

    def reason(self) -> str:
        return type(self).__name__

    def __or__(self, other: "Termination") -> "AnyOf":
        return AnyOf(self, other)

    def __and__(self, other: "Termination") -> "AllOf":
        return AllOf(self, other)


class MaxGenerations(Termination):
    """Stop after ``limit`` generations."""

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("generation limit must be non-negative")
        self.limit = limit

    def done(self, state: TerminationState) -> bool:
        return state.generation >= self.limit

    def reason(self) -> str:
        return f"max generations ({self.limit}) reached"


class MaxEvaluations(Termination):
    """Stop once at least ``limit`` fitness evaluations were spent.

    The canonical fair-comparison budget for serial vs. parallel GAs: both
    sides spend the same number of objective-function calls.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("evaluation limit must be non-negative")
        self.limit = limit

    def done(self, state: TerminationState) -> bool:
        return state.evaluations >= self.limit

    def reason(self) -> str:
        return f"evaluation budget ({self.limit}) exhausted"


class TimeLimit(Termination):
    """Stop after ``seconds`` of wall-clock time (AitZai et al. [14])."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("time limit must be non-negative")
        self.seconds = seconds

    def done(self, state: TerminationState) -> bool:
        return state.elapsed() >= self.seconds

    def reason(self) -> str:
        return f"time limit ({self.seconds} s) reached"


class TargetObjective(Termination):
    """Stop when best objective <= ``target`` (e.g. a known optimum).

    The comparison is inclusive: a run that *exactly* reaches a proven
    optimum used as the target must terminate, not loop until another
    criterion fires.
    """

    def __init__(self, target: float):
        self.target = target
        self._achieved: Optional[float] = None

    def done(self, state: TerminationState) -> bool:
        if (state.best_objective is not None
                and state.best_objective <= self.target):
            self._achieved = state.best_objective
            return True
        return False

    def reason(self) -> str:
        if self._achieved is None:
            return f"target objective ({self.target}) attained"
        return (f"target objective ({self.target}) attained "
                f"(best {self._achieved})")


class ProvenGap(Termination):
    """Stop once the best objective is within ``gap`` of a proven bound.

    ``done`` fires when ``best <= lower_bound * (1 + gap)`` -- the
    optimality-gap criterion exact solvers terminate on, made available
    to the GA engines: with a certified lower bound (see
    :func:`repro.instances.known_lower_bound`) reaching the gap is a
    *quality certificate*, not a heuristic stopping rule.  ``gap=0``
    demands the proven optimum itself.
    """

    def __init__(self, lower_bound: float, gap: float = 0.0):
        if not (lower_bound > 0) or lower_bound != lower_bound \
                or lower_bound == float("inf"):
            raise ValueError("lower bound must be positive and finite")
        if gap < 0:
            raise ValueError("gap must be non-negative")
        self.lower_bound = float(lower_bound)
        self.gap = float(gap)
        self._achieved: Optional[float] = None

    @property
    def threshold(self) -> float:
        """Objective value at which the criterion fires."""
        return self.lower_bound * (1.0 + self.gap)

    def done(self, state: TerminationState) -> bool:
        if (state.best_objective is not None
                and state.best_objective <= self.threshold):
            self._achieved = state.best_objective
            return True
        return False

    def reason(self) -> str:
        if self._achieved is None:
            return (f"proven gap ({self.gap:.2%} of lower bound "
                    f"{self.lower_bound}) not yet reached")
        achieved = (self._achieved - self.lower_bound) / self.lower_bound
        return (f"proven gap reached: best {self._achieved} is "
                f"{achieved:.2%} above lower bound {self.lower_bound} "
                f"(<= {self.gap:.2%})")


class Stagnation(Termination):
    """Stop when the best objective has not improved for ``window`` gens."""

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError("stagnation window must be positive")
        self.window = window

    def done(self, state: TerminationState) -> bool:
        return state.generation - state.best_generation >= self.window

    def reason(self) -> str:
        return f"no improvement for {self.window} generations"


class AnyOf(Termination):
    """Disjunction: stop when any sub-criterion fires."""

    def __init__(self, *criteria: Termination):
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self.criteria = criteria
        self._fired: Optional[Termination] = None

    def done(self, state: TerminationState) -> bool:
        for c in self.criteria:
            if c.done(state):
                self._fired = c
                return True
        return False

    def reason(self) -> str:
        return self._fired.reason() if self._fired else "not terminated"


class AllOf(Termination):
    """Conjunction: stop only when every sub-criterion fires."""

    def __init__(self, *criteria: Termination):
        if not criteria:
            raise ValueError("AllOf needs at least one criterion")
        self.criteria = criteria

    def done(self, state: TerminationState) -> bool:
        return all(c.done(state) for c in self.criteria)

    def reason(self) -> str:
        return " and ".join(c.reason() for c in self.criteria)
