"""The array-native generation substrate.

The object substrate (the default) evolves a list of
:class:`~repro.core.individual.Individual`; every variation operator is
called per genome or per parent pair.  This module implements the second
substrate the GPU/island follow-ups of the survey are built on (Luo & El
Baz, arXiv:1903.10722 / 1903.10741): the population lives as one
``(pop, n_genes)`` chromosome matrix with a parallel ``(pop,)``
objectives vector, and a whole generation -- selection, crossover,
mutation, immigration, partial replacement, elitist merge -- is a handful
of matrix kernels from :mod:`repro.operators.batch`.

Engines select the substrate through ``GAConfig.substrate``
(``"object"`` | ``"array"``); :class:`~repro.core.ga.SimpleGA` threads it
through ``initialize``/``step``, the island engine stacks the per-island
matrices into one ``(n_islands, pop, n_genes)`` tensor whose migration is
pure slice assignment, and the declarative API exposes it as
``SolverSpec.substrate`` / ``--substrate array``.

Conformance contract (see ``tests/test_substrate.py``): closure per
batch operator, *exact* equality with the object substrate at the
crossover/mutation rate extremes under a shared RNG, and quality parity
on a fixed ta-style scenario -- per-draw bit-identity at intermediate
rates is out of scope because batching reorders the RNG stream.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..operators.batch import (batch_crossover_for, batch_mutation_for,
                               batch_selection_for)
from .backend import active_backend
from .backend import active_namespace as _xp
from .fitness import apply_fitness_array
from .individual import Individual
from .population import Population

__all__ = [
    "SUBSTRATES", "available_substrates",
    "ArrayState", "GridState", "ArrayPopulationView",
    "check_array_support", "stable_topk",
    "make_offspring_matrix", "elitist_merge_arrays",
    "random_matrix",
]

#: The two generation substrates engines can run on.
SUBSTRATES = ("object", "array")


def available_substrates() -> tuple[str, ...]:
    """Names of the generation substrates (``object`` is the default)."""
    return SUBSTRATES


#: Genome kinds the array substrate can evolve: one fixed-length ndarray
#: per individual.  Composite (tuple) genomes qualify only when their
#: encoding publishes ``part_spans`` (fixed per-part column widths in the
#: stacked row) so composite operators can slice the matrix per part;
#: ragged composites (e.g. the FJSP's padded eligible-machine lists) stay
#: on the object substrate.
_ARRAY_KINDS = ("permutation", "repetition", "real")


def check_array_support(problem: Any, config: Any,
                        selection: bool = True) -> None:
    """Raise ``ValueError`` when ``problem``/``config`` cannot run array-native.

    Checks the genome kind (single fixed-length array, or a composite
    whose encoding publishes ``part_spans`` column widths) and that every
    resolved operator has a registered batch twin.  ``config`` must be a
    resolved :class:`~repro.core.ga.GAConfig` (operators filled in).
    ``selection=False`` skips the selection twin -- the cellular engines
    never call ``config.selection`` (mate choice is the neighbourhood
    tournament), so a custom selection without a batch twin must not
    block their grid path.
    """
    composite_ok = (problem.kind == "composite"
                    and getattr(problem.encoding, "part_spans", None)
                    is not None)
    if problem.kind not in _ARRAY_KINDS and not composite_ok:
        raise ValueError(
            f"substrate='array' supports genome kinds {_ARRAY_KINDS}, but "
            f"the {type(problem.encoding).__name__} encoding is "
            f"{problem.kind!r}; use substrate='object' for composite/"
            f"ragged genomes")
    if selection:
        batch_selection_for(config.selection)
    batch_crossover_for(config.crossover)
    batch_mutation_for(config.mutation)


def stable_topk(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, ascending, ties by index.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` -- and hence
    to the object substrate's ``sorted(..., key=objective)`` truncations,
    which Python's stable sort makes tie-stable -- but selects via
    ``argpartition`` first so the common ``k << n`` elite case stays
    ``O(n + k log k)``.
    """
    xp = _xp()
    values = xp.asarray(values)
    n = values.size
    if k <= 0:
        return xp.empty(0, dtype=xp.int64)
    if k >= n:
        return xp.stable_argsort(values)
    threshold = xp.partition(values, k - 1)[k - 1]
    below = xp.nonzero(values < threshold)[0]
    at = xp.nonzero(values == threshold)[0]
    idx = xp.concatenate([below, at[:k - below.size]])
    # gathers via xp.take: strict Array-API namespaces have no integer
    # fancy indexing (this helper runs on the array-api-strict CI leg)
    return xp.take(idx, xp.stable_argsort(xp.take(values, idx, axis=0)),
                   axis=0)


def random_matrix(problem: Any, count: int,
                  rng: np.random.Generator) -> np.ndarray:
    """``count`` random genomes stacked into a chromosome matrix.

    Draws with the exact same ``problem.random_genome`` calls as the
    object substrate, via ``Problem.random_matrix``.  Raises when the
    genomes cannot form a matrix.
    """
    matrix = problem.random_matrix(count, rng)
    if matrix is None:
        raise ValueError(
            f"substrate='array' needs genomes that stack into a matrix; "
            f"{type(problem.encoding).__name__} genomes do not")
    return matrix


class ArrayState:
    """A population as flat arrays: chromosome matrix + objectives vector.

    The matrix buffer is stable: :meth:`update` copies in place whenever
    shapes match, so views into it (e.g. slices of the island engine's
    ``(n_islands, pop, n_genes)`` tensor) survive generations.  Every
    in-place mutation bumps :attr:`version` (call :meth:`touch` after
    writing into the arrays directly) so derived caches such as
    :class:`ArrayPopulationView`'s materialised members know to rebuild.
    """

    __slots__ = ("matrix", "objectives", "version")

    def __init__(self, matrix: np.ndarray, objectives: np.ndarray):
        self.matrix = np.asarray(matrix)
        self.objectives = np.asarray(objectives, dtype=float)
        self.version = 0
        if self.matrix.ndim != 2 or self.objectives.shape != \
                (self.matrix.shape[0],):
            raise ValueError("need a (pop, n_genes) matrix and a matching "
                             "(pop,) objectives vector")

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def touch(self) -> None:
        """Mark the arrays as mutated (invalidates derived caches)."""
        self.version += 1

    def update(self, matrix: np.ndarray, objectives: np.ndarray) -> None:
        """Adopt the next generation, in place when shapes allow."""
        if matrix.shape == self.matrix.shape \
                and matrix.dtype == self.matrix.dtype:
            xp = _xp()
            xp.copyto(self.matrix, matrix)
            xp.copyto(self.objectives, objectives)
        else:  # population size changed (not done by current engines)
            self.matrix = np.asarray(matrix)
            self.objectives = np.asarray(objectives, dtype=float)
        self.touch()

    def copy(self) -> "ArrayState":
        return ArrayState(self.matrix.copy(), self.objectives.copy())


class GridState(ArrayState):
    """An :class:`ArrayState` with a 2-D spatial layout on top.

    The cellular (fine-grained) engine's population is a toroidal grid:
    one individual per cell.  :class:`GridState` stores it as the same
    flat ``(rows*cols, n_genes)`` chromosome matrix every other array
    engine uses -- cells flattened row-major, so cell ``(r, c)`` is row
    ``r*cols + c`` -- and exposes :attr:`tensor` / :attr:`objective_grid`
    reshaped *views* of the very same buffers.  Everything written for
    :class:`ArrayState` (population views, migration row gather/scatter,
    island tensor binding) therefore works on grids unchanged, while the
    cellular step indexes neighbourhoods through precomputed flat offset
    tables (:func:`repro.parallel.fine_grained.grid_neighbor_table`).
    """

    __slots__ = ("rows", "cols")

    def __init__(self, tensor: np.ndarray, objectives: np.ndarray):
        xp = _xp()
        tensor = xp.ascontiguousarray(tensor)
        objectives = xp.ascontiguousarray(
            xp.asarray(objectives, dtype=xp.float64))
        if tensor.ndim != 3 or objectives.shape != tensor.shape[:2]:
            raise ValueError("need a (rows, cols, n_genes) tensor and a "
                             "matching (rows, cols) objective grid")
        self.rows, self.cols = int(tensor.shape[0]), int(tensor.shape[1])
        super().__init__(tensor.reshape(self.rows * self.cols, -1),
                         objectives.reshape(-1))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, objectives: np.ndarray,
                    rows: int, cols: int) -> "GridState":
        """Grid over an already-flat (row-major) population matrix."""
        matrix = np.asarray(matrix)
        return cls(matrix.reshape(rows, cols, matrix.shape[-1]),
                   np.asarray(objectives, dtype=float).reshape(rows, cols))

    @property
    def tensor(self) -> np.ndarray:
        """``(rows, cols, n_genes)`` chromosome tensor (a live view)."""
        return self.matrix.reshape(self.rows, self.cols, -1)

    @property
    def objective_grid(self) -> np.ndarray:
        """``(rows, cols)`` objective grid (a live view)."""
        return self.objectives.reshape(self.rows, self.cols)

    def copy(self) -> "GridState":
        return GridState(self.tensor.copy(), self.objective_grid.copy())


class ArrayPopulationView(Population):
    """Read-only :class:`Population` facade over an :class:`ArrayState`.

    Observers and result plumbing written against the object substrate
    keep working: ``best()``/``stats()``/``objectives()`` read the arrays
    directly (vectorised -- no per-individual boxing in the per-generation
    hot path), while iteration/indexing materialise real ``Individual``
    objects lazily, one copy per member, on first access (rebuilt when
    the state's :attr:`~ArrayState.version` moves on).

    Views are *live*: the underlying state mutates in place across
    generations and migrations, so a retained view always shows the
    current arrays.  Take a snapshot with ``Population(view)`` (or
    ``view.copy()``) when a frozen generation is needed.
    """

    def __init__(self, problem: Any, state: ArrayState):
        self._problem = problem
        self._state = state
        self._cache: list[Individual] | None = None
        self._cache_version = -1

    @property
    def _members(self) -> list[Individual]:  # type: ignore[override]
        if self._cache is None or self._cache_version != self._state.version:
            backend = active_backend()
            matrix = backend.asnumpy(self._state.matrix)
            objectives = backend.asnumpy(self._state.objectives)
            self._cache = [
                Individual.from_row(self._problem, matrix[i], objectives[i])
                for i in range(matrix.shape[0])
            ]
            self._cache_version = self._state.version
        return self._cache

    def __len__(self) -> int:
        return len(self._state)

    def objectives(self) -> np.ndarray:
        return self._state.objectives.copy()

    def best(self) -> Individual:
        backend = active_backend()
        i = int(np.argmin(self._state.objectives))
        return Individual.from_row(self._problem,
                                   backend.asnumpy(self._state.matrix[i]),
                                   self._state.objectives[i])

    def worst(self) -> Individual:
        backend = active_backend()
        i = int(np.argmax(self._state.objectives))
        return Individual.from_row(self._problem,
                                   backend.asnumpy(self._state.matrix[i]),
                                   self._state.objectives[i])

    def stats(self):
        from .population import PopulationStats
        obj = self._state.objectives
        if obj.size == 0 or np.isnan(obj).any():
            raise ValueError("stats() requires a fully evaluated population")
        unique = _xp().unique(self._state.matrix, axis=0).shape[0]
        return PopulationStats(
            size=int(obj.size),
            best=float(obj.min()),
            worst=float(obj.max()),
            mean=float(obj.mean()),
            std=float(obj.std()),
            unique_fraction=unique / obj.size,
        )

    def _read_only(self, *_args, **_kwargs):
        raise TypeError(
            "array-substrate population views are read-only; mutate the "
            "underlying ArrayState (or convert via Population(view))")

    __setitem__ = _read_only
    append = _read_only
    extend = _read_only


def make_offspring_matrix(state: ArrayState, config: Any, problem: Any,
                          rng: np.random.Generator, count: int) -> np.ndarray:
    """Selection + crossover + mutation + immigration, all as matrices.

    The array twin of ``SimpleGA.make_offspring``: same stage order, same
    rate arithmetic, same number of gate draws -- only the per-pair
    operator applications are batched.  Returns the ``(count, n_genes)``
    offspring matrix (unevaluated).
    """
    xp = _xp()
    matrix, objectives = state.matrix, state.objectives
    fitness = apply_fitness_array(objectives, config.fitness_transform)
    n_immigrants = int(round(config.immigration_rate * count))
    n_bred = count - n_immigrants
    parts = []
    if n_bred > 0:
        select = batch_selection_for(config.selection)
        parent_idx = select(fitness, objectives, n_bred + (n_bred % 2), rng)
        parents = matrix[parent_idx]
        A, B = parents[0::2], parents[1::2]
        gates = rng.random(A.shape[0]) < config.crossover_rate
        child_a, child_b = xp.copy(A), xp.copy(B)
        if gates.any():
            cross = batch_crossover_for(config.crossover)
            xa, xb = cross(A[gates], B[gates], rng)
            child_a[gates] = xa
            child_b[gates] = xb
        bred = xp.empty((2 * A.shape[0], matrix.shape[1]),
                        dtype=matrix.dtype)
        bred[0::2] = child_a
        bred[1::2] = child_b
        bred = bred[:n_bred]
        mut_gates = rng.random(n_bred) < config.mutation_rate
        if mut_gates.any():
            mutate = batch_mutation_for(config.mutation)
            bred[mut_gates] = mutate(bred[mut_gates], rng)
        parts.append(bred)
    if n_immigrants > 0:
        parts.append(random_matrix(problem, n_immigrants, rng)
                     .astype(matrix.dtype, copy=False))
    if not parts:
        return xp.empty((0, matrix.shape[1]), dtype=matrix.dtype)
    return parts[0] if len(parts) == 1 else xp.concatenate(parts)


def elitist_merge_arrays(state: ArrayState, offspring: np.ndarray,
                         offspring_objectives: np.ndarray, n_elites: int,
                         size: int) -> tuple[np.ndarray, np.ndarray]:
    """Array twin of ``Population.elitist_merge``.

    Next generation = ``n_elites`` best parents + best offspring fill
    (+ next-best parents when offspring run short), in the same
    best-first, tie-stable order as the object substrate.
    """
    xp = _xp()
    parent_obj = state.objectives
    elite_idx = stable_topk(parent_obj, min(n_elites, len(state)))
    n_fill = min(size - elite_idx.size, offspring.shape[0])
    fill_idx = stable_topk(offspring_objectives, n_fill)
    rows = [state.matrix[elite_idx], offspring[fill_idx]]
    objs = [parent_obj[elite_idx], offspring_objectives[fill_idx]]
    short = size - elite_idx.size - fill_idx.size
    if short > 0:  # offspring shortage: pad with next-best parents
        order = stable_topk(parent_obj, len(state))
        backfill = order[elite_idx.size:elite_idx.size + short]
        rows.append(state.matrix[backfill])
        objs.append(parent_obj[backfill])
    return xp.concatenate(rows), xp.concatenate(objs)
