"""Fitness transforms from Section III.A of the survey.

Shop-scheduling objectives are minimised, but classic selection operators
(roulette wheel, stochastic universal sampling) expect a maximised,
non-negative fitness.  The survey quotes the two standard transforms:

Equation (1), the *heuristic offset*::

    FIT(i) = max(F_bar - F_i(S_i), 0)

where ``F_bar`` is the objective value of some heuristic (reference)
solution, and Equation (2), the *reciprocal*::

    FIT(i) = 1 / F_i(S_i)

Both are provided, plus a rank-based transform that is scale-free (useful
when objective magnitudes vary wildly across instances, e.g. ΣwjCj).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from .individual import Individual

__all__ = [
    "FitnessTransform",
    "HeuristicOffsetFitness",
    "ReciprocalFitness",
    "RankFitness",
    "NegationFitness",
    "apply_fitness",
    "apply_fitness_array",
]


class FitnessTransform(Protocol):
    """Maps a vector of minimised objectives to maximised fitness values."""

    def __call__(self, objectives: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class HeuristicOffsetFitness:
    """Equation (1): ``FIT(i) = max(F_bar - F_i, 0)``.

    Parameters
    ----------
    reference:
        ``F_bar``, the objective of a heuristic solution.  If ``None`` the
        transform uses ``(1 + margin) * max(objectives)`` of the current
        population, which guarantees strictly positive fitness for every
        member while preserving ordering -- the common practical reading of
        Eq. (1) when no heuristic bound is available.
    margin:
        Relative safety margin used when ``reference`` is adaptive.
    """

    def __init__(self, reference: float | None = None, margin: float = 0.05):
        if reference is not None and reference <= 0:
            raise ValueError("reference objective must be positive")
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.reference = reference
        self.margin = margin

    def __call__(self, objectives: np.ndarray) -> np.ndarray:
        obj = np.asarray(objectives, dtype=float)
        ref = self.reference
        if ref is None:
            ref = float(obj.max()) * (1.0 + self.margin)
            if ref == 0.0:
                ref = 1.0
        return np.maximum(ref - obj, 0.0)


class ReciprocalFitness:
    """Equation (2): ``FIT(i) = 1 / F_i`` (objectives must be positive)."""

    def __init__(self, epsilon: float = 1e-12):
        self.epsilon = epsilon

    def __call__(self, objectives: np.ndarray) -> np.ndarray:
        obj = np.asarray(objectives, dtype=float)
        if (obj < 0).any():
            raise ValueError("reciprocal fitness requires non-negative objectives")
        return 1.0 / (obj + self.epsilon)


class RankFitness:
    """Linear rank-based fitness: best gets ``len(pop)``, worst gets 1.

    Scale-free; ties share the mean of their rank block so the transform is
    deterministic and permutation-invariant.
    """

    def __call__(self, objectives: np.ndarray) -> np.ndarray:
        obj = np.asarray(objectives, dtype=float)
        n = obj.size
        order = np.argsort(obj, kind="stable")
        ranks = np.empty(n, dtype=float)
        # rank 0 = best => fitness n; average ties
        ranks[order] = np.arange(n, dtype=float)
        fitness = n - ranks
        # grouped mean over tied objective values, fully vectorised
        _, inverse = np.unique(obj, return_inverse=True)
        sums = np.bincount(inverse, weights=fitness)
        counts = np.bincount(inverse)
        out = sums[inverse] / counts[inverse]
        # NaN never compares equal, so NaN objectives are not ties: they
        # keep their own rank fitness (np.unique would group them)
        isnan = np.isnan(obj)
        if isnan.any():
            out[isnan] = fitness[isnan]
        return out


class NegationFitness:
    """``FIT(i) = -F_i``; simplest order-preserving transform.

    Produces negative values, so only suitable for operators that use
    fitness comparisons (tournament), never for roulette sampling.
    """

    def __call__(self, objectives: np.ndarray) -> np.ndarray:
        return -np.asarray(objectives, dtype=float)


def apply_fitness_array(objectives: np.ndarray,
                        transform: FitnessTransform) -> np.ndarray:
    """Array-in/array-out fitness: transform an objective vector directly.

    The batch-evaluation companion to :func:`apply_fitness`: no
    :class:`Individual` boxing, just a ``(pop_size,)`` float vector in and
    the maximised fitness vector out.  Raises if the transform changes the
    shape of the vector.
    """
    obj = np.asarray(objectives, dtype=float)
    if obj.ndim != 1:
        raise ValueError("objectives must be a 1-D vector")
    fits = np.asarray(transform(obj), dtype=float)
    if fits.shape != obj.shape:
        raise ValueError(
            f"transform changed shape {obj.shape} -> {fits.shape}")
    return fits


def apply_fitness(population: Sequence[Individual],
                  transform: FitnessTransform) -> None:
    """Fill ``Individual.fitness`` for every member, in place.

    Raises if any member lacks an objective value.
    """
    objectives = np.empty(len(population), dtype=float)
    for k, ind in enumerate(population):
        if ind.objective is None:
            raise ValueError("cannot compute fitness of unevaluated individual")
        objectives[k] = ind.objective
    fits = apply_fitness_array(objectives, transform)
    for ind, fit in zip(population, fits):
        ind.fitness = float(fit)
