"""Run observers: per-generation history and convergence diagnostics.

Most surveyed papers report convergence curves (best objective per
generation) and population-quality statistics (Park et al. [26] compare
best *and* average solution; Bozejko & Wodecki [30] report the standard
deviation improvement).  The :class:`HistoryRecorder` captures everything
those comparisons need; engines call ``observe`` once per generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .population import Population

__all__ = ["GenerationRecord", "HistoryRecorder", "CallbackObserver", "Observer"]


@dataclass(slots=True)
class GenerationRecord:
    """One generation's snapshot."""

    generation: int
    best: float
    mean: float
    std: float
    worst: float
    evaluations: int
    elapsed: float
    extra: dict[str, Any] = field(default_factory=dict)


class Observer:
    """Base observer; engines call :meth:`observe` each generation."""

    def observe(self, generation: int, population: Population,
                evaluations: int, elapsed: float, **extra: Any) -> None:
        raise NotImplementedError  # pragma: no cover


class HistoryRecorder(Observer):
    """Records a :class:`GenerationRecord` per generation.

    Also exposes the derived series the benchmarks print: best-so-far curve,
    generations-to-target, and area-under-curve convergence speed (smaller =
    converges faster), the metric we use for "higher convergence speed"
    claims such as Asadzadeh et al. [27].
    """

    def __init__(self) -> None:
        self.records: list[GenerationRecord] = []

    def observe(self, generation: int, population: Population,
                evaluations: int, elapsed: float, **extra: Any) -> None:
        stats = population.stats()
        self.records.append(GenerationRecord(
            generation=generation,
            best=stats.best,
            mean=stats.mean,
            std=stats.std,
            worst=stats.worst,
            evaluations=evaluations,
            elapsed=elapsed,
            extra=dict(extra),
        ))

    # -- derived series ----------------------------------------------------------
    def best_curve(self) -> np.ndarray:
        """Best-so-far objective per generation (monotone non-increasing)."""
        if not self.records:
            return np.empty(0)
        return np.minimum.accumulate(np.array([r.best for r in self.records]))

    def mean_curve(self) -> np.ndarray:
        return np.array([r.mean for r in self.records])

    def final_best(self) -> float:
        if not self.records:
            raise ValueError("no generations recorded")
        return float(self.best_curve()[-1])

    def generations_to_reach(self, target: float) -> int | None:
        """First generation whose best-so-far <= target, else ``None``."""
        curve = self.best_curve()
        hits = np.nonzero(curve <= target)[0]
        return int(hits[0]) if hits.size else None

    def convergence_auc(self) -> float:
        """Normalised area under the best-so-far curve.

        Curves are normalised by the initial best so runs on different
        instances are comparable; a faster-converging run has smaller AUC.
        """
        curve = self.best_curve()
        if curve.size == 0:
            raise ValueError("no generations recorded")
        return float(np.mean(curve / curve[0])) if curve[0] != 0 else 0.0


class CallbackObserver(Observer):
    """Adapter turning a plain function into an observer."""

    def __init__(self, fn: Callable[..., None]):
        self.fn = fn

    def observe(self, generation: int, population: Population,
                evaluations: int, elapsed: float, **extra: Any) -> None:
        self.fn(generation=generation, population=population,
                evaluations=evaluations, elapsed=elapsed, **extra)
