"""GA engine core: individuals, populations, fitness, termination, engine."""

from .individual import Individual
from .population import Population, PopulationStats, hamming_distance
from .fitness import (HeuristicOffsetFitness, NegationFitness, RankFitness,
                      ReciprocalFitness, apply_fitness, apply_fitness_array)
from .termination import (AllOf, AnyOf, MaxEvaluations, MaxGenerations,
                          ProvenGap, Stagnation, TargetObjective,
                          Termination, TerminationState, TimeLimit)
from .observers import (CallbackObserver, GenerationRecord, HistoryRecorder,
                        Observer)
from .rng import RngStream, derive_rng, make_rng, spawn_rngs, spawn_seeds
from .substrate import (SUBSTRATES, ArrayPopulationView, ArrayState,
                        GridState, available_substrates)
from .ga import GAConfig, GAResult, SimpleGA

__all__ = [
    "Individual", "Population", "PopulationStats", "hamming_distance",
    "SUBSTRATES", "available_substrates", "ArrayState", "GridState",
    "ArrayPopulationView",
    "HeuristicOffsetFitness", "ReciprocalFitness", "RankFitness",
    "NegationFitness", "apply_fitness", "apply_fitness_array",
    "Termination", "TerminationState", "MaxGenerations", "MaxEvaluations",
    "TimeLimit", "TargetObjective", "ProvenGap", "Stagnation", "AnyOf",
    "AllOf",
    "Observer", "HistoryRecorder", "CallbackObserver", "GenerationRecord",
    "make_rng", "spawn_rngs", "spawn_seeds", "derive_rng", "RngStream",
    "GAConfig", "GAResult", "SimpleGA",
]
