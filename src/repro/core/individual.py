"""Individuals: a genome plus cached evaluation results.

An :class:`Individual` is deliberately dumb -- it knows nothing about shop
scheduling.  The *encoding* (see :mod:`repro.encodings`) interprets the
genome; the *problem* (see :mod:`repro.scheduling`) scores the decoded
schedule.  This separation mirrors the survey's Section III.A: the same GA
machinery runs over direct permutations, permutations with repetition,
random keys, dispatching-rule strings or two-part flexible-shop genomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

__all__ = ["Individual", "copy_genome"]


def copy_genome(genome: Any) -> Any:
    """Deep-enough copy of a genome (ndarray, tuple of ndarrays, or list).

    The cheap way to clone genetic material without allocating a
    throwaway :class:`Individual` around it (uncrossed pairs in
    ``SimpleGA.make_offspring`` clone thousands of genomes per run).
    """
    if isinstance(genome, np.ndarray):
        return genome.copy()
    if isinstance(genome, tuple):
        return tuple(copy_genome(g) for g in genome)
    if isinstance(genome, list):
        return [copy_genome(g) for g in genome]
    return genome


_copy_genome = copy_genome  # backwards-compatible private alias


@dataclass(slots=True)
class Individual:
    """One member of a population.

    Attributes
    ----------
    genome:
        Encoding-specific data.  A single ``ndarray`` for permutation /
        random-key encodings, a ``tuple`` of arrays for two-part flexible
        shop genomes.
    objective:
        Minimised objective value (e.g. makespan).  ``None`` until evaluated.
    fitness:
        Maximised fitness derived from ``objective`` via a transform from
        :mod:`repro.core.fitness`.  ``None`` until evaluated.
    objectives:
        Optional vector of objective values for multi-objective problems.
    meta:
        Free-form annotations (birth generation, island id, ...).
    """

    genome: Any
    objective: float | None = None
    fitness: float | None = None
    objectives: tuple[float, ...] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def evaluated(self) -> bool:
        """True once the individual has an objective value."""
        return self.objective is not None

    def invalidate(self) -> None:
        """Drop cached evaluation results (call after mutating the genome)."""
        self.objective = None
        self.fitness = None
        self.objectives = None

    def copy(self) -> "Individual":
        """Deep copy; the genome is duplicated, evaluation cache preserved."""
        return replace(
            self,
            genome=_copy_genome(self.genome),
            meta=dict(self.meta),
        )

    def with_genome(self, genome: Any) -> "Individual":
        """A fresh, unevaluated individual carrying ``genome``."""
        return Individual(genome=genome)

    @classmethod
    def from_row(cls, problem: Any, row: np.ndarray,
                 objective: float | None = None) -> "Individual":
        """Individual from one chromosome-matrix row (array substrate).

        Inverse of the genome-stacking seam: the row is copied and
        un-stacked through ``problem.unstack_row`` (composite encodings
        rebuild their tuple genomes).
        """
        genome = problem.unstack_row(np.asarray(row).copy())
        if objective is None:
            return cls(genome)
        return cls(genome, objective=float(objective))

    def genome_key(self) -> tuple:
        """Hashable projection of the genome (used for diversity metrics)."""
        if isinstance(self.genome, np.ndarray):
            return tuple(np.asarray(self.genome).ravel().tolist())
        if isinstance(self.genome, tuple):
            return tuple(
                tuple(np.asarray(g).ravel().tolist()) for g in self.genome
            )
        return tuple(self.genome)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        obj = "unevaluated" if self.objective is None else f"{self.objective:.4g}"
        return f"Individual(obj={obj})"
