"""The simple (serial) genetic algorithm -- Table II of the survey.

::

    1: initialize();
    2: while (termination criteria are not satisfied) do
    3:   Generation++
    4:   Selection();
    5:   Crossover();
    6:   Mutation();
    7:   FitnessValueEvaluation();
    8: end while

:class:`SimpleGA` implements exactly that loop over a
:class:`~repro.encodings.base.Problem`.  The evaluation step is pluggable
(an ``evaluator`` callable mapping a list of genomes to objective values),
which is the single seam the master-slave model replaces with a parallel
pool (Table III) while everything else stays identical -- the survey's
observation that master-slave parallelism "does not affect the behavior of
the algorithm".

The engine exposes both ``run()`` (full loop) and ``step()`` (one
generation), the latter reused verbatim by the island model where every
island is a SimpleGA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..encodings.base import Problem
from ..operators.crossover import Crossover, default_crossover_for
from ..operators.mutation import Mutation, default_mutation_for
from ..operators.selection import Selection, RouletteWheelSelection
from .fitness import FitnessTransform, HeuristicOffsetFitness, apply_fitness
from .individual import Individual, copy_genome
from .observers import HistoryRecorder, Observer
from .population import Population
from .rng import make_rng
from .substrate import (SUBSTRATES, ArrayPopulationView, ArrayState,
                        check_array_support, elitist_merge_arrays,
                        make_offspring_matrix, random_matrix)
from .termination import MaxGenerations, Termination, TerminationState

__all__ = ["GAConfig", "GAResult", "SimpleGA", "Evaluator"]

Evaluator = Callable[[Sequence[Any]], np.ndarray]


@dataclass
class GAConfig:
    """Hyper-parameters of the simple GA (and of each island/cell engine).

    Attributes
    ----------
    population_size:
        number of individuals.
    crossover_rate:
        probability a selected pair undergoes crossover (else cloned).
    mutation_rate:
        probability each offspring undergoes mutation.
    n_elites:
        individuals copied unchanged into the next generation ("an elitist
        strategy is hired afterwards to keep limited number of individuals
        with the best fitness values", Section III.A).
    immigration_rate:
        fraction of each new generation replaced by fresh random
        individuals -- the ``c%`` immigration of Huang et al. [24].
    generation_gap:
        fraction of the population bred each generation; 1.0 is the full
        generational model of Table II, smaller values give the *partial
        replacement* of Akhshabi et al. [18] (only the bred fraction can
        displace parents, the rest survive unchanged).
    substrate:
        ``"object"`` (default) evolves ``Individual`` objects with
        per-genome operator calls; ``"array"`` keeps the population as a
        ``(pop, n_genes)`` chromosome matrix and runs every stage as a
        matrix kernel (see :mod:`repro.core.substrate`).  The object
        substrate's behaviour is bit-for-bit unchanged by this knob.
    seeding:
        name of a constructive heuristic (``"neh"``, ``"johnson"``,
        ``"spt"``, ``"edd"``; see :mod:`repro.heuristics`) whose solution
        replaces one member of the random initial population -- the
        heuristic-seeded initialisation used by the load-balancing
        flow-shop GAs.  ``None`` (default) keeps the fully random init.
    selection / crossover / mutation:
        operator instances; ``None`` picks a default for the problem's
        genome kind.
    fitness_transform:
        maps minimised objectives to maximised fitness (Eq. (1)/(2)).
    """

    population_size: int = 60
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    n_elites: int = 2
    immigration_rate: float = 0.0
    generation_gap: float = 1.0
    substrate: str = "object"
    seeding: str | None = None
    selection: Selection | None = None
    crossover: Crossover | None = None
    mutation: Mutation | None = None
    fitness_transform: FitnessTransform | None = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        for nm in ("crossover_rate", "mutation_rate", "immigration_rate"):
            v = getattr(self, nm)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{nm} must be in [0, 1]")
        if not 0.0 < self.generation_gap <= 1.0:
            raise ValueError("generation_gap must be in (0, 1]")
        if self.substrate not in SUBSTRATES:
            raise ValueError(f"substrate must be one of {SUBSTRATES}, "
                             f"got {self.substrate!r}")
        if not 0 <= self.n_elites <= self.population_size:
            raise ValueError("n_elites must be in [0, population_size]")
        if self.seeding is not None:
            from ..heuristics import HEURISTIC_NAMES
            if self.seeding not in HEURISTIC_NAMES:
                raise ValueError(
                    f"seeding must be one of {list(HEURISTIC_NAMES)} or "
                    f"None, got {self.seeding!r}")

    def resolved(self, problem: Problem) -> "GAConfig":
        """Copy with operator defaults filled in for ``problem``."""
        part_kinds = getattr(problem.encoding, "part_kinds", ())
        part_spans = getattr(problem.encoding, "part_spans", None)
        if part_spans is not None:
            part_spans = tuple(int(w) for w in part_spans)
        return replace(
            self,
            selection=self.selection or RouletteWheelSelection(),
            crossover=self.crossover or default_crossover_for(
                problem.kind, part_kinds, part_spans),
            mutation=self.mutation or default_mutation_for(
                problem.kind, part_kinds, part_spans),
            fitness_transform=self.fitness_transform or HeuristicOffsetFitness(),
        )


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best: Individual
    population: Population
    history: HistoryRecorder
    generations: int
    evaluations: int
    elapsed: float
    termination_reason: str
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def best_objective(self) -> float:
        return float(self.best.objective)


class SimpleGA:
    """Serial GA engine over a :class:`Problem`.

    Parameters
    ----------
    problem:
        encoding + objective.
    config:
        hyper-parameters; operator defaults resolved per genome kind.
    termination:
        stop criterion (default: 100 generations).
    seed:
        root seed (int) or an existing Generator.
    evaluator:
        optional replacement for the evaluation step; receives the list of
        genomes to score and returns objectives.  This is the master-slave
        seam -- see :mod:`repro.parallel.master_slave`.
    observers:
        extra observers beyond the built-in history recorder.
    """

    def __init__(self, problem: Problem, config: GAConfig | None = None,
                 termination: Termination | None = None,
                 seed: int | np.random.Generator | None = None,
                 evaluator: Evaluator | None = None,
                 observers: Sequence[Observer] = ()):  # noqa: D401
        self.problem = problem
        self.config = (config or GAConfig()).resolved(problem)
        self.termination = termination or MaxGenerations(100)
        self.rng = make_rng(seed)
        self.evaluator = evaluator or problem.evaluate_many
        # Batch seam: score the whole to-do set as one chromosome matrix.
        # Custom evaluators opt in by exposing ``evaluate_batch``; the
        # default path asks the problem for its vectorised decoder.
        if evaluator is None:
            self._batch_evaluate = problem.batch_evaluator()
        else:
            self._batch_evaluate = getattr(evaluator, "evaluate_batch", None)
        self.history = HistoryRecorder()
        self.observers: list[Observer] = [self.history, *observers]
        self.state = TerminationState()
        self.population: Population | None = None
        self.substrate = self.config.substrate
        self.arrays: ArrayState | None = None
        if self.substrate == "array":
            check_array_support(problem, self.config)

    # -- building blocks ---------------------------------------------------------
    def _seed_genomes(self) -> list:
        """Constructive-heuristic genomes for ``config.seeding`` (or [])."""
        if not self.config.seeding:
            return []
        from ..heuristics import heuristic_genome
        return [heuristic_genome(self.config.seeding, self.problem)]

    def initialize(self) -> Population:
        """Line 1 of Table II: random initial population, evaluated.

        With ``config.seeding`` set, member 0 of the random draw is
        replaced by the named constructive heuristic's solution (on both
        substrates) before evaluation.
        """
        seeds = self._seed_genomes()
        if self.substrate == "array":
            matrix = random_matrix(self.problem,
                                   self.config.population_size, self.rng)
            for i, genome in enumerate(seeds):
                row = self.problem.stack_genomes([genome])
                if row is None:
                    raise ValueError(
                        "seeding produced a genome that does not stack "
                        "into the chromosome matrix")
                matrix[i] = row[0].astype(matrix.dtype, copy=False)
            self.adopt_arrays(matrix, self._evaluate_matrix(matrix))
            self._notify()
            return self.population
        members = [Individual(self.problem.random_genome(self.rng))
                   for _ in range(self.config.population_size)]
        for i, genome in enumerate(seeds):
            members[i] = Individual(genome)
        pop = Population(members)
        self._evaluate(pop.members)
        self.population = pop
        self._notify()
        return pop

    def adopt_arrays(self, matrix: np.ndarray,
                     objectives: np.ndarray) -> None:
        """Install an evaluated chromosome matrix as the current population.

        The array-substrate counterpart of assigning ``self.population``;
        reuses the existing matrix buffer when shapes match, so island
        tensor slices stay bound across generations.
        """
        if self.arrays is None:
            self.arrays = ArrayState(matrix, objectives)
        else:
            self.arrays.update(matrix, objectives)
        self.population = ArrayPopulationView(self.problem, self.arrays)

    @property
    def uses_batch_path(self) -> bool:
        """Whether evaluation is vectorised (matrix decode), not per genome.

        False when the problem has no batch decoder even if the evaluator
        accepts matrices -- executors still ship compact chromosome
        matrices then, but each worker decodes row by row.
        """
        return (self._batch_evaluate is not None
                and self.problem.batch_evaluator() is not None)

    def _evaluate(self, individuals: Sequence[Individual]) -> None:
        """Score unevaluated individuals (lines 7 of Tables II/III).

        Prefers the vectorised batch path: stack the pending genomes into
        one ``(pop, n_genes)`` matrix (via the problem's stacking seam, so
        composite genomes such as the two-part FJSP chromosome flatten
        into rows too) and decode the whole population per call.  Ragged
        genomes fall back to the per-genome evaluator unchanged.
        """
        todo = [ind for ind in individuals if not ind.evaluated]
        if not todo:
            return
        genomes = [ind.genome for ind in todo]
        objectives = None
        if self._batch_evaluate is not None:
            matrix = self.problem.stack_genomes(genomes)
            if matrix is not None:
                objectives = self._batch_evaluate(matrix)
        if objectives is None:
            objectives = self.evaluator(genomes)
        for ind, obj in zip(todo, objectives):
            ind.objective = float(obj)
        self.state.evaluations += len(todo)

    def _evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Objectives of a chromosome matrix (array-substrate evaluation).

        Uses the batch seam when the problem/evaluator provide one;
        otherwise un-stacks rows and scores through the per-genome
        evaluator (still correct, just not vectorised).
        """
        if self._batch_evaluate is not None:
            objectives = self._batch_evaluate(matrix)
        else:
            genomes = [self.problem.unstack_row(row) for row in matrix]
            objectives = self.evaluator(genomes)
        self.state.evaluations += matrix.shape[0]
        return np.asarray(objectives, dtype=float)

    def _notify(self) -> None:
        best = self.population.best()
        self.state.record_best(float(best.objective))
        for obs in self.observers:
            obs.observe(self.state.generation, self.population,
                        self.state.evaluations, self.state.elapsed())

    def make_offspring(self, population: Population,
                       count: int) -> list[Individual]:
        """Selection + crossover + mutation producing ``count`` offspring.

        Shared by the serial loop, the master-slave engine and the island
        engine (each island calls it on its own subpopulation).
        """
        cfg = self.config
        apply_fitness(population.members, cfg.fitness_transform)
        n_immigrants = int(round(cfg.immigration_rate * count))
        n_bred = count - n_immigrants
        parents = cfg.selection(population, n_bred + (n_bred % 2), self.rng)
        offspring: list[Individual] = []
        for i in range(0, len(parents) - 1, 2):
            pa, pb = parents[i], parents[i + 1]
            if self.rng.random() < cfg.crossover_rate:
                ga, gb = cfg.crossover(pa.genome, pb.genome, self.rng)
            else:
                ga = copy_genome(pa.genome)
                gb = copy_genome(pb.genome)
            offspring.append(Individual(ga))
            offspring.append(Individual(gb))
        offspring = offspring[:n_bred]
        for k, child in enumerate(offspring):
            if self.rng.random() < cfg.mutation_rate:
                offspring[k] = Individual(cfg.mutation(child.genome, self.rng))
        for _ in range(n_immigrants):
            offspring.append(Individual(self.problem.random_genome(self.rng)))
        return offspring

    def step(self) -> Population:
        """One generation (lines 3-7 of Table II).

        With ``generation_gap < 1`` only the bred fraction of the
        population is produced and the unbred remainder survives via a
        larger elite carry-over (partial replacement, Akhshabi [18]).
        """
        if self.population is None:
            self.initialize()
        self.state.generation += 1
        cfg = self.config
        n_bred = max(2, int(round(cfg.generation_gap * cfg.population_size)))
        n_keep = max(cfg.n_elites, cfg.population_size - n_bred)
        if self.substrate == "array":
            offspring = make_offspring_matrix(self.arrays, cfg,
                                              self.problem, self.rng, n_bred)
            objectives = self._evaluate_matrix(offspring)
            self.adopt_arrays(*elitist_merge_arrays(
                self.arrays, offspring, objectives, n_keep,
                cfg.population_size))
        else:
            offspring = self.make_offspring(self.population, n_bred)
            self._evaluate(offspring)
            self.population = self.population.elitist_merge(offspring, n_keep)
        self._notify()
        return self.population

    # -- full loop ---------------------------------------------------------------
    def run(self) -> GAResult:
        """Run Table II until the termination criterion fires."""
        if self.population is None:
            self.initialize()
        while not self.termination.done(self.state):
            self.step()
        return GAResult(
            best=self.population.best().copy(),
            population=self.population,
            history=self.history,
            generations=self.state.generation,
            evaluations=self.state.evaluations,
            elapsed=self.state.elapsed(),
            termination_reason=self.termination.reason(),
            extra={"substrate": self.substrate},
        )
