"""Population container and summary statistics.

A :class:`Population` is an ordered list of :class:`~repro.core.individual.
Individual` with helpers the GA engines share: best/worst lookup, sorting,
diversity measures (used by the merge-on-stagnation island variant of
Spanos et al. [29], which triggers on Hamming-distance collapse), and elitist
truncation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from .individual import Individual

__all__ = ["Population", "PopulationStats", "hamming_distance"]


def hamming_distance(a: Individual, b: Individual) -> int:
    """Number of positions at which two (flat) genomes differ.

    For tuple genomes (flexible-shop two-part chromosomes) the parts are
    concatenated.  Genomes of unequal length compare at the shorter length
    plus the length difference (every missing position counts as different).
    """

    def flat(ind: Individual) -> np.ndarray:
        g = ind.genome
        if isinstance(g, tuple):
            return np.concatenate([np.asarray(p).ravel() for p in g])
        return np.asarray(g).ravel()

    fa, fb = flat(a), flat(b)
    n = min(fa.size, fb.size)
    diff = int(np.count_nonzero(fa[:n] != fb[:n]))
    return diff + abs(fa.size - fb.size)


class PopulationStats:
    """Immutable snapshot of a population's objective distribution."""

    __slots__ = ("size", "best", "worst", "mean", "std", "unique_fraction")

    def __init__(self, size: int, best: float, worst: float, mean: float,
                 std: float, unique_fraction: float):
        self.size = size
        self.best = best
        self.worst = worst
        self.mean = mean
        self.std = std
        self.unique_fraction = unique_fraction

    def as_dict(self) -> dict:
        return {
            "size": self.size,
            "best": self.best,
            "worst": self.worst,
            "mean": self.mean,
            "std": self.std,
            "unique_fraction": self.unique_fraction,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PopulationStats(best={self.best:.4g}, mean={self.mean:.4g}, "
                f"std={self.std:.4g}, n={self.size})")


class Population:
    """Ordered collection of individuals.

    The container keeps *minimised* objective semantics: ``best()`` is the
    individual with the smallest objective.  Engines that need maximised
    fitness read ``Individual.fitness`` which the fitness transform fills.
    """

    def __init__(self, individuals: Iterable[Individual] = ()):  # noqa: D401
        self._members: list[Individual] = list(individuals)

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._members)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Population(self._members[idx])
        return self._members[idx]

    def __setitem__(self, idx: int, value: Individual) -> None:
        self._members[idx] = value

    def append(self, ind: Individual) -> None:
        self._members.append(ind)

    def extend(self, inds: Iterable[Individual]) -> None:
        self._members.extend(inds)

    def copy(self) -> "Population":
        """Deep copy of the population."""
        return Population(ind.copy() for ind in self._members)

    # -- matrix adapters (array substrate) ----------------------------------------
    def to_arrays(self, problem) -> tuple[np.ndarray, np.ndarray]:
        """``(chromosome_matrix, objectives)`` of this population.

        Reuses the problem's genome-stacking seam (composite genomes
        flatten into rows); raises when genomes are ragged and cannot
        form a matrix.  The objectives vector carries ``nan`` for
        unevaluated members.
        """
        matrix = problem.stack_genomes([ind.genome for ind in self._members])
        if matrix is None:
            raise ValueError("population genomes do not stack into a "
                             "matrix; the array substrate cannot hold them")
        return matrix, self.objectives()

    @classmethod
    def from_arrays(cls, problem, matrix: np.ndarray,
                    objectives: np.ndarray | None = None) -> "Population":
        """Population materialised from a chromosome matrix (+ objectives)."""
        matrix = np.asarray(matrix)
        if objectives is None:
            return cls(Individual.from_row(problem, row) for row in matrix)
        objectives = np.asarray(objectives, dtype=float)
        return cls(Individual.from_row(problem, row, obj)
                   for row, obj in zip(matrix, objectives))

    @property
    def members(self) -> list[Individual]:
        """Direct (mutable) access to the underlying list."""
        return self._members

    # -- ordering helpers ---------------------------------------------------------
    def _require_evaluated(self) -> None:
        if any(not ind.evaluated for ind in self._members):
            raise ValueError("population contains unevaluated individuals")

    def best(self) -> Individual:
        """Individual with the smallest objective (minimisation)."""
        self._require_evaluated()
        return min(self._members, key=lambda i: i.objective)

    def worst(self) -> Individual:
        """Individual with the largest objective."""
        self._require_evaluated()
        return max(self._members, key=lambda i: i.objective)

    def sorted(self, reverse: bool = False) -> "Population":
        """New population sorted by objective ascending (best first)."""
        self._require_evaluated()
        return Population(
            sorted(self._members, key=lambda i: i.objective, reverse=reverse)
        )

    def top(self, k: int) -> list[Individual]:
        """The ``k`` best individuals (ascending objective)."""
        self._require_evaluated()
        return sorted(self._members, key=lambda i: i.objective)[:k]

    def objectives(self) -> np.ndarray:
        """Vector of objective values, ``nan`` for unevaluated members."""
        return np.array(
            [np.nan if i.objective is None else i.objective for i in self._members],
            dtype=float,
        )

    # -- statistics ---------------------------------------------------------------
    def stats(self) -> PopulationStats:
        """Summary statistics of the objective distribution."""
        obj = self.objectives()
        if len(obj) == 0 or np.isnan(obj).any():
            raise ValueError("stats() requires a fully evaluated population")
        unique = len({i.genome_key() for i in self._members})
        return PopulationStats(
            size=len(obj),
            best=float(obj.min()),
            worst=float(obj.max()),
            mean=float(obj.mean()),
            std=float(obj.std()),
            unique_fraction=unique / len(obj),
        )

    def mean_pairwise_hamming(self, rng: np.random.Generator | None = None,
                              sample: int = 64) -> float:
        """Mean pairwise Hamming distance (sampled for large populations).

        Full O(n^2) comparison is done when ``len(self) <= sample``; larger
        populations are subsampled for speed (this is a diagnostics metric,
        not part of the evolution).
        """
        n = len(self._members)
        if n < 2:
            return 0.0
        members = self._members
        if n > sample:
            if rng is None:
                rng = np.random.default_rng(0)
            idx = rng.choice(n, size=sample, replace=False)
            members = [self._members[i] for i in idx]
        total, pairs = 0, 0
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                total += hamming_distance(members[i], members[j])
                pairs += 1
        return total / pairs if pairs else 0.0

    def stagnation_fraction(self, threshold: int) -> float:
        """Fraction of member pairs with Hamming distance below ``threshold``.

        Spanos et al. [29] merge two islands when "the Hamming distance of
        more than half the individuals" falls below a predefined value; this
        is the measurement backing that rule.
        """
        n = len(self._members)
        if n < 2:
            return 0.0
        close, pairs = 0, 0
        for i in range(n):
            for j in range(i + 1, n):
                if hamming_distance(self._members[i], self._members[j]) < threshold:
                    close += 1
                pairs += 1
        return close / pairs

    # -- elitism ------------------------------------------------------------------
    def elitist_merge(self, offspring: Sequence[Individual], n_elites: int) -> "Population":
        """Next generation = ``n_elites`` best parents + best offspring fill.

        Keeps population size constant.  With ``n_elites == 0`` this is a
        full generational replacement.
        """
        self._require_evaluated()
        size = len(self._members)
        elites = [ind.copy() for ind in self.top(n_elites)] if n_elites > 0 else []
        rest = sorted(offspring, key=_objective_or_inf)[: size - len(elites)]
        merged = elites + list(rest)
        if len(merged) < size:  # offspring shortage: pad with next-best parents
            backfill = self.sorted().members[n_elites:]
            merged.extend(ind.copy() for ind in backfill[: size - len(merged)])
        return Population(merged)


def _objective_or_inf(ind: Individual) -> float:
    return float("inf") if ind.objective is None else ind.objective
