"""Speedup-shape experiments (simulated hardware + one real pool).

Each function reproduces the wall-clock/throughput claim of one surveyed
paper.  The GA's *behaviour* never depends on the platform (master-slave
preserves semantics; island epochs are platform-independent), so these
experiments replay deterministic cost traces on the
:mod:`repro.parallel.simcluster` device models -- except E03, which runs a
real process pool on this machine.

Per-evaluation reference costs are *fixed representative constants*
(documented per experiment) rather than measured, so results are exactly
reproducible; the constants are chosen from the published problem sizes.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.ga import GAConfig
from ..core.termination import MaxGenerations
from ..encodings.base import Problem
from ..encodings.operation_based import OperationBasedEncoding
from ..instances import generators, library
from ..parallel import perfmodel
from ..parallel.master_slave import MasterSlaveGA
from ..parallel.simcluster import (GATrace, beowulf, cpu_core, gpu_device,
                                   gpu_resident, lan_star, multicore,
                                   simulate_cellular, simulate_island,
                                   simulate_master_slave, simulate_serial,
                                   solutions_explored_in, transputer)
from .harness import SCALES, ExperimentResult, Scale

__all__ = ["e01_aitzai_gpu_vs_cpu", "e02_somani_topological",
           "e03_mui_master_slave_real", "e04_akhshabi_batched",
           "e05_tamaki_fine_grained", "e07_huang_fuzzy_cuda",
           "e08_zajicek_gpu_island", "e16_harmanani_two_level_speedup",
           "e22_perfmodel_design_space"]


def e01_aitzai_gpu_vs_cpu(scale: str = "small") -> ExperimentResult:
    """[14] AitZai: GPU master-slave explores ~15x more solutions than the
    CPU star-network version within a fixed time budget (pop 1056).

    Trace constants: blocking-JSSP evaluation of a 10x10 instance costs
    ~1e-4 reference-core seconds; genomes are 100 ops x 8 bytes.
    """
    t0 = time.perf_counter()
    budget = 300.0  # seconds, as in the paper
    trace = GATrace(generations=1000, evals_per_generation=1056,
                    eval_cost=1e-4, variation_cost=8e-3, genome_bytes=800)
    cpu_rig = lan_star(4)      # star network of interconnected computers
    gpu_rig = gpu_device(192)  # Quadro 2000: 192 CUDA cores
    rows = []
    explored = {}
    for name, dev in (("cpu-star", cpu_rig), ("gpu", gpu_rig)):
        n = solutions_explored_in(budget, trace, dev, model="master_slave")
        explored[name] = n
        rows.append({"platform": name, "lanes": dev.lanes,
                     "explored_in_300s": n})
    ratio = explored["gpu"] / max(1, explored["cpu-star"])
    rows.append({"platform": "ratio gpu/cpu", "lanes": "-",
                 "explored_in_300s": round(ratio, 2)})
    return ExperimentResult(
        experiment="E01", source="AitZai et al. [14][15]",
        claim="GPU master-slave explores ~15x more solutions than CPU "
              "network in a 300 s budget (pop 1056)",
        rows=rows,
        observations={"ratio": ratio},
        passed=5.0 <= ratio <= 40.0,
        elapsed=time.perf_counter() - t0)


def e02_somani_topological(scale: str = "small") -> ExperimentResult:
    """[16] Somani: topological-sort GPU GA ~9x faster than the sequential
    GA for large instances, with the gap growing with instance size.

    Per-evaluation cost scales with operation count (graph longest path is
    O(ops + edges)); constant 4e-6 s per operation.
    """
    t0 = time.perf_counter()
    sizes = [(10, 10), (20, 15), (30, 15), (50, 15)]
    pop = 100
    device = gpu_device(448)  # Tesla C2075: 448 cores
    rows = []
    speedups = []
    for n, m in sizes:
        ops = n * m
        trace = GATrace(generations=200, evals_per_generation=pop,
                        eval_cost=4e-6 * ops, variation_cost=2e-3,
                        genome_bytes=8 * ops)
        t_serial = simulate_serial(trace)
        t_gpu = simulate_master_slave(trace, device)
        s = t_serial / t_gpu
        speedups.append(s)
        rows.append({"instance": f"{n}x{m}", "ops": ops,
                     "t_serial": t_serial, "t_gpu": t_gpu,
                     "speedup": round(s, 2)})
    grows = all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
    return ExperimentResult(
        experiment="E02", source="Somani & Singh [16]",
        claim="GPU GA ~9x faster than sequential for large instances; "
              "speedup grows with size",
        rows=rows,
        observations={"largest_speedup": speedups[-1],
                      "monotone_growth": grows},
        passed=grows and 5.0 <= speedups[-1] <= 20.0,
        elapsed=time.perf_counter() - t0)


def e03_mui_master_slave_real(scale: str = "small") -> ExperimentResult:
    """[17] Mui: master-slave GA with 6 processors saves 3-4x wall-clock
    versus the sequential version.

    This experiment is REAL: it runs the identical GA (same seed) with a
    serial evaluator and with a 6-worker process pool on this machine,
    with an artificial per-evaluation CPU cost representing [17]'s
    "prior-rule active schedule" evaluation.
    """
    t0 = time.perf_counter()
    sc = SCALES[scale]
    instance = library.get_instance("la16-shaped")
    eval_cost = 2e-3  # seconds of busy CPU per evaluation
    problem = Problem(OperationBasedEncoding(instance), eval_cost=eval_cost)
    cfg = GAConfig(population_size=max(24, sc.pop), n_elites=2)
    gens = MaxGenerations(max(6, sc.generations // 4))
    runs = {}
    rows = []
    for backend, workers in (("serial", 1), ("process", 6)):
        ga = MasterSlaveGA(problem, cfg, gens, seed=11,
                           backend=backend, n_workers=workers)
        start = time.perf_counter()
        result = ga.run()
        wall = time.perf_counter() - start
        runs[backend] = (result, wall)
        rows.append({"backend": backend, "workers": workers,
                     "wall_s": round(wall, 3),
                     "best": result.best_objective,
                     "evaluations": result.evaluations})
    same_result = (runs["serial"][0].best_objective
                   == runs["process"][0].best_objective)
    speedup = runs["serial"][1] / runs["process"][1]
    rows.append({"backend": "speedup", "workers": 6,
                 "wall_s": round(speedup, 2), "best": "-",
                 "evaluations": "-"})
    return ExperimentResult(
        experiment="E03", source="Mui et al. [17]",
        claim="master-slave with 6 processors saves 3-4x execution time "
              "vs the sequential GA, with unchanged results",
        rows=rows,
        observations={"speedup": speedup, "identical_results": same_result},
        passed=same_result and speedup > 1.5,
        elapsed=time.perf_counter() - t0)


def e04_akhshabi_batched(scale: str = "small") -> ExperimentResult:
    """[18] Akhshabi: batched master-slave flow shop GA up to ~9x faster
    than the serial solver.

    Model: the master dispatches evaluation batches to 12 distributed
    slaves; message cost is paid per batch, so speedup climbs with batch
    size toward the compute-bound ceiling.
    """
    t0 = time.perf_counter()
    n_evals, t_eval, t_comm, slaves = 300, 1e-3, 3e-3, 12
    serial = n_evals * t_eval
    rows = []
    speedups = []
    for batch in (4, 8, 16, 32, 64, 128):
        n_batches = max(1, n_evals // batch)
        t_par = n_evals * t_eval / slaves + n_batches * t_comm
        s = serial / t_par
        speedups.append(s)
        rows.append({"batch_size": batch, "t_parallel": t_par,
                     "speedup": round(s, 2)})
    monotone = all(b >= a for a, b in zip(speedups, speedups[1:]))
    return ExperimentResult(
        experiment="E04", source="Akhshabi et al. [18]",
        claim="batched master-slave up to ~9x faster than serial; larger "
              "batches amortise dispatch cost",
        rows=rows,
        observations={"max_speedup": max(speedups), "monotone": monotone},
        passed=monotone and 4.0 <= max(speedups) <= 12.0,
        elapsed=time.perf_counter() - t0)


def e05_tamaki_fine_grained(scale: str = "small") -> ExperimentResult:
    """[20] Tamaki: fine-grained GA on a 16-node Transputer shortens
    calculation time dramatically, but below the ideal 16x because the
    machine lacks shared memory (message-passing neighbourhoods).
    """
    t0 = time.perf_counter()
    trace = GATrace(generations=100, evals_per_generation=256,
                    eval_cost=2e-3, variation_cost=1e-2, genome_bytes=288)
    t_serial = simulate_serial(trace)
    rows = []
    speeds = {}
    for nodes in (4, 8, 16):
        t_par = simulate_cellular(trace, transputer(nodes), neighbors=4)
        s = t_serial / t_par
        speeds[nodes] = s
        rows.append({"nodes": nodes, "t_parallel": t_par,
                     "speedup": round(s, 2),
                     "efficiency": round(s / nodes, 2)})
    sub_ideal = speeds[16] < 16
    substantial = speeds[16] > 3
    growing = speeds[4] < speeds[8] < speeds[16]
    return ExperimentResult(
        experiment="E05", source="Tamaki et al. [20]",
        claim="16-processor fine-grained GA cuts time dramatically but "
              "below ideal (communication instead of shared memory)",
        rows=rows,
        observations={"speedup_16": speeds[16],
                      "efficiency_16": speeds[16] / 16},
        passed=sub_ideal and substantial and growing,
        elapsed=time.perf_counter() - t0)


def e07_huang_fuzzy_cuda(scale: str = "small") -> ExperimentResult:
    """[24] Huang: random-keys fuzzy flow shop GA on CUDA reaches ~19x
    speedup at 200 jobs; speedup grows with job count.

    Per-evaluation cost scales with n*m (fuzzy recurrence); the host keeps
    a fixed variation cost per generation (the survey notes one chromosome
    per CUDA block, shared-memory random keys).
    """
    t0 = time.perf_counter()
    pop, m = 256, 10
    device = gpu_device(240, per_thread_speed=0.1)  # GTX 285: 240 cores
    rows = []
    speedups = []
    for n in (25, 50, 100, 200):
        trace = GATrace(generations=200, evals_per_generation=pop,
                        eval_cost=2.2e-5 * n * m, variation_cost=6e-3,
                        genome_bytes=8 * n)
        s = simulate_serial(trace) / simulate_master_slave(trace, device)
        speedups.append(s)
        rows.append({"jobs": n, "speedup": round(s, 2)})
    growing = all(b > a for a, b in zip(speedups, speedups[1:]))
    return ExperimentResult(
        experiment="E07", source="Huang et al. [24]",
        claim="CUDA fuzzy flow shop GA ~19x speedup at 200 jobs; speedup "
              "grows with problem size",
        rows=rows,
        observations={"speedup_at_200": speedups[-1], "monotone": growing},
        passed=growing and 8.0 <= speedups[-1] <= 30.0,
        elapsed=time.perf_counter() - t0)


def e08_zajicek_gpu_island(scale: str = "small") -> ExperimentResult:
    """[25] Zajicek: homogeneous all-on-GPU island GA achieves 60-120x
    over the sequential CPU version (no CPU-GPU traffic per generation).
    """
    t0 = time.perf_counter()
    # Tesla C1060: 240 cores but thousands of *resident* threads; the lane
    # count models resident warps, which is what the all-on-GPU design
    # exploits (no host round-trips to hide).
    device = gpu_resident(2048, per_thread_speed=0.12)
    rows = []
    speedups = []
    for total_pop in (512, 1024):
        trace = GATrace(generations=500, evals_per_generation=total_pop,
                        eval_cost=2e-4, variation_cost=2e-3,
                        genome_bytes=400, migration_interval=0,
                        n_islands=8)
        s = simulate_serial(trace) / simulate_island(trace, device)
        speedups.append(s)
        rows.append({"population": total_pop, "islands": 8,
                     "speedup": round(s, 1)})
    in_range = all(40.0 <= s <= 160.0 for s in speedups)
    return ExperimentResult(
        experiment="E08", source="Zajicek & Sucha [25]",
        claim="all-on-GPU island GA: 60-120x speedup vs sequential CPU",
        rows=rows,
        observations={"speedups": speedups},
        passed=in_range and speedups[-1] > speedups[0],
        elapsed=time.perf_counter() - t0)


def e16_harmanani_two_level_speedup(scale: str = "small") -> ExperimentResult:
    """[33] Harmanani: open shop island GA on a 5-machine Beowulf/MPI
    cluster: speedup between 2.28 and 2.89 for large instances (a serial
    coordination section caps scaling).
    """
    t0 = time.perf_counter()
    gens, pop, islands = 300, 100, 5
    t_eval, t_var_serial = 2e-3, 0.05  # ReduceGap bookkeeping on the master
    dev = beowulf(5)
    rows = []
    t_serial = gens * (pop * t_eval + t_var_serial)
    sub = pop // islands
    per_gen = t_var_serial + sub * t_eval + dev.dispatch_latency
    migration = (gens // 5) * (dev.dispatch_latency + 5 * 400 / dev.bandwidth)
    t_par = gens * per_gen + migration
    s = t_serial / t_par
    rows.append({"platform": "serial", "time_s": round(t_serial, 2),
                 "speedup": 1.0})
    rows.append({"platform": "beowulf-5", "time_s": round(t_par, 2),
                 "speedup": round(s, 2)})
    return ExperimentResult(
        experiment="E16", source="Harmanani et al. [33][34]",
        claim="5-machine Beowulf island GA speedup between 2.28 and 2.89 "
              "for large open shop instances",
        rows=rows,
        observations={"speedup": s},
        passed=1.8 <= s <= 4.0,
        elapsed=time.perf_counter() - t0)


def e22_perfmodel_design_space(scale: str = "small") -> ExperimentResult:
    """Section IV synthesis: master-slave pays off only when evaluation is
    expensive; speedup peaks at Cantu-Paz's P* = sqrt(n*Tf/Tc).
    """
    t0 = time.perf_counter()
    n, t_comm = 200, 1e-3
    rows = []
    checks = []
    for t_eval, label in ((1e-5, "cheap eval"), (1e-2, "expensive eval")):
        best_p, best_s = 1, 0.0
        for p in (1, 2, 4, 8, 16, 32, 64, 128):
            s = perfmodel.master_slave_speedup(n, t_eval, t_comm, p)
            if s > best_s:
                best_p, best_s = p, s
        p_star = perfmodel.optimal_slave_count(n, t_eval, t_comm)
        rows.append({"regime": label, "best_P": best_p,
                     "best_speedup": round(best_s, 2),
                     "P_star": round(p_star, 1)})
        # empirical optimum within factor 2 of the analytic optimum
        checks.append(0.5 <= best_p / max(p_star, 1e-9) <= 2.0
                      or best_s <= 1.0)
    cheap_loses = rows[0]["best_speedup"] <= 2.0
    expensive_wins = rows[1]["best_speedup"] >= 8.0
    return ExperimentResult(
        experiment="E22", source="survey Section IV / Cantu-Paz [5]",
        claim="master-slave wins only for expensive evaluations; optimum "
              "slave count follows P* = sqrt(n*Tf/Tc)",
        rows=rows,
        observations={"cheap_best": rows[0]["best_speedup"],
                      "expensive_best": rows[1]["best_speedup"]},
        passed=cheap_loses and expensive_wins and all(checks),
        elapsed=time.perf_counter() - t0)
